file(REMOVE_RECURSE
  "CMakeFiles/ibridge-classify.dir/ibridge_classify.cpp.o"
  "CMakeFiles/ibridge-classify.dir/ibridge_classify.cpp.o.d"
  "ibridge-classify"
  "ibridge-classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge-classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
