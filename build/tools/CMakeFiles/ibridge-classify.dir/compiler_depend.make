# Empty compiler generated dependencies file for ibridge-classify.
# This may be replaced when dependencies are built.
