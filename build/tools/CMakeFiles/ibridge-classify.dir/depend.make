# Empty dependencies file for ibridge-classify.
# This may be replaced when dependencies are built.
