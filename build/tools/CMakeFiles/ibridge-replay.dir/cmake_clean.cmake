file(REMOVE_RECURSE
  "CMakeFiles/ibridge-replay.dir/ibridge_replay.cpp.o"
  "CMakeFiles/ibridge-replay.dir/ibridge_replay.cpp.o.d"
  "ibridge-replay"
  "ibridge-replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge-replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
