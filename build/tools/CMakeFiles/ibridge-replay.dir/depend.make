# Empty dependencies file for ibridge-replay.
# This may be replaced when dependencies are built.
