# Empty compiler generated dependencies file for ibridge-replay.
# This may be replaced when dependencies are built.
