file(REMOVE_RECURSE
  "CMakeFiles/ibridge-tracegen.dir/ibridge_tracegen.cpp.o"
  "CMakeFiles/ibridge-tracegen.dir/ibridge_tracegen.cpp.o.d"
  "ibridge-tracegen"
  "ibridge-tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge-tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
