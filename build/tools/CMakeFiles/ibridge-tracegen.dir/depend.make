# Empty dependencies file for ibridge-tracegen.
# This may be replaced when dependencies are built.
