# Empty compiler generated dependencies file for checkpoint_replay.
# This may be replaced when dependencies are built.
