file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_replay.dir/checkpoint_replay.cpp.o"
  "CMakeFiles/checkpoint_replay.dir/checkpoint_replay.cpp.o.d"
  "checkpoint_replay"
  "checkpoint_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
