# Empty dependencies file for storage_tiering.
# This may be replaced when dependencies are built.
