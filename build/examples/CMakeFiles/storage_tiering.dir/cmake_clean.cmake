file(REMOVE_RECURSE
  "CMakeFiles/storage_tiering.dir/storage_tiering.cpp.o"
  "CMakeFiles/storage_tiering.dir/storage_tiering.cpp.o.d"
  "storage_tiering"
  "storage_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
