file(REMOVE_RECURSE
  "CMakeFiles/custom_mpi_program.dir/custom_mpi_program.cpp.o"
  "CMakeFiles/custom_mpi_program.dir/custom_mpi_program.cpp.o.d"
  "custom_mpi_program"
  "custom_mpi_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_mpi_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
