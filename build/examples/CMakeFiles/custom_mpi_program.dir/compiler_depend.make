# Empty compiler generated dependencies file for custom_mpi_program.
# This may be replaced when dependencies are built.
