file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_procscale.dir/bench_fig6_procscale.cpp.o"
  "CMakeFiles/bench_fig6_procscale.dir/bench_fig6_procscale.cpp.o.d"
  "bench_fig6_procscale"
  "bench_fig6_procscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_procscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
