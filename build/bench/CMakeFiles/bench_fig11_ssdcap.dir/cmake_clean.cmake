file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ssdcap.dir/bench_fig11_ssdcap.cpp.o"
  "CMakeFiles/bench_fig11_ssdcap.dir/bench_fig11_ssdcap.cpp.o.d"
  "bench_fig11_ssdcap"
  "bench_fig11_ssdcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ssdcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
