# Empty dependencies file for bench_fig11_ssdcap.
# This may be replaced when dependencies are built.
