file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hetero.dir/bench_fig12_hetero.cpp.o"
  "CMakeFiles/bench_fig12_hetero.dir/bench_fig12_hetero.cpp.o.d"
  "bench_fig12_hetero"
  "bench_fig12_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
