file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_magnification.dir/bench_fig3_magnification.cpp.o"
  "CMakeFiles/bench_fig3_magnification.dir/bench_fig3_magnification.cpp.o.d"
  "bench_fig3_magnification"
  "bench_fig3_magnification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_magnification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
