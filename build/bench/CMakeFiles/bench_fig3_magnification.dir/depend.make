# Empty dependencies file for bench_fig3_magnification.
# This may be replaced when dependencies are built.
