# Empty dependencies file for bench_table3_replay.
# This may be replaced when dependencies are built.
