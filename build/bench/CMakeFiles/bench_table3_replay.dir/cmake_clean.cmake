file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_replay.dir/bench_table3_replay.cpp.o"
  "CMakeFiles/bench_table3_replay.dir/bench_table3_replay.cpp.o.d"
  "bench_table3_replay"
  "bench_table3_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
