# Empty dependencies file for bench_fig8_ior.
# This may be replaced when dependencies are built.
