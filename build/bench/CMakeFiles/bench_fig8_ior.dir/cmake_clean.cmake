file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ior.dir/bench_fig8_ior.cpp.o"
  "CMakeFiles/bench_fig8_ior.dir/bench_fig8_ior.cpp.o.d"
  "bench_fig8_ior"
  "bench_fig8_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
