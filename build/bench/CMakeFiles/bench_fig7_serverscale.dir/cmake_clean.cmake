file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_serverscale.dir/bench_fig7_serverscale.cpp.o"
  "CMakeFiles/bench_fig7_serverscale.dir/bench_fig7_serverscale.cpp.o.d"
  "bench_fig7_serverscale"
  "bench_fig7_serverscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_serverscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
