# Empty dependencies file for bench_fig7_serverscale.
# This may be replaced when dependencies are built.
