# Empty compiler generated dependencies file for bench_fig10_ssdonly.
# This may be replaced when dependencies are built.
