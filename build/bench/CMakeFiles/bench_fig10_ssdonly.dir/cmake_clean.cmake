file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ssdonly.dir/bench_fig10_ssdonly.cpp.o"
  "CMakeFiles/bench_fig10_ssdonly.dir/bench_fig10_ssdonly.cpp.o.d"
  "bench_fig10_ssdonly"
  "bench_fig10_ssdonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ssdonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
