file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_unaligned.dir/bench_fig2_unaligned.cpp.o"
  "CMakeFiles/bench_fig2_unaligned.dir/bench_fig2_unaligned.cpp.o.d"
  "bench_fig2_unaligned"
  "bench_fig2_unaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_unaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
