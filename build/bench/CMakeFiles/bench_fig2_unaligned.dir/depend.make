# Empty dependencies file for bench_fig2_unaligned.
# This may be replaced when dependencies are built.
