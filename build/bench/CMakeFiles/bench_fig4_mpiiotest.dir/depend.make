# Empty dependencies file for bench_fig4_mpiiotest.
# This may be replaced when dependencies are built.
