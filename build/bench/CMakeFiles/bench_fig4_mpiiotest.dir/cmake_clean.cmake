file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mpiiotest.dir/bench_fig4_mpiiotest.cpp.o"
  "CMakeFiles/bench_fig4_mpiiotest.dir/bench_fig4_mpiiotest.cpp.o.d"
  "bench_fig4_mpiiotest"
  "bench_fig4_mpiiotest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mpiiotest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
