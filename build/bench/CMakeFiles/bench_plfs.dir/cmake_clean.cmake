file(REMOVE_RECURSE
  "CMakeFiles/bench_plfs.dir/bench_plfs.cpp.o"
  "CMakeFiles/bench_plfs.dir/bench_plfs.cpp.o.d"
  "bench_plfs"
  "bench_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
