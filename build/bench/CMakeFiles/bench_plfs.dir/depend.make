# Empty dependencies file for bench_plfs.
# This may be replaced when dependencies are built.
