
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_devices.cpp" "bench/CMakeFiles/bench_table2_devices.dir/bench_table2_devices.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_devices.dir/bench_table2_devices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ibridge_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ibridge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ibridge_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/ibridge_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/ibridge_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibridge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/ibridge_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ibridge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibridge_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibridge_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
