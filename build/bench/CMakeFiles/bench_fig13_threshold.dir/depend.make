# Empty dependencies file for bench_fig13_threshold.
# This may be replaced when dependencies are built.
