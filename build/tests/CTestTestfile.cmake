# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_fsim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_mapping_table[1]_include.cmake")
include("/root/repo/build/tests/test_ssd_log[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_pvfs[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_plfs[1]_include.cmake")
include("/root/repo/build/tests/test_cache_properties[1]_include.cmake")
include("/root/repo/build/tests/test_workload_sweeps[1]_include.cmake")
