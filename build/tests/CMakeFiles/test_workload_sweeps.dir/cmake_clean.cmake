file(REMOVE_RECURSE
  "CMakeFiles/test_workload_sweeps.dir/test_workload_sweeps.cpp.o"
  "CMakeFiles/test_workload_sweeps.dir/test_workload_sweeps.cpp.o.d"
  "test_workload_sweeps"
  "test_workload_sweeps.pdb"
  "test_workload_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
