# Empty dependencies file for test_workload_sweeps.
# This may be replaced when dependencies are built.
