file(REMOVE_RECURSE
  "CMakeFiles/test_ssd_log.dir/test_ssd_log.cpp.o"
  "CMakeFiles/test_ssd_log.dir/test_ssd_log.cpp.o.d"
  "test_ssd_log"
  "test_ssd_log.pdb"
  "test_ssd_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
