# Empty dependencies file for test_plfs.
# This may be replaced when dependencies are built.
