file(REMOVE_RECURSE
  "CMakeFiles/test_plfs.dir/test_plfs.cpp.o"
  "CMakeFiles/test_plfs.dir/test_plfs.cpp.o.d"
  "test_plfs"
  "test_plfs.pdb"
  "test_plfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
