file(REMOVE_RECURSE
  "CMakeFiles/test_fsim.dir/test_fsim.cpp.o"
  "CMakeFiles/test_fsim.dir/test_fsim.cpp.o.d"
  "test_fsim"
  "test_fsim.pdb"
  "test_fsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
