# Empty compiler generated dependencies file for test_mapping_table.
# This may be replaced when dependencies are built.
