file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_table.dir/test_mapping_table.cpp.o"
  "CMakeFiles/test_mapping_table.dir/test_mapping_table.cpp.o.d"
  "test_mapping_table"
  "test_mapping_table.pdb"
  "test_mapping_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
