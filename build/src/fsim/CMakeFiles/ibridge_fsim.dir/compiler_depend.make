# Empty compiler generated dependencies file for ibridge_fsim.
# This may be replaced when dependencies are built.
