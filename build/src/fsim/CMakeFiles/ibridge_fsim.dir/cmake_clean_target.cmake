file(REMOVE_RECURSE
  "libibridge_fsim.a"
)
