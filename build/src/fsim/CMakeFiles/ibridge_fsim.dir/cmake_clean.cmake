file(REMOVE_RECURSE
  "CMakeFiles/ibridge_fsim.dir/filesystem.cpp.o"
  "CMakeFiles/ibridge_fsim.dir/filesystem.cpp.o.d"
  "libibridge_fsim.a"
  "libibridge_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
