# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("storage")
subdirs("fsim")
subdirs("net")
subdirs("pvfs")
subdirs("core")
subdirs("mpiio")
subdirs("workloads")
subdirs("cluster")
subdirs("plfs")
