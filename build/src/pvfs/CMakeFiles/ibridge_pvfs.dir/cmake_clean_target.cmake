file(REMOVE_RECURSE
  "libibridge_pvfs.a"
)
