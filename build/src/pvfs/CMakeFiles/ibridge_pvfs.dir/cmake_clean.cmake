file(REMOVE_RECURSE
  "CMakeFiles/ibridge_pvfs.dir/client.cpp.o"
  "CMakeFiles/ibridge_pvfs.dir/client.cpp.o.d"
  "CMakeFiles/ibridge_pvfs.dir/layout.cpp.o"
  "CMakeFiles/ibridge_pvfs.dir/layout.cpp.o.d"
  "CMakeFiles/ibridge_pvfs.dir/metadata.cpp.o"
  "CMakeFiles/ibridge_pvfs.dir/metadata.cpp.o.d"
  "CMakeFiles/ibridge_pvfs.dir/server.cpp.o"
  "CMakeFiles/ibridge_pvfs.dir/server.cpp.o.d"
  "libibridge_pvfs.a"
  "libibridge_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
