# Empty dependencies file for ibridge_pvfs.
# This may be replaced when dependencies are built.
