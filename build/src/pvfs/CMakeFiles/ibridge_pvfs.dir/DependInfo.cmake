
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvfs/client.cpp" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/client.cpp.o" "gcc" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/client.cpp.o.d"
  "/root/repo/src/pvfs/layout.cpp" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/layout.cpp.o" "gcc" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/layout.cpp.o.d"
  "/root/repo/src/pvfs/metadata.cpp" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/metadata.cpp.o" "gcc" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/metadata.cpp.o.d"
  "/root/repo/src/pvfs/server.cpp" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/server.cpp.o" "gcc" "src/pvfs/CMakeFiles/ibridge_pvfs.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ibridge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/ibridge_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ibridge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibridge_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibridge_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
