file(REMOVE_RECURSE
  "libibridge_sim.a"
)
