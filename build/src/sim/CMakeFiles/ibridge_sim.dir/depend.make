# Empty dependencies file for ibridge_sim.
# This may be replaced when dependencies are built.
