file(REMOVE_RECURSE
  "CMakeFiles/ibridge_sim.dir/time.cpp.o"
  "CMakeFiles/ibridge_sim.dir/time.cpp.o.d"
  "libibridge_sim.a"
  "libibridge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
