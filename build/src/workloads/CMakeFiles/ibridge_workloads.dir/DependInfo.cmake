
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/btio.cpp" "src/workloads/CMakeFiles/ibridge_workloads.dir/btio.cpp.o" "gcc" "src/workloads/CMakeFiles/ibridge_workloads.dir/btio.cpp.o.d"
  "/root/repo/src/workloads/ior_mpi_io.cpp" "src/workloads/CMakeFiles/ibridge_workloads.dir/ior_mpi_io.cpp.o" "gcc" "src/workloads/CMakeFiles/ibridge_workloads.dir/ior_mpi_io.cpp.o.d"
  "/root/repo/src/workloads/mpi_io_test.cpp" "src/workloads/CMakeFiles/ibridge_workloads.dir/mpi_io_test.cpp.o" "gcc" "src/workloads/CMakeFiles/ibridge_workloads.dir/mpi_io_test.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/workloads/CMakeFiles/ibridge_workloads.dir/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/ibridge_workloads.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ibridge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/ibridge_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/ibridge_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibridge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/ibridge_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ibridge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibridge_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibridge_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
