file(REMOVE_RECURSE
  "CMakeFiles/ibridge_workloads.dir/btio.cpp.o"
  "CMakeFiles/ibridge_workloads.dir/btio.cpp.o.d"
  "CMakeFiles/ibridge_workloads.dir/ior_mpi_io.cpp.o"
  "CMakeFiles/ibridge_workloads.dir/ior_mpi_io.cpp.o.d"
  "CMakeFiles/ibridge_workloads.dir/mpi_io_test.cpp.o"
  "CMakeFiles/ibridge_workloads.dir/mpi_io_test.cpp.o.d"
  "CMakeFiles/ibridge_workloads.dir/trace.cpp.o"
  "CMakeFiles/ibridge_workloads.dir/trace.cpp.o.d"
  "libibridge_workloads.a"
  "libibridge_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
