file(REMOVE_RECURSE
  "libibridge_workloads.a"
)
