# Empty dependencies file for ibridge_workloads.
# This may be replaced when dependencies are built.
