file(REMOVE_RECURSE
  "libibridge_storage.a"
)
