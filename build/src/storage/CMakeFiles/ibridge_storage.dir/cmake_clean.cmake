file(REMOVE_RECURSE
  "CMakeFiles/ibridge_storage.dir/cfq.cpp.o"
  "CMakeFiles/ibridge_storage.dir/cfq.cpp.o.d"
  "CMakeFiles/ibridge_storage.dir/hdd.cpp.o"
  "CMakeFiles/ibridge_storage.dir/hdd.cpp.o.d"
  "CMakeFiles/ibridge_storage.dir/profiler.cpp.o"
  "CMakeFiles/ibridge_storage.dir/profiler.cpp.o.d"
  "CMakeFiles/ibridge_storage.dir/scheduler.cpp.o"
  "CMakeFiles/ibridge_storage.dir/scheduler.cpp.o.d"
  "CMakeFiles/ibridge_storage.dir/ssd.cpp.o"
  "CMakeFiles/ibridge_storage.dir/ssd.cpp.o.d"
  "libibridge_storage.a"
  "libibridge_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
