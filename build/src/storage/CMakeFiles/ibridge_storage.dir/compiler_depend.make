# Empty compiler generated dependencies file for ibridge_storage.
# This may be replaced when dependencies are built.
