
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cfq.cpp" "src/storage/CMakeFiles/ibridge_storage.dir/cfq.cpp.o" "gcc" "src/storage/CMakeFiles/ibridge_storage.dir/cfq.cpp.o.d"
  "/root/repo/src/storage/hdd.cpp" "src/storage/CMakeFiles/ibridge_storage.dir/hdd.cpp.o" "gcc" "src/storage/CMakeFiles/ibridge_storage.dir/hdd.cpp.o.d"
  "/root/repo/src/storage/profiler.cpp" "src/storage/CMakeFiles/ibridge_storage.dir/profiler.cpp.o" "gcc" "src/storage/CMakeFiles/ibridge_storage.dir/profiler.cpp.o.d"
  "/root/repo/src/storage/scheduler.cpp" "src/storage/CMakeFiles/ibridge_storage.dir/scheduler.cpp.o" "gcc" "src/storage/CMakeFiles/ibridge_storage.dir/scheduler.cpp.o.d"
  "/root/repo/src/storage/ssd.cpp" "src/storage/CMakeFiles/ibridge_storage.dir/ssd.cpp.o" "gcc" "src/storage/CMakeFiles/ibridge_storage.dir/ssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ibridge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibridge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
