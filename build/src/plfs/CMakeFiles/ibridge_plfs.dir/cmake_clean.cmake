file(REMOVE_RECURSE
  "CMakeFiles/ibridge_plfs.dir/plfs.cpp.o"
  "CMakeFiles/ibridge_plfs.dir/plfs.cpp.o.d"
  "libibridge_plfs.a"
  "libibridge_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
