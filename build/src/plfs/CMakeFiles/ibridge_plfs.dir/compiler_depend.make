# Empty compiler generated dependencies file for ibridge_plfs.
# This may be replaced when dependencies are built.
