file(REMOVE_RECURSE
  "libibridge_plfs.a"
)
