# Empty compiler generated dependencies file for ibridge_mpiio.
# This may be replaced when dependencies are built.
