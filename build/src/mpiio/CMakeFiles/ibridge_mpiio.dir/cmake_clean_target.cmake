file(REMOVE_RECURSE
  "libibridge_mpiio.a"
)
