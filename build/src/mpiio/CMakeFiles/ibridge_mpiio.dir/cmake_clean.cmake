file(REMOVE_RECURSE
  "CMakeFiles/ibridge_mpiio.dir/collective.cpp.o"
  "CMakeFiles/ibridge_mpiio.dir/collective.cpp.o.d"
  "libibridge_mpiio.a"
  "libibridge_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
