# Empty dependencies file for ibridge_stats.
# This may be replaced when dependencies are built.
