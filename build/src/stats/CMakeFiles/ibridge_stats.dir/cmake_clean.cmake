file(REMOVE_RECURSE
  "CMakeFiles/ibridge_stats.dir/table.cpp.o"
  "CMakeFiles/ibridge_stats.dir/table.cpp.o.d"
  "libibridge_stats.a"
  "libibridge_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
