file(REMOVE_RECURSE
  "libibridge_stats.a"
)
