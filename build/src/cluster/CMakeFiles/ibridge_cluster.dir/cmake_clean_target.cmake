file(REMOVE_RECURSE
  "libibridge_cluster.a"
)
