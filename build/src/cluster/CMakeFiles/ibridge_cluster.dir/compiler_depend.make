# Empty compiler generated dependencies file for ibridge_cluster.
# This may be replaced when dependencies are built.
