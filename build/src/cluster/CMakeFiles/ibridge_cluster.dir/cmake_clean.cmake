file(REMOVE_RECURSE
  "CMakeFiles/ibridge_cluster.dir/cluster.cpp.o"
  "CMakeFiles/ibridge_cluster.dir/cluster.cpp.o.d"
  "libibridge_cluster.a"
  "libibridge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
