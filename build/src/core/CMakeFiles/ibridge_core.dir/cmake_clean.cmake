file(REMOVE_RECURSE
  "CMakeFiles/ibridge_core.dir/cache.cpp.o"
  "CMakeFiles/ibridge_core.dir/cache.cpp.o.d"
  "CMakeFiles/ibridge_core.dir/mapping_table.cpp.o"
  "CMakeFiles/ibridge_core.dir/mapping_table.cpp.o.d"
  "libibridge_core.a"
  "libibridge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibridge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
