
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/ibridge_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/ibridge_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/mapping_table.cpp" "src/core/CMakeFiles/ibridge_core.dir/mapping_table.cpp.o" "gcc" "src/core/CMakeFiles/ibridge_core.dir/mapping_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsim/CMakeFiles/ibridge_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ibridge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibridge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibridge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
