# Empty compiler generated dependencies file for ibridge_core.
# This may be replaced when dependencies are built.
