file(REMOVE_RECURSE
  "libibridge_core.a"
)
