// Tests for workload generators, the trace toolkit, and the Table I
// classifier.
#include <gtest/gtest.h>

#include <sstream>

#include "workloads/btio.hpp"
#include "workloads/ior_mpi_io.hpp"
#include "workloads/mpi_io_test.hpp"
#include "workloads/trace.hpp"

namespace ibridge::workloads {
namespace {

cluster::ClusterConfig small_cluster(bool ibridge = false) {
  auto cc = ibridge ? cluster::ClusterConfig::with_ibridge()
                    : cluster::ClusterConfig::stock();
  cc.data_servers = 4;
  return cc;
}

// ----------------------------------------------------------- classifier ----

TEST(AccessClassifier, FlagsUnalignedAndRandom) {
  AccessClassifier cls;  // 64 KB unit, 20 KB random threshold
  EXPECT_TRUE(cls.is_unaligned({false, 1, 65 * 1024}));
  EXPECT_TRUE(cls.is_unaligned({false, 0, 65 * 1024}));   // odd size
  EXPECT_TRUE(cls.is_unaligned({false, 1024, 128 * 1024}));  // odd offset
  EXPECT_FALSE(cls.is_unaligned({false, 0, 64 * 1024}));
  EXPECT_FALSE(cls.is_unaligned({false, 0, 128 * 1024}));
  EXPECT_FALSE(cls.is_unaligned({false, 0, 10 * 1024}));  // small, not ">"
  EXPECT_TRUE(cls.is_random({false, 0, 19 * 1024}));
  EXPECT_FALSE(cls.is_random({false, 0, 20 * 1024}));
}

TEST(AccessClassifier, PercentagesSumCorrectly) {
  Trace t = {
      {false, 0, 65 * 1024},   // unaligned
      {false, 0, 64 * 1024},   // aligned
      {false, 0, 4 * 1024},    // random
      {false, 0, 128 * 1024},  // aligned
  };
  const auto s = AccessClassifier().classify(t);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_DOUBLE_EQ(s.unaligned_pct, 25.0);
  EXPECT_DOUBLE_EQ(s.random_pct, 25.0);
  EXPECT_DOUBLE_EQ(s.total_pct, 50.0);
}

TEST(AccessClassifier, EmptyTraceIsZero) {
  const auto s = AccessClassifier().classify({});
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.total_pct, 0.0);
}

// ------------------------------------------------------------- text IO ----

TEST(TraceIo, RoundTripsThroughText) {
  Trace t = {{false, 0, 1024}, {true, 65536, 4096}, {false, 999, 7}};
  std::stringstream ss;
  write_trace(ss, t);
  const Trace back = read_trace(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].write, t[i].write);
    EXPECT_EQ(back[i].offset, t[i].offset);
    EXPECT_EQ(back[i].size, t[i].size);
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\nR 0 1024\n");
  const Trace t = read_trace(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_FALSE(t[0].write);
}

TEST(TraceIo, RejectsMalformedLines) {
  std::stringstream bad_op("X 0 1024\n");
  EXPECT_THROW(read_trace(bad_op), std::runtime_error);
  std::stringstream bad_size("R 0 -5\n");
  EXPECT_THROW(read_trace(bad_size), std::runtime_error);
  std::stringstream missing("R 0\n");
  EXPECT_THROW(read_trace(missing), std::runtime_error);
}

// ---------------------------------------------------------- synthesizer ----

struct SynthCase {
  TraceProfile profile;
  double unaligned, random;  // Table I targets (%)
};

class SynthesizerMatchesTableI : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthesizerMatchesTableI, WithinTwoPercent) {
  const auto& tc = GetParam();
  TraceSynthesizer synth(tc.profile);
  const Trace t = synth.generate(20'000, 10LL << 30, /*seed=*/1);
  const auto s = AccessClassifier().classify(t);
  EXPECT_NEAR(s.unaligned_pct, tc.unaligned, 2.0) << tc.profile.name;
  EXPECT_NEAR(s.random_pct, tc.random, 2.0) << tc.profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, SynthesizerMatchesTableI,
    ::testing::Values(SynthCase{alegra_2744_profile(), 35.2, 7.3},
                      SynthCase{alegra_5832_profile(), 35.7, 6.9},
                      SynthCase{cth_profile(), 24.3, 30.1},
                      SynthCase{s3d_profile(), 62.8, 5.8}),
    [](const auto& tinfo) { return tinfo.param.profile.name.substr(0, 6) +
                                   std::to_string(tinfo.index); });

TEST(TraceSynthesizer, DeterministicForSeed) {
  TraceSynthesizer synth(cth_profile());
  const Trace a = synth.generate(500, 1 << 30, 7);
  const Trace b = synth.generate(500, 1 << 30, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(TraceSynthesizer, S3dRequestsAreLargest) {
  const Trace s3d = TraceSynthesizer(s3d_profile()).generate(5000, 1 << 30, 1);
  const Trace alg =
      TraceSynthesizer(alegra_2744_profile()).generate(5000, 1 << 30, 1);
  const auto cls = AccessClassifier();
  EXPECT_GT(cls.classify(s3d).avg_size, 1.5 * cls.classify(alg).avg_size);
}

TEST(TraceSynthesizer, StaysWithinFile) {
  const std::int64_t file = 64 << 20;
  const Trace t = TraceSynthesizer(cth_profile()).generate(2000, file, 3);
  for (const auto& r : t) {
    EXPECT_GE(r.offset, 0);
    EXPECT_GT(r.size, 0);
    EXPECT_LE(r.offset + r.size, file + r.size)  // offset==0 wrap allowance
        << "record outside file";
  }
}

// ------------------------------------------------------------ workloads ----

TEST(MpiIoTest, MovesExactConfiguredBytes) {
  cluster::Cluster c(small_cluster());
  MpiIoTestConfig cfg;
  cfg.nprocs = 8;
  cfg.request_size = 64 * 1024;
  cfg.file_bytes = 256 << 20;
  cfg.access_bytes = 16 << 20;
  cfg.write = true;
  const auto r = run_mpi_io_test(c, cfg);
  const std::int64_t per_iter = 8LL * 64 * 1024;
  const std::int64_t iters = (16 << 20) / per_iter;
  EXPECT_EQ(r.bytes, iters * per_iter);
  EXPECT_EQ(r.requests, static_cast<std::uint64_t>(iters * 8));
  EXPECT_GT(r.mbps(), 0.0);
  EXPECT_GE(r.elapsed, r.io_elapsed);
}

TEST(MpiIoTest, OffsetShiftProducesTwoServerRequests) {
  cluster::Cluster c(small_cluster());
  MpiIoTestConfig cfg;
  cfg.nprocs = 4;
  cfg.request_size = 64 * 1024;
  cfg.offset_shift = 1024;
  cfg.file_bytes = 64 << 20;
  cfg.access_bytes = 4 << 20;
  cfg.write = true;
  const auto r = run_mpi_io_test(c, cfg);
  EXPECT_GT(r.bytes, 0);
  // Every request spans two servers; all four servers see traffic.
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(c.server(s).bytes_served(), sim::Bytes::zero());
  }
}

TEST(MpiIoTest, BarrierModeRuns) {
  cluster::Cluster c(small_cluster());
  MpiIoTestConfig cfg;
  cfg.nprocs = 4;
  cfg.request_size = 64 * 1024;
  cfg.file_bytes = 64 << 20;
  cfg.access_bytes = 2 << 20;
  cfg.barrier_each_iteration = true;
  const auto r = run_mpi_io_test(c, cfg);
  EXPECT_GT(r.bytes, 0);
}

TEST(IorMpiIo, EachProcessSweepsItsChunk) {
  cluster::Cluster c(small_cluster());
  IorMpiIoConfig cfg;
  cfg.nprocs = 8;
  cfg.request_size = 33 * 1024;
  cfg.file_bytes = 64 << 20;
  cfg.access_bytes = 8 << 20;
  cfg.write = true;
  const auto r = run_ior_mpi_io(c, cfg);
  // Each process sweeps at least its share; the final request may overshoot
  // the sweep boundary by up to one request.
  const std::int64_t share = (8 << 20) / 8;
  EXPECT_GE(r.bytes, 8 * share);
  EXPECT_LT(r.bytes, 8 * (share + cfg.request_size));
  EXPECT_GT(r.mbps(), 0.0);
}

TEST(BtIo, RequestSizesMatchPaper) {
  BtIoConfig cfg;
  cfg.nprocs = 9;
  EXPECT_EQ(cfg.request_bytes(), 2160);
  cfg.nprocs = 100;
  EXPECT_EQ(cfg.request_bytes(), 640);
  cfg.nprocs = 16;
  EXPECT_EQ(cfg.request_bytes(), 1600);
  cfg.nprocs = 64;
  EXPECT_EQ(cfg.request_bytes(), 800);
}

TEST(BtIo, RunsAndSeparatesComputeFromIo) {
  cluster::Cluster c(small_cluster());
  BtIoConfig cfg;
  cfg.nprocs = 4;
  cfg.grid = 32;
  cfg.time_steps = 2;
  cfg.compute_ms_per_step = 10.0;
  const auto r = run_btio(c, cfg);
  EXPECT_GT(r.bytes, 0);
  EXPECT_GT(r.io_time, sim::SimTime::zero());
  EXPECT_NEAR(r.compute_time.to_millis(), 20.0, 1e-6);
  EXPECT_GT(r.elapsed, r.compute_time);
  // Every write is one cell row: grid/sqrt(4) * 40 bytes.
  EXPECT_EQ(r.bytes % cfg.request_bytes(), 0);
}

TEST(Replay, ComputesServiceTimes) {
  cluster::Cluster c(small_cluster());
  Trace t = TraceSynthesizer(alegra_2744_profile()).generate(100, 64 << 20, 5);
  ReplayConfig rc;
  rc.file_bytes = 64 << 20;
  const auto r = replay_trace(c, t, rc);
  EXPECT_EQ(r.requests, 100u);
  EXPECT_GT(r.avg_request_ms, 0.0);
  EXPECT_GT(r.bytes, 0);
}

TEST(Replay, IBridgeImprovesServiceTime) {
  Trace t = TraceSynthesizer(cth_profile()).generate(400, 64 << 20, 11);
  ReplayConfig rc;
  rc.file_bytes = 64 << 20;
  double stock_ms, ib_ms;
  {
    cluster::Cluster c(small_cluster(false));
    stock_ms = replay_trace(c, t, rc).avg_request_ms;
  }
  {
    cluster::Cluster c(small_cluster(true));
    ib_ms = replay_trace(c, t, rc).avg_request_ms;
  }
  EXPECT_LT(ib_ms, stock_ms) << "iBridge must reduce avg service time";
}

}  // namespace
}  // namespace ibridge::workloads
