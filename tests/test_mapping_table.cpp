// Tests for the iBridge mapping table: range coverage, trim/split,
// per-class LRU and accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "core/cache.hpp"
#include "core/mapping_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

namespace ibridge::core {
namespace {

constexpr fsim::FileId kF = 1;
constexpr fsim::FileId kG = 2;

Offset off(std::int64_t v) { return Offset{v}; }
Bytes len(std::int64_t v) { return Bytes{v}; }

CacheEntry entry(std::int64_t file_off, std::int64_t length,
                 std::int64_t log_off, bool dirty = false,
                 CacheClass c = CacheClass::kRegular, double ret = 1.0) {
  return CacheEntry{kF, off(file_off), len(length), off(log_off), dirty, c,
                    ret};
}

TEST(MappingTable, ExactCoverageHit) {
  MappingTable t;
  t.insert(entry(100, 50, 1000));
  auto cov = t.coverage(kF, off(100), len(50));
  ASSERT_EQ(cov.size(), 1u);
  EXPECT_EQ(cov[0].log_off, off(1000));
  EXPECT_EQ(cov[0].length, len(50));
}

TEST(MappingTable, InteriorSliceHit) {
  MappingTable t;
  t.insert(entry(100, 50, 1000));
  auto cov = t.coverage(kF, off(110), len(20));
  ASSERT_EQ(cov.size(), 1u);
  EXPECT_EQ(cov[0].log_off, off(1010));
  EXPECT_EQ(cov[0].length, len(20));
}

TEST(MappingTable, TiledCoverageAcrossEntries) {
  MappingTable t;
  t.insert(entry(0, 100, 5000));
  t.insert(entry(100, 100, 9000));
  auto cov = t.coverage(kF, off(50), len(100));
  ASSERT_EQ(cov.size(), 2u);
  EXPECT_EQ(cov[0].log_off, off(5050));
  EXPECT_EQ(cov[0].length, len(50));
  EXPECT_EQ(cov[1].log_off, off(9000));
  EXPECT_EQ(cov[1].length, len(50));
}

TEST(MappingTable, GapMeansMiss) {
  MappingTable t;
  t.insert(entry(0, 100, 5000));
  t.insert(entry(150, 100, 9000));
  EXPECT_TRUE(t.coverage(kF, off(50), len(150)).empty());
  EXPECT_TRUE(t.coverage(kF, off(240), len(20)).empty());
  EXPECT_TRUE(t.coverage(kG, off(0), len(10)).empty());
}

TEST(MappingTable, OverlappingFindsAllIntersections) {
  MappingTable t;
  const EntryId a = t.insert(entry(0, 100, 0));
  const EntryId b = t.insert(entry(200, 100, 200));
  const EntryId c = t.insert(entry(400, 100, 400));
  (void)c;
  auto ov = t.overlapping(kF, off(90), len(150));  // clips a and b
  ASSERT_EQ(ov.size(), 2u);
  EXPECT_EQ(ov[0], a);
  EXPECT_EQ(ov[1], b);
  EXPECT_TRUE(t.overlapping(kF, off(100), len(100)).empty());
  EXPECT_TRUE(t.overlapping(kF, off(999), len(1)).empty());
}

TEST(MappingTable, TrimLeftEdge) {
  MappingTable t;
  const EntryId id = t.insert(entry(100, 100, 1000, true));
  std::vector<std::pair<Offset, Bytes>> freed;
  t.trim(id, off(80), len(50), freed);  // cuts [100,130)
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], std::make_pair(off(1000), len(30)));
  auto cov = t.coverage(kF, off(130), len(70));
  ASSERT_EQ(cov.size(), 1u);
  EXPECT_EQ(cov[0].log_off, off(1030));
  EXPECT_TRUE(t.coverage(kF, off(100), len(40)).empty());
  EXPECT_EQ(t.dirty_bytes(), len(70));
}

TEST(MappingTable, TrimInteriorSplitsEntry) {
  MappingTable t;
  const EntryId id =
      t.insert(entry(0, 100, 500, true, CacheClass::kFragment, 2.5));
  std::vector<std::pair<Offset, Bytes>> freed;
  t.trim(id, off(40), len(20), freed);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].first, off(540));
  EXPECT_EQ(freed[0].second, len(20));
  EXPECT_EQ(t.entry_count(), 2u);
  auto left = t.coverage(kF, off(0), len(40));
  auto right = t.coverage(kF, off(60), len(40));
  ASSERT_EQ(left.size(), 1u);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_EQ(left[0].log_off, off(500));
  EXPECT_EQ(right[0].log_off, off(560));
  EXPECT_TRUE(t.coverage(kF, off(40), len(20)).empty());
  // Split pieces keep class, dirty flag and return value.
  EXPECT_EQ(t.bytes_cached(CacheClass::kFragment), len(80));
  EXPECT_EQ(t.dirty_bytes(), len(80));
  EXPECT_NEAR(t.return_sum(CacheClass::kFragment), 5.0, 1e-9);
}

TEST(MappingTable, TrimWholeEntryRemovesIt) {
  MappingTable t;
  const EntryId id = t.insert(entry(0, 100, 500));
  std::vector<std::pair<Offset, Bytes>> freed;
  t.trim(id, off(0), len(100), freed);
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_FALSE(t.contains(id));
}

TEST(MappingTable, TrimNoIntersectionIsNoop) {
  MappingTable t;
  const EntryId id = t.insert(entry(0, 100, 500));
  std::vector<std::pair<Offset, Bytes>> freed;
  t.trim(id, off(200), len(50), freed);
  EXPECT_TRUE(freed.empty());
  EXPECT_TRUE(t.contains(id));
}

TEST(MappingTable, LruEvictsOldestTouchedLast) {
  MappingTable t;
  const EntryId a = t.insert(entry(0, 10, 0));
  const EntryId b = t.insert(entry(100, 10, 100));
  const EntryId c = t.insert(entry(200, 10, 200));
  EXPECT_EQ(t.lru_victim(CacheClass::kRegular), a);
  t.touch(a);
  EXPECT_EQ(t.lru_victim(CacheClass::kRegular), b);
  t.erase(b);
  EXPECT_EQ(t.lru_victim(CacheClass::kRegular), c);
}

TEST(MappingTable, ClassesHaveIndependentLrus) {
  MappingTable t;
  const EntryId r = t.insert(entry(0, 10, 0, false, CacheClass::kRegular));
  const EntryId f =
      t.insert(entry(100, 10, 100, false, CacheClass::kFragment));
  EXPECT_EQ(t.lru_victim(CacheClass::kRegular), r);
  EXPECT_EQ(t.lru_victim(CacheClass::kFragment), f);
  EXPECT_EQ(t.entry_count(CacheClass::kRegular), 1u);
  EXPECT_EQ(t.entry_count(CacheClass::kFragment), 1u);
}

TEST(MappingTable, AccountingTracksBytesAndReturns) {
  MappingTable t;
  t.insert(entry(0, 30, 0, true, CacheClass::kFragment, 4.0));
  t.insert(entry(100, 70, 100, false, CacheClass::kRegular, 2.0));
  EXPECT_EQ(t.bytes_cached(), len(100));
  EXPECT_EQ(t.bytes_cached(CacheClass::kFragment), len(30));
  EXPECT_EQ(t.dirty_bytes(), len(30));
  EXPECT_DOUBLE_EQ(t.return_avg(CacheClass::kFragment), 4.0);
  EXPECT_DOUBLE_EQ(t.return_avg(CacheClass::kRegular), 2.0);
}

TEST(MappingTable, MarkCleanAndDirtyAdjustAccounting) {
  MappingTable t;
  const EntryId id = t.insert(entry(0, 50, 0, true));
  EXPECT_EQ(t.dirty_bytes(), len(50));
  t.mark_clean(id);
  EXPECT_EQ(t.dirty_bytes(), len(0));
  t.mark_clean(id);  // idempotent
  EXPECT_EQ(t.dirty_bytes(), len(0));
  t.mark_dirty(id);
  EXPECT_EQ(t.dirty_bytes(), len(50));
}

TEST(MappingTable, DirtyEntriesRespectsBudget) {
  MappingTable t;
  for (int i = 0; i < 10; ++i) {
    t.insert(entry(i * 100, 50, i * 100, true));
  }
  auto batch = t.dirty_entries(len(120));
  // 50-byte entries: budget 120 admits two (a third would exceed it).
  EXPECT_EQ(batch.size(), 2u);
  auto all = t.dirty_entries(len(1 << 30));
  EXPECT_EQ(all.size(), 10u);
}

TEST(MappingTable, DirtyEntriesSkipsClean) {
  MappingTable t;
  const EntryId a = t.insert(entry(0, 50, 0, true));
  t.insert(entry(100, 50, 100, false));
  t.mark_clean(a);
  EXPECT_TRUE(t.dirty_entries(len(1 << 30)).empty());
}

TEST(MappingTable, EntriesInLogRange) {
  MappingTable t;
  const EntryId a = t.insert(entry(0, 50, 0));
  const EntryId b = t.insert(entry(100, 50, 1000));
  const EntryId c = t.insert(entry(200, 50, 2000));
  auto in = t.entries_in_log_range(off(900), off(1100));
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], b);
  // Partial intersection from the left neighbour counts.
  auto in2 = t.entries_in_log_range(off(40), off(60));
  ASSERT_EQ(in2.size(), 1u);
  EXPECT_EQ(in2[0], a);
  EXPECT_TRUE(t.entries_in_log_range(off(3000), off(4000)).empty());
  (void)c;
}

TEST(MappingTable, EraseReturnsEntryAndCleansIndexes) {
  MappingTable t;
  const EntryId id = t.insert(entry(0, 50, 777, true));
  const CacheEntry e = t.erase(id);
  EXPECT_EQ(e.log_off, off(777));
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_EQ(t.dirty_bytes(), len(0));
  EXPECT_TRUE(t.coverage(kF, off(0), len(50)).empty());
  EXPECT_TRUE(t.entries_in_log_range(off(0), off(10'000)).empty());
  // Space is reusable immediately.
  t.insert(entry(0, 50, 777));
  EXPECT_EQ(t.entry_count(), 1u);
}

TEST(MappingTable, MultipleFilesAreIsolated) {
  MappingTable t;
  t.insert(entry(0, 50, 0));
  CacheEntry g = entry(0, 50, 100);
  g.file = kG;
  t.insert(g);
  EXPECT_EQ(t.coverage(kF, off(0), len(50))[0].log_off, off(0));
  EXPECT_EQ(t.coverage(kG, off(0), len(50))[0].log_off, off(100));
  EXPECT_EQ(t.overlapping(kG, off(0), len(10)).size(), 1u);
}

// ------------------------------------------------- persistence / recovery ----

TEST(MappingTable, SaveLoadRoundTripsEntriesAndLru) {
  MappingTable t;
  const EntryId a = t.insert(entry(0, 30, 0, true, CacheClass::kRegular, 4.25));
  t.insert(entry(100, 50, 64, false, CacheClass::kFragment, 0.1));
  CacheEntry g = entry(300, 20, 128, true, CacheClass::kRegular, 1.0 / 3.0);
  g.file = kG;
  t.insert(g);
  t.touch(a);  // reorder the regular LRU so persistence must preserve it

  std::stringstream ss;
  t.save(ss);
  MappingTable r;
  ASSERT_TRUE(r.load(ss));

  EXPECT_EQ(r.entry_count(), t.entry_count());
  EXPECT_EQ(r.bytes_cached(), t.bytes_cached());
  EXPECT_EQ(r.dirty_bytes(), t.dirty_bytes());
  for (int c = 0; c < kNumClasses; ++c) {
    const auto klass = static_cast<CacheClass>(c);
    EXPECT_DOUBLE_EQ(r.return_sum(klass), t.return_sum(klass));
    // LRU order survives: compare by (file, offset) since ids are
    // per-instance.
    const auto lt = t.lru_order(klass), lr = r.lru_order(klass);
    ASSERT_EQ(lt.size(), lr.size());
    for (std::size_t i = 0; i < lt.size(); ++i) {
      EXPECT_EQ(t.get(lt[i]).file, r.get(lr[i]).file);
      EXPECT_EQ(t.get(lt[i]).file_off, r.get(lr[i]).file_off);
    }
  }
  EXPECT_EQ(r.coverage(kF, off(100), len(50))[0].log_off, off(64));
  EXPECT_EQ(r.coverage(kG, off(300), len(20))[0].log_off, off(128));
}

TEST(MappingTable, LoadRejectsMalformedAndOverlappingInput) {
  {
    MappingTable r;
    std::stringstream ss("not-a-table 0\n");
    EXPECT_FALSE(r.load(ss));
  }
  {
    // Two entries overlapping in file space must be rejected: a recovered
    // table with ambiguous coverage would serve stale bytes.
    MappingTable t;
    t.insert(entry(0, 100, 0));
    std::stringstream ss;
    t.save(ss);
    std::string text = ss.str();
    text.replace(text.find(" 1\n"), 3, " 2\n");  // fix the header count
    text += "1 50 100 4096 0 0 0\n";             // overlaps [0,100)
    std::stringstream bad(text);
    MappingTable r;
    EXPECT_FALSE(r.load(bad));
  }
  {
    MappingTable r;
    std::stringstream ss("ibridge-mapping-table-v1 1\n1 0 -5 0 0 0 0\n");
    EXPECT_FALSE(r.load(ss));  // non-positive length
  }
}

// Crash/recovery differential: persist the table in the middle of a live
// cache workload, reload it into a fresh table, and require (a) logical
// equality with the source at the persist point (table_digest) and (b)
// agreement with the SSD log's geometry (verify_recovered_table) — a
// recovered entry pointing outside the log, or straddling a segment, would
// serve garbage after restart.
TEST(MappingTableRecovery, MidWorkloadPersistReopenAgreesWithLog) {
  sim::Simulator sim;
  auto hp = storage::paper_hdd();
  hp.anticipation_ms = 0;
  storage::HddModel disk(sim, hp);
  storage::SsdModel ssd(sim, storage::paper_ssd());
  fsim::LocalFileSystem disk_fs(sim, disk, fsim::DataMode::kVerify);
  fsim::LocalFileSystem ssd_fs(sim, ssd, fsim::DataMode::kVerify);

  IBridgeConfig cfg;
  cfg.enabled = true;
  cfg.ssd_cache_bytes = 256 << 10;
  cfg.log_segment_bytes = 32 << 10;
  cfg.admission = AdmissionPolicy::kAlwaysSmall;  // admit aggressively
  storage::SeekProfile profile({{1000, 0.5}, {100'000, 1.5}});
  IBridgeCache cache(sim, cfg, ServerId{0}, disk_fs, ssd_fs, profile);
  cache.start();
  const fsim::FileId file = disk_fs.create("df", 4 << 20);

  sim::Rng rng(0xc0ffee);
  auto op = [&](bool write, std::int64_t o, std::int64_t l) {
    std::vector<std::byte> buf(static_cast<std::size_t>(l), std::byte{7});
    CacheRequest r{write ? storage::IoDirection::kWrite
                         : storage::IoDirection::kRead,
                   file, off(o), len(l),
                   /*fragment=*/l < cfg.fragment_threshold, {}, 0};
    bool done = false;
    auto t = [](IBridgeCache& c, CacheRequest req, std::vector<std::byte>& d,
                bool w, bool& flag) -> sim::Task<> {
      if (w) {
        co_await c.serve(std::move(req), d, {});
      } else {
        co_await c.serve(std::move(req), {}, d);
      }
      flag = true;
    }(cache, std::move(r), buf, write, done);
    t.start();
    sim.run_while_pending([&] { return done; });
  };

  std::stringstream persisted;
  std::uint64_t digest_at_persist = 0;
  for (int i = 0; i < 40; ++i) {
    const std::int64_t l = rng.uniform(1, 24) << 10;
    op(rng.chance(0.6), rng.uniform(0, (4 << 20) - l), l);
    if (i == 19) {
      cache.table().save(persisted);
      digest_at_persist = check::table_digest(cache.table());
    }
  }
  ASSERT_GT(cache.table().entry_count(), 0u);

  MappingTable recovered;
  ASSERT_TRUE(recovered.load(persisted));
  EXPECT_EQ(check::table_digest(recovered), digest_at_persist);
  const auto violations = check::verify_recovered_table(
      recovered, cache.log().capacity(), cache.log().segment_bytes());
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  cache.stop();
  sim.run();
}

// ------------------------- reference-model equivalence oracle -------------
// A deliberately naive mapping table — flat vectors, O(n) scans, explicit
// LRU vectors — that serves as the executable spec the slab-based
// MappingTable must match op for op and id for id.  The randomized driver
// below runs both side by side through the full mutation surface.

struct RefTable {
  struct Rec {
    EntryId id;
    CacheEntry e;
  };
  std::vector<Rec> recs;                  // insertion order
  std::vector<EntryId> lru[kNumClasses];  // front = LRU, back = MRU
  EntryId next_id = 1;

  static int idx(CacheClass c) { return static_cast<int>(c); }

  Rec& rec(EntryId id) {
    auto it = std::find_if(recs.begin(), recs.end(),
                           [id](const Rec& r) { return r.id == id; });
    EXPECT_NE(it, recs.end());
    return *it;
  }

  EntryId insert(const CacheEntry& e) {
    const EntryId id = next_id++;
    recs.push_back({id, e});
    lru[idx(e.klass)].push_back(id);
    return id;
  }

  CacheEntry erase(EntryId id) {
    const CacheEntry e = rec(id).e;
    auto& l = lru[idx(e.klass)];
    l.erase(std::find(l.begin(), l.end(), id));
    recs.erase(std::find_if(recs.begin(), recs.end(),
                            [id](const Rec& r) { return r.id == id; }));
    return e;
  }

  void touch(EntryId id) {
    auto& l = lru[idx(rec(id).e.klass)];
    l.erase(std::find(l.begin(), l.end(), id));
    l.push_back(id);
  }

  void set_dirty(EntryId id, bool dirty) { rec(id).e.dirty = dirty; }

  std::vector<Rec> of_file_sorted(fsim::FileId f) const {
    std::vector<Rec> v;
    for (const Rec& r : recs) {
      if (r.e.file == f) v.push_back(r);
    }
    std::sort(v.begin(), v.end(), [](const Rec& a, const Rec& b) {
      return a.e.file_off < b.e.file_off;
    });
    return v;
  }

  std::vector<LogSlice> coverage(fsim::FileId f, Offset o, Bytes l) const {
    const auto v = of_file_sorted(f);
    std::vector<LogSlice> out;
    Offset pos = o;
    const Offset end = o + l;
    while (pos < end) {
      const Rec* cur = nullptr;
      for (const Rec& r : v) {
        if (r.e.file_off <= pos && pos < r.e.file_end()) {
          cur = &r;
          break;
        }
      }
      if (cur == nullptr) return {};  // gap
      const Bytes take = std::min(end, cur->e.file_end()) - pos;
      out.push_back(
          {cur->id, pos, cur->e.log_off + (pos - cur->e.file_off), take});
      pos += take;
    }
    return out;
  }

  std::vector<EntryId> overlapping(fsim::FileId f, Offset o, Bytes l) const {
    std::vector<EntryId> out;
    for (const Rec& r : of_file_sorted(f)) {
      if (r.e.file_off < o + l && r.e.file_end() > o) out.push_back(r.id);
    }
    return out;
  }

  void trim(EntryId id, Offset o, Bytes l,
            std::vector<std::pair<Offset, Bytes>>& freed) {
    const CacheEntry e = rec(id).e;
    const Offset cut_lo = std::max(o, e.file_off);
    const Offset cut_hi = std::min(o + l, e.file_end());
    if (cut_lo >= cut_hi) return;
    freed.emplace_back(e.log_off + (cut_lo - e.file_off), cut_hi - cut_lo);
    erase(id);
    if (cut_lo > e.file_off) {
      CacheEntry left = e;
      left.length = cut_lo - e.file_off;
      insert(left);
    }
    if (cut_hi < e.file_end()) {
      CacheEntry right = e;
      right.file_off = cut_hi;
      right.log_off = e.log_off + (cut_hi - e.file_off);
      right.length = e.file_end() - cut_hi;
      insert(right);
    }
  }

  std::vector<EntryId> dirty_entries(Bytes max_bytes) const {
    std::vector<Rec> v = recs;
    std::sort(v.begin(), v.end(), [](const Rec& a, const Rec& b) {
      if (a.e.file != b.e.file) return a.e.file < b.e.file;
      return a.e.file_off < b.e.file_off;
    });
    std::vector<EntryId> out;
    Bytes budget = max_bytes;
    for (const Rec& r : v) {
      if (!r.e.dirty) continue;
      if (budget - r.e.length < Bytes::zero() && !out.empty()) return out;
      out.push_back(r.id);
      budget -= r.e.length;
      if (budget <= Bytes::zero()) return out;
    }
    return out;
  }

  std::vector<EntryId> in_log_range(Offset lo, Offset hi) const {
    std::vector<Rec> v = recs;
    std::sort(v.begin(), v.end(), [](const Rec& a, const Rec& b) {
      return a.e.log_off < b.e.log_off;
    });
    std::vector<EntryId> out;
    for (const Rec& r : v) {
      if (r.e.log_off < hi && r.e.log_off + r.e.length > lo) {
        out.push_back(r.id);
      }
    }
    return out;
  }

  Bytes bytes_cached(CacheClass c) const {
    Bytes total;
    for (const Rec& r : recs) {
      if (r.e.klass == c) total += r.e.length;
    }
    return total;
  }
  Bytes dirty_bytes() const {
    Bytes total;
    for (const Rec& r : recs) {
      if (r.e.dirty) total += r.e.length;
    }
    return total;
  }
};

void expect_entry_eq(const CacheEntry& a, const CacheEntry& b) {
  EXPECT_EQ(a.file, b.file);
  EXPECT_EQ(a.file_off, b.file_off);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.log_off, b.log_off);
  EXPECT_EQ(a.dirty, b.dirty);
  EXPECT_EQ(a.klass, b.klass);
  EXPECT_EQ(a.ret_ms, b.ret_ms);
}

void expect_slices_eq(const std::vector<LogSlice>& a,
                      const std::vector<LogSlice>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entry, b[i].entry);
    EXPECT_EQ(a[i].file_off, b[i].file_off);
    EXPECT_EQ(a[i].log_off, b[i].log_off);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(MappingTableEquivalence, MatchesNaiveReferenceUnderRandomChurn) {
  MappingTable t;
  RefTable ref;
  sim::Rng rng(0x0a11e9e5);
  std::int64_t next_log = 0;
  constexpr std::int64_t kSlot = 1 << 10;
  const auto rand_file = [&] {
    return static_cast<fsim::FileId>(1 + rng.below(3));
  };
  const auto rand_range = [&](Offset& o, Bytes& l) {
    o = off(static_cast<std::int64_t>(rng.below(256)) * kSlot);
    l = len((1 + static_cast<std::int64_t>(rng.below(6))) * kSlot);
  };
  const auto rand_id = [&] {
    return ref.recs[static_cast<std::size_t>(rng.below(ref.recs.size()))].id;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.below(100);
    if (op < 35) {
      CacheEntry e;
      e.file = rand_file();
      rand_range(e.file_off, e.length);
      e.log_off = off(next_log);
      e.dirty = rng.chance(0.5);
      e.klass = rng.chance(0.3) ? CacheClass::kFragment : CacheClass::kRegular;
      e.ret_ms = 0.125 * static_cast<double>(rng.below(64));
      if (!ref.overlapping(e.file, e.file_off, e.length).empty()) continue;
      next_log += e.length.count();
      ASSERT_EQ(t.insert(e), ref.insert(e)) << "step " << step;
    } else if (op < 50) {
      const auto f = rand_file();
      Offset o;
      Bytes l;
      rand_range(o, l);
      const auto got = t.overlapping(f, o, l);
      ASSERT_EQ(got, ref.overlapping(f, o, l)) << "step " << step;
      std::vector<std::pair<Offset, Bytes>> freed_t, freed_r;
      for (const EntryId id : got) {
        t.trim(id, o, l, freed_t);
        ref.trim(id, o, l, freed_r);
      }
      ASSERT_EQ(freed_t, freed_r) << "step " << step;
    } else if (op < 60 && !ref.recs.empty()) {
      const EntryId id = rand_id();
      t.touch(id);
      ref.touch(id);
    } else if (op < 68 && !ref.recs.empty()) {
      const EntryId id = rand_id();
      const CacheEntry got = t.erase(id);
      expect_entry_eq(got, ref.erase(id));
    } else if (op < 76 && !ref.recs.empty()) {
      const EntryId id = rand_id();
      const bool dirty = rng.chance(0.5);
      if (dirty) {
        t.mark_dirty(id);
      } else {
        t.mark_clean(id);
      }
      ref.set_dirty(id, dirty);
    } else if (op < 84) {
      const auto f = rand_file();
      Offset o;
      Bytes l;
      rand_range(o, l);
      expect_slices_eq(t.coverage(f, o, l), ref.coverage(f, o, l));
    } else if (op < 90) {
      const Bytes budget =
          len((1 + static_cast<std::int64_t>(rng.below(12))) * kSlot);
      ASSERT_EQ(t.dirty_entries(budget), ref.dirty_entries(budget))
          << "step " << step;
    } else if (op < 96) {
      const Offset b = off(static_cast<std::int64_t>(rng.below(512)) * kSlot);
      const Offset e2 =
          b + len((1 + static_cast<std::int64_t>(rng.below(32))) * kSlot);
      ASSERT_EQ(t.entries_in_log_range(b, e2), ref.in_log_range(b, e2))
          << "step " << step;
    } else {
      for (const CacheClass c : {CacheClass::kRegular, CacheClass::kFragment}) {
        ASSERT_EQ(t.lru_order(c), ref.lru[RefTable::idx(c)])
            << "step " << step;
        ASSERT_EQ(t.bytes_cached(c), ref.bytes_cached(c)) << "step " << step;
        ASSERT_EQ(t.entry_count(c), ref.lru[RefTable::idx(c)].size());
      }
      ASSERT_EQ(t.dirty_bytes(), ref.dirty_bytes()) << "step " << step;
      ASSERT_EQ(t.entry_count(), ref.recs.size()) << "step " << step;
    }

    if (step % 500 == 499) {
      // Save/load round trip: ids are reassigned on load, so compare entry
      // *content* in per-class LRU order (recency must survive exactly),
      // plus the id-independent digest.
      std::stringstream ss;
      t.save(ss);
      MappingTable loaded;
      ASSERT_TRUE(loaded.load(ss)) << "step " << step;
      EXPECT_EQ(check::table_digest(loaded), check::table_digest(t));
      for (const CacheClass c :
           {CacheClass::kRegular, CacheClass::kFragment}) {
        const auto a = t.lru_order(c);
        const auto b = loaded.lru_order(c);
        ASSERT_EQ(a.size(), b.size()) << "step " << step;
        for (std::size_t i = 0; i < a.size(); ++i) {
          expect_entry_eq(loaded.get(b[i]), t.get(a[i]));
        }
      }
    }
  }
  ASSERT_GT(ref.recs.size(), 0u);
}

}  // namespace
}  // namespace ibridge::core
