// Compile-time contract of the unit-safe vocabulary types (sim/units.hpp).
//
// The point of Bytes/Offset/ServerId is that dimensionally nonsensical
// arithmetic does not compile.  gtest cannot observe a compile error, so the
// negative coverage lives in requires-expressions evaluated over template
// parameters: `can_add_v<Offset, Offset>` is false iff `Offset + Offset`
// fails to instantiate.  If somebody later adds the operator, the
// static_assert here turns red before any simulator code can misuse it.
#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

#include "sim/units.hpp"

namespace ibridge::sim {
namespace {

// ------------------------------------------------------------ negative ----
// Expression probes.  The template parameters make the operands dependent so
// the requires-expression SFINAEs instead of hard-erroring.

template <typename A, typename B>
constexpr bool can_add_v = requires(A a, B b) { a + b; };
template <typename A, typename B>
constexpr bool can_sub_v = requires(A a, B b) { a - b; };
template <typename A, typename B>
constexpr bool can_mul_v = requires(A a, B b) { a * b; };
template <typename A, typename B>
constexpr bool can_div_v = requires(A a, B b) { a / b; };
template <typename A, typename B>
constexpr bool can_mod_v = requires(A a, B b) { a % b; };
template <typename A, typename B>
constexpr bool can_eq_v = requires(A a, B b) { a == b; };
template <typename A, typename B>
constexpr bool can_plus_assign_v = requires(A a, B b) { a += b; };

// Raw integers do not silently become units, and units do not silently
// decay back to integers.
static_assert(!std::is_convertible_v<std::int64_t, Bytes>);
static_assert(!std::is_convertible_v<std::int64_t, Offset>);
static_assert(!std::is_convertible_v<int, ServerId>);
static_assert(!std::is_convertible_v<Bytes, std::int64_t>);
static_assert(!std::is_convertible_v<Offset, std::int64_t>);
static_assert(!std::is_convertible_v<ServerId, int>);
static_assert(std::is_constructible_v<Bytes, std::int64_t>);
static_assert(std::is_constructible_v<Offset, std::int64_t>);
static_assert(std::is_constructible_v<ServerId, int>);

// The three units are mutually incomparable and inconvertible.
static_assert(!std::is_convertible_v<Bytes, Offset>);
static_assert(!std::is_convertible_v<Offset, Bytes>);
static_assert(!std::is_constructible_v<Offset, Bytes>);
static_assert(!std::is_constructible_v<Bytes, Offset>);
static_assert(!can_eq_v<Bytes, Offset>);
static_assert(!can_eq_v<Bytes, ServerId>);
static_assert(!can_eq_v<Offset, ServerId>);
static_assert(!can_eq_v<Bytes, std::int64_t>);
static_assert(!can_eq_v<Offset, std::int64_t>);
static_assert(!can_eq_v<ServerId, int>);

// Positions are not lengths: two positions cannot be added, and a position
// cannot be scaled.
static_assert(!can_add_v<Offset, Offset>);
static_assert(!can_mul_v<Offset, std::int64_t>);
static_assert(!can_mul_v<std::int64_t, Offset>);
static_assert(!can_div_v<Offset, std::int64_t>);
static_assert(!can_mod_v<Offset, Offset>);
static_assert(!can_sub_v<Bytes, Offset>);
static_assert(!can_plus_assign_v<Offset, Offset>);
static_assert(!can_plus_assign_v<Bytes, Offset>);

// Raw integers cannot leak into unit arithmetic.
static_assert(!can_add_v<Bytes, std::int64_t>);
static_assert(!can_add_v<Offset, std::int64_t>);
static_assert(!can_sub_v<Offset, std::int64_t>);
static_assert(!can_mod_v<Offset, std::int64_t>);
static_assert(!can_plus_assign_v<Bytes, std::int64_t>);

// Server identities carry no arithmetic at all.
static_assert(!can_add_v<ServerId, ServerId>);
static_assert(!can_add_v<ServerId, int>);
static_assert(!can_sub_v<ServerId, ServerId>);
static_assert(!can_mul_v<ServerId, int>);

// ------------------------------------------------------------ positive ----
// The dimensional rules from the header comment, checked at compile time.

static_assert(std::is_same_v<decltype(Bytes{1} + Bytes{2}), Bytes>);
static_assert(std::is_same_v<decltype(Bytes{1} - Bytes{2}), Bytes>);
static_assert(std::is_same_v<decltype(-Bytes{1}), Bytes>);
static_assert(std::is_same_v<decltype(Bytes{2} * std::int64_t{3}), Bytes>);
static_assert(std::is_same_v<decltype(std::int64_t{3} * Bytes{2}), Bytes>);
static_assert(std::is_same_v<decltype(Bytes{6} / std::int64_t{2}), Bytes>);
static_assert(std::is_same_v<decltype(Bytes{6} / Bytes{2}), std::int64_t>);
static_assert(std::is_same_v<decltype(Bytes{6} % Bytes{4}), Bytes>);
static_assert(std::is_same_v<decltype(Offset{1} + Bytes{2}), Offset>);
static_assert(std::is_same_v<decltype(Bytes{2} + Offset{1}), Offset>);
static_assert(std::is_same_v<decltype(Offset{3} - Bytes{2}), Offset>);
static_assert(std::is_same_v<decltype(Offset{3} - Offset{1}), Bytes>);
static_assert(std::is_same_v<decltype(Offset{5} % Bytes{4}), Bytes>);
static_assert(std::is_same_v<decltype(Offset{5} / Bytes{4}), std::int64_t>);

// Everything is constexpr-friendly.
static_assert(Bytes{3} + Bytes{4} == Bytes{7});
static_assert(Offset{10} - Offset{4} == Bytes{6});
static_assert(Offset{70000} / Bytes{65536} == 1);
static_assert(Offset{70000} % Bytes{65536} == Bytes{4464});
static_assert(Bytes::zero() < Bytes{1});
static_assert(ServerId{2} < ServerId{3});

// ------------------------------------------------------------- runtime ----

TEST(Units, BytesArithmetic) {
  Bytes b{100};
  b += Bytes{50};
  EXPECT_EQ(b, Bytes{150});
  b -= Bytes{25};
  EXPECT_EQ(b, Bytes{125});
  EXPECT_EQ(b.count(), 125);
  EXPECT_EQ(-Bytes{5}, Bytes{-5});
  EXPECT_EQ(Bytes{7} * 3, Bytes{21});
  EXPECT_EQ(Bytes{21} / 3, Bytes{7});
  EXPECT_EQ(Bytes{21} / Bytes{7}, 3);
  EXPECT_EQ(Bytes{23} % Bytes{7}, Bytes{2});
}

TEST(Units, OffsetArithmetic) {
  Offset p{1000};
  p += Bytes{24};
  EXPECT_EQ(p, Offset{1024});
  p -= Bytes{24};
  EXPECT_EQ(p, Offset{1000});
  EXPECT_EQ(p.value(), 1000);
  EXPECT_EQ(Offset{1000} + Bytes{24}, Offset{1024});
  EXPECT_EQ(Bytes{24} + Offset{1000}, Offset{1024});
  EXPECT_EQ(Offset{1024} - Offset{1000}, Bytes{24});
}

TEST(Units, AlignmentIdentity) {
  // offset == unit * (offset / unit) + (offset % unit), the identity the
  // striping layout relies on.
  const Bytes unit{64 * 1024};
  for (std::int64_t raw : {0LL, 1LL, 65535LL, 65536LL, 65537LL, 1000000LL}) {
    const Offset p{raw};
    EXPECT_EQ(Offset::zero() + unit * (p / unit) + (p % unit), p) << raw;
  }
}

TEST(Units, Ordering) {
  EXPECT_LT(Bytes{1}, Bytes{2});
  EXPECT_LT(Offset{1}, Offset{2});
  EXPECT_LT(ServerId{1}, ServerId{2});
  EXPECT_EQ(ServerId{3}.index(), 3);
  EXPECT_EQ(Bytes::zero().count(), 0);
  EXPECT_EQ(Offset::zero().value(), 0);
}

}  // namespace
}  // namespace ibridge::sim
