// exp::WorkloadStream — streaming workload generation for scale campaigns.
//
// The load-bearing property is digest equivalence: the streamed sequence
// must be record-for-record identical to the materialized
// TraceSynthesizer::generate() output for the same (profile, unit,
// file_bytes, seed), and replay_stream() must reproduce replay_trace()'s
// simulated schedule exactly.  A fuzz-labeled case additionally pins the
// replay result across shard/worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/workload_stream.hpp"
#include "workloads/trace.hpp"

namespace ibridge::workloads {
namespace {

const std::int64_t kFile = 64LL << 20;

std::vector<TraceProfile> all_profiles() {
  return {alegra_2744_profile(), alegra_5832_profile(), cth_profile(),
          s3d_profile()};
}

TEST(WorkloadStream, StreamMatchesMaterializedTraceAcrossSeeds) {
  for (const auto& profile : all_profiles()) {
    TraceSynthesizer synth(profile);
    for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
      const Trace trace = synth.generate(500, kFile, seed);
      exp::WorkloadStream stream = synth.stream(kFile, seed);
      ASSERT_EQ(trace.size(), 500u);
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const exp::StreamRecord r = stream.next();
        EXPECT_EQ(r.write, trace[i].write)
            << profile.name << " seed=" << seed << " i=" << i;
        EXPECT_EQ(r.offset, trace[i].offset)
            << profile.name << " seed=" << seed << " i=" << i;
        EXPECT_EQ(r.size, trace[i].size)
            << profile.name << " seed=" << seed << " i=" << i;
      }
      EXPECT_EQ(stream.generated(), 500u);
    }
  }
}

TEST(WorkloadStream, StreamedClassificationMatchesTableTargets) {
  // The Table I statistics hold for the streamed path via the incremental
  // Accumulator — no materialized Trace anywhere in this test.
  AccessClassifier classifier;
  for (const auto& profile : all_profiles()) {
    exp::WorkloadStream stream =
        TraceSynthesizer(profile).stream(1LL << 30, 7);
    AccessClassifier::Accumulator acc;
    for (int i = 0; i < 20'000; ++i) {
      const exp::StreamRecord r = stream.next();
      classifier.add(acc, TraceRecord{r.write, r.offset, r.size});
    }
    const AccessStats s = classifier.finish(acc);
    EXPECT_NEAR(s.unaligned_pct, 100.0 * profile.unaligned_frac, 2.0)
        << profile.name;
    EXPECT_NEAR(s.random_pct, 100.0 * profile.random_frac, 2.0)
        << profile.name;
  }
}

TEST(WorkloadStream, AccumulatorMatchesBatchClassify) {
  TraceSynthesizer synth(cth_profile());
  const Trace trace = synth.generate(2'000, kFile, 99);
  AccessClassifier classifier;
  const AccessStats batch = classifier.classify(trace);
  AccessClassifier::Accumulator acc;
  for (const auto& r : trace) classifier.add(acc, r);
  const AccessStats inc = classifier.finish(acc);
  EXPECT_EQ(inc.requests, batch.requests);
  EXPECT_DOUBLE_EQ(inc.unaligned_pct, batch.unaligned_pct);
  EXPECT_DOUBLE_EQ(inc.random_pct, batch.random_pct);
  EXPECT_DOUBLE_EQ(inc.avg_size, batch.avg_size);
}

std::tuple<std::int64_t, std::int64_t, std::uint64_t> result_key(
    const WorkloadResult& r) {
  return {r.elapsed.ns(), r.bytes, r.requests};
}

TEST(WorkloadStream, ReplayStreamMatchesReplayTrace) {
  TraceSynthesizer synth(alegra_2744_profile());
  ReplayConfig rc;
  rc.file_bytes = kFile;
  const std::size_t n = 200;

  cluster::Cluster a(cluster::ClusterConfig::with_ibridge());
  const WorkloadResult via_trace =
      replay_trace(a, synth.generate(n, rc.file_bytes, 11), rc);

  cluster::Cluster b(cluster::ClusterConfig::with_ibridge());
  exp::WorkloadStream stream = synth.stream(rc.file_bytes, 11);
  const WorkloadResult via_stream = replay_stream(b, stream, n, rc);

  EXPECT_EQ(result_key(via_stream), result_key(via_trace));
  EXPECT_DOUBLE_EQ(via_stream.avg_request_ms, via_trace.avg_request_ms);
}

// ctest -L fuzz: the streamed replay must also be invariant under the
// shard/worker count — streaming changes when records are *produced*, and
// must not perturb the parallel core's schedule.
TEST(WorkloadStreamFuzz, ReplayInvariantUnderShardCount) {
  TraceSynthesizer synth(s3d_profile());
  ReplayConfig rc;
  rc.file_bytes = kFile;
  auto run = [&](int shards, std::uint64_t seed) {
    auto cc = cluster::ClusterConfig::with_ibridge();
    cc.shards = shards;
    cc.shard_group_size = 2;
    cc.adaptive_window_us = 30.0;
    cluster::Cluster c(cc);
    exp::WorkloadStream stream = synth.stream(rc.file_bytes, seed);
    return result_key(replay_stream(c, stream, 150, rc));
  };
  for (std::uint64_t seed : {3ULL, 0xfeedULL}) {
    const auto base = run(1, seed);
    EXPECT_EQ(run(2, seed), base) << "seed=" << seed;
    EXPECT_EQ(run(8, seed), base) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ibridge::workloads
