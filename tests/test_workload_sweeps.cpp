// Parameterized end-to-end sweeps: exact byte accounting and monotonic
// ordering properties of the workload drivers across configurations.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "exp/runner.hpp"
#include "workloads/ior_mpi_io.hpp"
#include "workloads/mpi_io_test.hpp"

namespace ibridge::workloads {
namespace {

cluster::ClusterConfig cfg_for(bool ibridge, int servers) {
  auto cc = ibridge ? cluster::ClusterConfig::with_ibridge()
                    : cluster::ClusterConfig::stock();
  cc.data_servers = servers;
  return cc;
}

// (procs, request KB, write, ibridge, servers)
using SweepParam = std::tuple<int, int, bool, bool, int>;

class MpiIoTestSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MpiIoTestSweep, ExactAccountingAndSaneTiming) {
  const auto [procs, kb, write, ibridge, servers] = GetParam();
  cluster::Cluster c(cfg_for(ibridge, servers));
  MpiIoTestConfig cfg;
  cfg.nprocs = procs;
  cfg.request_size = static_cast<std::int64_t>(kb) * 1024;
  cfg.file_bytes = 1 << 30;
  cfg.access_bytes = 24 << 20;
  cfg.write = write;
  const auto r = run_mpi_io_test(c, cfg);

  // Exact byte/request accounting.
  const std::int64_t per_iter =
      static_cast<std::int64_t>(procs) * cfg.request_size;
  const std::int64_t iters = std::max<std::int64_t>(
      1, cfg.access_bytes / per_iter);
  EXPECT_EQ(r.bytes, iters * per_iter);
  EXPECT_EQ(r.requests, static_cast<std::uint64_t>(iters * procs));
  // Server-side totals agree with the client's view.
  EXPECT_EQ(c.total_bytes_served().count(), r.bytes);

  // Timing sanity: positive, and total >= access phase.
  EXPECT_GT(r.io_elapsed, sim::SimTime::zero());
  EXPECT_GE(r.elapsed, r.io_elapsed);
  EXPECT_GT(r.avg_request_ms, 0.0);

  // Physical ceiling: cannot beat the aggregate sequential device rate by
  // more than the SSD contribution allows.
  const double ceiling = servers * 170.0;  // HDD+SSD peak, generous
  EXPECT_LT(r.mbps(), ceiling);

  if (ibridge) {
    // No dirty data may survive the driver's drain.
    for (int s = 0; s < c.server_count(); ++s) {
      EXPECT_EQ(c.server(s).cache()->table().dirty_bytes(),
                sim::Bytes::zero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpiIoTestSweep,
    ::testing::Combine(::testing::Values(4, 16),          // procs
                       ::testing::Values(33, 64, 65),     // request KB
                       ::testing::Bool(),                 // write
                       ::testing::Bool(),                 // ibridge
                       ::testing::Values(2, 8)),          // servers
    [](const auto& tinfo) {
      // Built stepwise: the one-expression "p" + to_string(...) form trips
      // GCC 12's -Werror=restrict false positive at -O3.
      std::string name = "p";
      name += std::to_string(std::get<0>(tinfo.param));
      name += "_kb";
      name += std::to_string(std::get<1>(tinfo.param));
      name += std::get<2>(tinfo.param) ? "_wr" : "_rd";
      name += std::get<3>(tinfo.param) ? "_ib" : "_stock";
      name += "_s";
      name += std::to_string(std::get<4>(tinfo.param));
      return name;
    });

// Ordering property: on the stock system, unaligned (65 KB) must never
// beat aligned (64 KB) for the same process count and direction.
class AlignmentOrdering
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(AlignmentOrdering, UnalignedNeverBeatsAligned) {
  const auto [procs, write] = GetParam();
  auto run = [&](std::int64_t req) {
    cluster::Cluster c(cluster::ClusterConfig::stock());
    MpiIoTestConfig cfg;
    cfg.nprocs = procs;
    cfg.request_size = req;
    cfg.file_bytes = 1 << 30;
    cfg.access_bytes = 32 << 20;
    cfg.write = write;
    return run_mpi_io_test(c, cfg).mbps();
  };
  EXPECT_GT(run(64 * 1024), run(65 * 1024))
      << procs << " procs, " << (write ? "write" : "read");
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlignmentOrdering,
                         ::testing::Combine(::testing::Values(8, 32),
                                            ::testing::Bool()),
                         [](const auto& tinfo) {
                           // Stepwise for the same GCC 12 -Werror=restrict
                           // false positive as above.
                           std::string name = "p";
                           name +=
                               std::to_string(std::get<0>(tinfo.param));
                           name += std::get<1>(tinfo.param) ? "_wr" : "_rd";
                           return name;
                         });

// ior-mpi-io: per-chunk confinement — no process may touch another's chunk.
TEST(IorSweep, ChunksAreDisjoint) {
  cluster::Cluster c(cfg_for(false, 4));
  IorMpiIoConfig cfg;
  cfg.nprocs = 4;
  cfg.request_size = 64 * 1024;
  cfg.file_bytes = 32 << 20;
  cfg.write = true;
  const auto r = run_ior_mpi_io(c, cfg);
  // Full sweep: every byte of the file written exactly once.
  EXPECT_EQ(r.bytes, cfg.file_bytes);
  EXPECT_EQ(c.total_bytes_served().count(), cfg.file_bytes);
}

TEST(IorSweep, ThroughputOrderingSmallVsLargeRequests) {
  auto run = [&](std::int64_t req) {
    cluster::Cluster c(cfg_for(false, 8));
    IorMpiIoConfig cfg;
    cfg.nprocs = 16;
    cfg.request_size = req;
    cfg.file_bytes = 1 << 30;
    cfg.access_bytes = 32 << 20;
    cfg.write = true;
    return run_ior_mpi_io(c, cfg).mbps();
  };
  // Larger requests amortize positioning: 129 KB must beat 33 KB.
  EXPECT_GT(run(129 * 1024), run(33 * 1024));
}

// Sweep cells are independent simulations, so fanning them out over the
// exp::Runner pool must reproduce the serial results field-for-field.
TEST(ParallelSweep, RunnerMatchesSerialFieldForField) {
  // (procs, request KB, write, ibridge)
  const std::vector<std::tuple<int, int, bool, bool>> cells = {
      {4, 64, false, false}, {4, 65, false, true},  {16, 33, true, false},
      {16, 65, true, true},  {8, 64, true, false},  {8, 65, false, false},
  };
  auto run_cell = [&](int i) {
    const auto [procs, kb, write, ib] = cells[static_cast<std::size_t>(i)];
    cluster::Cluster c(cfg_for(ib, 4));
    MpiIoTestConfig cfg;
    cfg.nprocs = procs;
    cfg.request_size = static_cast<std::int64_t>(kb) * 1024;
    cfg.file_bytes = 1 << 30;
    cfg.access_bytes = 16 << 20;
    cfg.write = write;
    return run_mpi_io_test(c, cfg);
  };
  exp::Runner serial(1), pool(4);
  const auto n = static_cast<int>(cells.size());
  const auto ser = serial.map<WorkloadResult>(n, run_cell);
  const auto par = pool.map<WorkloadResult>(n, run_cell);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(ser[i].elapsed, par[i].elapsed) << "cell " << i;
    EXPECT_EQ(ser[i].io_elapsed, par[i].io_elapsed) << "cell " << i;
    EXPECT_EQ(ser[i].bytes, par[i].bytes) << "cell " << i;
    EXPECT_EQ(ser[i].requests, par[i].requests) << "cell " << i;
    EXPECT_EQ(ser[i].avg_request_ms, par[i].avg_request_ms) << "cell " << i;
  }
}

}  // namespace
}  // namespace ibridge::workloads
