// Tests for dynamic SSD-space partitioning between request classes.
#include <gtest/gtest.h>

#include "core/mapping_table.hpp"
#include "core/partition.hpp"

namespace ibridge::core {
namespace {

IBridgeConfig dynamic_cfg() {
  IBridgeConfig c;
  c.partition_mode = PartitionMode::kDynamic;
  return c;
}

void add(MappingTable& t, CacheClass c, std::int64_t off, std::int64_t len,
         double ret) {
  CacheEntry e;
  e.file = 1;
  e.file_off = Offset{off};
  e.length = Bytes{len};
  e.log_off = Offset{off};
  e.klass = c;
  e.ret_ms = ret;
  t.insert(e);
}

TEST(PartitionController, EvenSplitWithNoSignal) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{500});
  EXPECT_EQ(p.quota(t, CacheClass::kRegular), Bytes{500});
}

TEST(PartitionController, QuotasAlwaysSumToCapacity) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  add(t, CacheClass::kFragment, 0, 10, 3.0);
  add(t, CacheClass::kRegular, 100, 10, 1.0);
  EXPECT_EQ(p.quota(t, CacheClass::kFragment) +
                p.quota(t, CacheClass::kRegular),
            Bytes{1000});
}

TEST(PartitionController, ProportionalToAverageReturns) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  add(t, CacheClass::kFragment, 0, 10, 3.0);
  add(t, CacheClass::kRegular, 100, 10, 1.0);
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{750});
  EXPECT_EQ(p.quota(t, CacheClass::kRegular), Bytes{250});
}

TEST(PartitionController, AverageNotSumDrivesTheSplit) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  // Regular class has many low-return items: sum larger, average smaller.
  add(t, CacheClass::kFragment, 0, 10, 4.0);
  for (int i = 0; i < 8; ++i) {
    add(t, CacheClass::kRegular, 100 + i * 20, 10, 1.0);
  }
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{800});
}

TEST(PartitionController, FloorProtectsEmptyClass) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  add(t, CacheClass::kRegular, 0, 10, 5.0);
  // Fragments have no cached items (average 0), but keep the 5% floor.
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{50});
  EXPECT_EQ(p.quota(t, CacheClass::kRegular), Bytes{950});
}

TEST(PartitionController, StaticOneToOne) {
  IBridgeConfig c;
  c.partition_mode = PartitionMode::kStatic;
  c.static_fragment_share = 0.5;
  PartitionController p(c, Bytes{1000});
  MappingTable t;
  add(t, CacheClass::kFragment, 0, 10, 100.0);  // returns must be ignored
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{500});
}

TEST(PartitionController, StaticOneToTwo) {
  IBridgeConfig c;
  c.partition_mode = PartitionMode::kStatic;
  c.static_fragment_share = 2.0 / 3.0;
  PartitionController p(c, Bytes{900});
  MappingTable t;
  EXPECT_EQ(p.quota(t, CacheClass::kFragment), Bytes{600});
  EXPECT_EQ(p.quota(t, CacheClass::kRegular), Bytes{300});
}

TEST(PartitionController, OverQuotaDetection) {
  PartitionController p(dynamic_cfg(), Bytes{1000});
  MappingTable t;
  add(t, CacheClass::kFragment, 0, 490, 1.0);
  add(t, CacheClass::kRegular, 1000, 490, 1.0);
  EXPECT_FALSE(p.over_quota(t, CacheClass::kFragment, Bytes{10}));
  EXPECT_TRUE(p.over_quota(t, CacheClass::kFragment, Bytes{11}));
}

}  // namespace
}  // namespace ibridge::core
