// Tests for the segmented SSD log allocator.
#include <gtest/gtest.h>

#include "core/ssd_log.hpp"

namespace ibridge::core {
namespace {

TEST(SsdLog, AppendsSequentiallyWithinSegment) {
  SsdLog log(1000, 100);
  EXPECT_EQ(log.append(30), 0);
  EXPECT_EQ(log.append(30), 30);
  EXPECT_EQ(log.append(30), 60);
  EXPECT_EQ(log.live_bytes(), 90);
}

TEST(SsdLog, SealsSegmentWhenAllocationDoesNotFit) {
  SsdLog log(1000, 100);
  EXPECT_EQ(log.append(60), 0);
  // 60 more does not fit in segment 0 (head 60) -> new segment at 100.
  EXPECT_EQ(log.append(60), 100);
}

TEST(SsdLog, ReleaseFreesSegmentWhenFullyDead) {
  SsdLog log(300, 100);
  const auto a = log.append(100);  // fills segment 0
  const auto b = log.append(100);  // fills segment 1
  const auto c = log.append(100);  // fills segment 2
  (void)b;
  (void)c;
  EXPECT_EQ(log.free_segment_count(), 0);
  EXPECT_FALSE(log.has_room(10));
  log.release(a, 100);
  EXPECT_EQ(log.free_segment_count(), 1);
  EXPECT_TRUE(log.has_room(10));
  EXPECT_EQ(log.append(10), 0);  // reuses the freed segment
}

TEST(SsdLog, PartialReleaseKeepsSegmentLive) {
  SsdLog log(300, 100);
  const auto a = log.append(100);
  log.append(100);
  log.append(100);
  log.release(a, 40);
  EXPECT_EQ(log.free_segment_count(), 0);
  log.release(a + 40, 60);
  EXPECT_EQ(log.free_segment_count(), 1);
}

TEST(SsdLog, VictimIsLeastLiveNonActiveSegment) {
  SsdLog log(300, 100);
  const auto a = log.append(100);  // segment 0: live 100
  const auto b = log.append(100);  // segment 1: live 100
  log.append(10);                  // segment 2 active
  log.release(a, 80);              // segment 0: live 20
  log.release(b, 50);              // segment 1: live 50
  EXPECT_EQ(log.victim_segment(), 0);
  auto [begin, end] = log.segment_range(0);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 100);
}

TEST(SsdLog, VictimIgnoresActiveAndEmptySegments) {
  SsdLog log(300, 100);
  log.append(10);  // segment 0 active, live 10
  EXPECT_EQ(log.victim_segment(), -1);
}

TEST(SsdLog, HasRoomConsidersActiveHeadAndFreeList) {
  SsdLog log(200, 100);
  EXPECT_TRUE(log.has_room(100));
  log.append(90);
  EXPECT_TRUE(log.has_room(50));   // new segment available
  log.append(90);                  // takes segment 1
  EXPECT_TRUE(log.has_room(10));   // head room in segment 1
  EXPECT_FALSE(log.has_room(50));  // neither head nor free segment
}

TEST(SsdLog, CapacityAndSegmentBytes) {
  SsdLog log(1024, 256);
  EXPECT_EQ(log.capacity(), 1024);
  EXPECT_EQ(log.segment_bytes(), 256);
}

TEST(SsdLog, WastedTailIsReclaimedWithSegment) {
  SsdLog log(200, 100);
  const auto a = log.append(60);   // segment 0, head 60
  EXPECT_EQ(log.append(60), 100);  // sealed with 40 bytes wasted
  log.release(a, 60);              // segment 0 fully dead again
  EXPECT_EQ(log.append(90), 0);    // whole segment reusable
}

TEST(SsdLog, ManyCyclesDoNotLeakSpace) {
  SsdLog log(1000, 100);
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<std::pair<std::int64_t, std::int64_t>> allocs;
    for (int i = 0; i < 9; ++i) {
      const auto off = log.append(95);
      ASSERT_GE(off, 0) << "cycle " << cycle << " alloc " << i;
      allocs.emplace_back(off, 95);
    }
    for (auto [off, len] : allocs) log.release(off, len);
  }
  EXPECT_EQ(log.live_bytes(), 0);
  EXPECT_GE(log.free_segment_count(), 9);
}

}  // namespace
}  // namespace ibridge::core
