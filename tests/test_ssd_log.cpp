// Tests for the segmented SSD log allocator.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/ssd_log.hpp"
#include "sim/rng.hpp"

namespace ibridge::core {
namespace {

using sim::Bytes;
using sim::Offset;

Bytes len(std::int64_t v) { return Bytes{v}; }
Offset off(std::int64_t v) { return Offset{v}; }

TEST(SsdLog, AppendsSequentiallyWithinSegment) {
  SsdLog log(len(1000), len(100));
  EXPECT_EQ(log.append(len(30)), off(0));
  EXPECT_EQ(log.append(len(30)), off(30));
  EXPECT_EQ(log.append(len(30)), off(60));
  EXPECT_EQ(log.live_bytes(), len(90));
}

TEST(SsdLog, SealsSegmentWhenAllocationDoesNotFit) {
  SsdLog log(len(1000), len(100));
  EXPECT_EQ(log.append(len(60)), off(0));
  // 60 more does not fit in segment 0 (head 60) -> new segment at 100.
  EXPECT_EQ(log.append(len(60)), off(100));
}

TEST(SsdLog, ReleaseFreesSegmentWhenFullyDead) {
  SsdLog log(len(300), len(100));
  const auto a = log.append(len(100));  // fills segment 0
  const auto b = log.append(len(100));  // fills segment 1
  const auto c = log.append(len(100));  // fills segment 2
  ASSERT_TRUE(a.has_value());
  (void)b;
  (void)c;
  EXPECT_EQ(log.free_segment_count(), 0);
  EXPECT_FALSE(log.has_room(len(10)));
  log.release(*a, len(100));
  EXPECT_EQ(log.free_segment_count(), 1);
  EXPECT_TRUE(log.has_room(len(10)));
  EXPECT_EQ(log.append(len(10)), off(0));  // reuses the freed segment
}

TEST(SsdLog, PartialReleaseKeepsSegmentLive) {
  SsdLog log(len(300), len(100));
  const auto a = log.append(len(100));
  ASSERT_TRUE(a.has_value());
  log.append(len(100));
  log.append(len(100));
  log.release(*a, len(40));
  EXPECT_EQ(log.free_segment_count(), 0);
  log.release(*a + len(40), len(60));
  EXPECT_EQ(log.free_segment_count(), 1);
}

TEST(SsdLog, VictimIsLeastLiveNonActiveSegment) {
  SsdLog log(len(300), len(100));
  const auto a = log.append(len(100));  // segment 0: live 100
  const auto b = log.append(len(100));  // segment 1: live 100
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  log.append(len(10));      // segment 2 active
  log.release(*a, len(80));  // segment 0: live 20
  log.release(*b, len(50));  // segment 1: live 50
  EXPECT_EQ(log.victim_segment(), 0);
  auto [begin, end] = log.segment_range(0);
  EXPECT_EQ(begin, off(0));
  EXPECT_EQ(end, off(100));
}

TEST(SsdLog, VictimIgnoresActiveAndEmptySegments) {
  SsdLog log(len(300), len(100));
  log.append(len(10));  // segment 0 active, live 10
  EXPECT_EQ(log.victim_segment(), -1);
}

TEST(SsdLog, HasRoomConsidersActiveHeadAndFreeList) {
  SsdLog log(len(200), len(100));
  EXPECT_TRUE(log.has_room(len(100)));
  log.append(len(90));
  EXPECT_TRUE(log.has_room(len(50)));   // new segment available
  log.append(len(90));                  // takes segment 1
  EXPECT_TRUE(log.has_room(len(10)));   // head room in segment 1
  EXPECT_FALSE(log.has_room(len(50)));  // neither head nor free segment
}

TEST(SsdLog, CapacityAndSegmentBytes) {
  SsdLog log(len(1024), len(256));
  EXPECT_EQ(log.capacity(), len(1024));
  EXPECT_EQ(log.segment_bytes(), len(256));
}

TEST(SsdLog, WastedTailIsReclaimedWithSegment) {
  SsdLog log(len(200), len(100));
  const auto a = log.append(len(60));        // segment 0, head 60
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(log.append(len(60)), off(100));  // sealed with 40 bytes wasted
  log.release(*a, len(60));                  // segment 0 fully dead again
  EXPECT_EQ(log.append(len(90)), off(0));    // whole segment reusable
}

TEST(SsdLog, ManyCyclesDoNotLeakSpace) {
  SsdLog log(len(1000), len(100));
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<std::pair<Offset, Bytes>> allocs;
    for (int i = 0; i < 9; ++i) {
      const auto o = log.append(len(95));
      ASSERT_TRUE(o.has_value()) << "cycle " << cycle << " alloc " << i;
      allocs.emplace_back(*o, len(95));
    }
    for (auto [o, l] : allocs) log.release(o, l);
  }
  EXPECT_EQ(log.live_bytes(), len(0));
  EXPECT_GE(log.free_segment_count(), 9);
}

// The live-bytes-ordered victim index must agree with a brute-force scan
// (least live data wins, active segment excluded, lowest index on ties) at
// every point of a randomized append/release history.
TEST(SsdLog, VictimIndexMatchesBruteForceUnderChurn) {
  SsdLog log(len(64 * 1024), len(1024));
  sim::Rng rng(0x5109c1ea);
  std::vector<std::pair<Offset, Bytes>> live;

  const auto brute_victim = [&] {
    int best = -1;
    Bytes best_live = log.segment_bytes() + Bytes{1};
    for (int s = 0; s < log.segment_count(); ++s) {
      if (s == log.active_segment()) continue;
      const Bytes l = log.segment_live(s);
      if (l > Bytes::zero() && l < best_live) {
        best = s;
        best_live = l;
      }
    }
    return best;
  };

  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const Bytes n = len((1 + static_cast<std::int64_t>(rng.below(16))) * 64);
      const auto o = log.append(n);
      if (o.has_value()) live.emplace_back(*o, n);
    } else {
      const auto i = static_cast<std::size_t>(rng.below(live.size()));
      log.release(live[i].first, live[i].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(log.victim_segment(), brute_victim()) << "step " << step;
  }
}

}  // namespace
}  // namespace ibridge::core
