// Tests for the striping layout: decomposition correctness, coverage
// properties, fragment arithmetic, and share accounting.
#include <gtest/gtest.h>

#include <tuple>

#include "pvfs/layout.hpp"

namespace ibridge::pvfs {
namespace {

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kUnitRaw = 64 * kKiB;
constexpr Bytes kUnit{kUnitRaw};

Offset off(std::int64_t v) { return Offset{v}; }
Bytes len(std::int64_t v) { return Bytes{v}; }

TEST(StripingLayout, ServerOfRoundRobins) {
  StripingLayout l(4, kUnit);
  EXPECT_EQ(l.server_of(off(0)), ServerId{0});
  EXPECT_EQ(l.server_of(off(kUnitRaw - 1)), ServerId{0});
  EXPECT_EQ(l.server_of(off(kUnitRaw)), ServerId{1});
  EXPECT_EQ(l.server_of(off(4 * kUnitRaw)), ServerId{0});
  EXPECT_EQ(l.server_of(off(5 * kUnitRaw + 3)), ServerId{1});
}

TEST(StripingLayout, ServerOffsetPacksStripes) {
  StripingLayout l(4, kUnit);
  // Stripe 5 (server 1) is server 1's second stripe -> offset unit + delta.
  EXPECT_EQ(l.server_offset_of(off(5 * kUnitRaw + 100)),
            off(kUnitRaw + 100));
  EXPECT_EQ(l.server_offset_of(off(0)), off(0));
  EXPECT_EQ(l.server_offset_of(off(4 * kUnitRaw)), off(kUnitRaw));
}

TEST(StripingLayout, AlignedPredicate) {
  StripingLayout l(8, kUnit);
  EXPECT_TRUE(l.aligned(off(0), kUnit));
  EXPECT_TRUE(l.aligned(off(3 * kUnitRaw), len(2 * kUnitRaw)));
  EXPECT_FALSE(l.aligned(off(1), kUnit));
  EXPECT_FALSE(l.aligned(off(0), len(kUnitRaw + 1)));
}

TEST(StripingLayout, AlignedRequestIsOnePiece) {
  StripingLayout l(8, kUnit);
  auto v = l.decompose(off(2 * kUnitRaw), kUnit);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].server, ServerId{2});
  EXPECT_EQ(v[0].server_offset, off(0));
  EXPECT_EQ(v[0].length, kUnit);
}

TEST(StripingLayout, UnalignedRequestSplitsAtBoundaries) {
  StripingLayout l(8, kUnit);
  // 65 KB at offset 63 KB: 1 KB on server 0, 64 KB on server 1.
  auto v = l.decompose(off(63 * kKiB), len(65 * kKiB));
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].server, ServerId{0});
  EXPECT_EQ(v[0].length, len(1 * kKiB));
  EXPECT_EQ(v[1].server, ServerId{1});
  EXPECT_EQ(v[1].length, len(64 * kKiB));
  EXPECT_EQ(v[1].server_offset, off(0));
}

TEST(StripingLayout, ShiftedRequestTouchesTwoServers) {
  StripingLayout l(8, kUnit);
  // Pattern III: 64 KB at +1 KB -> 63 KB + 1 KB on adjacent servers.
  auto v = l.decompose(off(kKiB), kUnit);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].length, len(63 * kKiB));
  EXPECT_EQ(v[1].length, len(1 * kKiB));
  EXPECT_EQ(ServerId{(v[0].server.index() + 1) % 8}, v[1].server);
}

TEST(StripingLayout, SingleServerCoalescesStripes) {
  StripingLayout l(1, kUnit);
  auto v = l.decompose(off(10 * kKiB), len(5 * kUnitRaw));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].length, len(5 * kUnitRaw));
  EXPECT_EQ(v[0].server_offset, off(10 * kKiB));
}

TEST(StripingLayout, WrapAroundHitsSameServerTwice) {
  StripingLayout l(2, kUnit);
  // 3 units starting at server 0: pieces on servers 0,1,0.
  auto v = l.decompose(off(0), len(3 * kUnitRaw));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].server, ServerId{0});
  EXPECT_EQ(v[1].server, ServerId{1});
  EXPECT_EQ(v[2].server, ServerId{0});
  EXPECT_EQ(v[2].server_offset, off(kUnitRaw));

  auto merged = l.decompose_per_server(off(0), len(3 * kUnitRaw));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].server, ServerId{0});
  EXPECT_EQ(merged[0].length, len(2 * kUnitRaw));
  EXPECT_EQ(merged[1].length, kUnit);
}

TEST(StripingLayout, ServerShareSumsToFileSize) {
  for (int servers : {1, 3, 8}) {
    StripingLayout l(servers, kUnit);
    for (std::int64_t size :
         {kUnitRaw / 2, kUnitRaw, 7 * kUnitRaw + 123, 100 * kUnitRaw}) {
      Bytes sum = Bytes::zero();
      for (int s = 0; s < servers; ++s) {
        sum += l.server_share(len(size), ServerId{s});
      }
      EXPECT_EQ(sum, len(size)) << servers << " servers, size " << size;
    }
  }
}

TEST(StripingLayout, ServerShareMatchesDecomposedBytes) {
  StripingLayout l(4, kUnit);
  const std::int64_t size = 11 * kUnitRaw + 999;
  auto pieces = l.decompose(off(0), len(size));
  Bytes per_server[4] = {Bytes::zero(), Bytes::zero(), Bytes::zero(),
                         Bytes::zero()};
  for (const auto& p : pieces) per_server[p.server.index()] += p.length;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(per_server[s], l.server_share(len(size), ServerId{s}))
        << "server " << s;
  }
}

// Property sweep: decomposition must exactly tile the requested range with
// boundary-respecting pieces, for many (offset, size, servers) combinations.
class DecomposeProperty
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(DecomposeProperty, PiecesTileTheRange) {
  const auto [servers, offset, size] = GetParam();
  StripingLayout l(servers, kUnit);
  auto v = l.decompose(off(offset), len(size));
  ASSERT_FALSE(v.empty());

  Offset pos = off(offset);
  for (const auto& p : v) {
    EXPECT_EQ(p.logical_offset, pos);
    EXPECT_GT(p.length, Bytes::zero());
    EXPECT_LE(p.length, (servers == 1 ? 1'000'000 : 1) * kUnit);
    EXPECT_EQ(p.server, l.server_of(p.logical_offset));
    EXPECT_EQ(p.server_offset, l.server_offset_of(p.logical_offset));
    if (servers > 1) {
      // A piece never crosses a striping-unit boundary.
      EXPECT_EQ(p.logical_offset / kUnit,
                (p.logical_offset + p.length - Bytes{1}) / kUnit);
    }
    pos += p.length;
  }
  EXPECT_EQ(pos, off(offset) + len(size));

  // Per-server merge preserves totals.
  auto merged = l.decompose_per_server(off(offset), len(size));
  Bytes total = Bytes::zero();
  for (const auto& m : merged) total += m.length;
  EXPECT_EQ(total, len(size));
  EXPECT_LE(merged.size(), static_cast<std::size_t>(servers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 4, 8),
        ::testing::Values<std::int64_t>(0, 1, 1023, 63 * kKiB, kUnitRaw,
                                        kUnitRaw + 1,
                                        10 * kUnitRaw + 10 * kKiB),
        ::testing::Values<std::int64_t>(1, kKiB, 33 * kKiB, kUnitRaw - 1,
                                        kUnitRaw, 65 * kKiB, 129 * kKiB,
                                        8 * kUnitRaw + 777)));

}  // namespace
}  // namespace ibridge::pvfs
