// Tests for the striping layout: decomposition correctness, coverage
// properties, fragment arithmetic, and share accounting.
#include <gtest/gtest.h>

#include <tuple>

#include "pvfs/layout.hpp"

namespace ibridge::pvfs {
namespace {

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kUnit = 64 * kKiB;

TEST(StripingLayout, ServerOfRoundRobins) {
  StripingLayout l(4, kUnit);
  EXPECT_EQ(l.server_of(0), 0);
  EXPECT_EQ(l.server_of(kUnit - 1), 0);
  EXPECT_EQ(l.server_of(kUnit), 1);
  EXPECT_EQ(l.server_of(4 * kUnit), 0);
  EXPECT_EQ(l.server_of(5 * kUnit + 3), 1);
}

TEST(StripingLayout, ServerOffsetPacksStripes) {
  StripingLayout l(4, kUnit);
  // Stripe 5 (server 1) is server 1's second stripe -> offset unit + delta.
  EXPECT_EQ(l.server_offset_of(5 * kUnit + 100), kUnit + 100);
  EXPECT_EQ(l.server_offset_of(0), 0);
  EXPECT_EQ(l.server_offset_of(4 * kUnit), kUnit);
}

TEST(StripingLayout, AlignedPredicate) {
  StripingLayout l(8, kUnit);
  EXPECT_TRUE(l.aligned(0, kUnit));
  EXPECT_TRUE(l.aligned(3 * kUnit, 2 * kUnit));
  EXPECT_FALSE(l.aligned(1, kUnit));
  EXPECT_FALSE(l.aligned(0, kUnit + 1));
}

TEST(StripingLayout, AlignedRequestIsOnePiece) {
  StripingLayout l(8, kUnit);
  auto v = l.decompose(2 * kUnit, kUnit);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].server, 2);
  EXPECT_EQ(v[0].server_offset, 0);
  EXPECT_EQ(v[0].length, kUnit);
}

TEST(StripingLayout, UnalignedRequestSplitsAtBoundaries) {
  StripingLayout l(8, kUnit);
  // 65 KB at offset 63 KB: 1 KB on server 0, 64 KB on server 1.
  auto v = l.decompose(63 * kKiB, 65 * kKiB);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].server, 0);
  EXPECT_EQ(v[0].length, 1 * kKiB);
  EXPECT_EQ(v[1].server, 1);
  EXPECT_EQ(v[1].length, 64 * kKiB);
  EXPECT_EQ(v[1].server_offset, 0);
}

TEST(StripingLayout, ShiftedRequestTouchesTwoServers) {
  StripingLayout l(8, kUnit);
  // Pattern III: 64 KB at +1 KB -> 63 KB + 1 KB on adjacent servers.
  auto v = l.decompose(kKiB, kUnit);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].length, 63 * kKiB);
  EXPECT_EQ(v[1].length, 1 * kKiB);
  EXPECT_EQ((v[0].server + 1) % 8, v[1].server);
}

TEST(StripingLayout, SingleServerCoalescesStripes) {
  StripingLayout l(1, kUnit);
  auto v = l.decompose(10 * kKiB, 5 * kUnit);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].length, 5 * kUnit);
  EXPECT_EQ(v[0].server_offset, 10 * kKiB);
}

TEST(StripingLayout, WrapAroundHitsSameServerTwice) {
  StripingLayout l(2, kUnit);
  // 3 units starting at server 0: pieces on servers 0,1,0.
  auto v = l.decompose(0, 3 * kUnit);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].server, 0);
  EXPECT_EQ(v[1].server, 1);
  EXPECT_EQ(v[2].server, 0);
  EXPECT_EQ(v[2].server_offset, kUnit);

  auto merged = l.decompose_per_server(0, 3 * kUnit);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].server, 0);
  EXPECT_EQ(merged[0].length, 2 * kUnit);
  EXPECT_EQ(merged[1].length, kUnit);
}

TEST(StripingLayout, ServerShareSumsToFileSize) {
  for (int servers : {1, 3, 8}) {
    StripingLayout l(servers, kUnit);
    for (std::int64_t size :
         {kUnit / 2, kUnit, 7 * kUnit + 123, 100 * kUnit}) {
      std::int64_t sum = 0;
      for (int s = 0; s < servers; ++s) sum += l.server_share(size, s);
      EXPECT_EQ(sum, size) << servers << " servers, size " << size;
    }
  }
}

TEST(StripingLayout, ServerShareMatchesDecomposedBytes) {
  StripingLayout l(4, kUnit);
  const std::int64_t size = 11 * kUnit + 999;
  auto pieces = l.decompose(0, size);
  std::int64_t per_server[4] = {0, 0, 0, 0};
  for (const auto& p : pieces) per_server[p.server] += p.length;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(per_server[s], l.server_share(size, s)) << "server " << s;
  }
}

// Property sweep: decomposition must exactly tile the requested range with
// boundary-respecting pieces, for many (offset, size, servers) combinations.
class DecomposeProperty
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(DecomposeProperty, PiecesTileTheRange) {
  const auto [servers, offset, size] = GetParam();
  StripingLayout l(servers, kUnit);
  auto v = l.decompose(offset, size);
  ASSERT_FALSE(v.empty());

  std::int64_t pos = offset;
  for (const auto& p : v) {
    EXPECT_EQ(p.logical_offset, pos);
    EXPECT_GT(p.length, 0);
    EXPECT_LE(p.length, kUnit * (servers == 1 ? 1'000'000 : 1));
    EXPECT_EQ(p.server, l.server_of(p.logical_offset));
    EXPECT_EQ(p.server_offset, l.server_offset_of(p.logical_offset));
    if (servers > 1) {
      // A piece never crosses a striping-unit boundary.
      EXPECT_EQ(p.logical_offset / kUnit,
                (p.logical_offset + p.length - 1) / kUnit);
    }
    pos += p.length;
  }
  EXPECT_EQ(pos, offset + size);

  // Per-server merge preserves totals.
  auto merged = l.decompose_per_server(offset, size);
  std::int64_t total = 0;
  for (const auto& m : merged) total += m.length;
  EXPECT_EQ(total, size);
  EXPECT_LE(merged.size(), static_cast<std::size_t>(servers));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 4, 8),
        ::testing::Values<std::int64_t>(0, 1, 1023, 63 * kKiB, kUnit,
                                        kUnit + 1, 10 * kUnit + 10 * kKiB),
        ::testing::Values<std::int64_t>(1, kKiB, 33 * kKiB, kUnit - 1, kUnit,
                                        65 * kKiB, 129 * kKiB,
                                        8 * kUnit + 777)));

}  // namespace
}  // namespace ibridge::pvfs
