// sim::ShardGroup — the conservative time-windowed parallel core.
//
// Covers the barrier scheduler's edge semantics (an event exactly at a
// window boundary belongs to the next window; same-tick cross-shard
// deliveries tie-break in (source shard, send order); a zero lookahead is
// rejected at construction) and the headline determinism property: the
// schedule a group executes is a pure function of the initial events,
// invariant under the worker count.  A seeded fuzz variant (ctest -L fuzz)
// drives full SimCheck differential cases through the sharded cluster at
// random shard counts and asserts digest equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "fault/schedule.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {
namespace {

const SimTime kW = SimTime::micros(10);  // lookahead for the unit scenarios

TEST(ShardGroup, RejectsZeroLookaheadAndZeroShards) {
  // A zero lookahead would admit same-instant cross-shard cycles — the
  // window-safety proof needs W > 0 strictly.
  EXPECT_THROW(ShardGroup(2, SimTime::zero(), 1), std::invalid_argument);
  EXPECT_THROW(ShardGroup(2, SimTime::nanos(-5), 1), std::invalid_argument);
  EXPECT_THROW(ShardGroup(0, kW, 1), std::invalid_argument);
}

TEST(ShardGroup, ClampsWorkerCountToShards) {
  ShardGroup g(3, kW, 16);
  EXPECT_EQ(g.shards(), 3);
  EXPECT_EQ(g.workers(), 3);
  ShardGroup g1(4, kW, 0);
  EXPECT_EQ(g1.workers(), 1);
}

TEST(ShardGroup, StandaloneSimulatorHasNoGroup) {
  Simulator s;
  EXPECT_EQ(s.group(), nullptr);
  EXPECT_EQ(s.shard_id(), 0);
  ShardGroup g(2, kW, 1);
  EXPECT_EQ(g.shard(1).group(), &g);
  EXPECT_EQ(g.shard(1).shard_id(), 1);
}

// An event scheduled exactly at a window's end must NOT run inside that
// window: the first window is [0, W), and a cross-shard arrival lands
// exactly at W — on the boundary.  A pre-scheduled local event at W has a
// lower sequence number than the barrier-delivered post, so it must run
// first; if the window bound were `<=` instead of `<`, the local event
// would instead run a whole window early, before the post even existed.
TEST(ShardGroup, EventExactlyAtWindowBoundaryRunsInNextWindow) {
  ShardGroup g(2, kW, 1);
  std::vector<std::pair<int, std::int64_t>> order;  // (id, ns)

  // Shard 1's local event, pre-scheduled for exactly t = W.
  g.shard(1).schedule_at(kW, InlineEvent([&] {
    order.emplace_back(1, g.shard(1).now().ns());
  }));
  // Shard 0 at t = 0 posts to shard 1 arriving at the minimum t = W.
  g.shard(0).schedule_at(SimTime::zero(), InlineEvent([&] {
    order.emplace_back(0, g.shard(0).now().ns());
    g.post(g.shard(0), g.shard(1), g.shard(0).now() + kW, InlineEvent([&] {
      order.emplace_back(2, g.shard(1).now().ns());
    }));
  }));
  g.run_all();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], std::make_pair(0, std::int64_t{0}));
  EXPECT_EQ(order[1], std::make_pair(1, kW.ns()));  // local first (lower seq)
  EXPECT_EQ(order[2], std::make_pair(2, kW.ns()));  // then the delivery
  EXPECT_EQ(g.posts_delivered(), 1u);
  EXPECT_GE(g.windows_run(), 2u);  // the boundary event needed window two
}

// Same-tick cross-shard deliveries tie-break in (source shard, send order):
// the barrier concatenates the per-source FIFOs in shard order and
// stable-sorts by arrival time only.
TEST(ShardGroup, SameTickDeliveriesMergeInSourceShardSendOrder) {
  for (int workers : {1, 3}) {
    ShardGroup g(3, kW, workers);
    std::vector<int> order;  // filled on shard 0 only — no data race

    // Both source shards send two posts to shard 0, all arriving at 2W.
    // Shard 2 is armed *earlier* (t=0) than shard 1 (t=W/2) — arrival-time
    // and source-order must win over arming order.
    g.shard(2).schedule_at(SimTime::zero(), InlineEvent([&] {
      Simulator& self = g.shard(2);
      const SimTime at = SimTime::nanos(2 * kW.ns());
      g.post(self, g.shard(0), at, InlineEvent([&] { order.push_back(21); }));
      g.post(self, g.shard(0), at, InlineEvent([&] { order.push_back(22); }));
    }));
    g.shard(1).schedule_at(SimTime::nanos(kW.ns() / 2), InlineEvent([&] {
      Simulator& self = g.shard(1);
      const SimTime at = SimTime::nanos(2 * kW.ns());
      g.post(self, g.shard(0), at, InlineEvent([&] { order.push_back(11); }));
      g.post(self, g.shard(0), at, InlineEvent([&] { order.push_back(12); }));
    }));
    g.run_all();

    const std::vector<int> want{11, 12, 21, 22};
    EXPECT_EQ(order, want) << "workers=" << workers;
    EXPECT_EQ(g.posts_delivered(), 4u);
  }
}

// Driver-phase posts (no window running) deliver directly, clamped to the
// target clock, and still execute on the next run.
TEST(ShardGroup, DriverPhasePostDeliversDirectly) {
  ShardGroup g(2, kW, 1);
  bool ran = false;
  g.post(g.shard(0), g.shard(1), SimTime::zero(),
         InlineEvent([&] { ran = true; }));
  g.run_all();
  EXPECT_TRUE(ran);
}

TEST(ShardGroup, RunAllUntilStopsAtDeadlineAndSyncsClocks) {
  ShardGroup g(3, kW, 1);
  int ran = 0;
  const SimTime deadline = SimTime::micros(50);
  g.shard(1).schedule_at(SimTime::micros(20), InlineEvent([&] { ++ran; }));
  g.shard(2).schedule_at(SimTime::micros(50), InlineEvent([&] { ++ran; }));
  g.shard(2).schedule_at(SimTime::micros(51), InlineEvent([&] { ++ran; }));
  g.run_all_until(deadline);
  EXPECT_EQ(ran, 2);  // the 51us event stays queued (run_until is <=)
  EXPECT_EQ(g.total_pending(), 1u);
  for (int s = 0; s < g.shards(); ++s) {
    EXPECT_EQ(g.shard(s).now(), deadline) << "shard " << s;
  }
  g.run_all();
  EXPECT_EQ(ran, 3);
  EXPECT_TRUE(g.all_empty());
}

TEST(ShardGroup, RunWhilePendingChecksPredicateAtBarriers) {
  ShardGroup g(2, kW, 1);
  bool flag = false;
  int after = 0;
  // Shard 1 sets the flag on shard 0 (cross-shard: the predicate runs on
  // the calling thread and must only read shard-0 state).
  g.shard(1).schedule_at(SimTime::micros(5), InlineEvent([&] {
    g.post(g.shard(1), g.shard(0), g.shard(1).now() + kW,
           InlineEvent([&] { flag = true; }));
  }));
  g.shard(1).schedule_at(SimTime::millis(10), InlineEvent([&] { ++after; }));
  EXPECT_TRUE(g.shard(0).run_while_pending([&] { return flag; }));
  EXPECT_TRUE(flag);
  EXPECT_EQ(after, 0) << "far-future work must not run once satisfied";
  g.run_all();
  EXPECT_EQ(after, 1);
}

// The grouped Simulator's run()-family delegates to the group: driver code
// written against `sim()` works unchanged on a sharded cluster.
TEST(ShardGroup, GroupedSimulatorDelegatesRunFamily) {
  ShardGroup g(2, kW, 1);
  int ran = 0;
  g.shard(1).schedule_at(SimTime::micros(3), InlineEvent([&] { ++ran; }));
  g.shard(0).run();  // drains the *group*, not just shard 0
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(g.shard(0).empty());
  EXPECT_EQ(g.shard(0).events_executed(), g.events_executed());
}

// hop() moves a coroutine between shards, arriving one lookahead later.
TEST(ShardGroup, HopMovesCoroutineAcrossShards) {
  ShardGroup g(2, kW, 1);
  std::vector<std::int64_t> times;
  bool done = false;
  auto t = [](ShardGroup& gr, std::vector<std::int64_t>& ts,
              bool& flag) -> Task<> {
    Simulator& s0 = gr.shard(0);
    Simulator& s1 = gr.shard(1);
    co_await gr.hop(s0, s0);  // no-op: already there
    ts.push_back(s0.now().ns());
    co_await gr.hop(s0, s1);
    ts.push_back(s1.now().ns());
    co_await Delay{s1, SimTime::micros(7)};
    co_await gr.hop(s1, s0);
    ts.push_back(s0.now().ns());
    flag = true;
  }(g, times, done);
  t.start();
  g.shard(0).run_while_pending([&] { return done; });
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], kW.ns());
  EXPECT_EQ(times[2], kW.ns() + SimTime::micros(7).ns() + kW.ns());
}

// ------------------------------------------------ worker-count invariance ----

/// A randomized ping-pong mesh: every shard runs `events` chained events,
/// each advancing a shard-local xorshift stream, recording into a
/// shard-local log, and occasionally posting a continuation to a random
/// other shard.  Returns the per-shard logs plus group totals.
struct MeshResult {
  std::vector<std::vector<std::uint64_t>> logs;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t posts = 0;
  std::vector<std::int64_t> final_ns;
};

MeshResult run_mesh(int shards, int workers, std::uint64_t seed,
                    SimTime adaptive = SimTime::zero()) {
  ShardGroup g(shards, kW, workers);
  if (adaptive != SimTime::zero()) g.set_adaptive_window(adaptive);
  MeshResult r;
  r.logs.resize(static_cast<std::size_t>(shards));
  // One RNG stream per shard, touched only by that shard's events: the
  // draw sequence is part of the schedule, so any cross-worker reordering
  // would corrupt it and show up in the logs.
  std::vector<std::uint64_t> rng(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    std::uint64_t st = seed ^ static_cast<std::uint64_t>(s + 1);
    rng[static_cast<std::size_t>(s)] = splitmix64(st);
  }

  // Self-referential event chain: `chain` must outlive the run.
  struct Chain {
    ShardGroup* g;
    MeshResult* r;
    std::vector<std::uint64_t>* rng;
    int shards;
    void fire(int s, int depth) {
      Simulator& self = g->shard(s);
      std::uint64_t& x = (*rng)[static_cast<std::size_t>(s)];
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      r->logs[static_cast<std::size_t>(s)].push_back(
          x ^ static_cast<std::uint64_t>(self.now().ns()));
      if (depth <= 0) return;
      const int dst = static_cast<int>(x % static_cast<std::uint64_t>(shards));
      const SimTime gap = SimTime::nanos(
          static_cast<std::int64_t>(x % 7919) + 1);
      if (dst == s) {
        self.schedule(gap, InlineEvent([this, s, depth] {
          fire(s, depth - 1);
        }));
      } else {
        g->post(self, g->shard(dst), self.now() + g->lookahead() + gap,
                InlineEvent([this, dst, depth] { fire(dst, depth - 1); }));
      }
    }
  };
  Chain chain{&g, &r, &rng, shards};
  for (int s = 0; s < shards; ++s) {
    g.shard(s).schedule_at(SimTime::nanos(s + 1), InlineEvent([&chain, s] {
      chain.fire(s, 40);
    }));
  }
  g.run_all();

  r.executed = g.events_executed();
  r.windows = g.windows_run();
  r.posts = g.posts_delivered();
  for (int s = 0; s < shards; ++s) {
    r.final_ns.push_back(g.shard(s).now().ns());
  }
  return r;
}

TEST(ShardGroup, ScheduleIsInvariantUnderWorkerCount) {
  const MeshResult base = run_mesh(/*shards=*/5, /*workers=*/1, 0xabcdef);
  EXPECT_GT(base.posts, 0u) << "mesh never crossed a shard — weak scenario";
  for (int workers : {2, 3, 5}) {
    const MeshResult par = run_mesh(5, workers, 0xabcdef);
    EXPECT_EQ(par.logs, base.logs) << "workers=" << workers;
    EXPECT_EQ(par.executed, base.executed) << "workers=" << workers;
    EXPECT_EQ(par.windows, base.windows) << "workers=" << workers;
    EXPECT_EQ(par.posts, base.posts) << "workers=" << workers;
    EXPECT_EQ(par.final_ns, base.final_ns) << "workers=" << workers;
  }
}

// ---------------------------------------------------- adaptive lookahead ----

TEST(ShardGroup, AdaptiveWindowValidation) {
  ShardGroup g(2, kW, 1);
  EXPECT_THROW(g.set_adaptive_window(SimTime::nanos(kW.ns() - 1)),
               std::invalid_argument);
  g.set_adaptive_window(kW);                    // == lookahead: allowed
  g.set_adaptive_window(SimTime::micros(500));  // wider: allowed
  EXPECT_EQ(g.adaptive_window(), SimTime::micros(500));
  g.set_adaptive_window(SimTime::zero());  // zero disables
  EXPECT_EQ(g.adaptive_window(), SimTime::zero());
}

// When other shards are quiescent far into the future, adaptive lookahead
// must widen the busy shard's window beyond the minimum W instead of
// stepping W at a time — the property that makes widely-spaced shard-group
// workloads affordable.  The executed schedule itself must not change.
TEST(ShardGroup, AdaptiveWindowWidensWindows) {
  auto run = [](SimTime adaptive) {
    ShardGroup g(2, kW, 1);
    if (adaptive != SimTime::zero()) g.set_adaptive_window(adaptive);
    std::vector<std::int64_t> log;
    // Shard 0: a long chain of local events 1us apart; shard 1: one far
    // event.  No cross-shard traffic, so windows can legally widen to the
    // adaptive cap.
    struct Chain {
      Simulator* s;
      std::vector<std::int64_t>* log;
      void fire(int left) {
        log->push_back(s->now().ns());
        if (left > 0) {
          s->schedule(SimTime::micros(1),
                      InlineEvent([this, left] { fire(left - 1); }));
        }
      }
    };
    Chain chain{&g.shard(0), &log};
    g.shard(0).schedule_at(SimTime::zero(),
                           InlineEvent([&chain] { chain.fire(200); }));
    g.shard(1).schedule_at(SimTime::micros(400),
                           InlineEvent([&log, &g] {
                             log.push_back(-g.shard(1).now().ns());
                           }));
    g.run_all();
    return std::make_pair(log, g.windows_run());
  };

  const auto [base_log, base_windows] = run(SimTime::zero());
  const auto [wide_log, wide_windows] = run(SimTime::micros(100));
  EXPECT_EQ(wide_log, base_log) << "adaptive widening changed the schedule";
  // 200us of 1us-spaced events at W=10us needs >=20 windows without
  // adaptive; with a 100us cap the idle-peer bound lets each window span
  // up to 100us.
  EXPECT_GE(base_windows, 20u);
  EXPECT_LT(wide_windows * 4, base_windows)
      << "adaptive cap did not widen windows (wide=" << wide_windows
      << " base=" << base_windows << ")";
}

// The full invariance property holds with adaptive lookahead on: window
// placement is a pure function of worker-invariant next-event times, so
// the schedule (and even the window count) stays byte-identical across
// worker counts.
TEST(ShardGroup, ScheduleInvariantUnderWorkerCountWithAdaptive) {
  const SimTime cap = SimTime::micros(80);
  const MeshResult base = run_mesh(/*shards=*/5, /*workers=*/1, 0x5eedf00d,
                                   cap);
  EXPECT_GT(base.posts, 0u) << "mesh never crossed a shard — weak scenario";
  for (int workers : {2, 5}) {
    const MeshResult par = run_mesh(5, workers, 0x5eedf00d, cap);
    EXPECT_EQ(par.logs, base.logs) << "workers=" << workers;
    EXPECT_EQ(par.executed, base.executed) << "workers=" << workers;
    EXPECT_EQ(par.windows, base.windows) << "workers=" << workers;
    EXPECT_EQ(par.posts, base.posts) << "workers=" << workers;
    EXPECT_EQ(par.final_ns, base.final_ns) << "workers=" << workers;
  }
}

// Cross-shard posts keep the conservative bound honest under adaptive
// widening: a post arriving at exactly T+W must not be missed by a window
// that widened past it.
TEST(ShardGroup, AdaptiveWindowStillDeliversMinimumLatencyPosts) {
  ShardGroup g(2, kW, 1);
  g.set_adaptive_window(SimTime::micros(200));
  std::vector<std::pair<int, std::int64_t>> order;
  g.shard(1).schedule_at(kW, InlineEvent([&] {
    order.emplace_back(1, g.shard(1).now().ns());
  }));
  g.shard(0).schedule_at(SimTime::zero(), InlineEvent([&] {
    order.emplace_back(0, g.shard(0).now().ns());
    g.post(g.shard(0), g.shard(1), g.shard(0).now() + kW, InlineEvent([&] {
      order.emplace_back(2, g.shard(1).now().ns());
    }));
  }));
  g.run_all();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], std::make_pair(0, std::int64_t{0}));
  EXPECT_EQ(order[1], std::make_pair(1, kW.ns()));
  EXPECT_EQ(order[2], std::make_pair(2, kW.ns()));
  EXPECT_EQ(g.posts_delivered(), 1u);
}

// The barrier hook fires single-threaded between windows with the horizon
// m: every event strictly before m has executed, none at or after m has.
TEST(ShardGroup, BarrierHookObservesCoherentHorizon) {
  for (int workers : {1, 2}) {
    ShardGroup g(2, kW, workers);
    std::int64_t executed_max[2] = {-1, -1};
    for (int s = 0; s < 2; ++s) {
      for (int k = 1; k <= 20; ++k) {
        g.shard(s).schedule_at(SimTime::micros(3 * k),
                               InlineEvent([&executed_max, s, k] {
                                 executed_max[s] = SimTime::micros(3 * k).ns();
                               }));
      }
    }
    std::size_t calls = 0;
    std::int64_t last_horizon = -1;
    g.set_barrier_hook([&](SimTime horizon) {
      ++calls;
      // Horizons only move forward, and every executed event is < m: the
      // hook always observes a coherent cross-shard prefix of the schedule.
      EXPECT_GE(horizon.ns(), last_horizon);
      last_horizon = horizon.ns();
      for (int s = 0; s < 2; ++s) {
        EXPECT_LT(executed_max[s], horizon.ns());
      }
    });
    g.run_all();
    EXPECT_GT(calls, 0u) << "workers=" << workers;
    g.set_barrier_hook(nullptr);
  }
}

}  // namespace
}  // namespace ibridge::sim

// ------------------------------------------------------- SimCheck fuzzing ----

namespace ibridge::check {
namespace {

int fuzz_iterations(int dflt) {
  if (const char* env = std::getenv("SIMCHECK_FUZZ_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return dflt;
}

/// Digest tuple of one differential run — everything the simcheck tool
/// writes per seed, plus the fault digest when faulted.
struct CaseDigests {
  std::uint64_t payload, image, disk, ibridge, ssd, fault;
  bool operator==(const CaseDigests&) const = default;
};

CaseDigests digests_at(FuzzCase c, int shards) {
  c.base.shards = shards;
  const DiffReport d = run_differential(c);
  EXPECT_TRUE(d.ok()) << "shards=" << shards << ": " << d.failure;
  return {d.ibridge.payload_digest, d.ibridge.image_digest,
          d.disk.stats_digest,      d.ibridge.stats_digest,
          d.ssd.stats_digest,       d.ibridge.faulted ? d.ibridge.fault_digest
                                                      : 0};
}

// The acceptance criterion, in-tree: full differential cases produce
// byte-identical digests at every shard/worker count >= 1, healthy and
// under mixed fault injection.  Every other iteration also turns on shard
// groups (several servers per shard) and adaptive lookahead — the grouped
// configuration must be just as worker-count invariant as the classic one.
// (ctest -L fuzz scales the fleet up.)
TEST(ShardFuzz, DifferentialDigestsInvariantUnderShardCount) {
  const int iters = std::max(3, fuzz_iterations(200) / 40);
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0x51a4d5eedULL + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed);
    if (i % 2 == 1) {
      c.faults = fault::make_scenario(fault::Scenario::kMixed,
                                      c.base.data_servers, seed,
                                      sim::SimTime::millis(40));
    }
    if (i % 2 == 0) {
      c.base.shard_group_size = 2 + static_cast<int>(seed % 3);
      c.base.adaptive_window_us = 40.0;
    }
    const CaseDigests base = digests_at(c, 1);
    // Random shard counts, always including one above the logical shard
    // count (clamped internally) to cover the oversubscribed path.
    sim::Rng rng(seed);
    const int counts[] = {2, 1 + static_cast<int>(rng() % 7),
                          c.base.data_servers + 3};
    for (int k : counts) {
      ASSERT_EQ(digests_at(c, k), base)
          << "seed=" << seed << " shards=" << k
          << (c.faults.empty() ? " (healthy)" : " (mixed faults)");
    }
  }
}

}  // namespace
}  // namespace ibridge::check
