// Behavioural tests for IBridgeCache: admission, hits, invalidation,
// write-back, eviction, and end-to-end data integrity through the cache.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cache.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

namespace ibridge::core {
namespace {

using storage::IoDirection;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i) & 0xff);
  }
  return v;
}

// A synthetic profile with the shape the admission logic expects: random
// access costs ~4 ms, writes carry a surcharge.
storage::SeekProfile test_profile() {
  storage::SeekProfile p({{1000, 0.5}, {100'000, 1.5}, {10'000'000, 2.0}});
  p.set_rotation(sim::SimTime::millis(2));
  p.set_peak_bandwidth(85e6);
  p.set_peak_write_bandwidth(80e6);
  p.set_write_surcharge(3.0, 0.4);
  return p;
}

struct CacheFixture : ::testing::Test {
  sim::Simulator sim;
  storage::HddParams hdd_params = [] {
    auto p = storage::paper_hdd();
    p.anticipation_ms = 0;
    return p;
  }();
  storage::HddModel disk{sim, hdd_params};
  storage::SsdModel ssd{sim, storage::paper_ssd()};
  fsim::LocalFileSystem disk_fs{sim, disk, fsim::DataMode::kVerify};
  fsim::LocalFileSystem ssd_fs{sim, ssd, fsim::DataMode::kVerify};
  std::unique_ptr<IBridgeCache> cache;
  fsim::FileId file = fsim::kInvalidFile;

  void build(IBridgeConfig cfg = {}) {
    cfg.enabled = true;
    cache = std::make_unique<IBridgeCache>(sim, cfg, /*self=*/ServerId{0},
                                           disk_fs, ssd_fs, test_profile());
    cache->start();
    file = disk_fs.create("datafile", 64 << 20);
  }

  ~CacheFixture() override {
    if (cache) cache->stop();
  }

  ServeResult do_io(IoDirection dir, std::int64_t off, std::int64_t len,
                    std::span<const std::byte> wdata = {},
                    std::span<std::byte> rdata = {}, bool fragment = false,
                    core::SiblingSet siblings = {}) {
    CacheRequest r;
    r.dir = dir;
    r.file = file;
    r.offset = Offset{off};
    r.length = Bytes{len};
    r.fragment = fragment;
    r.siblings = siblings;
    ServeResult out;
    bool done = false;
    auto t = [](IBridgeCache& c, CacheRequest req,
                std::span<const std::byte> w, std::span<std::byte> rd,
                ServeResult& res, bool& flag) -> sim::Task<> {
      res = co_await c.serve(std::move(req), w, rd);
      flag = true;
    }(*cache, std::move(r), wdata, rdata, out, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    return out;
  }

  ServeResult write(std::int64_t off, std::span<const std::byte> data,
                    bool fragment = false, core::SiblingSet siblings = {}) {
    return do_io(IoDirection::kWrite, off,
                 static_cast<std::int64_t>(data.size()), data, {}, fragment,
                 siblings);
  }

  std::pair<ServeResult, std::vector<std::byte>> read(std::int64_t off,
                                                      std::int64_t len) {
    std::vector<std::byte> buf(static_cast<std::size_t>(len));
    auto r = do_io(IoDirection::kRead, off, len, {}, buf);
    return {r, std::move(buf)};
  }

  void drain() {
    bool done = false;
    auto t = [](IBridgeCache& c, bool& flag) -> sim::Task<> {
      co_await c.drain();
      flag = true;
    }(*cache, done);
    t.start();
    sim.run_while_pending([&] { return done; });
  }

  // Raise T by serving scattered large reads from the disk, so that small
  // requests afterwards have positive return.
  void warm_t() {
    sim::Rng rng(7);
    for (int i = 0; i < 12; ++i) {
      const std::int64_t off = rng.uniform(0, 500) * 65536;
      read(off, 60 * 1024);
    }
    ASSERT_GT(cache->current_t(), 0.0);
  }
};

TEST_F(CacheFixture, SmallWriteWithPositiveReturnGoesToSsd) {
  build();
  warm_t();
  const auto data = pattern(8192, 1);
  const auto r = write(1'000'000, data);
  EXPECT_TRUE(r.ssd);
  EXPECT_EQ(cache->stats().write_admits, 1u);
  EXPECT_EQ(cache->table().dirty_bytes(), Bytes{8192});
}

TEST_F(CacheFixture, LargeWriteAlwaysGoesToDisk) {
  build();
  warm_t();
  const auto data = pattern(64 * 1024, 2);  // >= 20 KB threshold
  const auto r = write(1'000'000, data);
  EXPECT_FALSE(r.ssd);
  EXPECT_GE(cache->stats().write_disk, 1u);
  EXPECT_EQ(cache->table().dirty_bytes(), Bytes::zero());
}

TEST_F(CacheFixture, ReadYourCachedWrite) {
  build();
  warm_t();
  const auto data = pattern(8192, 3);
  ASSERT_TRUE(write(2'000'000, data).ssd);
  const auto [r, got] = read(2'000'000, 8192);
  EXPECT_TRUE(r.ssd);
  EXPECT_EQ(cache->stats().read_hits, 1u);
  EXPECT_EQ(0, std::memcmp(got.data(), data.data(), data.size()));
}

TEST_F(CacheFixture, PartialReadOfCachedEntryHits) {
  build();
  warm_t();
  const auto data = pattern(8192, 4);
  ASSERT_TRUE(write(2'000'000, data).ssd);
  const auto [r, got] = read(2'000'000 + 1000, 4000);
  EXPECT_TRUE(r.ssd);
  EXPECT_EQ(0, std::memcmp(got.data(), data.data() + 1000, 4000));
}

TEST_F(CacheFixture, OverwriteSupersedesCachedData) {
  build();
  warm_t();
  const auto v1 = pattern(8192, 5);
  const auto v2 = pattern(8192, 6);
  ASSERT_TRUE(write(3'000'000, v1).ssd);
  write(3'000'000, v2);  // SSD or disk: either way v2 must win
  const auto [r, got] = read(3'000'000, 8192);
  EXPECT_EQ(0, std::memcmp(got.data(), v2.data(), v2.size()));
}

TEST_F(CacheFixture, PartialOverwritePreservesUntouchedTail) {
  build();
  warm_t();
  const auto v1 = pattern(16'000, 7);
  ASSERT_TRUE(write(4'000'000, v1).ssd);
  const auto v2 = pattern(4'000, 8);
  write(4'000'000, v2);  // overwrite the first 4000 bytes only
  const auto [r, got] = read(4'000'000, 16'000);
  EXPECT_EQ(0, std::memcmp(got.data(), v2.data(), 4000));
  EXPECT_EQ(0, std::memcmp(got.data() + 4000, v1.data() + 4000, 12'000));
}

TEST_F(CacheFixture, DrainFlushesDirtyDataToDisk) {
  build();
  warm_t();
  const auto data = pattern(8192, 9);
  ASSERT_TRUE(write(5'000'000, data).ssd);
  drain();
  EXPECT_EQ(cache->table().dirty_bytes(), Bytes::zero());
  // The disk's own store now holds the bytes (read bypassing the cache).
  std::vector<std::byte> direct(8192);
  disk_fs.peek_bytes(file, 5'000'000, direct);
  EXPECT_EQ(0, std::memcmp(direct.data(), data.data(), data.size()));
  EXPECT_GE(cache->stats().writebacks, 1u);
}

TEST_F(CacheFixture, ReadMissWithPositiveReturnStagesIntoCache) {
  build();
  warm_t();
  // Put data on the disk directly, then read it through the cache twice.
  const auto data = pattern(8192, 10);
  disk_fs.poke_bytes(file, 6'000'000, data);
  const auto [r1, got1] = read(6'000'000, 8192);
  EXPECT_FALSE(r1.ssd);
  // Staging runs in background; give it time.  (sim.run() would never
  // return here: the write-back daemon perpetually reschedules itself.)
  sim.run_until(sim.now() + sim::SimTime::seconds(1));
  if (cache->stats().stages > 0) {
    const auto [r2, got2] = read(6'000'000, 8192);
    EXPECT_TRUE(r2.ssd);
    EXPECT_EQ(0, std::memcmp(got2.data(), data.data(), data.size()));
  }
}

TEST_F(CacheFixture, DirtyOverlapFlushedBeforeLargeRead) {
  build();
  warm_t();
  const auto small = pattern(8192, 11);
  ASSERT_TRUE(write(7'000'000, small).ssd);
  // A 64 KB read covering the dirty range must return the new bytes even
  // though it is served by the disk.
  const auto [r, got] = read(7'000'000 - 1024, 64 * 1024);
  EXPECT_EQ(0, std::memcmp(got.data() + 1024, small.data(), small.size()));
}

TEST_F(CacheFixture, EvictionKicksInUnderTinyCapacity) {
  IBridgeConfig cfg;
  cfg.ssd_cache_bytes = 64 * 1024;  // tiny: a few entries
  cfg.log_segment_bytes = 16 * 1024;
  build(cfg);
  warm_t();
  for (int i = 0; i < 12; ++i) {
    write(8'000'000 + i * 100'000, pattern(8192, static_cast<uint8_t>(i)));
  }
  EXPECT_GT(cache->stats().evictions, 0u);
  EXPECT_LE(cache->table().bytes_cached(), Bytes{64 * 1024});
  // All data must still be readable and correct, wherever it lives.
  for (int i = 0; i < 12; ++i) {
    const auto expect = pattern(8192, static_cast<uint8_t>(i));
    const auto [r, got] = read(8'000'000 + i * 100'000, 8192);
    EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), expect.size()))
        << "entry " << i;
  }
}

TEST_F(CacheFixture, FragmentBoostCountsWhenSelfSlowest) {
  build();
  warm_t();
  cache->set_board({10.0, 0.1, 0.1});  // placeholder: self=0 uses live T
  const auto data = pattern(4096, 12);
  // Descriptor for a 3-piece parent whose first piece is this server (0):
  // siblings enumerate as servers 1 and 2.
  write(9'000'000, data, /*fragment=*/true,
        /*siblings=*/core::SiblingSet{ServerId{0}, 3, 3, 0});
  EXPECT_GE(cache->stats().boosts, 1u);
}

TEST_F(CacheFixture, StatsBytesConserveTotals) {
  build();
  warm_t();
  const auto before = cache->stats();
  write(10'000'000, pattern(8192, 13));
  write(11'000'000, pattern(40'000, 14));
  const auto& after = cache->stats();
  EXPECT_EQ(after.ssd_bytes_served + after.disk_bytes_served -
                (before.ssd_bytes_served + before.disk_bytes_served),
            Bytes{8192 + 40'000});
}

TEST_F(CacheFixture, RandomMixedOpsMatchReference) {
  IBridgeConfig cfg;
  cfg.ssd_cache_bytes = 256 * 1024;  // small enough to force evictions
  cfg.log_segment_bytes = 64 * 1024;
  build(cfg);
  warm_t();
  const std::int64_t span = 8 << 20;
  std::vector<std::uint8_t> ref(span, 0);
  // Pre-fill reference with what warm_t could NOT have written (reads only).
  sim::Rng rng(99);
  for (int op = 0; op < 300; ++op) {
    const std::int64_t off = rng.uniform(0, span - 1);
    const std::int64_t len =
        std::min<std::int64_t>(rng.uniform(1, 30'000), span - off);
    if (rng.chance(0.6)) {
      auto data = pattern(static_cast<std::size_t>(len),
                          static_cast<std::uint8_t>(op));
      write(off, data, /*fragment=*/rng.chance(0.3), {ServerId{1}});
      std::memcpy(ref.data() + off, data.data(),
                  static_cast<std::size_t>(len));
    } else {
      const auto [r, got] = read(off, len);
      for (std::int64_t i = 0; i < len; ++i) {
        ASSERT_EQ(static_cast<std::uint8_t>(got[static_cast<std::size_t>(i)]),
                  ref[static_cast<std::size_t>(off + i)])
            << "op " << op << " off " << off + i;
      }
    }
  }
  drain();
  // After drain, the disk alone must hold the full reference image.
  std::vector<std::byte> direct(span);
  disk_fs.peek_bytes(file, 0, direct);
  // Only compare where the cache/disk were written (ref non-zero regions
  // included; zero regions match trivially).
  EXPECT_EQ(0, std::memcmp(direct.data(), ref.data(), ref.size()));
}

TEST_F(CacheFixture, StopHaltsDaemonEventually) {
  build();
  cache->stop();
  sim.run();  // must terminate: no perpetual daemon wake-ups
  SUCCEED();
}

TEST_F(CacheFixture, HotBlockHeatMapStaysBounded) {
  IBridgeConfig cfg;
  cfg.admission = AdmissionPolicy::kHotBlock;
  cfg.hot_block_region = 64 << 10;
  cfg.hot_block_max_regions = 8;
  build(cfg);
  // Sweep small writes across far more distinct regions than the cap; the
  // halving sweep must keep the heat map bounded the whole way.
  const auto data = pattern(4096, 5);
  for (int i = 0; i < 64; ++i) {
    write(static_cast<std::int64_t>(i) * (64 << 10), data);
    ASSERT_LE(cache->region_heat_regions(), 8u) << "write " << i;
  }
  // A genuinely hot region still becomes cacheable after enough hits.
  for (int hit = 0; hit < 4; ++hit) write(0, data);
  EXPECT_LE(cache->region_heat_regions(), 8u);
  EXPECT_GT(cache->stats().write_admits, 0u);
}

}  // namespace
}  // namespace ibridge::core
