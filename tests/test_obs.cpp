// Observability layer: span recording, the metrics registry, the exporters,
// and the zero-cost-when-disabled guarantee at cluster level.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/cluster.hpp"
#include "mpiio/mpi.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace ibridge::obs {
namespace {

sim::SimTime ms(std::int64_t n) { return sim::SimTime::millis(n); }

TEST(TraceSession, TracksAreInterned) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId a = s.track("srv0", "io");
  const TrackId b = s.track("srv0", "cache-bg");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, s.track("srv0", "io"));
  ASSERT_EQ(s.tracks().size(), 2u);
  EXPECT_EQ(s.tracks()[static_cast<std::size_t>(a)].thread, "io");
}

TEST(TraceSession, SpanNestingAndTimestamps) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("client", "rank0");
  const RequestId rid = s.new_request();
  SpanId root = 0, child = 0;
  sim.schedule(ms(0), [&] { root = s.begin(t, "request", "client", rid); });
  sim.schedule(ms(1), [&] { child = s.child(root, "sub", "client"); });
  sim.schedule(ms(3), [&] { s.end(child); });
  sim.schedule(ms(5), [&] { s.end(root); });
  sim.run();

  const SpanRecord& r = s.span(root);
  const SpanRecord& c = s.span(child);
  EXPECT_EQ(r.parent, 0u);
  EXPECT_EQ(c.parent, root);
  EXPECT_EQ(c.request, rid) << "children inherit the request id";
  EXPECT_EQ(c.track, t) << "children inherit the track";
  EXPECT_FALSE(r.open);
  EXPECT_EQ(r.start, ms(0));
  EXPECT_EQ(r.finish, ms(5));
  EXPECT_EQ(c.start, ms(1));
  EXPECT_EQ(c.finish, ms(3));
}

TEST(TraceSession, EndAndArgWithZeroAreNoops) {
  sim::Simulator sim;
  TraceSession s(sim);
  s.end(0);
  s.arg(0, "k", std::int64_t{1});
  s.arg(0, "k", std::string("v"));
  EXPECT_TRUE(s.spans().empty());
}

TEST(TraceSession, CompleteSpansAndCounters) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("srv0", "disk");
  const SpanId id = s.complete(t, "io.read", "device", ms(2), ms(7));
  s.arg(id, "sectors", std::int64_t{128});
  const SpanRecord& r = s.span(id);
  EXPECT_FALSE(r.open);
  EXPECT_EQ(r.start, ms(2));
  EXPECT_EQ(r.finish, ms(9));
  ASSERT_EQ(r.args.size(), 1u);
  EXPECT_EQ(r.args[0].ival, 128);

  s.counter("srv0.inflight", 3.0);
  ASSERT_EQ(s.counters().size(), 1u);
  EXPECT_EQ(s.counters()[0].name, "srv0.inflight");
  EXPECT_EQ(s.counters()[0].value, 3.0);
}

// Build one synthetic request: a root with three sub-requests of 2/2/10 ms;
// the slowest is a tagged fragment on server 2.
void record_request(TraceSession& s, sim::Simulator& sim) {
  const TrackId t = s.track("client", "rank0");
  const RequestId rid = s.new_request();
  SpanId root = 0;
  sim.schedule(ms(0), [&, rid] {
    root = s.begin(t, "request", "client", rid);
    s.arg(root, "rank", std::int64_t{0});
    s.arg(root, "offset", std::int64_t{0});
    s.arg(root, "length", std::int64_t{131072 + 1024});
  });
  sim.schedule(ms(1), [&] {
    for (int i = 0; i < 3; ++i) {
      const SpanId sub = s.child(root, "sub", "client");
      s.arg(sub, "server", std::int64_t{i});
      if (i == 2) s.arg(sub, "fragment", std::int64_t{1});
      sim.schedule(i == 2 ? ms(10) : ms(2), [&s, sub] { s.end(sub); });
    }
  });
  sim.schedule(ms(12), [&] { s.end(root); });
  sim.run();
}

TEST(Analyze, MagnificationAndFragmentStraggler) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);

  const auto reqs = analyze(s);
  ASSERT_EQ(reqs.size(), 1u);
  const RequestBreakdown& b = reqs[0];
  EXPECT_EQ(b.total, ms(12));
  ASSERT_EQ(b.subs.size(), 3u);
  EXPECT_EQ(b.slowest, ms(10));
  EXPECT_EQ(b.median, ms(2));
  EXPECT_DOUBLE_EQ(b.magnification, 5.0);
  EXPECT_TRUE(b.straggler_is_fragment);
  EXPECT_EQ(b.length, 131072 + 1024);
  // Exclusive time: the subs sum to 14 ms, which exceeds the root's 12 ms
  // (they overlap), so the root contributes zero exclusive time.
  EXPECT_EQ(b.category_exclusive.at("client"), ms(14));
}

TEST(Analyze, SingleSubRequestHasUnitMagnification) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("client", "rank0");
  SpanId root = 0;
  sim.schedule(ms(0),
               [&] { root = s.begin(t, "request", "client", s.new_request()); });
  sim.schedule(ms(1), [&] {
    const SpanId sub = s.child(root, "sub", "client");
    sim.schedule(ms(4), [&s, sub] { s.end(sub); });
  });
  sim.schedule(ms(6), [&] { s.end(root); });
  sim.run();

  const auto reqs = analyze(s);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_DOUBLE_EQ(reqs[0].magnification, 1.0);
  EXPECT_FALSE(reqs[0].straggler_is_fragment);
}

TEST(Exporters, ChromeTraceShapeAndEscaping) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);
  s.counter("srv0.inflight", 1.0);

  std::ostringstream os;
  write_chrome_trace(os, s);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << "metadata events";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete events";
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << "counter events";
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"fragment\":1"), std::string::npos);
  // The 10 ms sub span: ts/dur are microseconds.
  EXPECT_NE(json.find("\"dur\":10000.000"), std::string::npos);
}

TEST(Exporters, StragglerReportNamesTheFragment) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);

  std::ostringstream os;
  write_straggler_report(os, s, 5);
  const std::string report = os.str();
  EXPECT_NE(report.find("magnification"), std::string::npos);
  EXPECT_NE(report.find("fragment"), std::string::npos);
  EXPECT_NE(report.find("5.00x"), std::string::npos);
}

TEST(MetricsRegistry, FlattenIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("cache.read_hits") = 7;
  reg.gauge("srv0.disk.busy_ms") = 12.5;
  reg.histogram("cache.ret_estimate_ms").add(1.0);
  reg.histogram("cache.ret_estimate_ms").add(3.0);
  EXPECT_TRUE(reg.has("cache.read_hits"));
  EXPECT_FALSE(reg.has("cache.read_misses"));

  const auto rows = reg.flatten();
  ASSERT_EQ(rows.size(), 7u);  // 1 counter + 1 gauge + 5 histogram rows
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first) << "rows sorted by name";
  }
  EXPECT_EQ(rows[0].first, "cache.read_hits");
  EXPECT_EQ(rows[0].second, 7.0);
  EXPECT_EQ(rows[1].first, "cache.ret_estimate_ms.count");
  EXPECT_EQ(rows[1].second, 2.0);
  EXPECT_EQ(rows[3].first, "cache.ret_estimate_ms.mean");
  EXPECT_DOUBLE_EQ(rows[3].second, 2.0);

  std::ostringstream os;
  reg.write_csv(os);
  EXPECT_NE(os.str().find("name,value\n"), std::string::npos);
  EXPECT_NE(os.str().find("srv0.disk.busy_ms,12.5"), std::string::npos);
}

TEST(TimeSeries, ColumnsGrowByUnion) {
  TimeSeries ts;
  MetricsRegistry reg;
  reg.counter("a") = 1;
  ts.sample(ms(10), reg);
  reg.counter("b") = 2;
  ts.sample(ms(20), reg);

  EXPECT_EQ(ts.rows(), 2u);
  ASSERT_EQ(ts.columns().size(), 2u);
  std::ostringstream os;
  ts.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ms,a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("10,1,0\n"), std::string::npos)
      << "cell for a column that did not exist yet reads as 0";
  EXPECT_NE(csv.find("20,1,2\n"), std::string::npos);
}

// ---- cluster-level behavior ----

struct TracedRun {
  sim::SimTime flushed;
  sim::Bytes served = sim::Bytes::zero();
};

sim::Task<> reader(mpiio::MpiContext ctx, mpiio::MpiFile file,
                   std::int64_t iters) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off = (k * ctx.size() + ctx.rank()) * (8LL << 16);
    co_await file.read_at(ctx.rank(), off, 65 * 1024);
    co_await ctx.barrier();
  }
}

TracedRun run_unaligned(TraceSession* session) {
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  if (session != nullptr) c.set_trace(session);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 3); });
  c.sim().run_while_pending([&] { return group.finished(); });
  TracedRun r;
  r.flushed = c.drain();
  r.served = c.total_bytes_served();
  return r;
}

TEST(ClusterTracing, DisabledSessionChangesNothing) {
  sim::Simulator scratch;
  TraceSession session(scratch);
  // set_trace(&session) then set_trace(nullptr) must leave the cluster
  // exactly as never-traced; the traced timeline must equal the untraced
  // one (instrumentation never perturbs the simulation).
  const TracedRun off = run_unaligned(nullptr);
  const TracedRun on = run_unaligned(&session);
  EXPECT_EQ(off.flushed, on.flushed)
      << "tracing must not perturb the simulated timeline";
  EXPECT_EQ(off.served, on.served);
  EXPECT_FALSE(session.spans().empty());
}

TEST(ClusterTracing, SpanTreeCoversEveryLayer) {
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  TraceSession session(c.sim());
  c.set_trace(&session);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 2); });
  c.sim().run_while_pending([&] { return group.finished(); });
  c.drain();

  int requests = 0, subs = 0, serves = 0, devices = 0;
  for (const SpanRecord& sp : session.spans()) {
    const std::string name = sp.name;
    EXPECT_FALSE(sp.open) << "span " << name << " never ended";
    if (name == "request") {
      ++requests;
      EXPECT_EQ(sp.parent, 0u);
      EXPECT_NE(sp.request, 0u);
    } else if (name == "sub") {
      ++subs;
      EXPECT_EQ(std::string(session.span(sp.parent).name), "request");
    } else if (name == "server.serve") {
      ++serves;
      EXPECT_EQ(std::string(session.span(sp.parent).name), "sub")
          << "server spans nest under the client's sub-request span";
      EXPECT_NE(sp.request, 0u);
    } else if (name == "io.read" || name == "io.write") {
      ++devices;
    }
  }
  EXPECT_EQ(requests, 4 * 2);
  // 65 KB requests decompose into a 64 KB unit plus a 1 KB fragment.
  EXPECT_EQ(subs, 2 * requests);
  EXPECT_EQ(serves, subs);
  EXPECT_GT(devices, 0) << "device dispatches must be traced";

  // The analyzer sees the same requests end-to-end.
  const auto reqs = analyze(session);
  EXPECT_EQ(reqs.size(), static_cast<std::size_t>(requests));
  for (const auto& b : reqs) {
    EXPECT_EQ(b.subs.size(), 2u);
    EXPECT_GT(b.total, sim::SimTime::zero());
  }
}

}  // namespace
}  // namespace ibridge::obs
