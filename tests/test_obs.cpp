// Observability layer: span recording, the metrics registry, the exporters,
// and the zero-cost-when-disabled guarantee at cluster level.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpiio/mpi.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibridge::obs {
namespace {

sim::SimTime ms(std::int64_t n) { return sim::SimTime::millis(n); }

TEST(TraceSession, TracksAreInterned) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId a = s.track("srv0", "io");
  const TrackId b = s.track("srv0", "cache-bg");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, s.track("srv0", "io"));
  ASSERT_EQ(s.tracks().size(), 2u);
  EXPECT_EQ(s.tracks()[static_cast<std::size_t>(a)].thread, "io");
}

TEST(TraceSession, SpanNestingAndTimestamps) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("client", "rank0");
  const RequestId rid = s.new_request();
  SpanId root = 0, child = 0;
  sim.schedule(ms(0), [&] { root = s.begin(t, "request", "client", rid); });
  sim.schedule(ms(1), [&] { child = s.child(root, "sub", "client"); });
  sim.schedule(ms(3), [&] { s.end(child); });
  sim.schedule(ms(5), [&] { s.end(root); });
  sim.run();

  const SpanRecord& r = s.span(root);
  const SpanRecord& c = s.span(child);
  EXPECT_EQ(r.parent, 0u);
  EXPECT_EQ(c.parent, root);
  EXPECT_EQ(c.request, rid) << "children inherit the request id";
  EXPECT_EQ(c.track, t) << "children inherit the track";
  EXPECT_FALSE(r.open);
  EXPECT_EQ(r.start, ms(0));
  EXPECT_EQ(r.finish, ms(5));
  EXPECT_EQ(c.start, ms(1));
  EXPECT_EQ(c.finish, ms(3));
}

TEST(TraceSession, EndAndArgWithZeroAreNoops) {
  sim::Simulator sim;
  TraceSession s(sim);
  s.end(0);
  s.arg(0, "k", std::int64_t{1});
  s.arg(0, "k", std::string("v"));
  EXPECT_TRUE(s.spans().empty());
}

TEST(TraceSession, CompleteSpansAndCounters) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("srv0", "disk");
  const SpanId id = s.complete(t, "io.read", "device", ms(2), ms(7));
  s.arg(id, "sectors", std::int64_t{128});
  const SpanRecord& r = s.span(id);
  EXPECT_FALSE(r.open);
  EXPECT_EQ(r.start, ms(2));
  EXPECT_EQ(r.finish, ms(9));
  ASSERT_EQ(r.args.size(), 1u);
  EXPECT_EQ(r.args[0].ival, 128);

  s.counter("srv0.inflight", 3.0);
  ASSERT_EQ(s.counters().size(), 1u);
  EXPECT_EQ(s.counters()[0].name, "srv0.inflight");
  EXPECT_EQ(s.counters()[0].value, 3.0);
}

// Build one synthetic request: a root with three sub-requests of 2/2/10 ms;
// the slowest is a tagged fragment on server 2.
void record_request(TraceSession& s, sim::Simulator& sim) {
  const TrackId t = s.track("client", "rank0");
  const RequestId rid = s.new_request();
  SpanId root = 0;
  sim.schedule(ms(0), [&, rid] {
    root = s.begin(t, "request", "client", rid);
    s.arg(root, "rank", std::int64_t{0});
    s.arg(root, "offset", std::int64_t{0});
    s.arg(root, "length", std::int64_t{131072 + 1024});
  });
  sim.schedule(ms(1), [&] {
    for (int i = 0; i < 3; ++i) {
      const SpanId sub = s.child(root, "sub", "client");
      s.arg(sub, "server", std::int64_t{i});
      if (i == 2) s.arg(sub, "fragment", std::int64_t{1});
      sim.schedule(i == 2 ? ms(10) : ms(2), [&s, sub] { s.end(sub); });
    }
  });
  sim.schedule(ms(12), [&] { s.end(root); });
  sim.run();
}

TEST(Analyze, MagnificationAndFragmentStraggler) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);

  const auto reqs = analyze(s);
  ASSERT_EQ(reqs.size(), 1u);
  const RequestBreakdown& b = reqs[0];
  EXPECT_EQ(b.total, ms(12));
  ASSERT_EQ(b.subs.size(), 3u);
  EXPECT_EQ(b.slowest, ms(10));
  EXPECT_EQ(b.median, ms(2));
  EXPECT_DOUBLE_EQ(b.magnification, 5.0);
  EXPECT_TRUE(b.straggler_is_fragment);
  EXPECT_EQ(b.length, 131072 + 1024);
  // Exclusive time: the subs sum to 14 ms, which exceeds the root's 12 ms
  // (they overlap), so the root contributes zero exclusive time.
  EXPECT_EQ(b.category_exclusive.at("client"), ms(14));
}

TEST(Analyze, SingleSubRequestHasUnitMagnification) {
  sim::Simulator sim;
  TraceSession s(sim);
  const TrackId t = s.track("client", "rank0");
  SpanId root = 0;
  sim.schedule(ms(0),
               [&] { root = s.begin(t, "request", "client", s.new_request()); });
  sim.schedule(ms(1), [&] {
    const SpanId sub = s.child(root, "sub", "client");
    sim.schedule(ms(4), [&s, sub] { s.end(sub); });
  });
  sim.schedule(ms(6), [&] { s.end(root); });
  sim.run();

  const auto reqs = analyze(s);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_DOUBLE_EQ(reqs[0].magnification, 1.0);
  EXPECT_FALSE(reqs[0].straggler_is_fragment);
}

TEST(Exporters, ChromeTraceShapeAndEscaping) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);
  s.counter("srv0.inflight", 1.0);

  std::ostringstream os;
  write_chrome_trace(os, s);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << "metadata events";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete events";
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << "counter events";
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"fragment\":1"), std::string::npos);
  // The 10 ms sub span: ts/dur are microseconds.
  EXPECT_NE(json.find("\"dur\":10000.000"), std::string::npos);
}

TEST(Exporters, StragglerReportNamesTheFragment) {
  sim::Simulator sim;
  TraceSession s(sim);
  record_request(s, sim);

  std::ostringstream os;
  write_straggler_report(os, s, 5);
  const std::string report = os.str();
  EXPECT_NE(report.find("magnification"), std::string::npos);
  EXPECT_NE(report.find("fragment"), std::string::npos);
  EXPECT_NE(report.find("5.00x"), std::string::npos);
}

TEST(MetricsRegistry, FlattenIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("cache.read_hits") = 7;
  reg.gauge("srv0.disk.busy_ms") = 12.5;
  reg.histogram("cache.ret_estimate_ms").add(1.0);
  reg.histogram("cache.ret_estimate_ms").add(3.0);
  EXPECT_TRUE(reg.has("cache.read_hits"));
  EXPECT_FALSE(reg.has("cache.read_misses"));

  const auto rows = reg.flatten();
  ASSERT_EQ(rows.size(), 8u);  // 1 counter + 1 gauge + 6 histogram rows
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first) << "rows sorted by name";
  }
  EXPECT_EQ(rows[0].first, "cache.read_hits");
  EXPECT_EQ(rows[0].second, 7.0);
  EXPECT_EQ(rows[1].first, "cache.ret_estimate_ms.count");
  EXPECT_EQ(rows[1].second, 2.0);
  EXPECT_EQ(rows[3].first, "cache.ret_estimate_ms.mean");
  EXPECT_DOUBLE_EQ(rows[3].second, 2.0);

  std::ostringstream os;
  reg.write_csv(os);
  EXPECT_NE(os.str().find("name,value\n"), std::string::npos);
  EXPECT_NE(os.str().find("srv0.disk.busy_ms,12.5"), std::string::npos);
}

TEST(TimeSeries, ColumnsGrowByUnion) {
  TimeSeries ts;
  MetricsRegistry reg;
  reg.counter("a") = 1;
  ts.sample(ms(10), reg);
  reg.counter("b") = 2;
  ts.sample(ms(20), reg);

  EXPECT_EQ(ts.rows(), 2u);
  ASSERT_EQ(ts.columns().size(), 2u);
  std::ostringstream os;
  ts.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ms,a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("10,1,0\n"), std::string::npos)
      << "cell for a column that did not exist yet reads as 0";
  EXPECT_NE(csv.find("20,1,2\n"), std::string::npos);
}

TEST(TimeSeries, LateGaugeColumnsBackfillEmptyNotZero) {
  TimeSeries ts;
  MetricsRegistry reg;
  reg.counter("ops") = 1;
  ts.sample(ms(10), reg);
  reg.gauge("depth") = 3.5;
  reg.counter("ops") = 4;
  ts.sample(ms(20), reg);

  ASSERT_EQ(ts.columns().size(), 2u);
  ASSERT_EQ(ts.column_kinds().size(), 2u);
  std::ostringstream os;
  ts.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ms,ops,depth\n"), std::string::npos);
  EXPECT_NE(csv.find("10,1,\n"), std::string::npos)
      << "a gauge that did not exist yet is unknown, not zero";
  EXPECT_NE(csv.find("20,4,3.5\n"), std::string::npos);
}

TEST(MetricsRegistry, SketchPolicyBoundsMemoryWithinRelativeError) {
  MetricsRegistry reg;
  reg.set_default_histogram_policy(HistogramPolicy::kSketch);
  stats::Histogram exact;
  sim::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double x = (i % 3 == 0) ? 100.0 + 10.0 * rng.uniform01()
                                  : 1.0 + rng.uniform01();
    reg.histogram("lat_ms").add(x);
    exact.add(x);
  }
  const HistogramCell& cell = reg.histogram("lat_ms");
  EXPECT_EQ(cell.policy(), HistogramPolicy::kSketch);
  ASSERT_NE(cell.sketch(), nullptr);
  EXPECT_EQ(cell.exact(), nullptr);
  const double rel = cell.sketch()->relative_error();
  for (const double p : {50.0, 95.0, 99.0}) {
    const double e = exact.percentile(p);
    EXPECT_NEAR(cell.percentile(p), e, e * rel + 1e-12) << "p" << p;
  }
  EXPECT_EQ(cell.count(), 20000u);
  EXPECT_LE(reg.histogram_memory_bytes(), 64u * 1024u)
      << "bounded policy must hold the per-metric budget";
  EXPECT_NE(reg.sketch_digest(), 0u);

  // Flatten still expands sketch-backed cells to the same six rows.
  const auto rows = reg.flatten();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].first, "lat_ms.count");
  EXPECT_EQ(rows[5].first, "lat_ms.p99");
}

TEST(MetricsRegistry, PerMetricPolicyOverrideAndDeterministicDigest) {
  MetricsRegistry a, b;
  for (MetricsRegistry* reg : {&a, &b}) {
    reg->set_histogram_policy("tail_ms", HistogramPolicy::kSketch);
    reg->set_histogram_policy("sample_ms", HistogramPolicy::kReservoir);
    for (int i = 0; i < 1000; ++i) {
      reg->histogram("tail_ms").add(1.0 + (i % 7));
      reg->histogram("sample_ms").add(2.0 * (i % 5));
      reg->histogram("exact_ms").add(3.0);
    }
  }
  EXPECT_EQ(a.histogram("tail_ms").policy(), HistogramPolicy::kSketch);
  EXPECT_EQ(a.histogram("sample_ms").policy(), HistogramPolicy::kReservoir);
  EXPECT_EQ(a.histogram("exact_ms").policy(), HistogramPolicy::kExact)
      << "the default stays exact unless overridden";
  // Identical feeds give identical fingerprints; reservoirs are seeded so
  // even the sampled cell agrees row for row.
  EXPECT_EQ(a.sketch_digest(), b.sketch_digest());
  EXPECT_DOUBLE_EQ(a.histogram("sample_ms").percentile(95.0),
                   b.histogram("sample_ms").percentile(95.0));
  a.histogram("tail_ms").add(123456.0);
  EXPECT_NE(a.sketch_digest(), b.sketch_digest());

  // The component publication path re-feeds exact histograms into bounded
  // cells sample by sample.
  stats::Histogram component;
  for (int i = 1; i <= 100; ++i) component.add(static_cast<double>(i));
  MetricsRegistry c;
  c.set_default_histogram_policy(HistogramPolicy::kSketch);
  c.histogram("merged").merge(component);
  EXPECT_EQ(c.histogram("merged").count(), 100u);
  EXPECT_NEAR(c.histogram("merged").percentile(50.0), 50.0, 50.0 * 0.01 + 1e-12);
}

// ---- flight recorder (unit level) ----

TEST(FlightRecorder, RetainsSlowestAndSampledDeterministically) {
  sim::Simulator sim;
  TraceSession s(sim);
  FlightConfig cfg;
  cfg.keep_slowest = 2;
  cfg.sample_every = 3;
  s.enable_flight_recorder(cfg);
  const TrackId t = s.track("client", "rank0");
  // Six requests, request i lasting i ms: the slowest two are {5, 6}; the
  // 1-in-3 sample keeps {1, 4}.
  for (int i = 1; i <= 6; ++i) {
    sim.schedule(ms(10 * i), [&s, &sim, t] {
      const RequestId rid = s.new_request();
      const SpanId root = s.begin(t, "request", "client", rid);
      sim.schedule(ms(static_cast<std::int64_t>(rid)),
                   [&s, root] { s.end(root); });
    });
  }
  sim.run();

  EXPECT_TRUE(s.flight_mode());
  EXPECT_EQ(s.spans_recorded(), 6u);
  EXPECT_EQ(s.requests_traced(), 6u);
  EXPECT_EQ(s.retained_request_ids(), (std::vector<RequestId>{1, 4, 5, 6}));
  EXPECT_TRUE(s.spans().empty()) << "flight mode bypasses the full store";

  const auto view = s.export_spans();
  ASSERT_EQ(view.all().size(), 4u);
  for (std::size_t i = 0; i < view.all().size(); ++i) {
    EXPECT_EQ(view.all()[i].id, i + 1) << "export ids renumber densely";
    EXPECT_EQ(view.all()[i].parent, 0u);
    EXPECT_FALSE(view.all()[i].open);
  }
  // The analyzer and exporters run on the view transparently.
  const auto reqs = analyze(s);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_EQ(reqs[3].total, ms(6));
}

TEST(FlightRecorder, BackgroundRingStaysBounded) {
  sim::Simulator sim;
  TraceSession s(sim);
  FlightConfig cfg;
  cfg.background_capacity = 8;
  cfg.counter_capacity = 8;
  s.enable_flight_recorder(cfg);
  const TrackId t = s.track("srv0", "disk");
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(ms(i), [&s, t, i] {
      const SpanId id = s.complete(t, "io.read", "device", ms(i), ms(1));
      s.arg(id, "sectors", std::int64_t{8});
      s.counter("srv0.inflight", static_cast<double>(i % 4));
    });
  }
  sim.run();
  EXPECT_EQ(s.spans_recorded(), 1000u);
  // Retention = the ring plus the short linger window for late arg()
  // attachment; either way a small constant, nowhere near the 1000 recorded.
  const auto kept = s.export_spans();
  EXPECT_LE(kept.all().size(), cfg.background_capacity + 64u);
  EXPECT_LE(s.counters().size(), cfg.counter_capacity);
  // The most recent background spans are the ones kept, args intact.
  ASSERT_FALSE(kept.all().empty());
  EXPECT_EQ(kept.all().back().start, ms(999));
  ASSERT_EQ(kept.all().back().args.size(), 1u);
  EXPECT_EQ(kept.all().back().args[0].ival, 8);
}

// ---- sim-core profiler (unit level) ----

TEST(SimProfiler, GapAttributionAndFirstMarkWins) {
  sim::Simulator sim;
  SimProfiler prof;
  const int disk = prof.category("disk");
  const int cache = prof.category("cache");
  EXPECT_EQ(prof.category("disk"), disk) << "re-interning returns the id";
  prof.set_server_count(2);
  sim.set_step_hook(&prof);
  sim.schedule(ms(2), [&] {
    prof.mark(disk);
    prof.mark(cache);  // second mark per event is ignored
    prof.heat(0, 4096);
    prof.heat(9, 1);  // out of range: silently dropped
  });
  sim.schedule(ms(5), [&] {});  // unmarked -> "other"
  sim.schedule(ms(6), [&] { prof.mark(cache); });
  sim.run();
  sim.set_step_hook(nullptr);

  EXPECT_EQ(prof.events_total(), 3u);
  EXPECT_EQ(prof.events(disk), 1u);
  EXPECT_EQ(prof.events(cache), 1u);
  EXPECT_EQ(prof.events(SimProfiler::kOther), 1u);
  // Gap attribution: the marked event absorbs the simulated-clock advance
  // since the previous event; the categories partition the timeline.
  EXPECT_EQ(prof.model_ns(disk), ms(2).ns());
  EXPECT_EQ(prof.model_ns(SimProfiler::kOther), ms(3).ns());
  EXPECT_EQ(prof.model_ns(cache), ms(1).ns());
  EXPECT_EQ(prof.heat_ops(0), 1u);
  EXPECT_EQ(prof.heat_bytes(0), 4096);
  EXPECT_EQ(prof.heat_ops(1), 0u);
  EXPECT_FALSE(prof.wall_timing_enabled());

  MetricsRegistry reg;
  prof.publish(reg);
  EXPECT_EQ(reg.counter("sim.events"), 3);
  EXPECT_DOUBLE_EQ(reg.gauge("prof.model_ms.disk"), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("prof.model_ms.other"), 3.0);
  EXPECT_EQ(reg.counter("prof.events.cache"), 1);
  EXPECT_EQ(reg.counter("srv0.prof.heat_ops"), 1);
  EXPECT_EQ(reg.counter("srv0.prof.heat_bytes"), 4096);
  EXPECT_TRUE(reg.has("prof.queue_depth.mean"));
}

// ---- cluster-level behavior ----

struct TracedRun {
  sim::SimTime flushed;
  sim::Bytes served = sim::Bytes::zero();
};

sim::Task<> reader(mpiio::MpiContext ctx, mpiio::MpiFile file,
                   std::int64_t iters) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off = (k * ctx.size() + ctx.rank()) * (8LL << 16);
    co_await file.read_at(ctx.rank(), off, 65 * 1024);
    co_await ctx.barrier();
  }
}

TracedRun run_unaligned(TraceSession* session) {
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  if (session != nullptr) c.set_trace(session);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 3); });
  c.sim().run_while_pending([&] { return group.finished(); });
  TracedRun r;
  r.flushed = c.drain();
  r.served = c.total_bytes_served();
  return r;
}

TEST(ClusterTracing, DisabledSessionChangesNothing) {
  sim::Simulator scratch;
  TraceSession session(scratch);
  // set_trace(&session) then set_trace(nullptr) must leave the cluster
  // exactly as never-traced; the traced timeline must equal the untraced
  // one (instrumentation never perturbs the simulation).
  const TracedRun off = run_unaligned(nullptr);
  const TracedRun on = run_unaligned(&session);
  EXPECT_EQ(off.flushed, on.flushed)
      << "tracing must not perturb the simulated timeline";
  EXPECT_EQ(off.served, on.served);
  EXPECT_FALSE(session.spans().empty());
}

TEST(ClusterTracing, SpanTreeCoversEveryLayer) {
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  TraceSession session(c.sim());
  c.set_trace(&session);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 2); });
  c.sim().run_while_pending([&] { return group.finished(); });
  c.drain();

  int requests = 0, subs = 0, serves = 0, devices = 0;
  for (const SpanRecord& sp : session.spans()) {
    const std::string name = sp.name;
    EXPECT_FALSE(sp.open) << "span " << name << " never ended";
    if (name == "request") {
      ++requests;
      EXPECT_EQ(sp.parent, 0u);
      EXPECT_NE(sp.request, 0u);
    } else if (name == "sub") {
      ++subs;
      EXPECT_EQ(std::string(session.span(sp.parent).name), "request");
    } else if (name == "server.serve") {
      ++serves;
      EXPECT_EQ(std::string(session.span(sp.parent).name), "sub")
          << "server spans nest under the client's sub-request span";
      EXPECT_NE(sp.request, 0u);
    } else if (name == "io.read" || name == "io.write") {
      ++devices;
    }
  }
  EXPECT_EQ(requests, 4 * 2);
  // 65 KB requests decompose into a 64 KB unit plus a 1 KB fragment.
  EXPECT_EQ(subs, 2 * requests);
  EXPECT_EQ(serves, subs);
  EXPECT_GT(devices, 0) << "device dispatches must be traced";

  // The analyzer sees the same requests end-to-end.
  const auto reqs = analyze(session);
  EXPECT_EQ(reqs.size(), static_cast<std::size_t>(requests));
  for (const auto& b : reqs) {
    EXPECT_EQ(b.subs.size(), 2u);
    EXPECT_GT(b.total, sim::SimTime::zero());
  }
}

/// Everything observable about one flight-recorded unaligned run.
struct FlightRun {
  TracedRun run;
  std::uint64_t spans_recorded = 0;
  std::uint64_t requests_traced = 0;
  std::vector<RequestId> retained;
  std::size_t analyzed = 0;
  std::string chrome_json;
};

FlightRun flight_unaligned(const FlightConfig& cfg) {
  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  TraceSession session(c.sim());
  session.enable_flight_recorder(cfg);
  c.set_trace(&session);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 3); });
  c.sim().run_while_pending([&] { return group.finished(); });
  FlightRun out;
  out.run.flushed = c.drain();
  out.run.served = c.total_bytes_served();
  out.spans_recorded = session.spans_recorded();
  out.requests_traced = session.requests_traced();
  out.retained = session.retained_request_ids();
  out.analyzed = analyze(session).size();
  std::ostringstream os;
  write_chrome_trace(os, session);
  out.chrome_json = os.str();
  return out;
}

TEST(ClusterTracing, FlightRecorderKeepsTimelineAndIsDeterministic) {
  FlightConfig cfg;
  cfg.keep_slowest = 4;
  cfg.sample_every = 5;
  const TracedRun off = run_unaligned(nullptr);
  const FlightRun a = flight_unaligned(cfg);
  const FlightRun b = flight_unaligned(cfg);

  // Flight retention must not perturb the simulation...
  EXPECT_EQ(off.flushed, a.run.flushed)
      << "flight tracing must not perturb the simulated timeline";
  EXPECT_EQ(off.served, a.run.served);
  // ...and must retain the same requests on every run.
  EXPECT_EQ(a.run.flushed, b.run.flushed);
  EXPECT_EQ(a.spans_recorded, b.spans_recorded);
  EXPECT_EQ(a.retained, b.retained);
  EXPECT_EQ(a.chrome_json, b.chrome_json);

  // 4 ranks x 3 iterations = 12 requests; retention respects the bounds.
  EXPECT_EQ(a.requests_traced, 12u);
  EXPECT_GT(a.spans_recorded, 0u);
  ASSERT_FALSE(a.retained.empty());
  EXPECT_LE(a.retained.size(),
            cfg.keep_slowest + (a.requests_traced + cfg.sample_every - 1) /
                                   cfg.sample_every);
  // Retained trees flow through the analyzer and the Chrome exporter.  The
  // analyzer may see a few extra request roots beyond the retained trees —
  // late request-tagged spans (post-completion staging) still sit in the
  // working set — but the count is deterministic.
  EXPECT_GE(a.analyzed, a.retained.size());
  EXPECT_EQ(a.analyzed, b.analyzed);
  EXPECT_NE(a.chrome_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.chrome_json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ClusterProfiler, AttributionCoversTimelineWithoutPerturbingIt) {
  const TracedRun off = run_unaligned(nullptr);

  cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
  SimProfiler prof;
  c.set_profiler(&prof);
  auto fh = c.create_file("data", 2LL << 30);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment group(c.sim(), c.client(), 4);
  group.launch(
      [&](mpiio::MpiContext ctx) { return reader(ctx, file, 3); });
  c.sim().run_while_pending([&] { return group.finished(); });
  const sim::SimTime flushed = c.drain();
  const sim::Bytes served = c.total_bytes_served();

  EXPECT_EQ(off.flushed, flushed)
      << "an attached profiler must not perturb the simulated timeline";
  EXPECT_EQ(off.served, served);

  // Every layer saw events, and the category gaps partition the timeline.
  EXPECT_GT(prof.events_total(), 0u);
  std::int64_t total_ns = 0;
  bool server_events = false, disk_events = false, client_events = false;
  for (std::size_t i = 0; i < prof.category_count(); ++i) {
    const int cat = static_cast<int>(i);
    total_ns += prof.model_ns(cat);
    const std::string name = prof.category_name(cat);
    if (name == "server" && prof.events(cat) > 0) server_events = true;
    if (name == "disk" && prof.events(cat) > 0) disk_events = true;
    if (name == "client" && prof.events(cat) > 0) client_events = true;
  }
  EXPECT_TRUE(server_events);
  EXPECT_TRUE(disk_events);
  EXPECT_TRUE(client_events);
  EXPECT_GT(total_ns, 0);
  EXPECT_LE(total_ns, c.sim().now().ns())
      << "summed category gaps reconstruct (at most) the timeline";

  // Heat counters account for exactly the bytes the servers served.
  std::int64_t heat_bytes = 0;
  std::uint64_t heat_ops = 0;
  for (std::size_t s = 0; s < prof.server_count(); ++s) {
    heat_bytes += prof.heat_bytes(s);
    heat_ops += prof.heat_ops(s);
  }
  EXPECT_EQ(heat_bytes, served.count());
  EXPECT_GT(heat_ops, 0u);

  // collect_metrics() publishes the profiler and sketch-backed service
  // tails alongside the component counters.
  MetricsRegistry reg;
  c.collect_metrics(reg);
  EXPECT_TRUE(reg.has("sim.events"));
  EXPECT_TRUE(reg.has("prof.queue_depth.mean"));
  EXPECT_TRUE(reg.has("prof.model_ms.disk"));
  EXPECT_TRUE(reg.has("srv0.prof.heat_ops"));
  EXPECT_TRUE(reg.has("srv0.server.service_ms.p50"));
  EXPECT_TRUE(reg.has("srv0.server.service_ms.p99"));
  EXPECT_EQ(reg.counter("sim.events"),
            static_cast<std::int64_t>(prof.events_total()));

  // Detaching restores the never-profiled wiring.
  c.set_profiler(nullptr);
  MetricsRegistry bare;
  c.collect_metrics(bare);
  EXPECT_FALSE(bare.has("sim.events"));
}

}  // namespace
}  // namespace ibridge::obs
