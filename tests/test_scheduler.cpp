// Tests for the I/O schedulers: merging, dispatch order, per-stream CFQ
// behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "storage/scheduler.hpp"

namespace ibridge::storage {
namespace {

PendingRequest make(sim::Simulator& sim, IoDirection dir, std::int64_t lbn,
                    std::int64_t sectors, int tag = 0) {
  return PendingRequest{BlockRequest{dir, lbn, sectors, tag}, sim.now(),
                        sim::SimPromise<BlockCompletion>(sim)};
}

// ----------------------------------------------------------------- Noop ----

TEST(NoopScheduler, FifoOrder) {
  sim::Simulator sim;
  NoopScheduler s;
  s.add(make(sim, IoDirection::kRead, 100, 8, 0));
  s.add(make(sim, IoDirection::kRead, 50, 8, 1));
  auto b1 = s.pop_next(0);
  EXPECT_EQ(b1.lbn, 100);
  auto b2 = s.pop_next(0);
  EXPECT_EQ(b2.lbn, 50);
  EXPECT_TRUE(s.empty());
}

TEST(NoopScheduler, BackAndFrontMerge) {
  sim::Simulator sim;
  NoopScheduler s;
  s.add(make(sim, IoDirection::kRead, 100, 8));
  s.add(make(sim, IoDirection::kRead, 108, 8));  // back merge
  s.add(make(sim, IoDirection::kRead, 92, 8));   // front merge
  auto b = s.pop_next(0);
  EXPECT_EQ(b.lbn, 92);
  EXPECT_EQ(b.sectors, 24);
  EXPECT_EQ(b.members.size(), 3u);
  EXPECT_TRUE(s.empty());
}

TEST(NoopScheduler, ChainedMergesAcrossQueueOrder) {
  sim::Simulator sim;
  NoopScheduler s;
  // 100..108 and 116..124 only become mergeable once 108..116 joins.
  s.add(make(sim, IoDirection::kRead, 100, 8));
  s.add(make(sim, IoDirection::kRead, 116, 8));
  s.add(make(sim, IoDirection::kRead, 108, 8));
  auto b = s.pop_next(0);
  EXPECT_EQ(b.sectors, 24);
}

TEST(NoopScheduler, NoMergeAcrossDirections) {
  sim::Simulator sim;
  NoopScheduler s;
  s.add(make(sim, IoDirection::kRead, 100, 8));
  s.add(make(sim, IoDirection::kWrite, 108, 8));
  auto b = s.pop_next(0);
  EXPECT_EQ(b.sectors, 8);
  EXPECT_EQ(s.depth(), 1u);
}

TEST(NoopScheduler, MergeRespectsSectorCap) {
  sim::Simulator sim;
  NoopScheduler s(/*max_merge_sectors=*/16);
  s.add(make(sim, IoDirection::kRead, 0, 12));
  s.add(make(sim, IoDirection::kRead, 12, 12));
  auto b = s.pop_next(0);
  EXPECT_EQ(b.sectors, 12);  // 24 > cap, no merge
}

TEST(NoopScheduler, PeekReportsFrontRequest) {
  sim::Simulator sim;
  NoopScheduler s;
  EXPECT_FALSE(s.peek(0).has_value());
  s.add(make(sim, IoDirection::kRead, 500, 8, 3));
  auto p = s.peek(100);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->distance, 400);
  EXPECT_EQ(p->tag, 3);
}

// -------------------------------------------------------------- Elevator ----

TEST(ElevatorScheduler, ScanOrderFromHead) {
  sim::Simulator sim;
  ElevatorScheduler s;
  s.add(make(sim, IoDirection::kRead, 300, 8));
  s.add(make(sim, IoDirection::kRead, 100, 8));
  s.add(make(sim, IoDirection::kRead, 200, 8));
  EXPECT_EQ(s.pop_next(150).lbn, 200);  // first at/after head
  EXPECT_EQ(s.pop_next(208).lbn, 300);
  EXPECT_EQ(s.pop_next(308).lbn, 100);  // wrap to lowest
}

TEST(ElevatorScheduler, MergesContiguousRun) {
  sim::Simulator sim;
  ElevatorScheduler s;
  for (int i = 0; i < 4; ++i) {
    s.add(make(sim, IoDirection::kRead, 1000 + 8 * i, 8, i));
  }
  auto b = s.pop_next(0);
  EXPECT_EQ(b.lbn, 1000);
  EXPECT_EQ(b.sectors, 32);
  EXPECT_EQ(b.members.size(), 4u);
}

TEST(ElevatorScheduler, PeekMatchesPopChoice) {
  sim::Simulator sim;
  ElevatorScheduler s;
  s.add(make(sim, IoDirection::kRead, 400, 8, 9));
  s.add(make(sim, IoDirection::kRead, 900, 8, 4));
  auto p = s.peek(500);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->tag, 4);
  EXPECT_EQ(s.pop_next(500).lbn, 900);
}

// ------------------------------------------------------------------ CFQ ----

TEST(CfqScheduler, RoundRobinAcrossStreams) {
  sim::Simulator sim;
  CfqScheduler s(/*quantum=*/1);
  s.add(make(sim, IoDirection::kRead, 100, 8, 1));
  s.add(make(sim, IoDirection::kRead, 200, 8, 2));
  s.add(make(sim, IoDirection::kRead, 108, 8, 1));
  s.add(make(sim, IoDirection::kRead, 208, 8, 2));
  std::vector<int> tags;
  while (!s.empty()) {
    auto b = s.pop_next(0);
    tags.push_back(b.members.front().req.tag);
  }
  // quantum=1: strict alternation (merging may combine same-stream pieces).
  ASSERT_GE(tags.size(), 2u);
  EXPECT_EQ(tags[0], 1);
  EXPECT_EQ(tags[1], 2);
}

TEST(CfqScheduler, QuantumKeepsStreamActive) {
  sim::Simulator sim;
  CfqScheduler s(/*quantum=*/8);
  // Non-contiguous requests within stream 1 so they can't merge.
  s.add(make(sim, IoDirection::kRead, 100, 8, 1));
  s.add(make(sim, IoDirection::kRead, 10'000, 8, 1));
  s.add(make(sim, IoDirection::kRead, 200, 8, 2));
  EXPECT_EQ(s.pop_next(0).members.front().req.tag, 1);
  EXPECT_EQ(s.pop_next(0).members.front().req.tag, 1);  // budget remains
  EXPECT_EQ(s.pop_next(0).members.front().req.tag, 2);
}

TEST(CfqScheduler, ScanOrderWithinStream) {
  sim::Simulator sim;
  CfqScheduler s;
  s.add(make(sim, IoDirection::kRead, 5000, 8, 1));
  s.add(make(sim, IoDirection::kRead, 1000, 8, 1));
  auto b = s.pop_next(2000);  // head between them -> pick 5000 (>= head)
  EXPECT_EQ(b.lbn, 5000);
}

TEST(CfqScheduler, CrossStreamContiguousAbsorb) {
  sim::Simulator sim;
  CfqScheduler s;
  s.add(make(sim, IoDirection::kRead, 100, 8, 1));
  s.add(make(sim, IoDirection::kRead, 108, 8, 2));  // other stream, adjacent
  auto b = s.pop_next(0);
  EXPECT_EQ(b.sectors, 16);
  EXPECT_EQ(b.members.size(), 2u);
  EXPECT_TRUE(s.empty());
}

TEST(CfqScheduler, CrossStreamFrontAbsorb) {
  sim::Simulator sim;
  CfqScheduler s;
  s.add(make(sim, IoDirection::kRead, 108, 8, 1));
  s.add(make(sim, IoDirection::kRead, 100, 8, 2));
  auto b = s.pop_next(104);  // picks stream 1's request first (>= head)
  EXPECT_EQ(b.lbn, 100);
  EXPECT_EQ(b.sectors, 16);
}

TEST(CfqScheduler, PeekPrefersActiveStream) {
  sim::Simulator sim;
  CfqScheduler s;
  s.add(make(sim, IoDirection::kRead, 100, 8, 1));
  (void)s.pop_next(0);  // stream 1 becomes active
  s.add(make(sim, IoDirection::kRead, 50'000, 8, 1));
  s.add(make(sim, IoDirection::kRead, 108, 8, 2));
  auto p = s.peek(108);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->tag, 1) << "active stream retains the slice";
}

TEST(CfqScheduler, DepthTracksAddsAndPops) {
  sim::Simulator sim;
  CfqScheduler s;
  for (int i = 0; i < 6; ++i) {
    s.add(make(sim, IoDirection::kRead, i * 1'000'000, 8, i % 3));
  }
  EXPECT_EQ(s.depth(), 6u);
  std::size_t popped = 0;
  while (!s.empty()) {
    popped += s.pop_next(0).members.size();
  }
  EXPECT_EQ(popped, 6u);
  EXPECT_EQ(s.depth(), 0u);
}

TEST(CfqScheduler, LastTagTracksDispatches) {
  sim::Simulator sim;
  CfqScheduler s(/*quantum=*/1);
  s.add(make(sim, IoDirection::kRead, 100, 8, 11));
  (void)s.pop_next(0);
  EXPECT_EQ(s.last_tag(), 11);
}

}  // namespace
}  // namespace ibridge::storage
