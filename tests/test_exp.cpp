// Tests for the exp layer: the deterministic parallel Runner, BENCH gauge
// JSON, checked CLI parsing — and the headline property the whole subsystem
// exists to uphold: parallel experiment execution is byte-identical to
// serial.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace ibridge::exp {
namespace {

// -------------------------------------------------------------- Runner ----

TEST(Runner, MapCommitsResultsInSubmissionOrder) {
  Runner r(8);
  const std::vector<int> out =
      r.map<int>(100, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Runner, ZeroAndNegativeJobsCountsRunInline) {
  for (int jobs : {0, 1, -3}) {
    Runner r(jobs);
    std::vector<std::thread::id> ids = r.map<std::thread::id>(
        4, [](int) { return std::this_thread::get_id(); });
    for (const auto& id : ids) EXPECT_EQ(id, std::this_thread::get_id());
  }
}

TEST(Runner, WorkersActuallyRunOffThread) {
  Runner r(4);
  std::atomic<int> off_thread{0};
  const auto caller = std::this_thread::get_id();
  r.run(32, [&](int) {
    if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
  });
  EXPECT_GT(off_thread.load(), 0);
}

TEST(Runner, EmptyBatchIsANoOp) {
  Runner r(4);
  EXPECT_TRUE(r.map<int>(0, [](int i) { return i; }).empty());
  EXPECT_TRUE(r.map<int>(-5, [](int i) { return i; }).empty());
}

TEST(Runner, FirstExceptionPropagatesAndOtherJobsStillRun) {
  Runner r(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(r.run(40,
                     [&](int i) {
                       ran.fetch_add(1);
                       if (i == 7) throw std::runtime_error("job 7 boom");
                     }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 40);
  // The pool survives a throwing batch.
  EXPECT_EQ(r.map<int>(3, [](int i) { return i + 1; }),
            (std::vector<int>{1, 2, 3}));
}

TEST(Runner, ReusableAcrossBatches) {
  Runner r(2);
  for (int batch = 0; batch < 5; ++batch) {
    const auto out = r.map<int>(10, [&](int i) { return batch * 100 + i; });
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)], batch * 100 + i);
  }
}

TEST(Runner, DefaultJobsIsClamped) {
  EXPECT_GE(Runner::default_jobs(), 1);
  EXPECT_LE(Runner::default_jobs(), 16);
}

TEST(Runner, ProgressSnapshotsArriveOnCallingThread) {
  for (int jobs : {1, 4}) {
    Runner r(jobs);
    const auto caller = std::this_thread::get_id();
    std::vector<Runner::Progress> seen;
    bool off_thread = false;
    r.set_progress(
        [&](const Runner::Progress& p) {
          if (std::this_thread::get_id() != caller) off_thread = true;
          seen.push_back(p);
        },
        0.01);
    r.run(12, [](int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });

    ASSERT_FALSE(seen.empty()) << "jobs=" << jobs;
    EXPECT_FALSE(off_thread) << "progress must run on the calling thread";
    EXPECT_EQ(seen.back().completed, 12) << "final snapshot sees the batch";
    EXPECT_EQ(seen.back().total, 12);
    EXPECT_GE(seen.back().seconds, 0.0);
    for (std::size_t i = 1; i < seen.size(); ++i) {
      EXPECT_LE(seen[i - 1].completed, seen[i].completed) << "monotonic";
    }

    // Detaching stops delivery; the runner keeps working.
    r.set_progress(nullptr);
    const std::size_t before = seen.size();
    EXPECT_EQ(r.map<int>(3, [](int i) { return i; }),
              (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(seen.size(), before);
  }
}

TEST(Runner, SketchMetricOutputIsJobCountInvariant) {
  // Bounded-memory metrics keep the headline guarantee: a sketch-policy
  // registry fed per-job deterministic streams produces byte-identical CSV
  // and digests whatever the worker count.
  auto build = [](int jobs) {
    Runner r(jobs);
    const auto cells = r.map<std::string>(6, [](int i) {
      obs::MetricsRegistry reg;
      reg.set_default_histogram_policy(obs::HistogramPolicy::kSketch);
      sim::Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(i));
      for (int k = 0; k < 5000; ++k) {
        reg.histogram("lat_ms").add(0.25 + 40.0 * rng.uniform01());
        reg.histogram("bytes").add(
            static_cast<double>(1 + rng.below(1 << 20)));
      }
      std::ostringstream os;
      reg.write_csv(os);
      return os.str() + "#" + std::to_string(reg.sketch_digest()) + "\n";
    });
    std::string all;
    for (const std::string& s : cells) all += s;
    return all;
  };
  EXPECT_EQ(build(1), build(8));
}

TEST(Gauge, PeakRssIsMeasurable) {
  const double mb = peak_rss_mb();
  EXPECT_GT(mb, 0.0) << "VmHWM should parse on Linux";
  EXPECT_LT(mb, 1e6) << "sanity: under a terabyte";
}

TEST(Gauge, PeakRssRusageFallbackIsMeasurable) {
  // The getrusage path must stand on its own (it is what peak_rss_mb()
  // returns on hosts without procfs) and agree with VmHWM to within a
  // factor — both measure the same high-water mark, in different units.
  const double mb = peak_rss_mb_rusage();
  EXPECT_GT(mb, 0.0) << "getrusage(RUSAGE_SELF) should work on POSIX";
  EXPECT_LT(mb, 1e6);
  const double vmhwm = peak_rss_mb();
  EXPECT_GT(mb, vmhwm * 0.5);
  EXPECT_LT(mb, vmhwm * 2.0 + 1.0);
}

// ------------------------------------------- parallel == serial, proven ----

struct CaseDigests {
  std::uint64_t payload = 0, image = 0, sd = 0, si = 0, ss = 0, events = 0;
  bool operator==(const CaseDigests&) const = default;
};

CaseDigests digest_case(std::uint64_t seed) {
  const check::FuzzCase c = check::generate_case(seed);
  const check::DiffReport d = check::run_differential(c);
  CaseDigests out;
  out.payload = d.ibridge.payload_digest;
  out.image = d.ibridge.image_digest;
  out.sd = d.disk.stats_digest;
  out.si = d.ibridge.stats_digest;
  out.ss = d.ssd.stats_digest;
  out.events = d.ibridge.events;
  return out;
}

TEST(Runner, DifferentialDigestsAreJobCountInvariant) {
  constexpr int kCases = 8;
  Runner serial(1), pool(8);
  const auto ser = serial.map<CaseDigests>(
      kCases, [](int i) { return digest_case(0xD15C0ULL + static_cast<std::uint64_t>(i)); });
  const auto par = pool.map<CaseDigests>(
      kCases, [](int i) { return digest_case(0xD15C0ULL + static_cast<std::uint64_t>(i)); });
  ASSERT_EQ(ser.size(), par.size());
  for (int i = 0; i < kCases; ++i) {
    EXPECT_EQ(ser[static_cast<std::size_t>(i)], par[static_cast<std::size_t>(i)])
        << "case " << i << " diverged between --jobs 1 and --jobs 8";
  }
}

TEST(Runner, GaugeModelSectionIsJobCountInvariant) {
  // The exact projection CI compares: Gauge::json(/*include_wall=*/false)
  // built from parallel results must match the serial build byte-for-byte.
  auto build = [](int jobs) {
    Runner r(jobs);
    const auto digests = r.map<CaseDigests>(
        6, [](int i) { return digest_case(0xBEEFULL + static_cast<std::uint64_t>(i)); });
    Gauge g("determinism_probe");
    for (std::size_t i = 0; i < digests.size(); ++i) {
      g.set("case" + std::to_string(i) + ".events",
            static_cast<double>(digests[i].events));
      g.set("case" + std::to_string(i) + ".payload",
            static_cast<double>(digests[i].payload));
    }
    g.set_wall("jobs", jobs);  // wall differs; model must not
    return g.json(/*include_wall=*/false);
  };
  EXPECT_EQ(build(1), build(8));
}

// --------------------------------------------------------------- Gauge ----

TEST(Gauge, JsonShapeAndWallExclusion) {
  Gauge g("shape");
  g.set("b", 2.5);
  g.set("a", 1.0);
  g.set_wall("seconds", 0.25);
  const std::string full = g.json();
  EXPECT_NE(full.find("\"bench\": \"shape\""), std::string::npos);
  EXPECT_NE(full.find("\"schema\": \"ibridge-bench-gauge-v1\""),
            std::string::npos);
  EXPECT_NE(full.find("\"wall\""), std::string::npos);
  EXPECT_LT(full.find("\"a\""), full.find("\"b\""));  // sorted keys

  const std::string model_only = g.json(/*include_wall=*/false);
  EXPECT_EQ(model_only.find("\"wall\""), std::string::npos);
  EXPECT_EQ(model_only.find("seconds"), std::string::npos);
}

TEST(Gauge, WriteFileEmitsBenchJson) {
  Gauge g("unit_probe");
  g.set("x", 42.0);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(g.write_file(dir));
  std::ifstream in(dir + "/BENCH_unit_probe.json");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), g.json());
  std::remove((dir + "/BENCH_unit_probe.json").c_str());
}

TEST(Gauge, NumbersRoundTripAtFullPrecision) {
  Gauge g("prec");
  g.set("v", 0.1 + 0.2);  // not representable as a short decimal
  const std::string j = g.json();
  double parsed = 0;
  const auto pos = j.find("\"v\": ");
  ASSERT_NE(pos, std::string::npos);
  parsed = std::stod(j.substr(pos + 5));
  EXPECT_EQ(parsed, 0.1 + 0.2);
}

// ----------------------------------------------------------------- cli ----

TEST(Cli, ParseIntAcceptsExactIntegers) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("12345"), 12345);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("0x10"), 16);
  EXPECT_EQ(parse_int("0X1f"), 31);
  EXPECT_EQ(parse_int("-0x10"), -16);
  EXPECT_EQ(parse_int("9223372036854775807"), INT64_MAX);
}

TEST(Cli, ParseIntRejectsGarbageAndOverflow) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("10O").has_value());  // the atoi footgun: typo'd O
  EXPECT_FALSE(parse_int("12 ").has_value());
  EXPECT_FALSE(parse_int(" 12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());  // INT64_MAX+1
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(Cli, ParseIntEnforcesRange) {
  EXPECT_EQ(parse_int("5", 1, 10), 5);
  EXPECT_FALSE(parse_int("0", 1, 10).has_value());
  EXPECT_FALSE(parse_int("11", 1, 10).has_value());
  EXPECT_EQ(parse_int("1", 1, 10), 1);
  EXPECT_EQ(parse_int("10", 1, 10), 10);
}

TEST(Cli, ParseU64AcceptsFullRangeRejectsSign) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_u64("0xdeadbeef"), 0xdeadbeefULL);
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("seed").has_value());
}

}  // namespace
}  // namespace ibridge::exp
