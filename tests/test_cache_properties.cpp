// Property tests for IBridgeCache: structural invariants that must hold
// after ANY sequence of operations, swept across configurations.
//
//   I1. table bytes == log live bytes (no space leaks, no double counting)
//   I2. dirty bytes <= cached bytes
//   I3. cached bytes <= configured capacity (after quiescence)
//   I4. coverage() of any cached range round-trips the written bytes
//   I5. after drain(): dirty == 0 and the disk image equals the reference
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/cache.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

namespace ibridge::core {
namespace {

using storage::IoDirection;

storage::SeekProfile profile() {
  storage::SeekProfile p({{1000, 0.5}, {100'000, 1.5}, {10'000'000, 2.0}});
  p.set_rotation(sim::SimTime::millis(2));
  p.set_peak_bandwidth(85e6);
  p.set_peak_write_bandwidth(80e6);
  p.set_write_surcharge(3.0, 0.4);
  return p;
}

// (cache capacity KB, threshold KB, admission policy)
using Param = std::tuple<int, int, AdmissionPolicy>;

class CacheInvariants : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    sim = std::make_unique<sim::Simulator>();
    auto hp = storage::paper_hdd();
    hp.anticipation_ms = 0;
    disk = std::make_unique<storage::HddModel>(*sim, hp);
    ssd = std::make_unique<storage::SsdModel>(*sim, storage::paper_ssd());
    disk_fs = std::make_unique<fsim::LocalFileSystem>(
        *sim, *disk, fsim::DataMode::kVerify);
    ssd_fs = std::make_unique<fsim::LocalFileSystem>(
        *sim, *ssd, fsim::DataMode::kVerify);

    const auto [cap_kb, thresh_kb, policy] = GetParam();
    IBridgeConfig cfg;
    cfg.enabled = true;
    cfg.ssd_cache_bytes = static_cast<std::int64_t>(cap_kb) * 1024;
    cfg.log_segment_bytes =
        std::min<std::int64_t>(cfg.ssd_cache_bytes / 4, 64 << 10);
    cfg.fragment_threshold = static_cast<std::int64_t>(thresh_kb) * 1024;
    cfg.random_threshold = cfg.fragment_threshold;
    cfg.admission = policy;
    cache = std::make_unique<IBridgeCache>(*sim, cfg, ServerId{0}, *disk_fs,
                                           *ssd_fs, profile());
    cache->start();
    file = disk_fs->create("df", kSpan + (1 << 20));
    ref.assign(kSpan, 0);
  }

  void TearDown() override { cache->stop(); }

  void op_write(std::int64_t off, std::int64_t len, std::uint8_t seed,
                bool fragment) {
    std::vector<std::byte> data(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      data[static_cast<std::size_t>(i)] =
          static_cast<std::byte>((seed + i) & 0xff);
    }
    CacheRequest r{IoDirection::kWrite, file,    Offset{off},
                   Bytes{len},          fragment, {ServerId{1}},
                   0};
    bool done = false;
    auto t = [](IBridgeCache& c, CacheRequest req,
                std::span<const std::byte> d, bool& flag) -> sim::Task<> {
      co_await c.serve(std::move(req), d, {});
      flag = true;
    }(*cache, std::move(r), data, done);
    t.start();
    sim->run_while_pending([&] { return done; });
    std::memcpy(ref.data() + off, data.data(), static_cast<std::size_t>(len));
  }

  std::vector<std::byte> op_read(std::int64_t off, std::int64_t len) {
    std::vector<std::byte> buf(static_cast<std::size_t>(len));
    CacheRequest r{IoDirection::kRead, file, Offset{off}, Bytes{len},
                   false, {}, 0};
    bool done = false;
    auto t = [](IBridgeCache& c, CacheRequest req, std::span<std::byte> d,
                bool& flag) -> sim::Task<> {
      co_await c.serve(std::move(req), {}, d);
      flag = true;
    }(*cache, std::move(r), buf, done);
    t.start();
    sim->run_while_pending([&] { return done; });
    return buf;
  }

  // I1 holds only at quiescence: in-flight admissions and background
  // staging legitimately hold log space before their table insert.
  void check_quiescent_invariants(const char* where) {
    ASSERT_EQ(cache->table().bytes_cached(), cache->log().live_bytes())
        << where << ": table/log byte accounting diverged (I1)";
    ASSERT_LE(cache->table().dirty_bytes(), cache->table().bytes_cached())
        << where << " (I2)";
  }
  void check_running_invariants(const char* where) {
    ASSERT_LE(cache->table().bytes_cached(), cache->log().live_bytes())
        << where << ": table claims more bytes than the log holds";
    ASSERT_LE(cache->table().dirty_bytes(), cache->table().bytes_cached())
        << where << " (I2)";
  }

  static constexpr std::int64_t kSpan = 4 << 20;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<storage::HddModel> disk;
  std::unique_ptr<storage::SsdModel> ssd;
  std::unique_ptr<fsim::LocalFileSystem> disk_fs;
  std::unique_ptr<fsim::LocalFileSystem> ssd_fs;
  std::unique_ptr<IBridgeCache> cache;
  fsim::FileId file = fsim::kInvalidFile;
  std::vector<std::uint8_t> ref;
};

TEST_P(CacheInvariants, RandomOpsPreserveAllInvariants) {
  sim::Rng rng(std::get<0>(GetParam()) * 31 +
               std::get<1>(GetParam()) * 7 +
               static_cast<int>(std::get<2>(GetParam())));
  for (int op = 0; op < 150; ++op) {
    const std::int64_t off = rng.uniform(0, kSpan - 1);
    const std::int64_t len =
        std::min<std::int64_t>(rng.uniform(1, 40'000), kSpan - off);
    if (rng.chance(0.65)) {
      op_write(off, len, static_cast<std::uint8_t>(op), rng.chance(0.4));
    } else {
      const auto got = op_read(off, len);
      for (std::int64_t i = 0; i < len; ++i) {
        ASSERT_EQ(static_cast<std::uint8_t>(got[static_cast<std::size_t>(i)]),
                  ref[static_cast<std::size_t>(off + i)])
            << "op " << op << " at " << off + i << " (I4)";
      }
    }
    check_running_invariants("mid-run");
  }

  // Let background staging settle, then drain.
  sim->run_until(sim->now() + sim::SimTime::seconds(2));
  bool drained = false;
  auto t = [](IBridgeCache& c, bool& flag) -> sim::Task<> {
    co_await c.drain();
    flag = true;
  }(*cache, drained);
  t.start();
  sim->run_while_pending([&] { return drained; });

  ASSERT_EQ(cache->table().dirty_bytes(), Bytes::zero()) << "(I5)";
  check_quiescent_invariants("after drain");
  // Capacity respected at quiescence (I3).
  ASSERT_LE(cache->table().bytes_cached(),
            Bytes{cache->config().ssd_cache_bytes});
  // The disk image alone must now equal the reference (I5).
  std::vector<std::byte> image(kSpan);
  disk_fs->peek_bytes(file, 0, image);
  ASSERT_EQ(0, std::memcmp(image.data(), ref.data(), ref.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheInvariants,
    ::testing::Combine(
        ::testing::Values(64, 256, 4096),        // capacity KB
        ::testing::Values(8, 20, 40),            // threshold KB
        ::testing::Values(AdmissionPolicy::kReturnBased,
                          AdmissionPolicy::kAlwaysSmall,
                          AdmissionPolicy::kHotBlock)),
    [](const auto& tinfo) {
      return "cap" + std::to_string(std::get<0>(tinfo.param)) + "k_thr" +
             std::to_string(std::get<1>(tinfo.param)) + "k_pol" +
             std::to_string(static_cast<int>(std::get<2>(tinfo.param)));
    });

}  // namespace
}  // namespace ibridge::core
