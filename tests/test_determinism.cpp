// Golden-replay determinism: a simulation is a pure function of its
// configuration.  Running the same generated case on two freshly built
// clusters must reproduce the exact event count, the exact simulated
// timeline, and bit-identical payload / image / stats digests — while
// different seeds must actually diverge (a digest that never changes proves
// nothing).
#include <gtest/gtest.h>

#include <cstdint>

#include "check/differential.hpp"
#include "check/generator.hpp"

namespace ibridge::check {
namespace {

TEST(Determinism, SameSeedIsBitIdenticalUnderIBridge) {
  for (std::uint64_t seed : {3ULL, 77ULL, 0xabcdefULL}) {
    const FuzzCase c = generate_case(seed);
    const DeterminismReport r = check_determinism(c, Policy::kIBridge);
    ASSERT_TRUE(r.ok()) << "seed=" << seed << ": " << r.failure;
    // Spell the big ones out so a regression names the diverging quantity.
    EXPECT_EQ(r.first.events, r.second.events) << "seed=" << seed;
    EXPECT_EQ(r.first.payload_digest, r.second.payload_digest)
        << "seed=" << seed;
    EXPECT_EQ(r.first.image_digest, r.second.image_digest) << "seed=" << seed;
    EXPECT_EQ(r.first.stats_digest, r.second.stats_digest) << "seed=" << seed;
    EXPECT_EQ(r.first.total_elapsed.ns(), r.second.total_elapsed.ns())
        << "seed=" << seed;
    EXPECT_GT(r.first.events, 0u);
  }
}

TEST(Determinism, SameSeedIsBitIdenticalUnderOtherPolicies) {
  const FuzzCase c = generate_case(11);
  for (Policy p : {Policy::kDiskOnly, Policy::kSsdOnly}) {
    const DeterminismReport r = check_determinism(c, p);
    ASSERT_TRUE(r.ok()) << to_string(p) << ": " << r.failure;
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Different seeds produce different workloads and must leave different
  // fingerprints; identical ones would mean the digests are blind.
  const FuzzCase a = generate_case(100);
  const FuzzCase b = generate_case(101);
  cluster::Cluster ca(make_config(a, Policy::kIBridge));
  cluster::Cluster cb(make_config(b, Policy::kIBridge));
  const RunReport ra = run_case(ca, a, Policy::kIBridge);
  const RunReport rb = run_case(cb, b, Policy::kIBridge);
  ASSERT_TRUE(ra.ok()) << ra.failure;
  ASSERT_TRUE(rb.ok()) << rb.failure;
  EXPECT_NE(ra.stats_digest, rb.stats_digest);
  EXPECT_TRUE(ra.events != rb.events || ra.image_digest != rb.image_digest);
}

TEST(Determinism, RerunOnSameClusterIsWarmNotIdentical) {
  // The same case replayed on one long-lived cluster reuses the file and
  // the cache state: timings may legitimately differ (warm cache), but the
  // data read back must still match the reference every time.
  const FuzzCase c = generate_case(55);
  cluster::Cluster cl(make_config(c, Policy::kIBridge));
  const RunReport first = run_case(cl, c, Policy::kIBridge, nullptr, "f.dat");
  const RunReport second = run_case(cl, c, Policy::kIBridge, nullptr, "f.dat");
  ASSERT_TRUE(first.ok()) << first.failure;
  ASSERT_TRUE(second.ok()) << second.failure;
  EXPECT_EQ(first.image_digest, second.image_digest)
      << "same writes must leave the same file image";
}

}  // namespace
}  // namespace ibridge::check
