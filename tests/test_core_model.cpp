// Tests for the iBridge analytical core: the Equation (1)/(2) service-time
// model, the Equation (3) return estimator, and client-side fragment
// tagging.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/return_estimator.hpp"
#include "core/service_time.hpp"
#include "core/tagger.hpp"
#include "pvfs/layout.hpp"

namespace ibridge::core {
namespace {

using storage::IoDirection;

// Synthetic profile: seek(d) = 1 ms flat beyond 1000 sectors (0.5 below),
// rotation 2 ms, 100 MB/s both directions, 3 ms small-write surcharge.
storage::SeekProfile synthetic_profile() {
  storage::SeekProfile p({{1000, 0.5}, {2000, 1.0}, {1'000'000, 1.0}});
  p.set_rotation(sim::SimTime::millis(2));
  p.set_peak_bandwidth(100e6);
  p.set_peak_write_bandwidth(100e6);
  p.set_write_surcharge(3.0, 0.5);
  return p;
}

constexpr double kW = 1.0 / 8.0;  // paper's decay

TEST(ServiceTimeModel, FirstPredictionHasNoSeek) {
  ServiceTimeModel m(synthetic_profile(), kW);
  // No previous location: distance treated as 0 -> transfer only.
  EXPECT_NEAR(m.predict_ms(5000, Bytes{100'000}, IoDirection::kRead), 1.0, 1e-9);
}

TEST(ServiceTimeModel, PredictionAddsSeekAndRotation) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);  // pin lambda at 0
  // Distance 2000 -> seek 1 ms + rotation 2 ms + transfer 1 ms.
  EXPECT_NEAR(m.predict_ms(2000, Bytes{100'000}, IoDirection::kRead), 4.0, 1e-6);
}

TEST(ServiceTimeModel, WritePredictionsCarrySurcharge) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);
  const double rd = m.predict_ms(2000, Bytes{4096}, IoDirection::kRead);
  const double wr_small = m.predict_ms(2000, Bytes{4096}, IoDirection::kWrite);
  const double wr_large = m.predict_ms(2000, Bytes{64 * 1024}, IoDirection::kWrite);
  EXPECT_NEAR(wr_small - rd, 3.0, 1e-6);
  // Large writes pay only the large surcharge (plus extra transfer).
  EXPECT_NEAR(wr_large - m.predict_ms(2000, Bytes{64 * 1024}, IoDirection::kRead),
              0.5, 1e-6);
}

TEST(ServiceTimeModel, Equation1DecaysWithPaperWeights) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);
  const double t0 = m.t();
  const double sample = m.predict_ms(2000, Bytes{100'000}, IoDirection::kRead);
  EXPECT_NEAR(m.t_if_disk(2000, Bytes{100'000}, IoDirection::kRead),
              t0 / 8.0 + sample * 7.0 / 8.0, 1e-9);
}

TEST(ServiceTimeModel, Equation2LeavesTUnchanged) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(2000, Bytes{100'000}, IoDirection::kRead, 2200);
  const double t = m.t();
  EXPECT_EQ(m.t_if_ssd(), t);
}

TEST(ServiceTimeModel, ObserveDiskUpdatesLambda) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 10'000);
  // Next request at 10'000 is a continuation: cheapest possible.
  const double near = m.predict_ms(10'000, Bytes{4096}, IoDirection::kRead);
  const double far = m.predict_ms(500'000, Bytes{4096}, IoDirection::kRead);
  EXPECT_LT(near, far);
}

TEST(ServiceTimeModel, TConvergesToSteadySample) {
  ServiceTimeModel m(synthetic_profile(), kW);
  for (int i = 0; i < 50; ++i) {
    m.observe_disk(i % 2 == 0 ? 0 : 5000, Bytes{100'000}, IoDirection::kRead,
                   i % 2 == 0 ? 200 : 5200);
  }
  // Steady alternating far requests: T approaches seek+rot+xfer = 4 ms.
  EXPECT_NEAR(m.t(), 4.0, 0.3);
}

// ------------------------------------------------------ ReturnEstimator ----

TEST(ReturnEstimator, PositiveWhenRequestCostlierThanAverage) {
  ServiceTimeModel m(synthetic_profile(), kW);
  // T is low (fresh model), any far random request has positive return.
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);
  const double ret =
      ReturnEstimator::base_return(m, 500'000, Bytes{4096}, IoDirection::kRead);
  EXPECT_GT(ret, 0.0);
}

TEST(ReturnEstimator, NegativeWhenRequestCheaperThanAverage) {
  ServiceTimeModel m(synthetic_profile(), kW);
  // Drive T high with expensive requests, then a continuation is cheap.
  for (int i = 0; i < 20; ++i) {
    m.observe_disk(i % 2 ? 0 : 800'000, Bytes{100'000}, IoDirection::kRead,
                   i % 2 ? 100 : 800'100);
  }
  const double ret = ReturnEstimator::base_return(m, 100, Bytes{4096}, IoDirection::kRead);  // continuation at last end
  EXPECT_LT(ret, 0.0);
}

TEST(ReturnEstimator, BoostAppliesOnlyWhenSelfIsSlowest) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);
  m.observe_disk(700'000, Bytes{65536}, IoDirection::kRead, 700'128);
  const double t_self = m.t();
  ASSERT_GT(t_self, 0.0);

  ReturnEstimator est(true);
  // 3-piece parent, first piece on this server (0): siblings are 1 and 2.
  const SiblingSet siblings{ServerId{0}, 3, 3, 0};

  // Case 1: peers are slower -> no boost.
  TBoard slow_peers{0.0, t_self + 5.0, t_self + 3.0};
  auto e1 = est.estimate(m, 500'000, Bytes{4096}, IoDirection::kRead, true, ServerId{0},
                         siblings, slow_peers);
  EXPECT_FALSE(e1.boosted);

  // Case 2: self is the slowest -> boost by (T_max - T_sec_max) * n.
  TBoard fast_peers{0.0, t_self - 1.0, t_self - 2.0};
  auto e2 = est.estimate(m, 500'000, Bytes{4096}, IoDirection::kRead, true, ServerId{0},
                         siblings, fast_peers);
  EXPECT_TRUE(e2.boosted);
  const double base =
      ReturnEstimator::base_return(m, 500'000, Bytes{4096}, IoDirection::kRead);
  EXPECT_NEAR(e2.ret_ms, base + (t_self - (t_self - 1.0)) * 2.0, 1e-9);
}

TEST(ReturnEstimator, NonFragmentsNeverBoost) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(0, Bytes{0}, IoDirection::kRead, 0);
  ReturnEstimator est(true);
  const SiblingSet siblings{ServerId{0}, 2, 2, 0};  // one sibling: server 1
  TBoard board{0.0, 0.0};
  auto e = est.estimate(m, 500'000, Bytes{4096}, IoDirection::kRead,
                        /*is_fragment=*/false, ServerId{0}, siblings, board);
  EXPECT_FALSE(e.boosted);
}

TEST(ReturnEstimator, BoostDisabledByConfig) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(700'000, Bytes{65536}, IoDirection::kRead, 700'128);
  ReturnEstimator est(false);
  const SiblingSet siblings{ServerId{0}, 2, 2, 0};  // one sibling: server 1
  TBoard board{0.0, 0.0};
  auto e = est.estimate(m, 500'000, Bytes{4096}, IoDirection::kRead, true, ServerId{0},
                        siblings, board);
  EXPECT_FALSE(e.boosted);
}

TEST(ReturnEstimator, MissingBoardEntriesCountAsZero) {
  ServiceTimeModel m(synthetic_profile(), kW);
  m.observe_disk(700'000, Bytes{65536}, IoDirection::kRead, 700'128);
  ReturnEstimator est(true);
  // 2-piece parent starting on server 4: the (sole) sibling is server 5,
  // which is beyond the board's size.
  const SiblingSet siblings{ServerId{4}, 8, 2, 0};
  TBoard board{0.0};
  auto e = est.estimate(m, 500'000, Bytes{4096}, IoDirection::kRead, true, ServerId{0},
                        siblings, board);
  EXPECT_TRUE(e.boosted);  // unknown peer treated as fast -> self is max
}

// -------------------------------------------------------- FragmentTagger ----

constexpr int kRing = 8;  ///< striping server count used by these tests

std::vector<pvfs::SubRequestSpec> decompose(std::int64_t off,
                                            std::int64_t len) {
  return pvfs::StripingLayout(kRing, Bytes{64 * 1024})
      .decompose(sim::Offset{off}, Bytes{len});
}

/// Materialize a SiblingSet back into the explicit server list it encodes.
std::vector<ServerId> servers_of(const SiblingSet& s) {
  std::vector<ServerId> out;
  s.for_each_sibling([&](ServerId id) { out.push_back(id); });
  return out;
}

TEST(FragmentTagger, SingleServerParentHasNoFragments) {
  FragmentTagger tagger(Bytes{20 * 1024});
  auto tagged = tagger.tag(decompose(0, 64 * 1024), kRing);
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_FALSE(tagged[0].fragment);
}

TEST(FragmentTagger, SmallTailOfMultiServerParentIsFragment) {
  FragmentTagger tagger(Bytes{20 * 1024});
  auto tagged = tagger.tag(decompose(0, 65 * 1024), kRing);  // 64 KB + 1 KB
  ASSERT_EQ(tagged.size(), 2u);
  EXPECT_FALSE(tagged[0].fragment);
  EXPECT_TRUE(tagged[1].fragment);
  ASSERT_EQ(tagged[1].siblings.size(), 1u);
  EXPECT_EQ(servers_of(tagged[1].siblings)[0], tagged[0].server);
}

TEST(FragmentTagger, ThresholdBoundaryIsExclusive) {
  FragmentTagger tagger(Bytes{20 * 1024});
  // Head piece exactly 20 KB: NOT a fragment (must be strictly smaller).
  auto tagged = tagger.tag(decompose(44 * 1024, 64 * 1024), kRing);
  ASSERT_EQ(tagged.size(), 2u);
  EXPECT_EQ(tagged[0].length, Bytes{20 * 1024});
  EXPECT_FALSE(tagged[0].fragment);
  // One byte less: fragment.
  auto tagged2 = tagger.tag(decompose(44 * 1024 + 1, 64 * 1024), kRing);
  EXPECT_EQ(tagged2[0].length, Bytes{20 * 1024 - 1});
  EXPECT_TRUE(tagged2[0].fragment);
}

TEST(FragmentTagger, BothEndsCanBeFragments) {
  FragmentTagger tagger(Bytes{20 * 1024});
  // 1 KB head + 64 KB middle + 1 KB tail.
  auto tagged = tagger.tag(decompose(63 * 1024, 66 * 1024), kRing);
  ASSERT_EQ(tagged.size(), 3u);
  EXPECT_TRUE(tagged[0].fragment);
  EXPECT_FALSE(tagged[1].fragment);
  EXPECT_TRUE(tagged[2].fragment);
  EXPECT_EQ(tagged[0].siblings.size(), 2u);
}

TEST(FragmentTagger, SiblingsExcludeSelfAndPreserveOrder) {
  FragmentTagger tagger(Bytes{20 * 1024});
  auto tagged = tagger.tag(decompose(63 * 1024, 130 * 1024), kRing);
  ASSERT_GE(tagged.size(), 3u);
  for (std::size_t i = 0; i < tagged.size(); ++i) {
    const auto& t = tagged[i];
    if (!t.fragment) continue;
    EXPECT_EQ(t.siblings.size(), tagged.size() - 1);
    // The descriptor must enumerate exactly the other pieces' servers, in
    // stripe order — the list the old materialized vector carried.
    std::vector<ServerId> expect;
    for (std::size_t j = 0; j < tagged.size(); ++j) {
      if (j != i) expect.push_back(tagged[j].server);
    }
    EXPECT_EQ(servers_of(t.siblings), expect);
    for (ServerId s : servers_of(t.siblings)) EXPECT_NE(s, t.server);
  }
}

TEST(FragmentTagger, WideParentDescriptorWrapsTheRing) {
  FragmentTagger tagger(Bytes{20 * 1024});
  // 10 pieces over an 8-server ring: the parent wraps, so two pieces land
  // on servers 0 and 1 twice.  The descriptor must reproduce the duplicate
  // entries exactly as the materialized list did.
  auto tagged = tagger.tag(decompose(0, 9 * 64 * 1024 + 1024), kRing);
  ASSERT_EQ(tagged.size(), 10u);
  const auto& frag = tagged[9];  // 1 KB tail on server 1
  ASSERT_TRUE(frag.fragment);
  const auto sibs = servers_of(frag.siblings);
  ASSERT_EQ(sibs.size(), 9u);
  std::vector<ServerId> expect;
  for (std::size_t j = 0; j + 1 < tagged.size(); ++j) {
    expect.push_back(tagged[j].server);
  }
  EXPECT_EQ(sibs, expect);
}

}  // namespace
}  // namespace ibridge::core
