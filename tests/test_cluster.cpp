// System-level tests: the paper's headline effects must hold as ordering
// properties of the assembled cluster, and simulations must be
// deterministic.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/invariants.hpp"
#include "cluster/cluster.hpp"
#include "fault/schedule.hpp"
#include "workloads/btio.hpp"
#include "workloads/mpi_io_test.hpp"

namespace ibridge::cluster {
namespace {

workloads::MpiIoTestConfig quick(std::int64_t request_size, bool write) {
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 16;
  cfg.request_size = request_size;
  cfg.file_bytes = 2LL << 30;
  cfg.access_bytes = 128 << 20;
  cfg.write = write;
  return cfg;
}

double run_mbps(const ClusterConfig& cc,
                const workloads::MpiIoTestConfig& cfg) {
  Cluster c(cc);
  const auto r = run_mpi_io_test(c, cfg);
  return static_cast<double>(r.bytes) / 1e6 / r.elapsed.to_seconds();
}

TEST(ClusterConfigs, NamedConfigurationsDiffer) {
  const auto stock = ClusterConfig::stock();
  EXPECT_FALSE(stock.server.ibridge.enabled);
  const auto ib = ClusterConfig::with_ibridge();
  EXPECT_TRUE(ib.server.ibridge.enabled);
  EXPECT_TRUE(ib.client.tag_fragments);
  const auto ssd = ClusterConfig::ssd_only();
  EXPECT_EQ(ssd.server.storage_mode, pvfs::StorageMode::kSsdOnly);
}

TEST(ClusterHeadline, UnalignedSlowerThanAlignedOnStock) {
  const double aligned = run_mbps(ClusterConfig::stock(), quick(64 * 1024, false));
  const double unaligned =
      run_mbps(ClusterConfig::stock(), quick(65 * 1024, false));
  EXPECT_LT(unaligned, 0.75 * aligned)
      << "Figure 2(a): unaligned access must significantly degrade stock";
}

TEST(ClusterHeadline, IBridgeRecoversUnalignedWriteThroughput) {
  // The paper's Figure 4(a) configuration: 64 processes, 65 KB writes.
  auto cfg = quick(65 * 1024, true);
  cfg.nprocs = 64;
  const double stock = run_mbps(ClusterConfig::stock(), cfg);
  const double bridged = run_mbps(ClusterConfig::with_ibridge(), cfg);
  EXPECT_GT(bridged, 1.10 * stock)
      << "Figure 4(a): iBridge must improve unaligned writes "
      << "(write-back drain time included)";
}

TEST(ClusterHeadline, IBridgeMatchesStockOnAlignedAccess) {
  const double stock = run_mbps(ClusterConfig::stock(), quick(64 * 1024, false));
  const double bridged =
      run_mbps(ClusterConfig::with_ibridge(), quick(64 * 1024, false));
  // Aligned access generates no fragments: iBridge must not hurt (the paper
  // reports identical throughput).
  EXPECT_NEAR(bridged, stock, 0.15 * stock);
}

TEST(ClusterHeadline, SsdOnlyBeatsDiskOnlyForSmallRandomWrites) {
  workloads::BtIoConfig cfg;
  cfg.nprocs = 4;
  cfg.grid = 64;
  cfg.time_steps = 2;
  cfg.compute_ms_per_step = 5.0;
  double disk_s, ssd_s;
  {
    Cluster c(ClusterConfig::stock());
    disk_s = run_btio(c, cfg).elapsed.to_seconds();
  }
  {
    Cluster c(ClusterConfig::ssd_only());
    ssd_s = run_btio(c, cfg).elapsed.to_seconds();
  }
  EXPECT_LT(ssd_s, disk_s);
}

TEST(Cluster, DrainLeavesNoDirtyBytes) {
  Cluster c(ClusterConfig::with_ibridge());
  auto cfg = quick(65 * 1024, true);
  cfg.access_bytes = 32 << 20;
  run_mpi_io_test(c, cfg);  // run_mpi_io_test drains internally
  for (int s = 0; s < c.server_count(); ++s) {
    ASSERT_TRUE(c.server(s).has_cache());
    EXPECT_EQ(c.server(s).cache()->table().dirty_bytes(), sim::Bytes::zero())
        << "server " << s;
  }
}

TEST(Cluster, SimulationsAreDeterministic) {
  auto cfg = quick(65 * 1024, true);
  cfg.access_bytes = 32 << 20;
  Cluster a(ClusterConfig::with_ibridge());
  Cluster b(ClusterConfig::with_ibridge());
  const auto ra = run_mpi_io_test(a, cfg);
  const auto rb = run_mpi_io_test(b, cfg);
  EXPECT_EQ(ra.elapsed.ns(), rb.elapsed.ns());
  EXPECT_EQ(ra.bytes, rb.bytes);
  EXPECT_EQ(a.server(0).cache()->stats().write_admits,
            b.server(0).cache()->stats().write_admits);
}

TEST(Cluster, DiskTraceCapturesBlockSizes) {
  Cluster c(ClusterConfig::stock());
  c.enable_disk_trace(0);
  auto cfg = quick(64 * 1024, false);
  cfg.access_bytes = 32 << 20;
  run_mpi_io_test(c, cfg);
  const auto& hist = c.server(0).disk().trace().size_histogram();
  EXPECT_GT(hist.total(), 0u);
  // Aligned 64 KB requests: the dominant dispatch size is 128 sectors or a
  // merged multiple of it.
  const auto top = hist.top(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first % 128, 0);
}

TEST(Cluster, ServerCountIsConfigurable) {
  auto cc = ClusterConfig::stock();
  cc.data_servers = 3;
  Cluster c(cc);
  EXPECT_EQ(c.server_count(), 3);
  auto fh = c.create_file("f", 10 << 20);
  EXPECT_EQ(c.mds().file(fh).layout.servers(), 3);
}

// Shard groups at the cluster level: many servers fold onto a handful of
// shards, adaptive lookahead widens the barrier windows, and the result is
// still a pure function of the configuration — byte-identical across
// worker counts.
TEST(Cluster, ShardGroupsAreWorkerCountInvariant) {
  auto cfg = quick(65 * 1024, true);
  cfg.access_bytes = 16 << 20;
  auto run = [&](int workers) {
    auto cc = ClusterConfig::with_ibridge();
    cc.data_servers = 8;
    cc.shards = workers;
    cc.shard_group_size = 3;  // 8 servers -> 3 server shards + front shard
    cc.adaptive_window_us = 50.0;
    Cluster c(cc);
    const auto r = run_mpi_io_test(c, cfg);
    return std::tuple{r.elapsed.ns(), r.bytes,
                      c.server(0).cache()->stats().write_admits};
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
}

// The sharded metrics sampler rides the barrier hook: it must emit rows at
// the grid cadence with grid timestamps, and the whole series must be
// worker-count invariant (the CSV is compared byte-for-byte).
TEST(Cluster, ShardedMetricsSamplerIsWorkerCountInvariant) {
  auto cfg = quick(65 * 1024, true);
  cfg.access_bytes = 16 << 20;
  auto run_csv = [&](int workers) {
    auto cc = ClusterConfig::with_ibridge();
    cc.data_servers = 6;
    cc.shards = workers;
    cc.shard_group_size = 2;
    Cluster c(cc);
    obs::TimeSeries series;
    c.start_metrics_sampler(sim::SimTime::millis(5), &series);
    run_mpi_io_test(c, cfg);
    c.stop_metrics_sampler();
    EXPECT_GT(series.rows(), 0u) << "workers=" << workers;
    std::ostringstream csv;
    series.write_csv(csv);
    return csv.str();
  };
  const std::string base = run_csv(1);
  EXPECT_NE(base.find("cluster.bytes_served"), std::string::npos);
  EXPECT_EQ(run_csv(3), base);
}

TEST(Cluster, AggregateMetricsAccumulate) {
  Cluster c(ClusterConfig::with_ibridge());
  auto cfg = quick(65 * 1024, true);
  cfg.access_bytes = 32 << 20;
  const auto r = run_mpi_io_test(c, cfg);
  EXPECT_EQ(c.total_bytes_served().count(), r.bytes);
  EXPECT_GT(c.ssd_bytes_served(), sim::Bytes::zero());
  EXPECT_GT(c.avg_service_ms(), 0.0);
}

// Whole-cluster promotion of the mapping-table crash/recovery tests: the
// table's save/load cycle now runs inside a live cluster — a data server
// crashes mid-write-back, restarts, replays its mapping table, and drains
// the recovered dirty data in degraded mode.
TEST(ClusterFaults, CrashMidFlushMatchesNeverCrashedRun) {
  const check::FuzzCase healthy = check::generate_case(0x5ca1ab1e);
  check::FuzzCase crashy = healthy;
  fault::CrashSpec spec;
  spec.server = 0;
  spec.at = sim::SimTime::millis(1);
  spec.outage = sim::SimTime::millis(4);
  spec.phase = "batch.write";
  spec.drain_budget = 128 << 10;
  spec.drain_interval = sim::SimTime::millis(1);
  crashy.faults.seed = 5;
  crashy.faults.crashes.push_back(spec);

  check::RunReport hr;
  {
    Cluster cl(check::make_config(healthy, check::Policy::kIBridge));
    hr = check::run_case(cl, healthy, check::Policy::kIBridge);
  }
  check::RunReport cr;
  {
    Cluster cl(check::make_config(crashy, check::Policy::kIBridge));
    check::InvariantOracle oracle;
    cr = check::run_case(cl, crashy, check::Policy::kIBridge, &oracle);
    EXPECT_TRUE(oracle.ok()) << oracle.failures().front();
    EXPECT_GT(oracle.checks_run(), 0u);
  }
  ASSERT_TRUE(hr.ok()) << hr.failure;
  ASSERT_TRUE(cr.ok()) << cr.failure;
  // The crash may reorder and delay everything, but never change bytes.
  EXPECT_EQ(hr.payload_digest, cr.payload_digest);
  EXPECT_EQ(hr.image_digest, cr.image_digest);
  EXPECT_FALSE(hr.faulted);
  EXPECT_TRUE(cr.faulted);
}

TEST(ClusterFaults, RestartedServerComesBackCleanAndOnline) {
  check::FuzzCase c = check::generate_case(0xfeedULL);
  c.faults =
      fault::make_scenario(fault::Scenario::kCrashRestart,
                           c.base.data_servers, 0xfeedULL,
                           sim::SimTime::millis(30));
  ASSERT_FALSE(c.faults.empty());
  Cluster cl(check::make_config(c, check::Policy::kIBridge));
  const check::RunReport r = check::run_case(cl, c, check::Policy::kIBridge);
  ASSERT_TRUE(r.ok()) << r.failure;
  for (int s = 0; s < cl.server_count(); ++s) {
    EXPECT_FALSE(cl.server(s).offline()) << "server " << s;
    if (cl.server(s).has_cache()) {
      EXPECT_EQ(cl.server(s).cache()->table().dirty_bytes(),
                sim::Bytes::zero())
          << "server " << s;
    }
  }
}

}  // namespace
}  // namespace ibridge::cluster
