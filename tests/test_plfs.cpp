// Tests for the PLFS-style log-structured middleware baseline.
#include <gtest/gtest.h>

#include "plfs/plfs.hpp"

namespace ibridge::plfs {
namespace {

cluster::ClusterConfig small_cluster() {
  auto cc = cluster::ClusterConfig::stock();
  cc.data_servers = 4;
  return cc;
}

struct PlfsFixture : ::testing::Test {
  cluster::Cluster c{small_cluster()};
  PlfsConfig cfg = [] {
    PlfsConfig p;
    p.log_bytes_per_rank = 32 << 20;
    return p;
  }();
  PlfsFile file{c, "ckpt", 4, cfg};

  sim::SimTime write(int rank, std::int64_t off, std::int64_t len) {
    sim::SimTime out;
    bool done = false;
    auto t = [](PlfsFile& f, int r, std::int64_t o, std::int64_t l,
                sim::SimTime& res, bool& flag) -> sim::Task<> {
      res = co_await f.write_at(r, o, l);
      flag = true;
    }(file, rank, off, len, out, done);
    t.start();
    c.sim().run_while_pending([&] { return done; });
    return out;
  }

  sim::SimTime read(int rank, std::int64_t off, std::int64_t len) {
    sim::SimTime out;
    bool done = false;
    auto t = [](PlfsFile& f, int r, std::int64_t o, std::int64_t l,
                sim::SimTime& res, bool& flag) -> sim::Task<> {
      res = co_await f.read_at(r, o, l);
      flag = true;
    }(file, rank, off, len, out, done);
    t.start();
    c.sim().run_while_pending([&] { return done; });
    return out;
  }
};

TEST_F(PlfsFixture, WritesAppendToPrivateLogs) {
  write(0, 1'000'000, 65 * 1024);
  write(1, 2'000'000, 65 * 1024);
  write(0, 5'000'000, 65 * 1024);
  EXPECT_EQ(file.index_entries(), 3u);
  EXPECT_EQ(file.logical_size(), 5'000'000 + 65 * 1024);
  // Rank 0's second write scatters into its log right after the first:
  // reading both of rank 0's ranges touches exactly two log pieces.
  EXPECT_EQ(file.scatter(1'000'000, 65 * 1024), 1u);
  EXPECT_EQ(file.scatter(5'000'000, 65 * 1024), 1u);
}

TEST_F(PlfsFixture, ReadResolvesAcrossRanksAndHoles) {
  write(0, 0, 100'000);
  write(1, 100'000, 100'000);
  // [0, 200'000) is covered by two logs; [200'000, 250'000) is a hole.
  EXPECT_EQ(file.scatter(0, 250'000), 2u);
  const auto t = read(2, 0, 250'000);
  EXPECT_GT(t, sim::SimTime::zero());
}

TEST_F(PlfsFixture, LastWriteWinsOnOverwrite) {
  write(0, 0, 100'000);
  write(1, 40'000, 20'000);  // overwrites the middle from another rank
  EXPECT_EQ(file.index_entries(), 3u);  // split into left/new/right
  // The overwritten middle now maps to rank 1's log.
  EXPECT_EQ(file.scatter(0, 100'000), 3u);
  EXPECT_EQ(file.scatter(40'000, 20'000), 1u);
}

TEST_F(PlfsFixture, InterleavedStridedWritesScatterReads) {
  // Two ranks alternate 64 KB blocks: a large contiguous logical read then
  // touches a log piece per block — the locality loss the paper critiques.
  for (int k = 0; k < 8; ++k) {
    write(k % 2, static_cast<std::int64_t>(k) * 64 * 1024, 64 * 1024);
  }
  EXPECT_EQ(file.scatter(0, 8LL * 64 * 1024), 8u);
}

TEST_F(PlfsFixture, SequentialPerRankWritesCoalesceInIndex) {
  // Strictly consecutive writes from one rank land contiguously in its log
  // but remain separate index extents; scatter still counts pieces.
  write(3, 0, 50'000);
  write(3, 50'000, 50'000);
  EXPECT_EQ(file.scatter(0, 100'000), 2u);
}

TEST_F(PlfsFixture, HolesReadAsZeroCostNothing) {
  const auto t = read(0, 10'000'000, 50'000);  // nothing written there
  // Pure hole: no server I/O, only the client-side overhead.
  EXPECT_LT(t.to_millis(), 3.0);
}

TEST_F(PlfsFixture, UnalignedWritesReachServersAsAlignedAppends) {
  // 65 KB logical writes at awkward offsets append at log offsets 0, 65 KB,
  // ... — the log absorbs the misalignment; what the servers see are the
  // decomposed pieces of a *sequential* stream, contiguous on each server.
  for (int k = 0; k < 16; ++k) {
    write(0, 7'777 + static_cast<std::int64_t>(k) * 200'003, 65 * 1024);
  }
  // All data sits in one log, at [0, 16*65KB): one contiguous log range.
  EXPECT_EQ(file.scatter(7'777, 65 * 1024), 1u);
}

}  // namespace
}  // namespace ibridge::plfs
