// Differential policy checking: disk-only, SSD-only and iBridge are three
// performance designs over one storage contract.  For every generated
// workload the bytes a read returns — and the final file image — must be
// bit-identical across the three, while the timings are free to (and do)
// diverge.  A payload difference is a correctness bug in whichever stack
// diverged; that is the oracle this suite enforces on 100+ cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "fault/schedule.hpp"

namespace ibridge::check {
namespace {

TEST(Differential, PayloadEquivalenceAcrossPoliciesOn100Workloads) {
  // Keep per-case cost small: the value is in breadth of configurations and
  // access patterns, not in individual workload size.
  GenLimits lim;
  lim.min_ops = 8;
  lim.max_ops = 20;
  lim.min_file_bytes = 256 << 10;
  lim.max_file_bytes = 1 << 20;

  int with_time_divergence = 0;
  std::uint64_t requests = 0;
  constexpr int kCases = 100;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t seed = 0xd1ffULL * 1000 + static_cast<std::uint64_t>(i);
    const FuzzCase c = generate_case(seed, lim);
    const DiffReport d = run_differential(c);
    ASSERT_TRUE(d.ok()) << "failing seed=" << seed << ": " << d.failure;
    ASSERT_TRUE(d.payload_equal) << "failing seed=" << seed;
    if (d.max_rel_time_gap > 0.01) ++with_time_divergence;
    requests += d.ibridge.requests;
  }
  EXPECT_GE(requests, static_cast<std::uint64_t>(8 * kCases));
  // Timing divergence is the whole point of the three designs: if the
  // policies never disagreed on time, the differential would be vacuous.
  EXPECT_GT(with_time_divergence, kCases / 4)
      << "policies agreed on timing almost everywhere — check the models";
}

TEST(Differential, SharedClustersAmortizeAcrossCases) {
  // The three-cluster reuse path: one fixed configuration, many traces.
  // Warm caches are a harder test for iBridge (staged entries from earlier
  // cases can serve later reads) and must still be payload-equivalent.
  const FuzzCase base = generate_case(2024);
  cluster::Cluster disk(make_config(base, Policy::kDiskOnly));
  cluster::Cluster ib(make_config(base, Policy::kIBridge));
  cluster::Cluster ssd(make_config(base, Policy::kSsdOnly));

  for (int i = 0; i < 12; ++i) {
    const std::uint64_t seed = 0x7e51ULL + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed);
    c.base = base.base;  // traces vary; the cluster geometry must not
    c.file_bytes = std::min<std::int64_t>(c.file_bytes, 1 << 20);
    const std::string name = "case-" + std::to_string(i) + ".dat";
    const DiffReport d = run_differential(disk, ib, ssd, c, name);
    ASSERT_TRUE(d.ok()) << "failing seed=" << seed << ": " << d.failure;
    ASSERT_TRUE(d.payload_equal) << "failing seed=" << seed;
  }
}

TEST(Differential, ReportsCarryTimingAndStats) {
  const FuzzCase c = generate_case(9);
  const DiffReport d = run_differential(c);
  ASSERT_TRUE(d.ok()) << d.failure;
  for (const RunReport* r : {&d.disk, &d.ibridge, &d.ssd}) {
    EXPECT_GT(r->events, 0u);
    EXPECT_GT(r->total_elapsed.ns(), 0);
    EXPECT_GE(r->total_elapsed.ns(), r->io_elapsed.ns());
    EXPECT_EQ(r->requests, c.trace.size());
    EXPECT_TRUE(r->read_your_writes_ok);
  }
  EXPECT_EQ(d.disk.payload_digest, d.ssd.payload_digest);
  EXPECT_EQ(d.disk.image_digest, d.ibridge.image_digest);
}

// ------------------------------------------------- faulted differentials ----

GenLimits fault_limits() {
  GenLimits lim;
  lim.min_ops = 8;
  lim.max_ops = 20;
  lim.min_file_bytes = 256 << 10;
  lim.max_file_bytes = 1 << 20;
  return lim;
}

/// Storage contract under interference: every policy runs the identical
/// fault schedule, and the bytes must still agree across all three.
TEST(DifferentialFaults, PayloadEquivalenceSurvivesGcInterference) {
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seed = 0x6cf17ULL + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed, fault_limits());
    c.faults = fault::make_scenario(fault::Scenario::kGcInterference,
                                    c.base.data_servers, seed,
                                    sim::SimTime::millis(40));
    const DiffReport d = run_differential(c);
    ASSERT_TRUE(d.ok()) << "failing seed=" << seed << ": " << d.failure;
    ASSERT_TRUE(d.payload_equal) << "failing seed=" << seed;
    EXPECT_TRUE(d.ibridge.faulted);
    EXPECT_NE(d.ibridge.fault_digest, 0u);
  }
}

TEST(DifferentialFaults, PayloadEquivalenceSurvivesCrashRestart) {
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seed = 0xc4a54ULL + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed, fault_limits());
    const fault::Scenario scen = i % 2 == 0 ? fault::Scenario::kCrashRestart
                                            : fault::Scenario::kMixed;
    c.faults = fault::make_scenario(scen, c.base.data_servers, seed,
                                    sim::SimTime::millis(40));
    ASSERT_EQ(c.faults.crashes.size(), 1u);
    const DiffReport d = run_differential(c);
    ASSERT_TRUE(d.ok()) << "failing seed=" << seed << " scenario "
                        << fault::to_string(scen) << ": " << d.failure;
    ASSERT_TRUE(d.payload_equal) << "failing seed=" << seed;
    EXPECT_TRUE(d.disk.faulted);
    EXPECT_TRUE(d.ibridge.faulted);
    EXPECT_TRUE(d.ssd.faulted);
  }
}

/// A healthy run's digests must not depend on the fault machinery existing:
/// an empty schedule is byte-for-byte the old healthy pipeline.
TEST(DifferentialFaults, EmptyScheduleIsExactlyHealthy) {
  const FuzzCase c = generate_case(31337, fault_limits());
  ASSERT_TRUE(c.faults.empty());
  const DiffReport d = run_differential(c);
  ASSERT_TRUE(d.ok()) << d.failure;
  EXPECT_FALSE(d.ibridge.faulted);
  EXPECT_EQ(d.ibridge.fault_digest, 0u);
}

}  // namespace
}  // namespace ibridge::check
