// Tests for the fault scenario engine: schedule parsing/ordering, the
// seeded GC-pause and read-variability models ("same seed, same pause
// trace"), the dirty-position bitmap, and a crash-point sweep that cuts the
// write-back path at every phase boundary and asserts full recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/invariants.hpp"
#include "cluster/cluster.hpp"
#include "fault/engine.hpp"
#include "fault/model.hpp"
#include "fault/schedule.hpp"
#include "obs/trace.hpp"
#include "storage/block.hpp"

namespace ibridge::fault {
namespace {

using sim::SimTime;
using storage::IoDirection;

FaultSchedule sample_schedule() {
  FaultSchedule s;
  s.seed = 42;
  s.gc.push_back({1, 8 << 20, SimTime::micros(750)});
  s.gc.push_back({-1, 16 << 20, SimTime::millis(2)});
  s.readvar.push_back(
      {0, 0.25, SimTime::micros(10), SimTime::micros(900)});
  s.crashes.push_back({2, SimTime::millis(40), SimTime::millis(5),
                       "batch.staged", 64 << 10, SimTime::millis(2)});
  s.crashes.push_back({0, SimTime::millis(10), SimTime::millis(1),
                       "batch.begin", 128 << 10, SimTime::millis(1)});
  return s;
}

bool parses(const std::string& text, std::string* error = nullptr) {
  std::istringstream is(text);
  FaultSchedule s;
  return parse_schedule(is, s, error);
}

TEST(FaultScheduleText, RoundTripPreservesEverySpec) {
  const FaultSchedule s = sample_schedule();
  std::ostringstream os;
  write_schedule(os, s);

  FaultSchedule t;
  std::istringstream is(os.str());
  std::string error;
  ASSERT_TRUE(parse_schedule(is, t, &error)) << error;

  EXPECT_EQ(t.seed, 42u);
  ASSERT_EQ(t.gc.size(), 2u);
  EXPECT_EQ(t.gc[0].server, 1);
  EXPECT_EQ(t.gc[0].churn_bytes, 8 << 20);
  EXPECT_EQ(t.gc[0].pause.ns(), SimTime::micros(750).ns());
  EXPECT_EQ(t.gc[1].server, -1);
  ASSERT_EQ(t.readvar.size(), 1u);
  EXPECT_EQ(t.readvar[0].server, 0);
  EXPECT_DOUBLE_EQ(t.readvar[0].probability, 0.25);
  EXPECT_EQ(t.readvar[0].min_extra.ns(), SimTime::micros(10).ns());
  EXPECT_EQ(t.readvar[0].max_extra.ns(), SimTime::micros(900).ns());
  ASSERT_EQ(t.crashes.size(), 2u);
  // Parsing normalizes: the 10 ms crash sorts before the 40 ms one.
  EXPECT_EQ(t.crashes[0].server, 0);
  EXPECT_EQ(t.crashes[0].phase, "batch.begin");
  EXPECT_EQ(t.crashes[1].server, 2);
  EXPECT_EQ(t.crashes[1].phase, "batch.staged");

  // The digest is order-insensitive, so it survives the round trip.
  EXPECT_EQ(schedule_digest(s), schedule_digest(t));
}

TEST(FaultScheduleText, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parses("", &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  EXPECT_FALSE(parses("seed 1\n"));  // records before the magic line
  EXPECT_FALSE(parses("ibridge-fault-schedule-v1\n"));  // no seed record
  EXPECT_FALSE(parses("ibridge-fault-schedule-v1\nseed 1\nwobble 3\n"));
  EXPECT_FALSE(
      parses("ibridge-fault-schedule-v1\nseed 1\ngc 0 -4096 1000\n"));
  EXPECT_FALSE(
      parses("ibridge-fault-schedule-v1\nseed 1\nreadvar 0 1.5 10 20\n"));
  EXPECT_FALSE(
      parses("ibridge-fault-schedule-v1\nseed 1\nreadvar 0 0.5 30 20\n"));
  EXPECT_FALSE(parses("ibridge-fault-schedule-v1\nseed 1\n"
                      "crash 0 1000 1000 batch.bogus 1024 1000\n",
                      &error));
  EXPECT_NE(error.find("crash"), std::string::npos) << error;

  // Comments and blank lines are fine.
  EXPECT_TRUE(parses("# a repro schedule\n\nibridge-fault-schedule-v1\n"
                     "seed 7\n  # trailing comment line\n"
                     "crash 1 1000 1000 batch.clean 1024 1000\n"));
}

TEST(FaultScheduleText, NormalizeOrdersCrashesByTimeThenServer) {
  FaultSchedule s;
  s.crashes.push_back({3, SimTime::millis(5), SimTime::millis(1),
                       "batch.write", 1 << 10, SimTime::millis(1)});
  s.crashes.push_back({1, SimTime::millis(5), SimTime::millis(1),
                       "batch.write", 1 << 10, SimTime::millis(1)});
  s.crashes.push_back({0, SimTime::millis(2), SimTime::millis(1),
                       "batch.write", 1 << 10, SimTime::millis(1)});
  const std::uint64_t before = schedule_digest(s);
  normalize(s);
  EXPECT_EQ(s.crashes[0].server, 0);
  EXPECT_EQ(s.crashes[1].server, 1);
  EXPECT_EQ(s.crashes[2].server, 3);
  EXPECT_EQ(schedule_digest(s), before);
}

TEST(FaultScheduleText, WritebackPhasesMatchTheGateOrder) {
  const auto& ps = writeback_phases();
  ASSERT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps[0], "batch.begin");
  EXPECT_EQ(ps[1], "batch.staged");
  EXPECT_EQ(ps[2], "batch.write");
  EXPECT_EQ(ps[3], "batch.clean");
}

TEST(FaultScenario, DerivedSchedulesAreDeterministic) {
  const SimTime horizon = SimTime::millis(60);
  for (Scenario sc : {Scenario::kGcInterference, Scenario::kCrashRestart,
                      Scenario::kMixed}) {
    const FaultSchedule a = make_scenario(sc, 3, 17, horizon);
    const FaultSchedule b = make_scenario(sc, 3, 17, horizon);
    EXPECT_EQ(schedule_digest(a), schedule_digest(b)) << to_string(sc);
    EXPECT_FALSE(a.empty()) << to_string(sc);
    const FaultSchedule c = make_scenario(sc, 3, 18, horizon);
    EXPECT_NE(schedule_digest(a), schedule_digest(c)) << to_string(sc);
  }
  EXPECT_TRUE(make_scenario(Scenario::kHealthy, 3, 17, horizon).empty());
}

TEST(FaultScenario, CrashLandsInsideTheHorizon) {
  const SimTime horizon = SimTime::millis(40);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const FaultSchedule s =
        make_scenario(Scenario::kCrashRestart, 4, seed, horizon);
    ASSERT_EQ(s.crashes.size(), 1u);
    const CrashSpec& c = s.crashes[0];
    EXPECT_GE(c.at.ns(), (horizon / 4).ns());
    EXPECT_LE(c.at.ns(), (horizon / 4 + horizon / 2).ns());
    EXPECT_GE(c.server, 0);
    EXPECT_LT(c.server, 4);
    EXPECT_TRUE(std::find(writeback_phases().begin(),
                          writeback_phases().end(),
                          c.phase) != writeback_phases().end());
  }
}

// ------------------------------------------------------- device models ----

TEST(SsdFaultModelTest, GcPausesTriggerOnWriteChurn) {
  GcSpec gc;
  gc.churn_bytes = storage::kSectorBytes * 8;
  gc.pause = SimTime::micros(500);
  SsdFaultModel m(&gc, nullptr, 7);

  // 4 sectors of writes: churn below the threshold, no pause yet.
  EXPECT_EQ(m.dispatch_delay(IoDirection::kWrite, 0, 4, SimTime::zero(),
                             SimTime::micros(100))
                .ns(),
            0);
  EXPECT_EQ(m.gc_pauses(), 0u);

  // Reads never contribute churn.
  EXPECT_EQ(m.dispatch_delay(IoDirection::kRead, 64, 32, SimTime::zero(),
                             SimTime::micros(100))
                .ns(),
            0);
  EXPECT_EQ(m.gc_pauses(), 0u);

  // 4 more sectors push churn to the threshold: the device stalls for one
  // full pause, charged to this dispatch.
  EXPECT_EQ(m.dispatch_delay(IoDirection::kWrite, 8, 4, SimTime::zero(),
                             SimTime::micros(100))
                .ns(),
            gc.pause.ns());
  EXPECT_EQ(m.gc_pauses(), 1u);
  EXPECT_EQ(m.gc_pause_time().ns(), gc.pause.ns());

  // A dispatch after the stall has elapsed pays nothing.
  EXPECT_EQ(m.dispatch_delay(IoDirection::kWrite, 16, 1, SimTime::millis(10),
                             SimTime::micros(100))
                .ns(),
            0);
  EXPECT_EQ(m.gc_pauses(), 1u);
}

TEST(SsdFaultModelTest, QueuedGcPausesStack) {
  GcSpec gc;
  gc.churn_bytes = storage::kSectorBytes * 8;
  gc.pause = SimTime::micros(300);
  SsdFaultModel m(&gc, nullptr, 7);
  // 16 sectors at once: two GC cycles queue up back to back.
  EXPECT_EQ(m.dispatch_delay(IoDirection::kWrite, 0, 16, SimTime::zero(),
                             SimTime::micros(100))
                .ns(),
            2 * gc.pause.ns());
  EXPECT_EQ(m.gc_pauses(), 2u);
  EXPECT_EQ(m.gc_pause_time().ns(), 2 * gc.pause.ns());
}

TEST(SsdFaultModelTest, SameSeedSamePauseTrace) {
  GcSpec gc;
  gc.churn_bytes = storage::kSectorBytes * 4;
  gc.pause = SimTime::micros(200);
  ReadVarSpec rv;
  rv.probability = 0.5;
  rv.min_extra = SimTime::micros(10);
  rv.max_extra = SimTime::micros(400);

  SsdFaultModel a(&gc, &rv, 1234);
  SsdFaultModel b(&gc, &rv, 1234);
  SsdFaultModel c(&gc, &rv, 9999);
  auto drive = [](SsdFaultModel& m) {
    for (int i = 0; i < 256; ++i) {
      const auto dir = i % 3 == 0 ? IoDirection::kWrite : IoDirection::kRead;
      m.dispatch_delay(dir, i * 8, 2 + i % 5, SimTime::micros(i * 50),
                       SimTime::micros(80));
    }
  };
  drive(a);
  drive(b);
  drive(c);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.gc_pauses(), b.gc_pauses());
  EXPECT_EQ(a.slow_reads(), b.slow_reads());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(SsdFaultModelTest, ReadVariabilityStaysInsideItsBounds) {
  ReadVarSpec rv;
  rv.probability = 1.0;  // every read slowed, so the bound check is exact
  rv.min_extra = SimTime::micros(50);
  rv.max_extra = SimTime::micros(120);
  SsdFaultModel m(nullptr, &rv, 5);
  for (int i = 0; i < 200; ++i) {
    const SimTime extra = m.dispatch_delay(
        IoDirection::kRead, i, 8, SimTime::micros(i), SimTime::micros(80));
    EXPECT_GE(extra.ns(), rv.min_extra.ns());
    EXPECT_LE(extra.ns(), rv.max_extra.ns());
    // Writes are never slowed by the read model.
    EXPECT_EQ(m.dispatch_delay(IoDirection::kWrite, i, 8, SimTime::micros(i),
                               SimTime::micros(80))
                  .ns(),
              0);
  }
  EXPECT_EQ(m.slow_reads(), 200u);
}

TEST(DirtyBitmapTest, MarksClearsAndIntersects) {
  const sim::Bytes granule{4096};
  DirtyBitmap d(sim::Bytes{64 << 10}, granule);
  EXPECT_EQ(d.tile_count(), 16);
  EXPECT_FALSE(d.any());
  EXPECT_EQ(d.set_count(), 0);

  d.mark(sim::Offset{0}, sim::Bytes{1});
  EXPECT_TRUE(d.test(0));
  EXPECT_EQ(d.set_count(), 1);

  // One byte on each side of a tile boundary touches both tiles.
  d.mark(sim::Offset{4095}, sim::Bytes{2});
  EXPECT_TRUE(d.test(0));
  EXPECT_TRUE(d.test(1));

  // A range spanning tiles 3..5 marks all three.
  d.mark(sim::Offset{3 * 4096 + 10}, sim::Bytes{2 * 4096});
  EXPECT_TRUE(d.test(3));
  EXPECT_TRUE(d.test(4));
  EXPECT_TRUE(d.test(5));
  EXPECT_EQ(d.set_count(), 5);

  d.clear(sim::Offset{4 * 4096}, sim::Bytes{4096});
  EXPECT_FALSE(d.test(4));
  EXPECT_EQ(d.set_count(), 4);

  DirtyBitmap still(sim::Bytes{64 << 10}, granule);
  still.mark(sim::Offset{0}, sim::Bytes{4096});      // tile 0
  still.mark(sim::Offset{5 * 4096}, sim::Bytes{1});  // tile 5
  d.intersect(still);
  EXPECT_TRUE(d.test(0));
  EXPECT_FALSE(d.test(1));
  EXPECT_FALSE(d.test(3));
  EXPECT_TRUE(d.test(5));
  EXPECT_EQ(d.set_count(), 2);
  EXPECT_TRUE(d.any());

  still.clear(sim::Offset{0}, sim::Bytes{64 << 10});
  EXPECT_FALSE(still.any());
  d.intersect(still);
  EXPECT_FALSE(d.any());
}

// --------------------------------------------------- cluster scenarios ----

/// A crash cut at every write-back phase boundary must recover: the
/// mapping-table replay succeeds, the invariant oracle stays green, and the
/// run report carries a fault digest.
TEST(FaultEngineTest, CrashPointSweepRecoversAtEveryPhase) {
  std::uint64_t seed = 0xfa0175;
  for (const std::string& phase : writeback_phases()) {
    const check::FuzzCase base = check::generate_case(seed++);
    check::FuzzCase c = base;
    CrashSpec crash;
    crash.server = 0;
    crash.at = SimTime::millis(2);
    crash.outage = SimTime::millis(3);
    crash.phase = phase;
    crash.drain_budget = 64 << 10;
    crash.drain_interval = SimTime::millis(1);
    c.faults.seed = seed;
    c.faults.crashes.push_back(crash);

    cluster::Cluster cl(check::make_config(c, check::Policy::kIBridge));
    check::InvariantOracle oracle;
    const check::RunReport r =
        check::run_case(cl, c, check::Policy::kIBridge, &oracle);
    EXPECT_TRUE(r.ok()) << "phase " << phase << ": " << r.failure;
    EXPECT_TRUE(oracle.ok())
        << "phase " << phase << ": " << oracle.failures().front();
    EXPECT_GT(oracle.checks_run(), 0u) << "phase " << phase;
    EXPECT_TRUE(r.faulted) << "phase " << phase;
  }
}

/// Crashing changes timing but never payloads: the same trace replayed on a
/// healthy cluster and a crashing one must return identical bytes.
TEST(FaultEngineTest, CrashRunMatchesHealthyPayload) {
  check::FuzzCase healthy = check::generate_case(0xc0ffee);
  check::FuzzCase crashy = healthy;
  crashy.faults =
      make_scenario(Scenario::kCrashRestart, crashy.base.data_servers,
                    0xc0ffee, SimTime::millis(30));
  ASSERT_FALSE(crashy.faults.empty());

  check::RunReport hr;
  {
    cluster::Cluster cl(check::make_config(healthy, check::Policy::kIBridge));
    hr = check::run_case(cl, healthy, check::Policy::kIBridge);
  }
  check::RunReport cr;
  {
    cluster::Cluster cl(check::make_config(crashy, check::Policy::kIBridge));
    cr = check::run_case(cl, crashy, check::Policy::kIBridge);
  }
  EXPECT_TRUE(hr.ok()) << hr.failure;
  EXPECT_TRUE(cr.ok()) << cr.failure;
  EXPECT_EQ(hr.payload_digest, cr.payload_digest);
  EXPECT_EQ(hr.image_digest, cr.image_digest);
  EXPECT_FALSE(hr.faulted);
  EXPECT_TRUE(cr.faulted);
}

/// Same seed + same schedule ⇒ byte-identical runs, fault digest included.
TEST(FaultEngineTest, FaultedRunsAreDeterministic) {
  check::FuzzCase c = check::generate_case(0xdecade);
  c.faults = make_scenario(Scenario::kMixed, c.base.data_servers, 0xdecade,
                           SimTime::millis(30));
  const check::DeterminismReport r =
      check::check_determinism(c, check::Policy::kIBridge);
  EXPECT_TRUE(r.identical) << r.failure;
  EXPECT_TRUE(r.failure.empty()) << r.failure;
  EXPECT_TRUE(r.first.faulted);
  EXPECT_EQ(r.first.fault_digest, r.second.fault_digest);
  EXPECT_NE(r.first.fault_digest, 0u);
}

/// Driving the engine directly: counters move, spans land in the trace, and
/// the destructor leaves the cluster healthy for a follow-up run.
TEST(FaultEngineTest, StatsAndTraceSpansAndCleanTeardown) {
  check::FuzzCase c = check::generate_case(0xbeef);
  FaultSchedule s;
  s.seed = 11;
  s.gc.push_back({-1, 128 << 10, SimTime::micros(400)});
  s.crashes.push_back({0, SimTime::millis(1), SimTime::millis(2),
                       "batch.write", 64 << 10, SimTime::millis(1)});

  cluster::Cluster cl(check::make_config(c, check::Policy::kIBridge));
  obs::TraceSession trace(cl.sim());
  {
    FaultEngine eng(cl, s);
    eng.set_trace(&trace);
    check::InvariantOracle oracle;
    const check::RunReport r =
        check::run_case(cl, c, check::Policy::kIBridge, &oracle);
    EXPECT_TRUE(r.ok()) << r.failure;
    EXPECT_TRUE(oracle.ok());
    // run_case spun up its own engine from c.faults (empty here), so this
    // engine never started; start it now against the warmed cluster.
    eng.start();
    cl.sim().run_while_pending([&] { return eng.done(); });
    EXPECT_TRUE(eng.failure().empty()) << eng.failure();
    const FaultEngine::Stats st = eng.stats();
    EXPECT_EQ(st.crashes, 1u);
    EXPECT_EQ(st.recoveries, 1u);
    EXPECT_NE(eng.digest(), 0u);
  }
  // Engine gone: the cluster must behave as if never faulted.
  const check::RunReport again =
      check::run_case(cl, c, check::Policy::kIBridge, nullptr,
                      "after-teardown.dat");
  EXPECT_TRUE(again.ok()) << again.failure;
  EXPECT_FALSE(again.faulted);
}

}  // namespace
}  // namespace ibridge::fault
