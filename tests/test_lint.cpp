// Tests for ibridge-lint: every rule has a fixture that fires exactly that
// rule, the clean fixture is silent, and the repository itself lints clean.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace ibridge::lint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const auto& d : diags) {
    out << "\n  " << d.file << ":" << d.line << ": [" << d.rule << "] "
        << d.message;
  }
  return out.str();
}

/// Lints one fixture together with the helper header, so layering and
/// include-what-you-use see a real project header.
std::vector<Diagnostic> lint_fixture(const std::string& file,
                                     const std::string& rel) {
  std::vector<SourceFile> corpus;
  corpus.push_back(
      lex_source("src/core/widget.hpp", slurp(fixture_path("widget.hpp"))));
  corpus.push_back(lex_source(rel, slurp(fixture_path(file))));
  return lint_corpus(corpus);
}

struct FixtureCase {
  const char* file;
  const char* rel;   ///< path the fixture pretends to live at
  const char* rule;  ///< the one rule expected to fire
};

const std::vector<FixtureCase>& cases() {
  static const std::vector<FixtureCase> kCases = {
      {"wall_clock.cc", "src/sim/fixture_clock.cpp", "wall-clock"},
      {"rand.cc", "src/sim/fixture_rand.cpp", "rand"},
      {"rng_construction.cc", "src/core/fixture_rng.cpp", "rng-construction"},
      {"const_cast.cc", "src/core/fixture_cc.cpp", "const-cast"},
      {"unordered_iteration.cc", "src/core/fixture_uo.cpp",
       "unordered-iteration"},
      {"pointer_key.cc", "src/core/fixture_pk.cpp", "pointer-key"},
      {"layering.cc", "src/sim/fixture_layer.cpp", "layering"},
      {"duplicate_include.cc", "src/core/fixture_dupinc.cpp",
       "duplicate-include"},
      {"iwyu.cc", "src/cluster/fixture_iwyu.cpp", "include-what-you-use"},
      {"raw_unit.cc", "src/core/fixture_raw.hpp", "raw-unit-type"},
      {"sim_callback.cc", "src/core/fixture_simcb.cpp", "sim-callback"},
      {"ssd_fault.cc", "src/core/fixture_fault.cpp", "ssd-fault-hook"},
      {"suppression_no_reason.cc", "src/core/fixture_s1.hpp",
       "lint-annotation"},
      {"suppression_unknown.cc", "src/core/fixture_s2.hpp",
       "lint-annotation"},
      {"suppression_unused.cc", "src/core/fixture_s3.hpp",
       "lint-annotation"},
  };
  return kCases;
}

TEST(LintFixtures, EachFixtureFiresExactlyItsRule) {
  for (const auto& c : cases()) {
    const auto diags = lint_fixture(c.file, c.rel);
    ASSERT_EQ(diags.size(), 1u) << c.file << dump(diags);
    EXPECT_EQ(diags[0].rule, c.rule) << c.file << dump(diags);
    EXPECT_EQ(diags[0].file, c.rel) << c.file;
    EXPECT_GT(diags[0].line, 0) << c.file;
  }
}

TEST(LintFixtures, CleanFixtureIsSilent) {
  const auto diags = lint_fixture("clean.cc", "src/core/fixture_clean.hpp");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintFixtures, EveryRegisteredRuleHasAFixture) {
  std::set<std::string> covered;
  for (const auto& c : cases()) covered.insert(c.rule);
  for (const auto& r : rules()) {
    EXPECT_TRUE(covered.count(r.id) != 0)
        << "rule '" << r.id << "' has no failing fixture";
  }
}

TEST(LintLexer, TracksLinesStringsAndIncludes) {
  const auto f = lex_source("src/sim/lexed.cpp",
                            "#include \"sim/units.hpp\"\n"
                            "#include <vector>\n"
                            "const char* s = \"not an ident: rand(\";\n"
                            "int x = 0;  // trailing comment\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "sim/units.hpp");
  EXPECT_TRUE(f.includes[0].quoted);
  EXPECT_FALSE(f.includes[1].quoted);
  EXPECT_EQ(f.module, "sim");
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].line, 4);
  // The banned name inside a string literal is not an identifier token.
  bool saw_rand_ident = false;
  for (const auto& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "rand") {
      saw_rand_ident = true;
    }
  }
  EXPECT_FALSE(saw_rand_ident);
}

TEST(LintTree, RepositoryIsClean) {
  const auto diags = lint_tree(IBRIDGE_SOURCE_ROOT);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

}  // namespace
}  // namespace ibridge::lint
