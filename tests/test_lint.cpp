// Tests for ibridge-lint: every rule has a fixture that fires exactly that
// rule, the clean fixture is silent, and the repository itself lints clean.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace ibridge::lint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const auto& d : diags) {
    out << "\n  " << d.file << ":" << d.line << ": [" << d.rule << "] "
        << d.message;
  }
  return out.str();
}

/// Lints one fixture together with the helper header, so layering and
/// include-what-you-use see a real project header.
std::vector<Diagnostic> lint_fixture(const std::string& file,
                                     const std::string& rel) {
  std::vector<SourceFile> corpus;
  corpus.push_back(
      lex_source("src/core/widget.hpp", slurp(fixture_path("widget.hpp"))));
  corpus.push_back(lex_source(rel, slurp(fixture_path(file))));
  return lint_corpus(corpus);
}

struct FixtureCase {
  const char* file;
  const char* rel;   ///< path the fixture pretends to live at
  const char* rule;  ///< the one rule expected to fire
};

const std::vector<FixtureCase>& cases() {
  static const std::vector<FixtureCase> kCases = {
      {"wall_clock.cc", "src/sim/fixture_clock.cpp", "wall-clock"},
      {"rand.cc", "src/sim/fixture_rand.cpp", "rand"},
      {"rng_construction.cc", "src/core/fixture_rng.cpp", "rng-construction"},
      {"const_cast.cc", "src/core/fixture_cc.cpp", "const-cast"},
      {"unordered_iteration.cc", "src/core/fixture_uo.cpp",
       "unordered-iteration"},
      {"pointer_key.cc", "src/core/fixture_pk.cpp", "pointer-key"},
      {"layering.cc", "src/sim/fixture_layer.cpp", "layering"},
      {"duplicate_include.cc", "src/core/fixture_dupinc.cpp",
       "duplicate-include"},
      {"iwyu.cc", "src/cluster/fixture_iwyu.cpp", "include-what-you-use"},
      {"raw_unit.cc", "src/core/fixture_raw.hpp", "raw-unit-type"},
      {"sim_callback.cc", "src/core/fixture_simcb.cpp", "sim-callback"},
      {"ssd_fault.cc", "src/core/fixture_fault.cpp", "ssd-fault-hook"},
      {"obs_bounded.cc", "src/core/fixture_obsb.cpp", "obs-bounded"},
      {"suppression_no_reason.cc", "src/core/fixture_s1.hpp",
       "lint-annotation"},
      {"suppression_unknown.cc", "src/core/fixture_s2.hpp",
       "lint-annotation"},
      {"suppression_unused.cc", "src/core/fixture_s3.hpp",
       "lint-annotation"},
      {"shared_global.cc", "src/core/fixture_sg.cpp", "shared-global"},
      {"static_local.cc", "src/core/fixture_sl.cpp", "static-local"},
      {"no_alloc_new.cc", "src/core/fixture_na1.cpp", "no-alloc"},
      {"no_alloc_transitive.cc", "src/core/fixture_na2.cpp", "no-alloc"},
      {"missing_ownership.cc", "src/core/fixture_own.cpp", "shard-ownership"},
      {"shard_mutation.cc", "src/sim/fixture_shardmut.cpp", "shard-ownership"},
      {"include_cycle.cc", "src/core/fixture_cycle.hpp", "include-cycle"},
  };
  return kCases;
}

TEST(LintFixtures, EachFixtureFiresExactlyItsRule) {
  for (const auto& c : cases()) {
    const auto diags = lint_fixture(c.file, c.rel);
    ASSERT_EQ(diags.size(), 1u) << c.file << dump(diags);
    EXPECT_EQ(diags[0].rule, c.rule) << c.file << dump(diags);
    EXPECT_EQ(diags[0].file, c.rel) << c.file;
    EXPECT_GT(diags[0].line, 0) << c.file;
  }
}

TEST(LintFixtures, CleanFixtureIsSilent) {
  const auto diags = lint_fixture("clean.cc", "src/core/fixture_clean.hpp");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintFixtures, EveryRegisteredRuleHasAFixture) {
  std::set<std::string> covered;
  for (const auto& c : cases()) covered.insert(c.rule);
  for (const auto& r : rules()) {
    EXPECT_TRUE(covered.count(r.id) != 0)
        << "rule '" << r.id << "' has no failing fixture";
  }
}

TEST(LintLexer, TracksLinesStringsAndIncludes) {
  const auto f = lex_source("src/sim/lexed.cpp",
                            "#include \"sim/units.hpp\"\n"
                            "#include <vector>\n"
                            "const char* s = \"not an ident: rand(\";\n"
                            "int x = 0;  // trailing comment\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "sim/units.hpp");
  EXPECT_TRUE(f.includes[0].quoted);
  EXPECT_FALSE(f.includes[1].quoted);
  EXPECT_EQ(f.module, "sim");
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].line, 4);
  // The banned name inside a string literal is not an identifier token.
  bool saw_rand_ident = false;
  for (const auto& tok : f.tokens) {
    if (tok.kind == TokKind::kIdent && tok.text == "rand") {
      saw_rand_ident = true;
    }
  }
  EXPECT_FALSE(saw_rand_ident);
}

TEST(LintTree, RepositoryIsClean) {
  const auto diags = lint_tree(IBRIDGE_SOURCE_ROOT);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// ------------------------------------------------------- semantic layer ----

TEST(LintIndex, BuildsSymbolsAndAttachesAnnotations) {
  std::vector<SourceFile> fs;
  fs.push_back(lex_source("src/core/sample.hpp",
                          "namespace ibridge::core {\n"
                          "class Gadget {\n"
                          " public:\n"
                          "  // lint: no-alloc\n"
                          "  int fast_path() { return helper(); }\n"
                          "  int helper();\n"
                          "  static int s_uses;\n"
                          "};\n"
                          "// lint: shared-ok (test tuning knob)\n"
                          "inline int g_tuning = 4;\n"
                          "thread_local int g_scratch = 0;\n"
                          "}  // namespace\n"));
  const auto idx = build_index(fs);

  ASSERT_EQ(idx.classes.size(), 1u);
  EXPECT_EQ(idx.classes[0], "ibridge::core::Gadget");

  // Only the definition is indexed; helper() is a mere declaration.
  ASSERT_EQ(idx.functions.size(), 1u);
  EXPECT_EQ(idx.functions[0].qualified(), "ibridge::core::Gadget::fast_path");
  EXPECT_EQ(idx.functions[0].line, 5);
  EXPECT_TRUE(idx.functions[0].in_class);
  EXPECT_TRUE(idx.functions[0].no_alloc);  // attached from the line above

  ASSERT_EQ(idx.vars.size(), 3u);
  EXPECT_EQ(idx.vars[0].name, "s_uses");
  EXPECT_EQ(idx.vars[0].kind, VarKind::kClassStatic);
  EXPECT_EQ(idx.vars[1].name, "g_tuning");
  EXPECT_EQ(idx.vars[1].kind, VarKind::kGlobal);
  EXPECT_TRUE(idx.vars[1].shared_ok);
  EXPECT_EQ(idx.vars[2].name, "g_scratch");
  EXPECT_EQ(idx.vars[2].kind, VarKind::kThreadLocal);

  // The unqualified helper() call inside fast_path was recorded.
  ASSERT_EQ(idx.calls.size(), 1u);
  EXPECT_EQ(idx.calls[0].callee, "helper");
  EXPECT_EQ(idx.calls[0].caller, 0);
}

TEST(LintGraph, ResolvesCallEdgesAndPropagatesMayAllocate) {
  std::vector<SourceFile> fs;
  fs.push_back(lex_source("src/core/chain.cpp",
                          "namespace ibridge::core {\n"
                          "inline int* leaf() { return new int(1); }\n"
                          "inline int* mid() { return leaf(); }\n"
                          "inline int* top() { return mid(); }\n"
                          "inline int safe() { return 0; }\n"
                          "}  // namespace\n"));
  const auto idx = build_index(fs);
  ASSERT_EQ(idx.functions.size(), 4u);
  const auto find = [&](const std::string& name) {
    for (std::size_t i = 0; i < idx.functions.size(); ++i) {
      if (idx.functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int leaf = find("leaf");
  const int mid = find("mid");
  const int top = find("top");
  const int safe = find("safe");

  const CallGraph graph = resolve_calls(idx);
  ASSERT_EQ(graph.edges.size(), idx.functions.size());
  EXPECT_EQ(graph.edges[static_cast<std::size_t>(mid)],
            std::vector<int>{leaf});
  EXPECT_EQ(graph.edges[static_cast<std::size_t>(top)],
            std::vector<int>{mid});
  EXPECT_TRUE(graph.edges[static_cast<std::size_t>(leaf)].empty());

  const auto facts = compute_alloc_facts(idx, graph);
  EXPECT_TRUE(facts[static_cast<std::size_t>(leaf)].may_allocate);
  EXPECT_TRUE(facts[static_cast<std::size_t>(mid)].may_allocate);
  EXPECT_TRUE(facts[static_cast<std::size_t>(top)].may_allocate);
  EXPECT_FALSE(facts[static_cast<std::size_t>(safe)].may_allocate);
  // The witness names the root cause, through the chain.
  EXPECT_NE(facts[static_cast<std::size_t>(top)].witness.find("'new'"),
            std::string::npos);
}

TEST(LintSemantic, FlagsCrossModuleMutatingCallButNotOwnerCalls) {
  std::vector<SourceFile> fs;
  fs.push_back(lex_source("src/core/owned_box.hpp",
                          "namespace ibridge::core {\n"
                          "struct Box { void reset(); void clear(); };\n"
                          "// lint: shard-owned (core)\n"
                          "inline Box g_shard_box;\n"
                          "inline void local() { g_shard_box.clear(); }\n"
                          "}  // namespace\n"));
  fs.push_back(lex_source("src/sim/poker.cpp",
                          "namespace ibridge::sim {\n"
                          "inline void poke(core::Box* g_unrelated) {\n"
                          "  g_shard_box.reset();\n"
                          "  g_shard_box.size();\n"  // const-ish: not flagged
                          "}\n"
                          "}  // namespace\n"));
  const auto diags = lint_corpus(fs);
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "shard-ownership");
  EXPECT_EQ(diags[0].file, "src/sim/poker.cpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("mutating call"), std::string::npos);
}

TEST(LintSemantic, FlagsCrossModuleWriteToShardOwnedState) {
  std::vector<SourceFile> fs;
  fs.push_back(lex_source("src/core/owned.hpp",
                          "namespace ibridge::core {\n"
                          "// lint: shard-owned (core)\n"
                          "inline int g_shard_epoch = 0;\n"
                          "inline void advance() { g_shard_epoch = 1; }\n"
                          "}  // namespace\n"));
  fs.push_back(lex_source("src/sim/meddler.cpp",
                          "namespace ibridge::sim {\n"
                          "inline void meddle() { g_shard_epoch = 2; }\n"
                          "}  // namespace\n"));
  const auto diags = lint_corpus(fs);
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "shard-ownership");
  EXPECT_EQ(diags[0].file, "src/sim/meddler.cpp");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintIndex, CacheRoundTripIsByteIdenticalAndDeterministic) {
  const auto files = load_tree(IBRIDGE_SOURCE_ROOT);
  const auto idx = build_index(files);
  const std::string text = serialize_index(idx);
  EXPECT_EQ(text.compare(0, 22, "ibridge-lint-index-v1\n"), 0);

  const auto back = parse_index(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serialize_index(*back), text);

  // Rebuilding from the same corpus is byte-identical (the CI index-cache
  // artifact relies on this).
  EXPECT_EQ(serialize_index(build_index(files)), text);

  // A corrupted cache is rejected, not half-parsed.
  EXPECT_FALSE(parse_index("ibridge-lint-index-v2\n").has_value());
  EXPECT_FALSE(parse_index(text + "garbage record\n").has_value());
}

}  // namespace
}  // namespace ibridge::lint
