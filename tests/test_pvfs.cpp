// Integration tests for the PVFS layer: metadata server, data servers, and
// client fan-out — including end-to-end data integrity through striping and
// the iBridge cache.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpiio/mpi.hpp"
#include "sim/rng.hpp"

namespace ibridge::pvfs {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 37 + i * 3) & 0xff);
  }
  return v;
}

cluster::ClusterConfig verify_config(bool ibridge, int servers = 4) {
  auto cc = ibridge ? cluster::ClusterConfig::with_ibridge()
                    : cluster::ClusterConfig::stock();
  cc.data_servers = servers;
  cc.server.data_mode = fsim::DataMode::kVerify;
  // Keep devices small so verify-mode stores stay cheap.
  cc.server.hdd.capacity_bytes = 4LL << 30;
  cc.server.ssd.capacity_bytes = 1LL << 30;
  cc.server.ibridge.ssd_cache_bytes = 64 << 20;
  return cc;
}

sim::SimTime client_write(cluster::Cluster& c, FileHandle fh, int rank,
                          std::int64_t off, std::span<const std::byte> data) {
  sim::SimTime out;
  bool done = false;
  auto t = [](cluster::Cluster& cl, FileHandle f, int r, std::int64_t o,
              std::span<const std::byte> d, sim::SimTime& res,
              bool& flag) -> sim::Task<> {
    res = co_await cl.client().write_at(
        r, f, o, static_cast<std::int64_t>(d.size()), d);
    flag = true;
  }(c, fh, rank, off, data, out, done);
  t.start();
  c.sim().run_while_pending([&] { return done; });
  return out;
}

std::vector<std::byte> client_read(cluster::Cluster& c, FileHandle fh,
                                   int rank, std::int64_t off,
                                   std::int64_t len) {
  std::vector<std::byte> buf(static_cast<std::size_t>(len));
  bool done = false;
  auto t = [](cluster::Cluster& cl, FileHandle f, int r, std::int64_t o,
              std::int64_t l, std::span<std::byte> b,
              bool& flag) -> sim::Task<> {
    co_await cl.client().read_at(r, f, o, l, b);
    flag = true;
  }(c, fh, rank, off, len, buf, done);
  t.start();
  c.sim().run_while_pending([&] { return done; });
  return buf;
}

// --------------------------------------------------------------- metadata ----

TEST(MetadataServer, CreatesDatafilesWithCorrectShares) {
  cluster::Cluster c(verify_config(false, 4));
  const std::int64_t size = 10 * 64 * 1024 + 999;
  const FileHandle fh = c.create_file("f", size);
  const LogicalFile& f = c.mds().file(fh);
  ASSERT_EQ(f.datafiles.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    const auto& df = c.server(s).fs().file(f.datafiles[static_cast<size_t>(s)]);
    EXPECT_GE(df.size(),
              f.layout.server_share(sim::Bytes{size}, sim::ServerId{s}).count());
    EXPECT_TRUE(df.contiguous());
  }
}

TEST(MetadataServer, LookupByName) {
  cluster::Cluster c(verify_config(false));
  const FileHandle fh = c.create_file("hello", 1 << 20);
  EXPECT_EQ(c.mds().lookup("hello"), fh);
  EXPECT_EQ(c.mds().lookup("world"), kInvalidHandle);
  EXPECT_EQ(c.create_file("hello", 1 << 20), fh) << "create is idempotent";
}

TEST(MetadataServer, BoardDaemonPublishesTValues) {
  cluster::Cluster c(verify_config(true, 2));
  const FileHandle fh = c.create_file("f", 16 << 20);
  // Generate traffic so T values move, then let a report interval pass.
  for (int i = 0; i < 8; ++i) {
    client_write(c, fh, 0, i * 300'000, pattern(50'000, 1));
  }
  c.sim().run_until(c.sim().now() + sim::SimTime::seconds(2));
  ASSERT_EQ(c.mds().board().size(), 2u);
  EXPECT_GT(c.mds().board()[0] + c.mds().board()[1], 0.0);
}

// ----------------------------------------------------------------- client ----

TEST(Client, WriteReadRoundTripAcrossServers) {
  for (const bool ibridge : {false, true}) {
    cluster::Cluster c(verify_config(ibridge));
    const FileHandle fh = c.create_file("f", 8 << 20);
    const auto data = pattern(300'000, 42);  // spans several stripe units
    client_write(c, fh, 0, 123'456, data);
    const auto got = client_read(c, fh, 0, 123'456, 300'000);
    EXPECT_EQ(0, std::memcmp(got.data(), data.data(), data.size()))
        << (ibridge ? "iBridge" : "stock");
  }
}

TEST(Client, SubRequestsLandOnCorrectServers) {
  cluster::Cluster c(verify_config(false));
  const FileHandle fh = c.create_file("f", 8 << 20);
  // Write one striping unit to stripe 2 -> server 2 only.
  const auto data = pattern(64 * 1024, 7);
  client_write(c, fh, 0, 2 * 64 * 1024, data);
  EXPECT_EQ(c.server(2).bytes_served(), sim::Bytes{64 * 1024});
  EXPECT_EQ(c.server(0).bytes_served(), sim::Bytes::zero());
  EXPECT_EQ(c.server(1).bytes_served(), sim::Bytes::zero());
}

TEST(Client, UnalignedRequestFansOutToTwoServers) {
  cluster::Cluster c(verify_config(false));
  const FileHandle fh = c.create_file("f", 8 << 20);
  client_write(c, fh, 0, 63 * 1024, pattern(2048, 9));
  EXPECT_EQ(c.server(0).bytes_served(), sim::Bytes{1024});
  EXPECT_EQ(c.server(1).bytes_served(), sim::Bytes{1024});
}

TEST(Client, RequestTimeIsMaxOfSubRequests) {
  // A request spanning a loaded server cannot complete before that
  // server's queue drains: synchronous-request semantics.
  cluster::Cluster c(verify_config(false, 2));
  const FileHandle fh = c.create_file("f", 8 << 20);
  const auto t_small = client_write(c, fh, 0, 0, pattern(1024, 1));
  const auto t_span = client_write(c, fh, 0, 63 * 1024, pattern(2048, 2));
  EXPECT_GT(t_span, sim::SimTime::zero());
  EXPECT_GT(t_small, sim::SimTime::zero());
}

TEST(Client, ConcurrentRandomOpsMatchReference) {
  // The flagship integrity test: random reads/writes from several ranks
  // through striping + iBridge caching + write-back, checked against an
  // in-memory reference after every read and after the final drain.
  auto cc = verify_config(true);
  cc.server.ibridge.ssd_cache_bytes = 1 << 20;  // force eviction traffic
  cc.server.ibridge.log_segment_bytes = 256 << 10;
  cluster::Cluster c(cc);
  const std::int64_t span = 6 << 20;
  const FileHandle fh = c.create_file("f", span);
  std::vector<std::uint8_t> ref(span, 0);

  struct Op {
    bool write;
    std::int64_t off, len;
    std::uint8_t seed;
  };
  sim::Rng rng(4321);
  for (int round = 0; round < 40; ++round) {
    // A batch of concurrent writes from 4 ranks at disjoint offsets.
    std::vector<Op> ops;
    std::int64_t cursor = rng.uniform(0, span / 2);
    for (int r = 0; r < 4; ++r) {
      const std::int64_t len = rng.uniform(1000, 90'000);
      if (cursor + len > span) break;
      ops.push_back({true, cursor, len, static_cast<std::uint8_t>(round * 4 + r)});
      cursor += len + rng.uniform(0, 50'000);
    }
    bool done = false;
    std::vector<std::vector<std::byte>> bufs;
    bufs.reserve(ops.size());
    for (const auto& op : ops) {
      bufs.push_back(pattern(static_cast<std::size_t>(op.len), op.seed));
    }
    auto t = [](cluster::Cluster& cl, FileHandle f, const std::vector<Op>& o,
                const std::vector<std::vector<std::byte>>& b,
                bool& flag) -> sim::Task<> {
      sim::JoinSet join(cl.sim());
      for (std::size_t i = 0; i < o.size(); ++i) {
        join.add([](cluster::Cluster& cl2, FileHandle f2, Op op,
                    std::span<const std::byte> data) -> sim::Task<> {
          co_await cl2.client().write_at(static_cast<int>(op.seed % 4), f2,
                                         op.off, op.len, data);
        }(cl, f, o[i], b[i]));
      }
      co_await join.join();
      flag = true;
    }(c, fh, ops, bufs, done);
    t.start();
    c.sim().run_while_pending([&] { return done; });
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::memcpy(ref.data() + ops[i].off, bufs[i].data(),
                  static_cast<std::size_t>(ops[i].len));
    }
    // A verification read of a random window.
    const std::int64_t roff = rng.uniform(0, span - 100'000);
    const std::int64_t rlen = rng.uniform(1, 100'000);
    const auto got = client_read(c, fh, 0, roff, rlen);
    ASSERT_EQ(0, std::memcmp(got.data(), ref.data() + roff,
                             static_cast<std::size_t>(rlen)))
        << "round " << round;
  }
  c.drain();
  // After drain every byte must be on the disks alone.
  const auto got = client_read(c, fh, 0, 0, span);
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), ref.size()));
}

// ----------------------------------------------------------- data server ----

TEST(DataServer, StockHasNoCache) {
  cluster::Cluster c(verify_config(false));
  EXPECT_FALSE(c.server(0).has_cache());
  EXPECT_EQ(c.server(0).current_t(), 0.0);
}

TEST(DataServer, IBridgeHasCacheAndSsd) {
  cluster::Cluster c(verify_config(true));
  EXPECT_TRUE(c.server(0).has_cache());
  EXPECT_NE(c.server(0).ssd(), nullptr);
}

TEST(DataServer, SsdOnlyModePutsDatafilesOnSsd) {
  auto cc = verify_config(false);
  cc.server.storage_mode = StorageMode::kSsdOnly;
  cluster::Cluster c(cc);
  const FileHandle fh = c.create_file("f", 4 << 20);
  client_write(c, fh, 0, 0, pattern(200'000, 3));
  EXPECT_FALSE(c.server(0).has_cache());
  EXPECT_GT(c.server(0).ssd()->bytes_written(), 0);
  EXPECT_EQ(c.server(0).disk().bytes_written(), 0);
}

TEST(DataServer, ServiceMeterRecordsRequests) {
  cluster::Cluster c(verify_config(false));
  const FileHandle fh = c.create_file("f", 4 << 20);
  client_write(c, fh, 0, 0, pattern(64 * 1024, 4));
  EXPECT_EQ(c.server(0).service_meter().count(), 1u);
  EXPECT_GT(c.server(0).service_meter().mean_ms(), 0.0);
}

}  // namespace
}  // namespace ibridge::pvfs
