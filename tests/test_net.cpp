// Tests for the interconnect model: per-message latency, per-NIC
// serialization, and concurrent transfer interaction.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace ibridge::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulator sim;
  NetworkParams params;
  NetworkModel net{sim, params};

  sim::SimTime timed_transfer(Nic& a, Nic& b, std::int64_t bytes) {
    sim::SimTime out;
    bool done = false;
    auto t = [](NetworkModel& n, Nic& src, Nic& dst, std::int64_t sz,
                sim::Simulator& s, sim::SimTime& r, bool& flag) -> sim::Task<> {
      const sim::SimTime t0 = s.now();
      co_await n.transfer(src, dst, sz);
      r = s.now() - t0;
      flag = true;
    }(net, a, b, bytes, sim, out, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    return out;
  }
};

TEST_F(NetFixture, TransferTimeIsLatencyPlusSerialization) {
  Nic& a = net.add_endpoint("a");
  Nic& b = net.add_endpoint("b");
  const std::int64_t bytes = 3'200'000;  // 1 ms at 3.2 GB/s
  const sim::SimTime t = timed_transfer(a, b, bytes);
  const double expect_us =
      1000.0 + params.latency_us + params.per_message_us;
  EXPECT_NEAR(t.to_micros(), expect_us, 1.0);
}

TEST_F(NetFixture, SmallMessageIsLatencyBound) {
  Nic& a = net.add_endpoint("a");
  Nic& b = net.add_endpoint("b");
  const sim::SimTime t = timed_transfer(a, b, 256);
  EXPECT_LT(t.to_micros(), 10.0);
  EXPECT_GT(t.to_micros(), params.latency_us);
}

TEST_F(NetFixture, BackToBackTransfersQueueOnNic) {
  Nic& a = net.add_endpoint("a");
  Nic& b = net.add_endpoint("b");
  const std::int64_t bytes = 3'200'000;  // 1 ms each
  bool done1 = false, done2 = false;
  sim::SimTime end1, end2;
  auto t1 = [](NetworkModel& n, Nic& src, Nic& dst, std::int64_t sz,
               sim::Simulator& s, sim::SimTime& r, bool& f) -> sim::Task<> {
    co_await n.transfer(src, dst, sz);
    r = s.now();
    f = true;
  }(net, a, b, bytes, sim, end1, done1);
  auto t2 = [](NetworkModel& n, Nic& src, Nic& dst, std::int64_t sz,
               sim::Simulator& s, sim::SimTime& r, bool& f) -> sim::Task<> {
    co_await n.transfer(src, dst, sz);
    r = s.now();
    f = true;
  }(net, a, b, bytes, sim, end2, done2);
  t1.start();
  t2.start();
  sim.run();
  ASSERT_TRUE(done1 && done2);
  // Second transfer serializes behind the first: ~2 ms, not ~1 ms.
  EXPECT_GT(end2.to_micros(), 1900.0);
}

TEST_F(NetFixture, DisjointPairsDoNotInterfere) {
  Nic& a = net.add_endpoint("a");
  Nic& b = net.add_endpoint("b");
  Nic& c = net.add_endpoint("c");
  Nic& d = net.add_endpoint("d");
  const std::int64_t bytes = 3'200'000;
  bool done1 = false, done2 = false;
  sim::SimTime end1, end2;
  auto t1 = [](NetworkModel& n, Nic& src, Nic& dst, std::int64_t sz,
               sim::Simulator& s, sim::SimTime& r, bool& f) -> sim::Task<> {
    co_await n.transfer(src, dst, sz);
    r = s.now();
    f = true;
  }(net, a, b, bytes, sim, end1, done1);
  auto t2 = [](NetworkModel& n, Nic& src, Nic& dst, std::int64_t sz,
               sim::Simulator& s, sim::SimTime& r, bool& f) -> sim::Task<> {
    co_await n.transfer(src, dst, sz);
    r = s.now();
    f = true;
  }(net, c, d, bytes, sim, end2, done2);
  t1.start();
  t2.start();
  sim.run();
  EXPECT_NEAR(end1.to_micros(), end2.to_micros(), 1.0);
}

TEST_F(NetFixture, NicAccountsBytes) {
  Nic& a = net.add_endpoint("a");
  Nic& b = net.add_endpoint("b");
  timed_transfer(a, b, 1000);
  EXPECT_EQ(a.bytes_transferred(), 1000);
  EXPECT_EQ(b.bytes_transferred(), 1000);
  EXPECT_EQ(a.name(), "a");
}

}  // namespace
}  // namespace ibridge::net
