// Tests for the local file system: extent allocation, offset->LBN mapping,
// and byte-accurate data integrity in verify mode.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "fsim/filesystem.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"

namespace ibridge::fsim {
namespace {

using storage::kSectorBytes;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
  }
  return v;
}

struct FsFixture : ::testing::Test {
  sim::Simulator sim;
  storage::HddParams params = [] {
    auto p = storage::paper_hdd();
    p.anticipation_ms = 0;
    return p;
  }();
  storage::HddModel disk{sim, params};
  LocalFileSystem fs{sim, disk, DataMode::kVerify};

  sim::SimTime do_write(FileId id, std::int64_t off,
                        std::span<const std::byte> data) {
    sim::SimTime out;
    bool done = false;
    auto t = [](LocalFileSystem& f, FileId i, std::int64_t o,
                std::span<const std::byte> d, sim::SimTime& r,
                bool& flag) -> sim::Task<> {
      r = co_await f.write(i, o, static_cast<std::int64_t>(d.size()), d);
      flag = true;
    }(fs, id, off, data, out, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    return out;
  }

  std::vector<std::byte> do_read(FileId id, std::int64_t off,
                                 std::int64_t len) {
    std::vector<std::byte> buf(static_cast<std::size_t>(len));
    bool done = false;
    auto t = [](LocalFileSystem& f, FileId i, std::int64_t o, std::int64_t l,
                std::span<std::byte> b, bool& flag) -> sim::Task<> {
      co_await f.read(i, o, l, b);
      flag = true;
    }(fs, id, off, len, buf, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    return buf;
  }
};

// ---------------------------------------------------------- allocator ----

TEST(ExtentAllocator, AllocatesFromFrontier) {
  ExtentAllocator a(1000);
  EXPECT_EQ(a.allocate(100), 0);
  EXPECT_EQ(a.allocate(100), 100);
  EXPECT_EQ(a.free_sectors(), 800);
}

TEST(ExtentAllocator, ReleaseEnablesReuseFirstFit) {
  ExtentAllocator a(1000);
  const auto x = a.allocate(100);
  const auto y = a.allocate(100);
  (void)y;
  a.release(x, 100);
  EXPECT_EQ(a.allocate(50), x);  // first fit in the freed hole
  EXPECT_EQ(a.allocate(50), x + 50);
}

TEST(ExtentAllocator, CoalescesAdjacentFreeRanges) {
  ExtentAllocator a(1000);
  const auto x = a.allocate(100);
  const auto y = a.allocate(100);
  const auto z = a.allocate(100);
  (void)z;
  a.release(x, 100);
  a.release(y, 100);
  // The two holes coalesce: a 200-sector request fits at x.
  EXPECT_EQ(a.allocate(200), x);
}

TEST(ExtentAllocator, ReturnsMinusOneWhenFull) {
  ExtentAllocator a(100);
  EXPECT_EQ(a.allocate(100), 0);
  EXPECT_EQ(a.allocate(1), -1);
}

// ------------------------------------------------------------- mapping ----

TEST_F(FsFixture, PreallocatedFileIsContiguous) {
  const FileId id = fs.create("a", 1 << 20);
  EXPECT_TRUE(fs.file(id).contiguous());
  EXPECT_EQ(fs.file(id).size(), 1 << 20);
}

TEST_F(FsFixture, MapCoversExactSectorSpan) {
  const FileId id = fs.create("a", 1 << 20);
  auto m = fs.file(id).map(1000, 3000);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].lbn, fs.file(id).extents()[0].lbn + 1000 / kSectorBytes);
  // Bytes [1000, 4000) span sectors [1, 7] -> 7 sectors.
  EXPECT_EQ(m[0].sectors, 7);
}

TEST_F(FsFixture, InterleavedGrowthCreatesSeparateExtents) {
  const FileId a = fs.create("a");
  const FileId b = fs.create("b");
  ASSERT_TRUE(fs.truncate(a, 4096));
  ASSERT_TRUE(fs.truncate(b, 4096));
  ASSERT_TRUE(fs.truncate(a, 8192));  // a's growth is now discontiguous
  EXPECT_EQ(fs.file(a).extents().size(), 2u);
  auto m = fs.file(a).map(0, 8192);
  EXPECT_EQ(m.size(), 2u);
}

TEST_F(FsFixture, ContiguousGrowthExtendsLastExtent) {
  const FileId a = fs.create("a");
  ASSERT_TRUE(fs.truncate(a, 4096));
  ASSERT_TRUE(fs.truncate(a, 8192));  // frontier unchanged in between
  EXPECT_EQ(fs.file(a).extents().size(), 1u);
}

TEST_F(FsFixture, RemoveReleasesSpace) {
  const std::int64_t before =
      ExtentAllocator(disk.capacity_sectors()).free_sectors();
  const FileId id = fs.create("a", 1 << 20);
  fs.remove(id);
  const FileId id2 = fs.create("b", disk.capacity_sectors() * kSectorBytes /
                                         2);
  EXPECT_NE(id2, kInvalidFile);
  (void)before;
  EXPECT_EQ(fs.lookup("a"), kInvalidFile);
}

TEST_F(FsFixture, LookupFindsByName) {
  const FileId id = fs.create("hello", 4096);
  EXPECT_EQ(fs.lookup("hello"), id);
  EXPECT_EQ(fs.lookup("nope"), kInvalidFile);
}

// ------------------------------------------------------ data integrity ----

TEST_F(FsFixture, ReadBackReturnsWrittenBytes) {
  const FileId id = fs.create("a", 1 << 20);
  const auto data = pattern(10'000, 42);
  do_write(id, 777, data);
  const auto back = do_read(id, 777, 10'000);
  EXPECT_EQ(0, std::memcmp(back.data(), data.data(), data.size()));
}

TEST_F(FsFixture, UnwrittenRangesReadAsZero) {
  const FileId id = fs.create("a", 1 << 20);
  const auto back = do_read(id, 12345, 100);
  for (auto b : back) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FsFixture, OverlappingWritesLastWins) {
  const FileId id = fs.create("a", 1 << 20);
  do_write(id, 0, pattern(8192, 1));
  do_write(id, 4096, pattern(8192, 2));
  const auto back = do_read(id, 0, 12288);
  const auto first = pattern(8192, 1);
  const auto second = pattern(8192, 2);
  EXPECT_EQ(0, std::memcmp(back.data(), first.data(), 4096));
  EXPECT_EQ(0, std::memcmp(back.data() + 4096, second.data(), 8192));
}

TEST_F(FsFixture, WriteExtendsFileSize) {
  const FileId id = fs.create("a");
  do_write(id, 100'000, pattern(512, 3));
  EXPECT_EQ(fs.file(id).size(), 100'512);
}

TEST_F(FsFixture, TimingAccountsForDeviceService) {
  const FileId id = fs.create("a", 1 << 20);
  const auto t = do_write(id, 0, pattern(64 * 1024, 9));
  EXPECT_GT(t, sim::SimTime::zero());
  EXPECT_GT(disk.bytes_written(), 0);
}

TEST_F(FsFixture, RandomOpsMatchReferenceModel) {
  // Property test: a random sequence of reads and writes through the block
  // device must agree byte-for-byte with a plain in-memory reference.
  const std::int64_t file_size = 1 << 20;
  const FileId id = fs.create("a", file_size);
  std::vector<std::uint8_t> ref(static_cast<std::size_t>(file_size), 0);
  sim::Rng rng(1234);
  for (int op = 0; op < 200; ++op) {
    const std::int64_t off = rng.uniform(0, file_size - 1);
    const std::int64_t len =
        std::min<std::int64_t>(rng.uniform(1, 20'000), file_size - off);
    if (rng.chance(0.5)) {
      auto data = pattern(static_cast<std::size_t>(len),
                          static_cast<std::uint8_t>(op));
      do_write(id, off, data);
      std::memcpy(ref.data() + off, data.data(),
                  static_cast<std::size_t>(len));
    } else {
      const auto got = do_read(id, off, len);
      ASSERT_EQ(0, std::memcmp(got.data(), ref.data() + off,
                               static_cast<std::size_t>(len)))
          << "mismatch at op " << op << " off " << off << " len " << len;
    }
  }
}

TEST_F(FsFixture, PokePeekBypassDevices) {
  const FileId id = fs.create("a", 1 << 16);
  auto data = pattern(1000, 5);
  fs.poke_bytes(id, 100, data);
  std::vector<std::byte> out(1000);
  fs.peek_bytes(id, 100, out);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), 1000));
}

TEST(FsTimingOnly, CarriesNoData) {
  sim::Simulator sim;
  auto p = storage::paper_hdd();
  p.anticipation_ms = 0;
  storage::HddModel disk(sim, p);
  LocalFileSystem fs(sim, disk, DataMode::kTimingOnly);
  const FileId id = fs.create("a", 1 << 16);
  fs.poke_bytes(id, 0, pattern(100, 1));
  std::vector<std::byte> out(100, std::byte{0x77});
  fs.peek_bytes(id, 0, out);
  EXPECT_EQ(out[0], std::byte{0x77});  // untouched: no store in timing mode
}

}  // namespace
}  // namespace ibridge::fsim
