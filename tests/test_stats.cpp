// Tests for the statistics accumulators, blktrace recorder, and table
// printers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "stats/blocktrace.hpp"
#include "stats/histogram.hpp"
#include "stats/meters.hpp"
#include "stats/sketch.hpp"
#include "stats/table.hpp"

namespace ibridge::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, empty;
  a.add(3.0);
  Summary c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), 1u);
  Summary d = empty;
  d.merge(a);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(128, 72);
  h.add(256, 18);
  h.add(2, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(128), 72u);
  EXPECT_DOUBLE_EQ(h.fraction(128), 0.72);
  EXPECT_DOUBLE_EQ(h.fraction(999), 0.0);
}

TEST(IntHistogram, TopIsSortedByCount) {
  IntHistogram h;
  h.add(1, 5);
  h.add(2, 50);
  h.add(3, 20);
  auto top = h.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 3);
}

TEST(IntHistogram, WeightedMean) {
  IntHistogram h;
  h.add(10, 1);
  h.add(30, 3);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(IntHistogram, KeysSortedAndClear) {
  IntHistogram h;
  h.add(5);
  h.add(1);
  h.add(9);
  EXPECT_EQ(h.keys(), (std::vector<std::int64_t>{1, 5, 9}));
  h.clear();
  EXPECT_EQ(h.total(), 0u);
}

TEST(BlockTraceRecorder, RoundsBytesUpToSectors) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, sim::Bytes{1024},
           sim::SimTime::millis(1));
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, sim::Bytes{1025},
           sim::SimTime::millis(1));
  EXPECT_EQ(r.size_histogram().count(2), 1u);
  EXPECT_EQ(r.size_histogram().count(3), 1u);
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.read_bytes(), sim::Bytes{2049});
}

TEST(BlockTraceRecorder, DisabledRecordsNothing) {
  BlockTraceRecorder r;
  r.set_enabled(false);
  r.record(sim::SimTime::zero(), IoDirection::kWrite, 0, sim::Bytes{512},
           sim::SimTime::millis(1));
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_EQ(r.write_bytes(), sim::Bytes::zero());
}

TEST(BlockTraceRecorder, KeepsEntriesOnlyWhenAsked) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 7, sim::Bytes{512},
           sim::SimTime::millis(1));
  EXPECT_TRUE(r.entries().empty());
  r.set_keep_entries(true);
  r.record(sim::SimTime::millis(2), IoDirection::kWrite, 9, sim::Bytes{512},
           sim::SimTime::millis(3));
  ASSERT_EQ(r.entries().size(), 1u);
  EXPECT_EQ(r.entries()[0].lbn, 9);
  EXPECT_EQ(r.entries()[0].dir, IoDirection::kWrite);
}

TEST(Table, AlignsColumnsAndEmitsCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22222\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt("%.1f", 3.14), "3.1");
  EXPECT_EQ(Table::fmt("%lld", 7LL), "7");
}

TEST(ThroughputMeter, ComputesDecimalMbps) {
  ThroughputMeter m;
  m.start(sim::SimTime::zero());
  m.add_bytes(sim::Bytes{10'000'000});
  m.stop(sim::SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(m.mbps(), 5.0);
  EXPECT_EQ(m.bytes(), sim::Bytes{10'000'000});
}

TEST(ThroughputMeter, ElapsedGuardedWhileRunning) {
  ThroughputMeter m;
  // Never started: no defensible interval.
  EXPECT_FALSE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::zero());
  EXPECT_DOUBLE_EQ(m.mbps(), 0.0);

  m.start(sim::SimTime::millis(5));
  m.add_bytes(sim::Bytes{1024});
  // Still running: elapsed stays zero instead of `now - start` garbage.
  EXPECT_TRUE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::zero());
  EXPECT_DOUBLE_EQ(m.mbps(), 0.0);

  m.stop(sim::SimTime::millis(7));
  EXPECT_FALSE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::millis(2));
}

TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(h.median(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.add(42.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.5);
  EXPECT_DOUBLE_EQ(h.median(), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.5);
}

TEST(Histogram, NearestRankPercentiles) {
  Histogram h;
  // Unsorted insert order; percentile() sorts lazily.
  for (double x : {50.0, 10.0, 40.0, 20.0, 30.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(20.0), 10.0);   // ceil(1.0) -> rank 1
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 30.0);   // ceil(2.5) -> rank 3
  EXPECT_DOUBLE_EQ(h.percentile(90.0), 50.0);   // ceil(4.5) -> rank 5
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(Histogram, DuplicateHeavySamples) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.add(1.0);
  h.add(1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.median(), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.5), 1000.0);  // ceil(99.5) -> rank 100
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, MergeAndClear) {
  Histogram a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  // Interleave percentile queries with adds: the lazy sort must re-arm.
  EXPECT_DOUBLE_EQ(a.median(), 1.0);
  a.add(0.5);
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 3.0);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.percentile(50.0), 0.0);
}

TEST(ServiceTimeMeter, AveragesMillis) {
  ServiceTimeMeter m;
  m.add(sim::SimTime::millis(10));
  m.add(sim::SimTime::millis(20));
  EXPECT_DOUBLE_EQ(m.mean_ms(), 15.0);
  EXPECT_EQ(m.count(), 2u);
}

TEST(ServiceTimeMeter, SketchBackedTailsAreAlwaysOn) {
  ServiceTimeMeter m;
  for (int i = 1; i <= 100; ++i) m.add(sim::SimTime::millis(i));
  EXPECT_NEAR(m.p50_ms(), 50.0, 50.0 * m.sketch().relative_error());
  EXPECT_NEAR(m.p99_ms(), 99.0, 99.0 * m.sketch().relative_error());
  EXPECT_EQ(m.sketch().count(), 100u);
}

// ---- Histogram percentile interpolation ----

TEST(Histogram, LinearInterpolationPercentiles) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(i);
  // Regression pin: the two conventions answer differently at p50.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);  // nearest-rank (default)
  EXPECT_DOUBLE_EQ(h.percentile(50.0, Histogram::Interp::kNearestRank), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0, Histogram::Interp::kLinear), 5.5);
  // Linear is the R-7 convention: h = p/100 * (n-1), interpolate neighbours.
  EXPECT_DOUBLE_EQ(h.percentile(25.0, Histogram::Interp::kLinear), 3.25);
  // Both agree at the extremes.
  EXPECT_DOUBLE_EQ(h.percentile(0.0, Histogram::Interp::kLinear), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0, Histogram::Interp::kLinear), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(Histogram, LinearInterpolationDegenerateSizes) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0, Histogram::Interp::kLinear), 0.0);  // empty
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0, Histogram::Interp::kLinear), 7.0);  // single
}

// ---- bounded quantile estimators ----

std::vector<double> constant_stream(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 42.0);
}

std::vector<double> bimodal_stream(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.uniform01() < 0.5 ? 1.0 + rng.uniform01()
                                      : 100.0 + 10.0 * rng.uniform01());
  }
  return v;
}

std::vector<double> heavy_tail_stream(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(std::ldexp(1.0, static_cast<int>(rng.below(20))) *
                (1.0 + rng.uniform01()));
  }
  return v;
}

TEST(QuantileSketch, WithinRelativeErrorOnAdversarialDistributions) {
  const std::vector<std::vector<double>> streams = {
      constant_stream(5000), bimodal_stream(5000, 11),
      heavy_tail_stream(5000, 12)};
  for (const auto& stream : streams) {
    QuantileSketch sk;
    Histogram exact;
    for (double x : stream) {
      sk.add(x);
      exact.add(x);
    }
    for (double p : {50.0, 95.0, 99.0}) {
      const double e = exact.percentile(p);
      EXPECT_NEAR(sk.percentile(p), e, e * sk.relative_error() + 1e-12)
          << "p" << p << " over a " << stream.size() << "-sample stream";
    }
    EXPECT_EQ(sk.count(), exact.count());
    EXPECT_DOUBLE_EQ(sk.min(), exact.min());
    EXPECT_DOUBLE_EQ(sk.max(), exact.max());
  }
}

TEST(QuantileSketch, MergeIsExactAndOrderInsensitive) {
  const auto stream = heavy_tail_stream(3000, 21);
  QuantileSketch whole;
  for (double x : stream) whole.add(x);

  QuantileSketch part[3];
  for (std::size_t i = 0; i < stream.size(); ++i) part[i % 3].add(stream[i]);

  QuantileSketch ab = part[0];
  ab.merge(part[1]);
  ab.merge(part[2]);                     // (a+b)+c
  QuantileSketch bc = part[1];
  bc.merge(part[2]);
  QuantileSketch a_bc = part[0];
  a_bc.merge(bc);                        // a+(b+c)

  EXPECT_EQ(ab.digest(), whole.digest());
  EXPECT_EQ(a_bc.digest(), whole.digest());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(ab.percentile(p), whole.percentile(p));
    EXPECT_DOUBLE_EQ(a_bc.percentile(p), whole.percentile(p));
  }
}

TEST(QuantileSketch, DigestIsDeterministicAndDiscriminates) {
  QuantileSketch a, b, c;
  for (double x : bimodal_stream(500, 3)) {
    a.add(x);
    b.add(x);
  }
  for (double x : bimodal_stream(500, 4)) c.add(x);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(a.digest(), QuantileSketch().digest());
}

TEST(QuantileSketch, MemoryStaysBoundedRegardlessOfSampleCount) {
  // Torture stream spanning 40 octaves: the bucket table saturates and then
  // stops growing no matter how many more samples arrive — the O(1) bound.
  QuantileSketch sk;
  sim::Rng rng(5);
  const auto draw = [&] {
    return std::ldexp(1.0, static_cast<int>(rng.below(40)) - 15) *
           (1.0 + rng.uniform01());
  };
  for (int i = 0; i < 100000; ++i) sk.add(draw());
  const std::size_t saturated = sk.memory_bytes();
  for (int i = 0; i < 100000; ++i) sk.add(draw());
  EXPECT_EQ(sk.count(), 200000u);
  EXPECT_EQ(sk.memory_bytes(), saturated) << "memory must not grow further";
  EXPECT_LE(sk.bucket_count(),
            static_cast<std::size_t>(QuantileSketch::kMaxExp -
                                     QuantileSketch::kMinExp) *
                static_cast<std::size_t>(sk.buckets_per_octave()));

  // A realistic latency metric (two modes, ms scale) stays under the
  // 64 KiB per-metric budget bench_obs --check enforces.
  QuantileSketch lat;
  for (double x : bimodal_stream(100000, 9)) lat.add(x);
  EXPECT_LE(lat.memory_bytes(), 64u * 1024u);
}

TEST(QuantileSketch, OutOfRangeSamplesKeepExactExtremes) {
  QuantileSketch sk;
  sk.add(-5.0);   // below range (underflow)
  sk.add(0.0);    // not a positive value (underflow)
  sk.add(1e15);   // above range (overflow)
  sk.add(3.0);
  EXPECT_EQ(sk.count(), 4u);
  EXPECT_DOUBLE_EQ(sk.percentile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(sk.percentile(100.0), 1e15);
  EXPECT_DOUBLE_EQ(sk.percentile(1.0), -5.0) << "underflow ranks first";
}

TEST(Reservoir, ExactWhileUnderCapacityAndSeedDeterministic) {
  Reservoir r(128, /*seed=*/7);
  Histogram exact;
  for (int i = 1; i <= 100; ++i) {
    r.add(i);
    exact.add(i);
  }
  for (double p : {25.0, 50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(r.percentile(p), exact.percentile(p))
        << "exact while count <= capacity";
  }

  Reservoir x(16, 7), y(16, 7), z(16, 8);
  const auto stream = heavy_tail_stream(2000, 30);
  for (double v : stream) {
    x.add(v);
    y.add(v);
    z.add(v);
  }
  EXPECT_EQ(x.kept(), 16u);
  EXPECT_DOUBLE_EQ(x.percentile(50.0), y.percentile(50.0))
      << "same seed, same stream => same sample";
  EXPECT_EQ(x.count(), 2000u);
  EXPECT_LE(x.memory_bytes(), sizeof(Reservoir) + 17 * sizeof(double));
  (void)z;  // different seed may or may not differ; only determinism is pinned
}

}  // namespace
}  // namespace ibridge::stats
