// Tests for the statistics accumulators, blktrace recorder, and table
// printers.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/blocktrace.hpp"
#include "stats/histogram.hpp"
#include "stats/meters.hpp"
#include "stats/table.hpp"

namespace ibridge::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, empty;
  a.add(3.0);
  Summary c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), 1u);
  Summary d = empty;
  d.merge(a);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(128, 72);
  h.add(256, 18);
  h.add(2, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(128), 72u);
  EXPECT_DOUBLE_EQ(h.fraction(128), 0.72);
  EXPECT_DOUBLE_EQ(h.fraction(999), 0.0);
}

TEST(IntHistogram, TopIsSortedByCount) {
  IntHistogram h;
  h.add(1, 5);
  h.add(2, 50);
  h.add(3, 20);
  auto top = h.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 3);
}

TEST(IntHistogram, WeightedMean) {
  IntHistogram h;
  h.add(10, 1);
  h.add(30, 3);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(IntHistogram, KeysSortedAndClear) {
  IntHistogram h;
  h.add(5);
  h.add(1);
  h.add(9);
  EXPECT_EQ(h.keys(), (std::vector<std::int64_t>{1, 5, 9}));
  h.clear();
  EXPECT_EQ(h.total(), 0u);
}

TEST(BlockTraceRecorder, RoundsBytesUpToSectors) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, sim::Bytes{1024},
           sim::SimTime::millis(1));
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, sim::Bytes{1025},
           sim::SimTime::millis(1));
  EXPECT_EQ(r.size_histogram().count(2), 1u);
  EXPECT_EQ(r.size_histogram().count(3), 1u);
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.read_bytes(), sim::Bytes{2049});
}

TEST(BlockTraceRecorder, DisabledRecordsNothing) {
  BlockTraceRecorder r;
  r.set_enabled(false);
  r.record(sim::SimTime::zero(), IoDirection::kWrite, 0, sim::Bytes{512},
           sim::SimTime::millis(1));
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_EQ(r.write_bytes(), sim::Bytes::zero());
}

TEST(BlockTraceRecorder, KeepsEntriesOnlyWhenAsked) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 7, sim::Bytes{512},
           sim::SimTime::millis(1));
  EXPECT_TRUE(r.entries().empty());
  r.set_keep_entries(true);
  r.record(sim::SimTime::millis(2), IoDirection::kWrite, 9, sim::Bytes{512},
           sim::SimTime::millis(3));
  ASSERT_EQ(r.entries().size(), 1u);
  EXPECT_EQ(r.entries()[0].lbn, 9);
  EXPECT_EQ(r.entries()[0].dir, IoDirection::kWrite);
}

TEST(Table, AlignsColumnsAndEmitsCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22222\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt("%.1f", 3.14), "3.1");
  EXPECT_EQ(Table::fmt("%lld", 7LL), "7");
}

TEST(ThroughputMeter, ComputesDecimalMbps) {
  ThroughputMeter m;
  m.start(sim::SimTime::zero());
  m.add_bytes(sim::Bytes{10'000'000});
  m.stop(sim::SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(m.mbps(), 5.0);
  EXPECT_EQ(m.bytes(), sim::Bytes{10'000'000});
}

TEST(ThroughputMeter, ElapsedGuardedWhileRunning) {
  ThroughputMeter m;
  // Never started: no defensible interval.
  EXPECT_FALSE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::zero());
  EXPECT_DOUBLE_EQ(m.mbps(), 0.0);

  m.start(sim::SimTime::millis(5));
  m.add_bytes(sim::Bytes{1024});
  // Still running: elapsed stays zero instead of `now - start` garbage.
  EXPECT_TRUE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::zero());
  EXPECT_DOUBLE_EQ(m.mbps(), 0.0);

  m.stop(sim::SimTime::millis(7));
  EXPECT_FALSE(m.running());
  EXPECT_EQ(m.elapsed(), sim::SimTime::millis(2));
}

TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(h.median(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.add(42.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.5);
  EXPECT_DOUBLE_EQ(h.median(), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.5);
}

TEST(Histogram, NearestRankPercentiles) {
  Histogram h;
  // Unsorted insert order; percentile() sorts lazily.
  for (double x : {50.0, 10.0, 40.0, 20.0, 30.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(20.0), 10.0);   // ceil(1.0) -> rank 1
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 30.0);   // ceil(2.5) -> rank 3
  EXPECT_DOUBLE_EQ(h.percentile(90.0), 50.0);   // ceil(4.5) -> rank 5
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(Histogram, DuplicateHeavySamples) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.add(1.0);
  h.add(1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.median(), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.5), 1000.0);  // ceil(99.5) -> rank 100
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, MergeAndClear) {
  Histogram a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  // Interleave percentile queries with adds: the lazy sort must re-arm.
  EXPECT_DOUBLE_EQ(a.median(), 1.0);
  a.add(0.5);
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 3.0);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.percentile(50.0), 0.0);
}

TEST(ServiceTimeMeter, AveragesMillis) {
  ServiceTimeMeter m;
  m.add(sim::SimTime::millis(10));
  m.add(sim::SimTime::millis(20));
  EXPECT_DOUBLE_EQ(m.mean_ms(), 15.0);
  EXPECT_EQ(m.count(), 2u);
}

}  // namespace
}  // namespace ibridge::stats
