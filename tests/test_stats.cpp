// Tests for the statistics accumulators, blktrace recorder, and table
// printers.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/blocktrace.hpp"
#include "stats/histogram.hpp"
#include "stats/meters.hpp"
#include "stats/table.hpp"

namespace ibridge::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, empty;
  a.add(3.0);
  Summary c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), 1u);
  Summary d = empty;
  d.merge(a);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(128, 72);
  h.add(256, 18);
  h.add(2, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(128), 72u);
  EXPECT_DOUBLE_EQ(h.fraction(128), 0.72);
  EXPECT_DOUBLE_EQ(h.fraction(999), 0.0);
}

TEST(IntHistogram, TopIsSortedByCount) {
  IntHistogram h;
  h.add(1, 5);
  h.add(2, 50);
  h.add(3, 20);
  auto top = h.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 3);
}

TEST(IntHistogram, WeightedMean) {
  IntHistogram h;
  h.add(10, 1);
  h.add(30, 3);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(IntHistogram, KeysSortedAndClear) {
  IntHistogram h;
  h.add(5);
  h.add(1);
  h.add(9);
  EXPECT_EQ(h.keys(), (std::vector<std::int64_t>{1, 5, 9}));
  h.clear();
  EXPECT_EQ(h.total(), 0u);
}

TEST(BlockTraceRecorder, RoundsBytesUpToSectors) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, 1024,
           sim::SimTime::millis(1));
  r.record(sim::SimTime::zero(), IoDirection::kRead, 0, 1025,
           sim::SimTime::millis(1));
  EXPECT_EQ(r.size_histogram().count(2), 1u);
  EXPECT_EQ(r.size_histogram().count(3), 1u);
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.read_bytes(), 2049);
}

TEST(BlockTraceRecorder, DisabledRecordsNothing) {
  BlockTraceRecorder r;
  r.set_enabled(false);
  r.record(sim::SimTime::zero(), IoDirection::kWrite, 0, 512,
           sim::SimTime::millis(1));
  EXPECT_EQ(r.requests(), 0u);
  EXPECT_EQ(r.write_bytes(), 0);
}

TEST(BlockTraceRecorder, KeepsEntriesOnlyWhenAsked) {
  BlockTraceRecorder r;
  r.record(sim::SimTime::zero(), IoDirection::kRead, 7, 512,
           sim::SimTime::millis(1));
  EXPECT_TRUE(r.entries().empty());
  r.set_keep_entries(true);
  r.record(sim::SimTime::millis(2), IoDirection::kWrite, 9, 512,
           sim::SimTime::millis(3));
  ASSERT_EQ(r.entries().size(), 1u);
  EXPECT_EQ(r.entries()[0].lbn, 9);
  EXPECT_EQ(r.entries()[0].dir, IoDirection::kWrite);
}

TEST(Table, AlignsColumnsAndEmitsCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22222\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt("%.1f", 3.14), "3.1");
  EXPECT_EQ(Table::fmt("%lld", 7LL), "7");
}

TEST(ThroughputMeter, ComputesDecimalMbps) {
  ThroughputMeter m;
  m.start(sim::SimTime::zero());
  m.add_bytes(10'000'000);
  m.stop(sim::SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(m.mbps(), 5.0);
  EXPECT_EQ(m.bytes(), 10'000'000);
}

TEST(ServiceTimeMeter, AveragesMillis) {
  ServiceTimeMeter m;
  m.add(sim::SimTime::millis(10));
  m.add(sim::SimTime::millis(20));
  EXPECT_DOUBLE_EQ(m.mean_ms(), 15.0);
  EXPECT_EQ(m.count(), 2u);
}

}  // namespace
}  // namespace ibridge::stats
