// Tests for offline disk profiling: the learned SeekProfile must track the
// ground-truth device model closely enough for iBridge's Equation (1).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/profiler.hpp"

namespace ibridge::storage {
namespace {

SeekProfile learn(const HddParams& params) {
  sim::Simulator sim;
  HddParams p = params;
  p.anticipation_ms = 0.0;
  HddModel disk(sim, p);
  return DeviceProfiler().profile(sim, disk);
}

TEST(SeekProfile, InterpolatesBetweenSamples) {
  SeekProfile p({{100, 1.0}, {1000, 2.0}});
  EXPECT_NEAR(p.seek_time(550).to_millis(), 1.5, 1e-9);
  EXPECT_NEAR(p.seek_time(100).to_millis(), 1.0, 1e-9);
  EXPECT_NEAR(p.seek_time(1000).to_millis(), 2.0, 1e-9);
  // Clamps at the ends.
  EXPECT_NEAR(p.seek_time(10).to_millis(), 1.0, 1e-9);
  EXPECT_NEAR(p.seek_time(1'000'000).to_millis(), 2.0, 1e-9);
  EXPECT_EQ(p.seek_time(0), sim::SimTime::zero());
}

TEST(SeekProfile, MonotonisesNoisySamples) {
  SeekProfile p({{100, 2.0}, {1000, 1.0}});  // decreasing input
  EXPECT_GE(p.seek_time(1000), p.seek_time(100));
}

TEST(SeekProfile, EmptyProfileIsZero) {
  SeekProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.seek_time(12345), sim::SimTime::zero());
}

TEST(DeviceProfiler, LearnsPeakBandwidths) {
  const HddParams truth = paper_hdd();
  const SeekProfile p = learn(truth);
  EXPECT_NEAR(p.peak_bandwidth(), truth.seq_read_bw,
              truth.seq_read_bw * 0.10);
  EXPECT_NEAR(p.peak_write_bandwidth(), truth.seq_write_bw,
              truth.seq_write_bw * 0.10);
}

TEST(DeviceProfiler, LearnsWriteSurcharges) {
  const HddParams truth = paper_hdd();
  const SeekProfile p = learn(truth);
  EXPECT_NEAR(p.write_surcharge_ms(sim::Bytes{4096}),
              truth.write_settle_ms + truth.small_write_penalty_ms, 0.5);
  EXPECT_NEAR(p.write_surcharge_ms(sim::Bytes{64 * 1024}), truth.write_settle_ms, 0.5);
}

TEST(DeviceProfiler, SeekCurveTracksGroundTruth) {
  const HddParams truth = paper_hdd();
  const SeekProfile p = learn(truth);
  sim::Simulator scratch;
  HddModel ref(scratch, truth);
  // Across three decades of distance the learned (seek+rotation) must be
  // within 30% of the model's true positioning cost.
  for (std::int64_t d : {50'000LL, 1'000'000LL, 50'000'000LL, 500'000'000LL}) {
    const double learned =
        p.seek_time(d).to_millis() + p.rotation().to_millis();
    const double actual =
        ref.seek_time(d).to_millis() + truth.rotation_ms;
    EXPECT_NEAR(learned, actual, actual * 0.30) << "distance " << d;
  }
}

TEST(DeviceProfiler, ProfilingIsDeterministic) {
  const SeekProfile a = learn(paper_hdd());
  const SeekProfile b = learn(paper_hdd());
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].distance, b.samples()[i].distance);
    EXPECT_DOUBLE_EQ(a.samples()[i].ms, b.samples()[i].ms);
  }
  EXPECT_DOUBLE_EQ(a.peak_bandwidth(), b.peak_bandwidth());
}

}  // namespace
}  // namespace ibridge::storage
