// Tests for two-phase collective I/O and data sieving.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "mpiio/collective.hpp"
#include "mpiio/mpi.hpp"

namespace ibridge::mpiio {
namespace {

cluster::ClusterConfig small_cluster() {
  auto cc = cluster::ClusterConfig::stock();
  cc.data_servers = 4;
  return cc;
}

struct CollectiveRun {
  std::int64_t shuffle_bytes = 0;
  sim::SimTime elapsed;
  std::uint64_t server_requests = 0;
};

sim::Task<> collective_rank(MpiContext ctx, CollectiveContext* coll,
                            std::int64_t req, int rounds, bool write) {
  for (int k = 0; k < rounds; ++k) {
    const std::int64_t off =
        (static_cast<std::int64_t>(k) * ctx.size() + ctx.rank()) * req;
    if (write) {
      co_await coll->write_at_all(ctx.rank(), off, req);
    } else {
      co_await coll->read_at_all(ctx.rank(), off, req);
    }
  }
}

CollectiveRun run_collective(bool write, std::int64_t req, int nprocs,
                             int rounds) {
  cluster::Cluster c(small_cluster());
  auto fh = c.create_file("f", 1 << 30);
  MpiFile file(c.client(), fh);
  MpiEnvironment env(c.sim(), c.client(), nprocs);
  CollectiveContext coll(env, file);
  const sim::SimTime t0 = c.sim().now();
  env.launch([&](MpiContext ctx) {
    return collective_rank(ctx, &coll, req, rounds, write);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  CollectiveRun out;
  out.elapsed = c.sim().now() - t0;
  out.shuffle_bytes = coll.shuffle_bytes();
  for (int s = 0; s < c.server_count(); ++s) {
    out.server_requests += c.server(s).service_meter().count();
  }
  return out;
}

TEST(Collective, WriteRoundCompletesForAllRanks) {
  const auto r = run_collective(true, 65 * 1024, 8, 3);
  EXPECT_GT(r.elapsed, sim::SimTime::zero());
  EXPECT_GT(r.server_requests, 0u);
}

TEST(Collective, ShuffleMovesEveryContributedByte) {
  const auto r = run_collective(true, 65 * 1024, 8, 2);
  EXPECT_EQ(r.shuffle_bytes, 2LL * 8 * 65 * 1024);
}

TEST(Collective, AggregationCoarsensServerRequests) {
  // 16 unaligned 65 KB independent requests decompose into mixed-size
  // pieces (fragments included); the collective path issues stripe-aligned
  // domain accesses, so the mean bytes per server request grows toward the
  // full striping unit.
  const std::int64_t req = 65 * 1024;
  const int nprocs = 16;

  double independent_avg = 0.0;
  {
    cluster::Cluster c(small_cluster());
    auto fh = c.create_file("f", 1 << 30);
    MpiFile file(c.client(), fh);
    MpiEnvironment env(c.sim(), c.client(), nprocs);
    env.launch([&](MpiContext ctx) {
      return [](MpiContext ctx2, MpiFile f, std::int64_t sz) -> sim::Task<> {
        co_await f.write_at(ctx2.rank(), ctx2.rank() * sz, sz);
      }(ctx, file, req);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    std::int64_t bytes = 0;
    std::uint64_t count = 0;
    for (int s = 0; s < c.server_count(); ++s) {
      bytes += c.server(s).bytes_served().count();
      count += c.server(s).service_meter().count();
    }
    independent_avg = static_cast<double>(bytes) / static_cast<double>(count);
  }

  cluster::Cluster c(small_cluster());
  auto fh = c.create_file("f", 1 << 30);
  MpiFile file(c.client(), fh);
  MpiEnvironment env(c.sim(), c.client(), nprocs);
  CollectiveContext coll(env, file);
  env.launch([&](MpiContext ctx) {
    return collective_rank(ctx, &coll, req, 1, true);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  std::int64_t bytes = 0;
  std::uint64_t count = 0;
  for (int s = 0; s < c.server_count(); ++s) {
    bytes += c.server(s).bytes_served().count();
    count += c.server(s).service_meter().count();
  }
  const double collective_avg =
      static_cast<double>(bytes) / static_cast<double>(count);
  EXPECT_GT(collective_avg, 1.5 * independent_avg);
  // Domain accesses are unit-aligned: nearly every piece is a full unit.
  EXPECT_GT(collective_avg, 0.9 * 64 * 1024);
}

TEST(Collective, ReadsDeliverAfterFileIo) {
  const auto r = run_collective(false, 33 * 1024, 4, 2);
  EXPECT_GT(r.elapsed, sim::SimTime::zero());
  EXPECT_EQ(r.shuffle_bytes, 2LL * 4 * 33 * 1024);
}

TEST(Collective, SingleRankDegeneratesGracefully) {
  const auto r = run_collective(true, 64 * 1024, 1, 2);
  EXPECT_GT(r.server_requests, 0u);
}

TEST(Collective, RespectsConfiguredAggregatorCount) {
  cluster::Cluster c(small_cluster());
  auto fh = c.create_file("f", 1 << 30);
  MpiFile file(c.client(), fh);
  MpiEnvironment env(c.sim(), c.client(), 8);
  CollectiveConfig cfg;
  cfg.aggregators = 2;
  cfg.buffer_bytes = 128 * 1024;
  CollectiveContext coll(env, file, cfg);
  env.launch([&](MpiContext ctx) {
    return collective_rank(ctx, &coll, 64 * 1024, 1, true);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  SUCCEED();  // structural: no deadlock, round completes
}

// ------------------------------------------------------------- sieving ----

TEST(DataSieving, WidensToAlignedBoundaries) {
  cluster::Cluster c(small_cluster());
  auto fh = c.create_file("f", 1 << 30);
  MpiFile file(c.client(), fh);
  bool done = false;
  auto t = [](cluster::Cluster&, MpiFile f, bool& flag) -> sim::Task<> {
    // 65 KB at offset 1 KB: sieved to [0, 128 KB) — aligned, no fragments.
    co_await read_at_sieved(f, 0, 1024, 65 * 1024, 64 * 1024);
    flag = true;
  }(c, file, done);
  t.start();
  c.sim().run_while_pending([&] { return done; });
  // Exactly two aligned 64 KB sub-requests reached the servers.
  std::uint64_t reqs = 0;
  std::int64_t bytes = 0;
  for (int s = 0; s < c.server_count(); ++s) {
    reqs += c.server(s).service_meter().count();
    bytes += c.server(s).bytes_served().count();
  }
  EXPECT_EQ(reqs, 2u);
  EXPECT_EQ(bytes, 128 * 1024);
}

TEST(DataSieving, AlreadyAlignedIsUnchanged) {
  cluster::Cluster c(small_cluster());
  auto fh = c.create_file("f", 1 << 30);
  MpiFile file(c.client(), fh);
  bool done = false;
  auto t = [](cluster::Cluster&, MpiFile f, bool& flag) -> sim::Task<> {
    co_await read_at_sieved(f, 0, 64 * 1024, 64 * 1024, 64 * 1024);
    flag = true;
  }(c, file, done);
  t.start();
  c.sim().run_while_pending([&] { return done; });
  std::int64_t bytes = 0;
  for (int s = 0; s < c.server_count(); ++s)
    bytes += c.server(s).bytes_served().count();
  EXPECT_EQ(bytes, 64 * 1024);
}

}  // namespace
}  // namespace ibridge::mpiio
