// Fixture: a mutating method call on shard-owned state from a module other
// than its declared owner must trip the shard-ownership rule (once).  The
// parallel sim core requires cross-shard mutations to travel through the
// owner's mailbox/barrier path (ShardGroup::post), never a direct container
// touch — a plain assignment is not the only way to meddle.
namespace fixture {

struct Mailbox {
  int pending = 0;
  void push_back(int) { pending = pending + 1; }
};

// lint: shard-owned (core)
inline Mailbox g_inbox = {};

inline void meddle() { g_inbox.push_back(7); }

}  // namespace fixture
