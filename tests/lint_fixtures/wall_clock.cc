// Fixture: reading the wall clock must trip the determinism rule (once).
#include <chrono>

namespace fixture {

inline long now_ms() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace fixture
