// Fixture: lexed as a typed-core header (src/core/*.hpp), where a raw int64
// with a byte-quantity name must trip the raw-unit-type rule (once).
#include <cstdint>

namespace fixture {

struct Span {
  std::int64_t byte_offset = 0;
};

}  // namespace fixture
