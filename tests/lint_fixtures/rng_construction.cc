// Fixture: a raw <random> engine outside sim/rng.hpp must trip the
// rng-construction rule (once).
#include <random>

namespace fixture {

inline unsigned draw() {
  std::mt19937 gen(42);
  return gen();
}

}  // namespace fixture
