// Fixture: a shard-owned annotation that names no owner module must trip
// the shard-ownership rule (once).  The annotation silences shared-global,
// but an empty owner defeats the point of declaring one.
namespace fixture {

// lint: shard-owned ()
inline int g_ticks = 0;

inline void tick() { g_ticks = g_ticks + 1; }

}  // namespace fixture
