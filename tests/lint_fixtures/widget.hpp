// Helper header for the lint fixtures: lexed into each fixture corpus as
// "src/core/widget.hpp" so layering and include-what-you-use have a real
// project header to point at.  Produces no diagnostics of its own.
#pragma once

namespace ibridge::core {

class Widget {
 public:
  void poke();
};

}  // namespace ibridge::core
