// Fixture: the same path included twice — duplicate-include must fire
// (once, on the second occurrence).
#include <cstdint>
#include <vector>
#include <vector>

namespace fixture {

inline std::vector<std::int64_t> ids() { return {1, 2, 3}; }

}  // namespace fixture
