// Fixture: a direct `new` inside a `lint:`-style no-alloc function must
// trip the no-alloc rule (once).
namespace fixture {

// lint: no-alloc
inline int* grab() {
  return new int(7);
}

}  // namespace fixture
