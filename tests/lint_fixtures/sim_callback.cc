// Fixture: std::function<void()> outside src/sim/ must trip sim-callback
// exactly once — event callbacks go through sim::InlineEvent instead.
#include <functional>

namespace fixture {

struct DeferredWork {
  std::function<void()> on_complete;
};

}  // namespace fixture
