// Fixture: a pointer-keyed associative container must trip the pointer-key
// rule (once) — iteration order would be allocation order.
#include <map>

namespace fixture {

struct AddrIndex {
  std::map<int*, int> by_addr_;
};

}  // namespace fixture
