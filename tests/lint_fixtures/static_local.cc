// Fixture: mutable function-local static state must trip the static-local
// rule (once).  A per-process counter silently couples every Simulator
// instance in the process.
namespace fixture {

inline int next_id() {
  static int counter = 0;
  return ++counter;
}

}  // namespace fixture
