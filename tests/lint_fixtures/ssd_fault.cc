// Fixture: installing an SSD fault hook outside src/fault/ must trip the
// ssd-fault-hook rule (once).
namespace fixture {

template <typename Device, typename Hook>
void sabotage(Device& dev, Hook& hook) {
  dev.set_fault_hook(&hook);
}

}  // namespace fixture
