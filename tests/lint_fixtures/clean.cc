// Fixture: near-misses for every rule; must produce zero diagnostics when
// lexed as a typed-core header (src/core/*.hpp).
#include <cstdint>
#include <map>

namespace fixture {

struct Meter {
  double time() const { return 0.0; }  // member named time() is fine
};

inline double elapsed_time(int) { return 0.0; }  // not the C time()

struct Clean {
  std::map<int, int> ordered_;  // ordered iteration is fine
  std::int64_t disk_lbn_ = 0;   // lint: units-ok (device sector address)

  int sum() const {
    int s = 0;
    for (const auto& kv : ordered_) s += kv.second;
    return s;
  }

  double sample(const Meter& m) const { return m.time() + elapsed_time(1); }
};

}  // namespace fixture
