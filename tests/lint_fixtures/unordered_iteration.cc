// Fixture: a range-for over an unordered container must trip the
// unordered-iteration rule (once).
#include <unordered_map>

namespace fixture {

struct Registry {
  std::unordered_map<int, int> table_;

  int sum() const {
    int s = 0;
    for (const auto& kv : table_) s += kv.second;
    return s;
  }
};

}  // namespace fixture
