// Fixture: constructing an exact stats::Histogram outside src/stats and
// src/obs must trip the obs-bounded rule (once).
namespace fixture {

inline double unbounded_tail() {
  stats::Histogram lat_ms;
  lat_ms.add(1.0);
  return lat_ms.percentile(99.0);
}

}  // namespace fixture
