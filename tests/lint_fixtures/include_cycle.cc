// Fixture: a file on a project include cycle (here the degenerate
// self-include) must trip the include-cycle rule (once).
#include "core/fixture_cycle.hpp"

namespace fixture {

inline int depth() { return 1; }

}  // namespace fixture
