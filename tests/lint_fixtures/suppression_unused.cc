// Fixture: a well-formed suppression that silences nothing must trip the
// annotation audit (once), so stale escapes get deleted.
namespace fixture {

inline const int plain = 0;  // lint: units-ok (nothing here needs this)

}  // namespace fixture
