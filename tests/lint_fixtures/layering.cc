// Fixture: lexed as a src/sim/ file, so including a core/ header points the
// module DAG upward and must trip the layering rule (once).  The Widget use
// keeps include-what-you-use satisfied.
#include "core/widget.hpp"

namespace fixture {

inline void poke_widget(ibridge::core::Widget& w) { w.poke(); }

}  // namespace fixture
