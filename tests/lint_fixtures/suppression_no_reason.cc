// Fixture: a suppression without its mandatory (reason) still silences the
// underlying rule, but the annotation audit must fire instead (once).
#include <cstdint>

namespace fixture {

struct Span {
  std::int64_t raw_len = 0;  // lint: units-ok
};

}  // namespace fixture
