// Fixture: hidden-state C randomness must trip the rand rule (once).
#include <cstdlib>

namespace fixture {

inline int roll() { return std::rand() % 6; }

}  // namespace fixture
