// Fixture: a no-alloc function calling a helper that allocates must trip
// the no-alloc rule (once) at the call site — the call graph carries the
// may-allocate fact, not just the direct body scan.
namespace fixture {

inline int* fresh_cell() {
  return new int(7);
}

// lint: no-alloc
inline int* grab() {
  return fresh_cell();
}

}  // namespace fixture
