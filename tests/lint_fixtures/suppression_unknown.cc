// Fixture: a suppression with an unrecognized key must trip the annotation
// audit (once).
namespace fixture {

inline const int x = 0;  // lint: frobnicate-ok (no such rule)

}  // namespace fixture
