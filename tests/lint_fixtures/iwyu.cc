// Fixture: lexed as a src/cluster/ file (which MAY include core/), but
// nothing widget.hpp declares is referenced, so include-what-you-use must
// fire (once).
#include "core/widget.hpp"

namespace fixture {

inline int unrelated() { return 7; }

}  // namespace fixture
