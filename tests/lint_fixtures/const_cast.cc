// Fixture: const_cast must trip its rule (once).
namespace fixture {

inline int& mut(const int& v) { return const_cast<int&>(v); }

}  // namespace fixture
