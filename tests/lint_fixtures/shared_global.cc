// Fixture: a mutable namespace-scope global without a shard-owned /
// shared-ok annotation must trip the shared-global rule (once) — hidden
// shared state is exactly what the parallel sim core cannot shard.
namespace fixture {

inline int g_request_hwm = 0;

inline void note(int requests) {
  if (requests > g_request_hwm) g_request_hwm = requests;
}

}  // namespace fixture
