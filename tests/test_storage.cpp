// Tests for the HDD/SSD device models: service-time structure, calibration
// against the paper's Table II characteristics, anticipation behaviour, and
// completion plumbing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/scheduler.hpp"
#include "storage/ssd.hpp"

namespace ibridge::storage {
namespace {

using sim::SimTime;
using sim::Simulator;

HddParams quiet_hdd() {
  HddParams p = paper_hdd();
  p.anticipation_ms = 0.0;  // most tests want deterministic dispatch
  return p;
}

// Drive a list of requests through a device, recording completion times.
struct Harness {
  Simulator sim;
  std::vector<SimTime> completions;

  template <typename Dev>
  void run(Dev& dev, const std::vector<BlockRequest>& reqs,
           SimTime spacing = SimTime::zero()) {
    std::vector<sim::SimFuture<BlockCompletion>> futs;
    SimTime at = SimTime::zero();
    for (const auto& r : reqs) {
      sim.schedule_at(at, [&dev, r, this] {
        auto f = dev.submit(r);
        (void)f;
      });
      at += spacing;
    }
    sim.run();
  }
};

// ------------------------------------------------------------ HDD model ----

TEST(HddModel, SeekTimeIsMonotonic) {
  Simulator sim;
  HddModel d(sim, quiet_hdd());
  SimTime prev = SimTime::zero();
  for (std::int64_t dist = 1; dist < d.capacity_sectors() / 2; dist *= 4) {
    const SimTime t = d.seek_time(dist);
    EXPECT_GE(t, prev) << "distance " << dist;
    prev = t;
  }
  EXPECT_EQ(d.seek_time(0), SimTime::zero());
}

TEST(HddModel, SequentialContinuationIsTransferOnly) {
  Simulator sim;
  HddModel d(sim, quiet_hdd());
  // Head starts at 0; a request at LBN 0 is a continuation.
  const SimTime t = d.service_time(IoDirection::kRead, 0, 128);
  const double expect_s =
      128.0 * kSectorBytes / quiet_hdd().seq_read_bw + 50e-6;
  EXPECT_NEAR(t.to_seconds(), expect_s, 1e-6);
}

TEST(HddModel, NearHopChargesSettle) {
  Simulator sim;
  const HddParams p = quiet_hdd();
  HddModel d(sim, p);
  const SimTime near = d.service_time(IoDirection::kRead, 32, 8);
  const SimTime seq = d.service_time(IoDirection::kRead, 0, 8);
  EXPECT_NEAR((near - seq).to_millis(), p.near_settle_ms, 1e-6);
}

TEST(HddModel, FarSeekChargesSeekPlusRotation) {
  Simulator sim;
  const HddParams p = quiet_hdd();
  HddModel d(sim, p);
  const std::int64_t dist = 1'000'000;
  const SimTime t = d.service_time(IoDirection::kRead, dist, 8);
  const double expect_ms = d.seek_time(dist).to_millis() + p.rotation_ms;
  EXPECT_NEAR(t.to_millis(), expect_ms, 0.1);
}

TEST(HddModel, SmallRandomWritesPayPenalty) {
  Simulator sim;
  const HddParams p = quiet_hdd();
  HddModel d(sim, p);
  const std::int64_t dist = 1'000'000;
  const SimTime wr = d.service_time(IoDirection::kWrite, dist, 8);
  const SimTime rd = d.service_time(IoDirection::kRead, dist, 8);
  EXPECT_NEAR((wr - rd).to_millis(),
              p.write_settle_ms + p.small_write_penalty_ms, 0.05);
  // Large writes skip the small-write penalty.
  const SimTime wr_big = d.service_time(IoDirection::kWrite, dist, 256);
  const SimTime rd_big = d.service_time(IoDirection::kRead, dist, 256);
  const double delta =
      (wr_big - rd_big).to_millis() -
      (256.0 * kSectorBytes / p.seq_write_bw -
       256.0 * kSectorBytes / p.seq_read_bw) * 1e3;
  EXPECT_NEAR(delta, p.write_settle_ms, 0.05);
}

TEST(HddModel, IdleResyncChargedAfterGap) {
  Simulator sim;
  const HddParams p = quiet_hdd();
  HddModel d(sim, p);
  const SimTime busy = d.service_time(IoDirection::kRead, 0, 128, false);
  const SimTime idle = d.service_time(IoDirection::kRead, 0, 128, true);
  EXPECT_NEAR((idle - busy).to_millis(), p.idle_resync_ms, 1e-6);
}

TEST(HddModel, CompletionCarriesLatencyAndService) {
  Simulator sim;
  HddModel d(sim, quiet_hdd());
  sim::SimFuture<BlockCompletion> fut;
  sim.schedule(SimTime::zero(),
               [&] { fut = d.submit({IoDirection::kRead, 1000, 8, 0}); });
  sim.run();
  ASSERT_TRUE(fut.ready());
  const auto& c = fut.get();
  EXPECT_EQ(c.finished, c.latency);  // submitted at t=0
  EXPECT_GT(c.service, SimTime::zero());
  EXPECT_EQ(d.head_lbn(), 1008);
}

TEST(HddModel, BusyTimeAccumulates) {
  Harness h;
  HddModel d(h.sim, quiet_hdd());
  h.run(d, {{IoDirection::kRead, 0, 128, 0}, {IoDirection::kRead, 128, 128, 0}});
  EXPECT_GT(d.busy_time(), SimTime::zero());
  EXPECT_EQ(d.bytes_read(), 2 * 128 * kSectorBytes);
}

TEST(HddModel, TraceRecordsDispatches) {
  Harness h;
  HddModel d(h.sim, quiet_hdd());
  h.run(d, {{IoDirection::kRead, 0, 128, 0}});
  EXPECT_EQ(d.trace().requests(), 1u);
  EXPECT_EQ(d.trace().size_histogram().count(128), 1u);
}

TEST(HddModel, BackToBackContiguousRequestsMerge) {
  // Two contiguous requests submitted at the same tick dispatch as one
  // batch: one trace entry, both futures complete together.
  Simulator sim;
  HddModel d(sim, quiet_hdd());
  sim::SimFuture<BlockCompletion> f1, f2;
  sim.schedule(SimTime::zero(), [&] {
    f1 = d.submit({IoDirection::kRead, 5000, 128, 0});
    f2 = d.submit({IoDirection::kRead, 5128, 128, 1});
  });
  sim.run();
  EXPECT_EQ(d.trace().requests(), 1u);
  EXPECT_EQ(d.trace().size_histogram().count(256), 1u);
  EXPECT_EQ(f1.get().finished, f2.get().finished);
}

TEST(HddModel, AnticipationWaitsForSameStream) {
  // After serving stream 7, a far request from stream 8 must wait out the
  // anticipation window; a new near arrival from stream 7 dispatches first.
  Simulator sim;
  HddParams p = quiet_hdd();
  p.anticipation_ms = 2.0;
  HddModel d(sim, p);
  std::vector<int> order;
  auto track = [&](int id) {
    return [&order, id](const BlockCompletion&) { order.push_back(id); };
  };
  (void)track;

  sim::SimFuture<BlockCompletion> a, b, c;
  sim.schedule(SimTime::zero(),
               [&] { a = d.submit({IoDirection::kRead, 0, 64, 7}); });
  // While idle-waiting after A, a far competitor arrives...
  sim.schedule(SimTime::micros(200),
               [&] { b = d.submit({IoDirection::kRead, 2'000'000, 64, 8}); });
  // ...and then stream 7's continuation.
  sim.schedule(SimTime::micros(400),
               [&] { c = d.submit({IoDirection::kRead, 200, 64, 7}); });
  sim.run();
  ASSERT_TRUE(a.ready() && b.ready() && c.ready());
  EXPECT_LT(c.get().finished, b.get().finished)
      << "anticipation must favour the last-served stream";
}

TEST(HddModel, AnticipationTimerExpiresAndServesOther) {
  Simulator sim;
  HddParams p = quiet_hdd();
  p.anticipation_ms = 1.0;
  HddModel d(sim, p);
  sim::SimFuture<BlockCompletion> a, b;
  sim.schedule(SimTime::zero(),
               [&] { a = d.submit({IoDirection::kRead, 0, 64, 1}); });
  sim.schedule(SimTime::micros(100),
               [&] { b = d.submit({IoDirection::kRead, 2'000'000, 64, 2}); });
  sim.run();
  ASSERT_TRUE(b.ready());
  // b waited for a's service plus the full anticipation window.
  EXPECT_GT(b.get().latency.to_millis(), 1.0);
}

// ------------------------------------------------------------ SSD model ----

TEST(SsdModel, SequentialFasterThanRandom) {
  Simulator sim;
  SsdModel d(sim, paper_ssd());
  const SimTime r1 = d.service_time(IoDirection::kRead, 0, 8);
  // service_time() inspects stream state; simulate a streaming read at 0.
  Harness h;
  SsdModel dev(h.sim, paper_ssd());
  h.run(dev, {{IoDirection::kRead, 0, 8, 0}, {IoDirection::kRead, 8, 8, 0}});
  // After the first read, the second is a continuation -> cheaper.
  EXPECT_GT(r1, dev.service_time(IoDirection::kRead, 16, 8));
}

TEST(SsdModel, Calibration4kMatchesTableII) {
  // Table II: 4 KB requests; random read 60 MB/s, random write 30 MB/s.
  Simulator sim;
  SsdModel d(sim, paper_ssd());
  const double rd_us =
      d.service_time(IoDirection::kRead, 999'999, 8).to_micros();
  const double wr_us =
      d.service_time(IoDirection::kWrite, 999'999, 8).to_micros();
  const double rd_mbps = 4096.0 / (rd_us / 1e6) / 1e6;
  const double wr_mbps = 4096.0 / (wr_us / 1e6) / 1e6;
  EXPECT_NEAR(rd_mbps, 60.0, 6.0);
  EXPECT_NEAR(wr_mbps, 30.0, 3.0);
}

TEST(SsdModel, StreamingMatchesTableIISequentialRates) {
  for (const bool write : {false, true}) {
    Harness h;
    SsdModel d(h.sim, paper_ssd());
    std::vector<BlockRequest> reqs;
    const std::int64_t chunk = 2048;  // 1 MB
    for (int i = 0; i < 64; ++i) {
      reqs.push_back({write ? IoDirection::kWrite : IoDirection::kRead,
                      i * chunk, chunk, 0});
    }
    h.run(d, reqs);
    const double bytes = 64.0 * chunk * kSectorBytes;
    const double mbps = bytes / h.sim.now().to_seconds() / 1e6;
    EXPECT_NEAR(mbps, write ? 140.0 : 160.0, write ? 7.0 : 8.0);
  }
}

TEST(SsdModel, ChannelsServeConcurrently) {
  SsdParams p = paper_ssd();
  p.channels = 2;
  Harness h2;
  SsdModel d2(h2.sim, p);
  // Two far-apart (non-mergeable) random reads.
  h2.run(d2, {{IoDirection::kRead, 0, 8, 0},
              {IoDirection::kRead, 1'000'000, 8, 1}});
  const SimTime t2 = h2.sim.now();

  p.channels = 1;
  Harness h1;
  SsdModel d1(h1.sim, p);
  h1.run(d1, {{IoDirection::kRead, 0, 8, 0},
              {IoDirection::kRead, 1'000'000, 8, 1}});
  EXPECT_LT(t2, h1.sim.now());
}

// ----------------------------------------------- HDD vs SSD, Table II ----

TEST(Calibration, SsdBeatsHddOnRandomAccessByAnOrderOfMagnitude) {
  Simulator sim;
  HddModel hdd(sim, quiet_hdd());
  SsdModel ssd(sim, paper_ssd());
  const std::int64_t far = 500'000'000;  // 250 GB into the disk
  const double hdd_ms =
      hdd.service_time(IoDirection::kRead, far, 8).to_millis();
  const double ssd_ms =
      ssd.service_time(IoDirection::kRead, far % ssd.capacity_sectors(), 8)
          .to_millis();
  EXPECT_GT(hdd_ms / ssd_ms, 10.0);
}

TEST(Calibration, HddStreamingMatchesTableIISequentialRates) {
  for (const bool write : {false, true}) {
    Harness h;
    HddModel d(h.sim, quiet_hdd());
    std::vector<BlockRequest> reqs;
    const std::int64_t chunk = 2048;
    for (int i = 0; i < 64; ++i) {
      reqs.push_back({write ? IoDirection::kWrite : IoDirection::kRead,
                      i * chunk, chunk, 0});
    }
    h.run(d, reqs);
    const double bytes = 64.0 * chunk * kSectorBytes;
    const double mbps = bytes / h.sim.now().to_seconds() / 1e6;
    EXPECT_NEAR(mbps, write ? 80.0 : 85.0, write ? 8.0 : 8.5);
  }
}

TEST(Calibration, HddRandomWriteSlowerThanRandomRead) {
  // Table II's qualitative ordering: random writes are markedly slower
  // than random reads (5 vs 15 MB/s on the paper's disk).
  Simulator sim;
  HddModel d(sim, quiet_hdd());
  const std::int64_t far = 300'000'000;
  const double rd = d.service_time(IoDirection::kRead, far, 8).to_millis();
  const double wr = d.service_time(IoDirection::kWrite, far, 8).to_millis();
  EXPECT_GT(wr / rd, 1.3);
}

}  // namespace
}  // namespace ibridge::storage
