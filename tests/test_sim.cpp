// Tests for the discrete-event simulation kernel: clock, event ordering,
// coroutine tasks, and the awaitable synchronization primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/inline_event.hpp"
#include "sim/mem_pool.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {
namespace {

// ------------------------------------------------------------- SimTime ----

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::micros(1).ns(), 1000);
  EXPECT_EQ(SimTime::millis(1).ns(), 1'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::seconds(2), SimTime::millis(2000));
}

TEST(SimTime, FromSecondsRoundTrips) {
  const SimTime t = SimTime::from_seconds(1.5);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1500.0);
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime a = SimTime::millis(3), b = SimTime::millis(2);
  EXPECT_EQ((a + b).ns(), SimTime::millis(5).ns());
  EXPECT_EQ((a - b).ns(), SimTime::millis(1).ns());
  EXPECT_EQ((a * 2).ns(), SimTime::millis(6).ns());
  EXPECT_EQ((a / 3).ns(), SimTime::millis(1).ns());
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::nanos(12).to_string(), "12ns");
  EXPECT_NE(SimTime::micros(12).to_string().find("us"), std::string::npos);
  EXPECT_NE(SimTime::millis(12).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::seconds(2).to_string().find("s"), std::string::npos);
}

// ----------------------------------------------------------- Simulator ----

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(3), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTickIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule(SimTime::millis(5), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, DeferRunsAfterCurrentTickCallbacks) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::zero(), [&] {
    sim.defer([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.schedule(SimTime::zero(), [&] { order.push_back(10); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
}

TEST(Simulator, FifoSurvivesHeavyDeferChains) {
  // Regression for the heap-based event queue: every defer() from inside a
  // running event lands behind the callbacks already queued for the tick,
  // and the relative order of concurrently growing defer chains is stable.
  // The old priority_queue implementation moved events out of top() via
  // const_cast; this exercises the pop path hard enough that any ordering
  // corruption from the replacement idiom would scramble the transcript.
  Simulator sim;
  std::vector<std::pair<int, int>> order;  // (chain, depth)
  constexpr int kChains = 16, kDepth = 32;
  std::function<void(int, int)> link = [&](int chain, int depth) {
    order.emplace_back(chain, depth);
    if (depth + 1 < kDepth) sim.defer([&, chain, depth] { link(chain, depth + 1); });
  };
  for (int c = 0; c < kChains; ++c) {
    sim.schedule(SimTime::millis(7), [&, c] { link(c, 0); });
  }
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kChains * kDepth));
  // Same-tick FIFO makes the chains advance in lockstep: the transcript is
  // depth-major (all chains at depth 0, then all at depth 1, ...).
  for (int d = 0; d < kDepth; ++d) {
    for (int c = 0; c < kChains; ++c) {
      const auto& [chain, depth] = order[static_cast<std::size_t>(d * kChains + c)];
      EXPECT_EQ(chain, c) << "at depth " << d;
      EXPECT_EQ(depth, d) << "for chain " << c;
    }
  }
  EXPECT_EQ(sim.now(), SimTime::millis(7));
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_time;
  sim.schedule(SimTime::millis(1), [&] {
    sim.schedule(SimTime::millis(4), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, SimTime::millis(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.schedule(SimTime::millis(10), [&] { ++fired; });
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::millis(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.run_while_pending([&] { return count >= 4; }));
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhilePendingReturnsFalseWhenDrained) {
  Simulator sim;
  sim.schedule(SimTime::millis(1), [] {});
  EXPECT_FALSE(sim.run_while_pending([] { return false; }));
}

// ---------------------------------------------------------------- Task ----

Task<int> forty_two() { co_return 42; }

Task<int> add(int a, int b) {
  const int x = co_await forty_two();
  co_return a + b + x - 42;
}

Task<> outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay{sim, SimTime::millis(5)};
  log.push_back(2);
  const int v = co_await add(2, 3);
  log.push_back(v);
}

TEST(Task, NestedAwaitReturnsValue) {
  Simulator sim;
  std::vector<int> log;
  auto t = outer(sim, log);
  t.start();
  sim.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(log, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(Task, MoveTransfersOwnership) {
  Simulator sim;
  std::vector<int> log;
  auto t = outer(sim, log);
  Task<> u = std::move(t);
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(u.valid());
  u.start();
  sim.run();
  EXPECT_TRUE(u.finished());
}

TEST(Task, UnstartedTaskIsDestroyedSafely) {
  Simulator sim;
  std::vector<int> log;
  { auto t = outer(sim, log); }  // never started
  EXPECT_TRUE(log.empty());
}

// --------------------------------------------------------------- Delay ----

Task<> delayer(Simulator& sim, SimTime d, SimTime& when) {
  co_await Delay{sim, d};
  when = sim.now();
}

TEST(Delay, SuspendsForExactDuration) {
  Simulator sim;
  SimTime when;
  auto t = delayer(sim, SimTime::micros(123), when);
  t.start();
  sim.run();
  EXPECT_EQ(when, SimTime::micros(123));
}

TEST(Delay, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  SimTime when = SimTime::millis(99);
  auto t = delayer(sim, SimTime::zero(), when);
  t.start();
  EXPECT_EQ(when, SimTime::zero());  // completed synchronously
}

// ------------------------------------------------------------ SimFuture ----

Task<> consume(SimFuture<int> f, int& out) { out = co_await f; }

TEST(SimFuture, AwaitBeforeFulfill) {
  Simulator sim;
  SimPromise<int> p(sim);
  int out = 0;
  auto t = consume(p.get_future(), out);
  t.start();
  EXPECT_EQ(out, 0);
  sim.schedule(SimTime::millis(2), [&] { p.set_value(7); });
  sim.run();
  EXPECT_EQ(out, 7);
}

TEST(SimFuture, AwaitAfterFulfillIsImmediate) {
  Simulator sim;
  SimPromise<int> p(sim);
  p.set_value(9);
  int out = 0;
  auto t = consume(p.get_future(), out);
  t.start();
  EXPECT_EQ(out, 9);  // ready future: no suspension
}

TEST(SimFuture, GetAfterRun) {
  Simulator sim;
  SimPromise<int> p(sim);
  auto f = p.get_future();
  EXPECT_FALSE(f.ready());
  p.set_value(3);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), 3);
}

// ----------------------------------------------------------- SyncBarrier ----

Task<> barrier_rank(Simulator& sim, SyncBarrier& b, SimTime d,
                    std::vector<SimTime>& done) {
  co_await Delay{sim, d};
  co_await b.arrive();
  done.push_back(sim.now());
}

TEST(SyncBarrier, ReleasesWhenAllArrive) {
  Simulator sim;
  SyncBarrier b(sim, 3);
  std::vector<SimTime> done;
  TaskGroup group(sim);
  group.spawn(barrier_rank(sim, b, SimTime::millis(1), done));
  group.spawn(barrier_rank(sim, b, SimTime::millis(5), done));
  group.spawn(barrier_rank(sim, b, SimTime::millis(3), done));
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  for (const auto& t : done) EXPECT_EQ(t, SimTime::millis(5));
}

Task<> barrier_loop(Simulator& sim, SyncBarrier& b, int iters,
                    std::vector<int>& log, int id) {
  for (int i = 0; i < iters; ++i) {
    co_await Delay{sim, SimTime::millis(id + 1)};
    co_await b.arrive();
    log.push_back(i * 10 + id);
  }
}

TEST(SyncBarrier, IsReusableAcrossIterations) {
  Simulator sim;
  SyncBarrier b(sim, 2);
  std::vector<int> log;
  TaskGroup group(sim);
  group.spawn(barrier_loop(sim, b, 3, log, 0));
  group.spawn(barrier_loop(sim, b, 3, log, 1));
  sim.run();
  ASSERT_EQ(log.size(), 6u);
  // Iterations complete in order; within an iteration both ranks release.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(2 * i)] / 10, i);
    EXPECT_EQ(log[static_cast<size_t>(2 * i + 1)] / 10, i);
  }
}

TEST(SyncBarrier, SinglePartyNeverBlocks) {
  Simulator sim;
  SyncBarrier b(sim, 1);
  std::vector<SimTime> done;
  TaskGroup group(sim);
  group.spawn(barrier_rank(sim, b, SimTime::millis(1), done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], SimTime::millis(1));
}

// ------------------------------------------------------------ Semaphore ----

Task<> sem_user(Simulator& sim, Semaphore& s, SimTime hold, int id,
                std::vector<int>& order) {
  co_await s.acquire();
  order.push_back(id);
  co_await Delay{sim, hold};
  s.release();
}

TEST(Semaphore, LimitsConcurrencyAndWakesFifo) {
  Simulator sim;
  Semaphore s(sim, 2);
  std::vector<int> order;
  TaskGroup group(sim);
  for (int i = 0; i < 5; ++i) {
    group.spawn(sem_user(sim, s, SimTime::millis(10), i, order));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.available(), 2);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrements) {
  Simulator sim;
  Semaphore s(sim, 0);
  s.release();
  EXPECT_EQ(s.available(), 1);
}

// -------------------------------------------------------------- Channel ----

Task<> producer(Simulator& sim, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{sim, SimTime::millis(1)};
    ch.push(i);
  }
}

Task<> chan_consumer(Channel<int>& ch, int n, std::vector<int>& got) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await ch.pop());
  }
}

TEST(Channel, DeliversInOrderAcrossSuspension) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  TaskGroup group(sim);
  group.spawn(chan_consumer(ch, 5, got));  // consumer first: must block
  group.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, BufferedPopIsImmediate) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  auto t = chan_consumer(ch, 2, got);
  t.start();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// -------------------------------------------------------------- JoinSet ----

Task<> tick(Simulator& sim, SimTime d, int& counter) {
  co_await Delay{sim, d};
  ++counter;
}

Task<> join_parent(Simulator& sim, int n, int& counter, bool& joined) {
  JoinSet js(sim);
  for (int i = 0; i < n; ++i) {
    js.add(tick(sim, SimTime::millis(i + 1), counter));
  }
  co_await js.join();
  joined = true;
}

TEST(JoinSet, WaitsForAllChildren) {
  Simulator sim;
  int counter = 0;
  bool joined = false;
  auto t = join_parent(sim, 7, counter, joined);
  t.start();
  sim.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(counter, 7);
  EXPECT_EQ(sim.now(), SimTime::millis(7));
}

TEST(JoinSet, EmptyJoinIsImmediate) {
  Simulator sim;
  int counter = 0;
  bool joined = false;
  auto t = join_parent(sim, 0, counter, joined);
  t.start();
  EXPECT_TRUE(joined);
}

// ------------------------------------------------------------ TaskGroup ----

TEST(TaskGroup, TracksCompletionAndReaps) {
  Simulator sim;
  TaskGroup group(sim);
  int counter = 0;
  for (int i = 0; i < 100; ++i) {
    group.spawn(tick(sim, SimTime::millis(1), counter));
    sim.run();
  }
  EXPECT_EQ(counter, 100);
  EXPECT_TRUE(group.all_finished());
  // Finished frames at the front are reaped on spawn, bounding memory.
  EXPECT_LE(group.size(), 2u);
}

// ------------------------------------------------------------------ Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(10), 10u);
}

TEST(Rng, UniformCoversRangeInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    lo = lo || v == 3;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  Rng a2(5);
  (void)a2.fork();
  // Parent stream after fork must equal a reference that also forked once.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), a2());
  (void)child;
}

// --------------------------------------------------------- InlineEvent ----

TEST(InlineEvent, SmallTriviallyCopyableClosureStoresInline) {
  int a = 0, b = 0;
  int* pa = &a;
  int* pb = &b;
  auto fn = [pa, pb, k = 7] {
    *pa = k;
    *pb = k + 1;
  };
  static_assert(InlineEvent::stored_inline<decltype(fn)>());
  InlineEvent ev(std::move(fn));
  EXPECT_TRUE(static_cast<bool>(ev));
  ev();
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 8);
}

TEST(InlineEvent, OversizedClosureFallsBackToHeapTransparently) {
  std::array<char, 64> big{};
  big[0] = 'x';
  big[63] = 'y';
  char out0 = 0, out63 = 0;
  char* p0 = &out0;
  char* p63 = &out63;
  auto fn = [big, p0, p63] {
    *p0 = big[0];
    *p63 = big[63];
  };
  static_assert(!InlineEvent::stored_inline<decltype(fn)>());
  InlineEvent ev(std::move(fn));
  ev();
  EXPECT_EQ(out0, 'x');
  EXPECT_EQ(out63, 'y');
}

TEST(InlineEvent, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InlineEvent a([&hits] { ++hits; });
  InlineEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineEvent c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineEvent, NonTriviallyCopyableCaptureDestroysExactlyOnce) {
  // shared_ptr captures take the non-trivial Ops path (real relocate and
  // destroy slots); the refcount proves construction/destruction balance
  // across moves for both the inline and heap regimes.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    auto fn = [token] { (void)*token; };
    static_assert(InlineEvent::stored_inline<decltype(fn)>());
    InlineEvent ev(std::move(fn));
    token.reset();
    EXPECT_FALSE(watch.expired());
    InlineEvent moved(std::move(ev));
    EXPECT_FALSE(watch.expired());
    moved();
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineEvent, HeapClosureSurvivesMoves) {
  auto token = std::make_shared<int>(9);
  std::weak_ptr<int> watch = token;
  std::array<char, 80> pad{};
  int got = 0;
  int* pgot = &got;
  {
    InlineEvent ev([token, pad, pgot] { *pgot = *token + pad[0]; });
    token.reset();
    InlineEvent moved(std::move(ev));
    InlineEvent assigned;
    assigned = std::move(moved);
    assigned();
    EXPECT_EQ(got, 9);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------- VectorPool ----

TEST(VectorPool, ReusesReturnedCapacity) {
  BufferPool pool;
  const std::byte* data = nullptr;
  {
    auto lease = pool.acquire();
    lease->resize(4096);
    data = lease->data();
  }
  EXPECT_EQ(pool.idle(), 1u);
  {
    auto lease = pool.acquire();
    EXPECT_TRUE(lease->empty());           // cleared...
    EXPECT_GE(lease->capacity(), 4096u);   // ...but capacity survives
    lease->resize(4096);
    EXPECT_EQ(lease->data(), data);        // same backing store, no realloc
  }
  EXPECT_EQ(pool.fresh_acquires(), 1u);
  EXPECT_EQ(pool.reused_acquires(), 1u);
}

TEST(VectorPool, SizedAcquireValueInitializes) {
  BufferPool pool;
  {
    auto lease = pool.acquire(16);
    (*lease)[0] = std::byte{0xFF};
  }
  auto lease = pool.acquire(16);
  EXPECT_EQ(lease->size(), 16u);
  EXPECT_EQ((*lease)[0], std::byte{0});  // scrubbed, not stale
}

TEST(VectorPool, LeaseMoveKeepsSingleOwnership) {
  BufferPool pool;
  auto a = pool.acquire();
  a->resize(8);
  auto b = std::move(a);
  EXPECT_EQ(b->size(), 8u);
  EXPECT_EQ(pool.idle(), 0u);  // moved-from lease returned nothing
  b = pool.acquire();          // assignment over releases the first buffer
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(VectorPool, EmptyBuffersAreNotPooled) {
  BufferPool pool;
  { auto lease = pool.acquire(); }  // never grew: nothing worth keeping
  EXPECT_EQ(pool.idle(), 0u);
}

// -------------------------------------------- event queue order oracle ----

TEST(Simulator, RandomizedScheduleMatchesStableSortOracle) {
  // Differential regression for the 4-ary slot-heap: the observable fire
  // order of randomized schedule_at() calls — including events scheduled
  // from inside running events — must equal a stable sort of (time, arrival
  // index), which is exactly the documented time-order + same-tick-FIFO
  // contract the old binary heap implemented.
  Rng rng(0xC0FFEE);
  Simulator sim;
  std::vector<std::pair<std::int64_t, int>> expected;  // (time_ns, id)
  std::vector<int> fired;
  int next_id = 0;

  auto add = [&](std::int64_t t_ns) {
    const int id = next_id++;
    expected.emplace_back(t_ns, id);
    sim.schedule_at(SimTime::nanos(t_ns), [&fired, id] { fired.push_back(id); });
    return id;
  };

  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<std::int64_t>(rng.below(64));
    add(t);
    if (rng.below(4) == 0) {
      // A quarter of the events spawn a child at fire time, exercising
      // pushes interleaved with pops on a live heap.
      const int id = next_id++;
      const auto child_extra = static_cast<std::int64_t>(rng.below(16));
      sim.schedule_at(
          SimTime::nanos(t), [&sim, &fired, id, child_extra] {
            fired.push_back(id);
            const std::int64_t when = sim.now().ns() + child_extra;
            sim.schedule_at(SimTime::nanos(when),
                            [&fired, id] { fired.push_back(1000000 + id); });
          });
      expected.emplace_back(t, id);
    }
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), fired.size());
  // Verify the top-level events against the oracle; child events interleave
  // by the same rule, so spot-check global time monotonicity instead of
  // rebuilding the full merged transcript.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> fired_top;
  for (int id : fired) {
    if (id < 1000000) fired_top.push_back(id);
  }
  ASSERT_EQ(fired_top.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fired_top[i], expected[i].second) << "position " << i;
  }
}

TEST(Simulator, ReserveDoesNotDisturbExecution) {
  Simulator sim;
  sim.reserve(1024);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    sim.schedule(SimTime::nanos(64 - i), [&order, i] { order.push_back(i); });
  }
  sim.reserve(16);  // never shrinks, no-op
  sim.run();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], 63 - i);
  }
}

// -------------------------------------------- chunk pool / frame pool ----

TEST(ChunkPool, RecyclesChunksWithinASizeClass) {
  ChunkPool pool;
  void* a = pool.allocate(100);  // 65..128 size class
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  pool.deallocate(a, 100);
  EXPECT_EQ(pool.idle_chunks(), 1u);
  void* b = pool.allocate(128);  // same class, must reuse the chunk
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  EXPECT_EQ(pool.reused_allocs(), 1u);
  void* c = pool.allocate(40);  // different class -> fresh
  EXPECT_EQ(pool.fresh_allocs(), 2u);
  pool.deallocate(b, 128);
  pool.deallocate(c, 40);
  EXPECT_EQ(pool.idle_chunks(), 2u);
}

TEST(ChunkPool, OversizeRequestsBypassThePool) {
  ChunkPool pool;
  void* p = pool.allocate(ChunkPool::kMaxChunk + 1);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, ChunkPool::kMaxChunk + 1);
  EXPECT_EQ(pool.idle_chunks(), 0u);
  EXPECT_EQ(pool.fresh_allocs(), 0u);  // stats track pooled classes only
  EXPECT_EQ(pool.reused_allocs(), 0u);
}

Task<> frame_pool_leaf() { co_return; }
Task<> frame_pool_chain() {
  co_await frame_pool_leaf();
  co_await frame_pool_leaf();
}

TEST(FramePool, SteadyStateTaskChainsReuseFrames) {
  ChunkPool& pool = frame_pool();
  {
    Task<> warm = frame_pool_chain();
    warm.start();
  }  // chain + leaf frames now sit idle in the pool
  const std::uint64_t fresh0 = pool.fresh_allocs();
  const std::uint64_t reused0 = pool.reused_allocs();
  for (int i = 0; i < 64; ++i) {
    Task<> t = frame_pool_chain();
    t.start();
  }
  EXPECT_EQ(pool.fresh_allocs(), fresh0);  // no chunk left the allocator
  // Each iteration resumes one chain frame and two leaf frames from the
  // free lists.
  EXPECT_GE(pool.reused_allocs(), reused0 + 64u * 3u);
}

}  // namespace
}  // namespace ibridge::sim
