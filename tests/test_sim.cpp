// Tests for the discrete-event simulation kernel: clock, event ordering,
// coroutine tasks, and the awaitable synchronization primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {
namespace {

// ------------------------------------------------------------- SimTime ----

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::micros(1).ns(), 1000);
  EXPECT_EQ(SimTime::millis(1).ns(), 1'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::seconds(2), SimTime::millis(2000));
}

TEST(SimTime, FromSecondsRoundTrips) {
  const SimTime t = SimTime::from_seconds(1.5);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1500.0);
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime a = SimTime::millis(3), b = SimTime::millis(2);
  EXPECT_EQ((a + b).ns(), SimTime::millis(5).ns());
  EXPECT_EQ((a - b).ns(), SimTime::millis(1).ns());
  EXPECT_EQ((a * 2).ns(), SimTime::millis(6).ns());
  EXPECT_EQ((a / 3).ns(), SimTime::millis(1).ns());
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::nanos(12).to_string(), "12ns");
  EXPECT_NE(SimTime::micros(12).to_string().find("us"), std::string::npos);
  EXPECT_NE(SimTime::millis(12).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::seconds(2).to_string().find("s"), std::string::npos);
}

// ----------------------------------------------------------- Simulator ----

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(3), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(3));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTickIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule(SimTime::millis(5), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, DeferRunsAfterCurrentTickCallbacks) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::zero(), [&] {
    sim.defer([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.schedule(SimTime::zero(), [&] { order.push_back(10); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
}

TEST(Simulator, FifoSurvivesHeavyDeferChains) {
  // Regression for the heap-based event queue: every defer() from inside a
  // running event lands behind the callbacks already queued for the tick,
  // and the relative order of concurrently growing defer chains is stable.
  // The old priority_queue implementation moved events out of top() via
  // const_cast; this exercises the pop path hard enough that any ordering
  // corruption from the replacement idiom would scramble the transcript.
  Simulator sim;
  std::vector<std::pair<int, int>> order;  // (chain, depth)
  constexpr int kChains = 16, kDepth = 32;
  std::function<void(int, int)> link = [&](int chain, int depth) {
    order.emplace_back(chain, depth);
    if (depth + 1 < kDepth) sim.defer([&, chain, depth] { link(chain, depth + 1); });
  };
  for (int c = 0; c < kChains; ++c) {
    sim.schedule(SimTime::millis(7), [&, c] { link(c, 0); });
  }
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kChains * kDepth));
  // Same-tick FIFO makes the chains advance in lockstep: the transcript is
  // depth-major (all chains at depth 0, then all at depth 1, ...).
  for (int d = 0; d < kDepth; ++d) {
    for (int c = 0; c < kChains; ++c) {
      const auto& [chain, depth] = order[static_cast<std::size_t>(d * kChains + c)];
      EXPECT_EQ(chain, c) << "at depth " << d;
      EXPECT_EQ(depth, d) << "for chain " << c;
    }
  }
  EXPECT_EQ(sim.now(), SimTime::millis(7));
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_time;
  sim.schedule(SimTime::millis(1), [&] {
    sim.schedule(SimTime::millis(4), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, SimTime::millis(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.schedule(SimTime::millis(10), [&] { ++fired; });
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::millis(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.run_while_pending([&] { return count >= 4; }));
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhilePendingReturnsFalseWhenDrained) {
  Simulator sim;
  sim.schedule(SimTime::millis(1), [] {});
  EXPECT_FALSE(sim.run_while_pending([] { return false; }));
}

// ---------------------------------------------------------------- Task ----

Task<int> forty_two() { co_return 42; }

Task<int> add(int a, int b) {
  const int x = co_await forty_two();
  co_return a + b + x - 42;
}

Task<> outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay{sim, SimTime::millis(5)};
  log.push_back(2);
  const int v = co_await add(2, 3);
  log.push_back(v);
}

TEST(Task, NestedAwaitReturnsValue) {
  Simulator sim;
  std::vector<int> log;
  auto t = outer(sim, log);
  t.start();
  sim.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(log, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(Task, MoveTransfersOwnership) {
  Simulator sim;
  std::vector<int> log;
  auto t = outer(sim, log);
  Task<> u = std::move(t);
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(u.valid());
  u.start();
  sim.run();
  EXPECT_TRUE(u.finished());
}

TEST(Task, UnstartedTaskIsDestroyedSafely) {
  Simulator sim;
  std::vector<int> log;
  { auto t = outer(sim, log); }  // never started
  EXPECT_TRUE(log.empty());
}

// --------------------------------------------------------------- Delay ----

Task<> delayer(Simulator& sim, SimTime d, SimTime& when) {
  co_await Delay{sim, d};
  when = sim.now();
}

TEST(Delay, SuspendsForExactDuration) {
  Simulator sim;
  SimTime when;
  auto t = delayer(sim, SimTime::micros(123), when);
  t.start();
  sim.run();
  EXPECT_EQ(when, SimTime::micros(123));
}

TEST(Delay, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  SimTime when = SimTime::millis(99);
  auto t = delayer(sim, SimTime::zero(), when);
  t.start();
  EXPECT_EQ(when, SimTime::zero());  // completed synchronously
}

// ------------------------------------------------------------ SimFuture ----

Task<> consume(SimFuture<int> f, int& out) { out = co_await f; }

TEST(SimFuture, AwaitBeforeFulfill) {
  Simulator sim;
  SimPromise<int> p(sim);
  int out = 0;
  auto t = consume(p.get_future(), out);
  t.start();
  EXPECT_EQ(out, 0);
  sim.schedule(SimTime::millis(2), [&] { p.set_value(7); });
  sim.run();
  EXPECT_EQ(out, 7);
}

TEST(SimFuture, AwaitAfterFulfillIsImmediate) {
  Simulator sim;
  SimPromise<int> p(sim);
  p.set_value(9);
  int out = 0;
  auto t = consume(p.get_future(), out);
  t.start();
  EXPECT_EQ(out, 9);  // ready future: no suspension
}

TEST(SimFuture, GetAfterRun) {
  Simulator sim;
  SimPromise<int> p(sim);
  auto f = p.get_future();
  EXPECT_FALSE(f.ready());
  p.set_value(3);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), 3);
}

// ----------------------------------------------------------- SyncBarrier ----

Task<> barrier_rank(Simulator& sim, SyncBarrier& b, SimTime d,
                    std::vector<SimTime>& done) {
  co_await Delay{sim, d};
  co_await b.arrive();
  done.push_back(sim.now());
}

TEST(SyncBarrier, ReleasesWhenAllArrive) {
  Simulator sim;
  SyncBarrier b(sim, 3);
  std::vector<SimTime> done;
  TaskGroup group(sim);
  group.spawn(barrier_rank(sim, b, SimTime::millis(1), done));
  group.spawn(barrier_rank(sim, b, SimTime::millis(5), done));
  group.spawn(barrier_rank(sim, b, SimTime::millis(3), done));
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  for (const auto& t : done) EXPECT_EQ(t, SimTime::millis(5));
}

Task<> barrier_loop(Simulator& sim, SyncBarrier& b, int iters,
                    std::vector<int>& log, int id) {
  for (int i = 0; i < iters; ++i) {
    co_await Delay{sim, SimTime::millis(id + 1)};
    co_await b.arrive();
    log.push_back(i * 10 + id);
  }
}

TEST(SyncBarrier, IsReusableAcrossIterations) {
  Simulator sim;
  SyncBarrier b(sim, 2);
  std::vector<int> log;
  TaskGroup group(sim);
  group.spawn(barrier_loop(sim, b, 3, log, 0));
  group.spawn(barrier_loop(sim, b, 3, log, 1));
  sim.run();
  ASSERT_EQ(log.size(), 6u);
  // Iterations complete in order; within an iteration both ranks release.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(2 * i)] / 10, i);
    EXPECT_EQ(log[static_cast<size_t>(2 * i + 1)] / 10, i);
  }
}

TEST(SyncBarrier, SinglePartyNeverBlocks) {
  Simulator sim;
  SyncBarrier b(sim, 1);
  std::vector<SimTime> done;
  TaskGroup group(sim);
  group.spawn(barrier_rank(sim, b, SimTime::millis(1), done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], SimTime::millis(1));
}

// ------------------------------------------------------------ Semaphore ----

Task<> sem_user(Simulator& sim, Semaphore& s, SimTime hold, int id,
                std::vector<int>& order) {
  co_await s.acquire();
  order.push_back(id);
  co_await Delay{sim, hold};
  s.release();
}

TEST(Semaphore, LimitsConcurrencyAndWakesFifo) {
  Simulator sim;
  Semaphore s(sim, 2);
  std::vector<int> order;
  TaskGroup group(sim);
  for (int i = 0; i < 5; ++i) {
    group.spawn(sem_user(sim, s, SimTime::millis(10), i, order));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.available(), 2);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrements) {
  Simulator sim;
  Semaphore s(sim, 0);
  s.release();
  EXPECT_EQ(s.available(), 1);
}

// -------------------------------------------------------------- Channel ----

Task<> producer(Simulator& sim, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{sim, SimTime::millis(1)};
    ch.push(i);
  }
}

Task<> chan_consumer(Channel<int>& ch, int n, std::vector<int>& got) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await ch.pop());
  }
}

TEST(Channel, DeliversInOrderAcrossSuspension) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  TaskGroup group(sim);
  group.spawn(chan_consumer(ch, 5, got));  // consumer first: must block
  group.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, BufferedPopIsImmediate) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  auto t = chan_consumer(ch, 2, got);
  t.start();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// -------------------------------------------------------------- JoinSet ----

Task<> tick(Simulator& sim, SimTime d, int& counter) {
  co_await Delay{sim, d};
  ++counter;
}

Task<> join_parent(Simulator& sim, int n, int& counter, bool& joined) {
  JoinSet js(sim);
  for (int i = 0; i < n; ++i) {
    js.add(tick(sim, SimTime::millis(i + 1), counter));
  }
  co_await js.join();
  joined = true;
}

TEST(JoinSet, WaitsForAllChildren) {
  Simulator sim;
  int counter = 0;
  bool joined = false;
  auto t = join_parent(sim, 7, counter, joined);
  t.start();
  sim.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(counter, 7);
  EXPECT_EQ(sim.now(), SimTime::millis(7));
}

TEST(JoinSet, EmptyJoinIsImmediate) {
  Simulator sim;
  int counter = 0;
  bool joined = false;
  auto t = join_parent(sim, 0, counter, joined);
  t.start();
  EXPECT_TRUE(joined);
}

// ------------------------------------------------------------ TaskGroup ----

TEST(TaskGroup, TracksCompletionAndReaps) {
  Simulator sim;
  TaskGroup group(sim);
  int counter = 0;
  for (int i = 0; i < 100; ++i) {
    group.spawn(tick(sim, SimTime::millis(1), counter));
    sim.run();
  }
  EXPECT_EQ(counter, 100);
  EXPECT_TRUE(group.all_finished());
  // Finished frames at the front are reaped on spawn, bounding memory.
  EXPECT_LE(group.size(), 2u);
}

// ------------------------------------------------------------------ Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(10), 10u);
}

TEST(Rng, UniformCoversRangeInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    lo = lo || v == 3;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  Rng a2(5);
  (void)a2.fork();
  // Parent stream after fork must equal a reference that also forked once.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), a2());
  (void)child;
}

}  // namespace
}  // namespace ibridge::sim
