// SimCheck property-based fuzzing (tier-1 slice).
//
// Each iteration derives a full case — cluster/cache configuration plus an
// interleaved unaligned read/write trace — from one seed, replays it with
// the InvariantOracle auditing every cache step, and checks read-your-writes
// against a byte-exact reference image.  The failing seed is printed so any
// red run is reproducible with a one-line test, and the shrinker turns a
// failing trace into an ibridge-replay-compatible minimal repro.
//
// Iteration count defaults to 200 (kept cheap for the default test pass) and
// can be raised out-of-band: SIMCHECK_FUZZ_ITERS=20000 ctest -L fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/generator.hpp"
#include "check/invariants.hpp"
#include "core/cache.hpp"
#include "fault/schedule.hpp"
#include "fsim/filesystem.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"
#include "workloads/trace.hpp"

namespace ibridge::check {
namespace {

int fuzz_iterations(int dflt) {
  if (const char* env = std::getenv("SIMCHECK_FUZZ_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return dflt;
}

// ---------------------------------------------------- cache-level harness ----

struct CacheFuzzOutcome {
  std::string failure;  ///< empty == clean
  std::uint64_t oracle_checks = 0;
  bool ok() const { return failure.empty(); }
};

// Replay one generated case against a bare IBridgeCache (no cluster: this is
// the hot loop of the fuzzer, hundreds of iterations must stay cheap) with
// the oracle attached and a reference image shadowing every write.
CacheFuzzOutcome fuzz_cache_once(const FuzzCase& c) {
  CacheFuzzOutcome out;
  sim::Simulator sim;
  auto hp = storage::paper_hdd();
  hp.anticipation_ms = 0;
  storage::HddModel disk(sim, hp);
  storage::SsdModel ssd(sim, storage::paper_ssd());
  fsim::LocalFileSystem disk_fs(sim, disk, fsim::DataMode::kVerify);
  fsim::LocalFileSystem ssd_fs(sim, ssd, fsim::DataMode::kVerify);

  storage::SeekProfile profile({{1000, 0.5}, {100'000, 1.5}});
  core::IBridgeCache cache(sim, c.base.server.ibridge, sim::ServerId{0},
                           disk_fs, ssd_fs, profile);
  InvariantOracle oracle;
  cache.set_observer(&oracle);
  cache.start();
  const fsim::FileId file = disk_fs.create("df", c.file_bytes);
  std::vector<std::byte> image(static_cast<std::size_t>(c.file_bytes),
                               std::byte{0});

  const std::int64_t frag = c.base.server.ibridge.fragment_threshold;
  std::vector<std::byte> buf;
  for (std::size_t i = 0; i < c.trace.size() && out.ok(); ++i) {
    const auto& rec = c.trace[i];
    const std::int64_t size = std::min(rec.size, c.file_bytes);
    const std::int64_t off =
        std::min(rec.offset, c.file_bytes - size);
    buf.assign(static_cast<std::size_t>(size), std::byte{0});
    if (rec.write) fill_payload(buf, record_seed(c.seed, i));
    core::CacheRequest req{rec.write ? storage::IoDirection::kWrite
                                     : storage::IoDirection::kRead,
                           file, sim::Offset{off}, sim::Bytes{size},
                           /*fragment=*/size < frag && (i % 2 == 0),
                           {}, 0};
    bool done = false;
    auto t = [](core::IBridgeCache& ca, core::CacheRequest r,
                std::vector<std::byte>& d, bool write,
                bool& flag) -> sim::Task<> {
      if (write) {
        co_await ca.serve(std::move(r), d, {});
      } else {
        co_await ca.serve(std::move(r), {}, d);
      }
      flag = true;
    }(cache, std::move(req), buf, rec.write, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    if (rec.write) {
      std::memcpy(image.data() + off, buf.data(),
                  static_cast<std::size_t>(size));
    } else if (std::memcmp(buf.data(), image.data() + off,
                           static_cast<std::size_t>(size)) != 0) {
      out.failure = "read-your-writes violated by record " + std::to_string(i);
    }
    if (!oracle.ok()) out.failure = "oracle: " + oracle.failures().front();
  }

  // Settle background staging, then drain and audit the quiescent state.
  sim.run_until(sim.now() + sim::SimTime::seconds(2));
  bool drained = false;
  auto t = [](core::IBridgeCache& ca, bool& flag) -> sim::Task<> {
    co_await ca.drain();
    flag = true;
  }(cache, drained);
  cache.stop();
  t.start();
  sim.run_while_pending([&] { return drained; });
  sim.run();

  if (out.ok()) {
    if (cache.table().dirty_bytes() != sim::Bytes::zero()) {
      out.failure = "dirty bytes survived drain";
    }
    for (const auto& v : verify_cache(cache, /*quiescent=*/true)) {
      out.failure = "post-drain: " + v;
      break;
    }
    std::vector<std::byte> disk_image(static_cast<std::size_t>(c.file_bytes));
    disk_fs.peek_bytes(file, 0, disk_image);
    if (disk_image != image) {
      out.failure = "disk image diverged from the reference after drain";
    }
    if (!oracle.ok()) out.failure = "oracle: " + oracle.failures().front();
  }
  out.oracle_checks = oracle.checks_run();
  return out;
}

}  // namespace

TEST(SimCheckFuzz, CacheLevelSweepHoldsInvariants) {
  const int iters = fuzz_iterations(200);
  std::uint64_t total_checks = 0;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0x5eedf00dULL + static_cast<std::uint64_t>(i);
    const FuzzCase c = generate_case(seed);
    const CacheFuzzOutcome out = fuzz_cache_once(c);
    ASSERT_TRUE(out.ok()) << "failing seed=" << seed
                          << " (rerun: generate_case(" << seed
                          << ")): " << out.failure;
    EXPECT_GT(out.oracle_checks, 0u) << "seed=" << seed;
    total_checks += out.oracle_checks;
  }
  EXPECT_GT(total_checks, static_cast<std::uint64_t>(iters));
}

// A smaller fleet of full-cluster runs: client decomposition, fragment
// tagging, striping and the network all sit between the trace and the cache.
TEST(SimCheckFuzz, ClusterLevelSubsetHoldsInvariants) {
  const int iters = fuzz_iterations(200) / 25;  // scales with the env knob
  for (int i = 0; i < std::max(4, iters); ++i) {
    const std::uint64_t seed = 0xc10c5eedULL + static_cast<std::uint64_t>(i);
    const FuzzCase c = generate_case(seed);
    cluster::Cluster cl(make_config(c, Policy::kIBridge));
    InvariantOracle oracle;
    const RunReport r = run_case(cl, c, Policy::kIBridge, &oracle);
    ASSERT_TRUE(r.ok()) << "failing seed=" << seed << ": " << r.failure;
    ASSERT_TRUE(oracle.ok())
        << "failing seed=" << seed << ": " << oracle.failures().front();
    EXPECT_GT(oracle.checks_run(), 0u);
    EXPECT_EQ(r.requests, c.trace.size());
  }
}

// The same cluster-level fleet with a fault schedule attached: GC pauses,
// read-latency variability, and crash/restart cut through the same stack
// while the oracle audits every cache step and recovery replay.
TEST(SimCheckFuzz, ClusterLevelFaultedSubsetHoldsInvariants) {
  const int iters = fuzz_iterations(200) / 25;  // scales with the env knob
  for (int i = 0; i < std::max(6, iters); ++i) {
    const std::uint64_t seed = 0xfa17c10cULL + static_cast<std::uint64_t>(i);
    FuzzCase c = generate_case(seed);
    const fault::Scenario scen = i % 3 == 0   ? fault::Scenario::kGcInterference
                                 : i % 3 == 1 ? fault::Scenario::kCrashRestart
                                              : fault::Scenario::kMixed;
    c.faults = fault::make_scenario(scen, c.base.data_servers, seed,
                                    sim::SimTime::millis(40));
    ASSERT_FALSE(c.faults.empty());
    cluster::Cluster cl(make_config(c, Policy::kIBridge));
    InvariantOracle oracle;
    const RunReport r = run_case(cl, c, Policy::kIBridge, &oracle);
    ASSERT_TRUE(r.ok()) << "failing seed=" << seed << " scenario "
                        << fault::to_string(scen) << ": " << r.failure;
    ASSERT_TRUE(oracle.ok())
        << "failing seed=" << seed << ": " << oracle.failures().front();
    EXPECT_TRUE(r.faulted) << "seed=" << seed;
    EXPECT_EQ(r.requests, c.trace.size());
  }
}

TEST(SimCheckFuzz, GeneratorIsPureFunctionOfSeed) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const FuzzCase a = generate_case(seed);
    const FuzzCase b = generate_case(seed);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].write, b.trace[i].write);
      EXPECT_EQ(a.trace[i].offset, b.trace[i].offset);
      EXPECT_EQ(a.trace[i].size, b.trace[i].size);
    }
    EXPECT_EQ(a.file_bytes, b.file_bytes);
    EXPECT_EQ(a.base.data_servers, b.base.data_servers);
    EXPECT_EQ(a.base.stripe_unit, b.base.stripe_unit);
    EXPECT_EQ(a.base.server.ibridge.ssd_cache_bytes,
              b.base.server.ibridge.ssd_cache_bytes);
    // Different seeds must not collapse onto one case.
    const FuzzCase other = generate_case(seed + 1);
    EXPECT_FALSE(other.trace.size() == a.trace.size() &&
                 std::equal(other.trace.begin(), other.trace.end(),
                            a.trace.begin(), [](auto& x, auto& y) {
                              return x.write == y.write &&
                                     x.offset == y.offset && x.size == y.size;
                            }));
  }
}

TEST(SimCheckFuzz, GeneratedTracesAreReplayCompatible) {
  // Shrunk repros are handed to tools/ibridge-replay; the text round-trip
  // must be exact for every generated trace.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const FuzzCase c = generate_case(seed);
    std::stringstream ss;
    workloads::write_trace(ss, c.trace);
    const workloads::Trace back = workloads::read_trace(ss);
    ASSERT_EQ(back.size(), c.trace.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_EQ(back[i].write, c.trace[i].write);
      EXPECT_EQ(back[i].offset, c.trace[i].offset);
      EXPECT_EQ(back[i].size, c.trace[i].size);
    }
    for (const auto& r : c.trace) {
      EXPECT_GT(r.size, 0);
      EXPECT_GE(r.offset, 0);
      EXPECT_LE(r.offset + r.size, c.file_bytes);
    }
  }
}

// ------------------------------------------------------------- shrinker ----

TEST(SimCheckShrink, ReducesToMinimalFailingTrace) {
  // Failure model: the bug triggers iff some write of >= 100 KB exists.
  const auto triggers = [](const workloads::Trace& t) {
    for (const auto& r : t) {
      if (r.write && r.size >= 100'000) return true;
    }
    return false;
  };
  workloads::Trace big = generate_case(7).trace;
  big.push_back({true, 123'456, 200'000});       // plant the trigger
  big.insert(big.begin(), {false, 999, 50'000});  // and noise on both sides
  ASSERT_TRUE(triggers(big));

  const ShrinkResult s = shrink(big, triggers);
  ASSERT_TRUE(triggers(s.trace)) << "shrinker lost the failure";
  EXPECT_EQ(s.trace.size(), 1u) << "one record reproduces this predicate";
  EXPECT_TRUE(s.trace[0].write);
  EXPECT_GE(s.trace[0].size, 100'000);
  EXPECT_EQ(s.trace[0].offset, 0) << "offset should simplify to zero";
  // The minimized repro still serializes for ibridge-replay.
  std::stringstream ss;
  workloads::write_trace(ss, s.trace);
  EXPECT_EQ(workloads::read_trace(ss).size(), 1u);
}

TEST(SimCheckShrink, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  const auto pred = [&](const workloads::Trace& t) {
    ++calls;
    return t.size() >= 3;  // needs at least three records to fail
  };
  const workloads::Trace big(40, {true, 0, 4096});
  const ShrinkResult s = shrink(big, pred, /*max_evals=*/25);
  EXPECT_LE(s.evaluations, 25u);
  EXPECT_EQ(s.evaluations, calls);
  EXPECT_GE(s.trace.size(), 3u);
  EXPECT_TRUE(pred(s.trace));
}

TEST(SimCheckShrink, MinimizesRecordCountWhenUnbounded) {
  const auto pred = [](const workloads::Trace& t) { return t.size() >= 3; };
  const workloads::Trace big(64, {false, 8192, 1024});
  const ShrinkResult s = shrink(big, pred, /*max_evals=*/4096);
  EXPECT_EQ(s.trace.size(), 3u);
}

}  // namespace ibridge::check
