// Tests for the baseline admission policies (always-small, Hystor-like
// hot-block) and for OS page-granularity read-modify-write in fsim.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "fsim/filesystem.hpp"
#include "mpiio/mpi.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"

namespace ibridge {
namespace {

// ------------------------------------------------------------- policies ----

cluster::ClusterConfig policy_cluster(core::AdmissionPolicy policy) {
  core::IBridgeConfig ib;
  ib.admission = policy;
  auto cc = cluster::ClusterConfig::with_ibridge(ib);
  cc.data_servers = 2;
  return cc;
}

struct PolicyStats {
  std::uint64_t admits = 0;
  std::uint64_t disk_writes = 0;
};

PolicyStats run_small_writes(core::AdmissionPolicy policy, int passes) {
  cluster::Cluster c(policy_cluster(policy));
  auto fh = c.create_file("f", 128 << 20);
  mpiio::MpiFile file(c.client(), fh);
  // One rank issuing small writes to distinct offsets, `passes` times over.
  mpiio::MpiEnvironment env(c.sim(), c.client(), 1);
  env.launch([&](mpiio::MpiContext ctx) {
    return [](mpiio::MpiContext ctx2, mpiio::MpiFile f,
              int reps) -> sim::Task<> {
      for (int pass = 0; pass < reps; ++pass) {
        // 2 MiB apart: stripe-aligned (one sub-request each) and in
        // distinct hot-block regions (1 MiB granularity).
        for (int i = 0; i < 32; ++i) {
          co_await f.write_at(ctx2.rank(), static_cast<std::int64_t>(i) << 21,
                              4096);
        }
      }
    }(ctx, file, passes);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  c.drain();
  PolicyStats out;
  for (int s = 0; s < c.server_count(); ++s) {
    out.admits += c.server(s).cache()->stats().write_admits;
    out.disk_writes += c.server(s).cache()->stats().write_disk;
  }
  return out;
}

TEST(AdmissionPolicy, AlwaysSmallAdmitsEverySmallRequest) {
  const auto s = run_small_writes(core::AdmissionPolicy::kAlwaysSmall, 1);
  EXPECT_EQ(s.admits, 32u);
  EXPECT_EQ(s.disk_writes, 0u);
}

TEST(AdmissionPolicy, HotBlockNeedsRepeatedAccess) {
  // First pass: every region is cold -> all writes go to the disk.
  const auto cold = run_small_writes(core::AdmissionPolicy::kHotBlock, 1);
  EXPECT_EQ(cold.admits, 0u);
  EXPECT_EQ(cold.disk_writes, 32u);
  // Two passes: the second pass finds every region hot.
  const auto warm = run_small_writes(core::AdmissionPolicy::kHotBlock, 2);
  EXPECT_EQ(warm.admits, 32u);
  EXPECT_EQ(warm.disk_writes, 32u);
}

TEST(AdmissionPolicy, ReturnBasedAdmitsColdSmallWrites) {
  // With T starting at zero, small random writes have positive return
  // immediately (the BTIO "all writes to SSD" behaviour).
  const auto s = run_small_writes(core::AdmissionPolicy::kReturnBased, 1);
  EXPECT_GT(s.admits, 24u);
}

TEST(AdmissionPolicy, LargeRequestsNeverAdmittedByAnyPolicy) {
  for (auto policy :
       {core::AdmissionPolicy::kReturnBased, core::AdmissionPolicy::kAlwaysSmall,
        core::AdmissionPolicy::kHotBlock}) {
    cluster::Cluster c(policy_cluster(policy));
    auto fh = c.create_file("f", 64 << 20);
    mpiio::MpiFile file(c.client(), fh);
    mpiio::MpiEnvironment env(c.sim(), c.client(), 1);
    env.launch([&](mpiio::MpiContext ctx) {
      return [](mpiio::MpiContext ctx2, mpiio::MpiFile f) -> sim::Task<> {
        // Stripe-aligned 64 KB writes: one full-unit sub-request each, so
        // no piece is below the threshold.  (Unaligned large requests DO
        // produce admissible fragments — that is the paper's point.)
        for (int i = 0; i < 8; ++i) {
          co_await f.write_at(ctx2.rank(),
                              static_cast<std::int64_t>(i) * 2 * 64 * 1024,
                              64 * 1024);
        }
      }(ctx, file);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    std::uint64_t admits = 0;
    for (int s = 0; s < c.server_count(); ++s) {
      admits += c.server(s).cache()->stats().write_admits;
    }
    EXPECT_EQ(admits, 0u) << "policy " << static_cast<int>(policy);
  }
}

// ------------------------------------------------------------------ RMW ----

struct RmwFixture : ::testing::Test {
  sim::Simulator sim;
  storage::HddParams params = [] {
    auto p = storage::paper_hdd();
    p.anticipation_ms = 0;
    return p;
  }();
  storage::HddModel disk{sim, params};
  fsim::LocalFileSystem fs{sim, disk, fsim::DataMode::kTimingOnly};

  std::uint64_t reads_issued(std::int64_t off, std::int64_t len) {
    // Built stepwise: the one-expression "f" + to_string(off) form trips
    // GCC 12's -Werror=restrict false positive at -O3.
    std::string name = "f";
    name += std::to_string(off);
    const auto id = fs.create(name, 16 << 20);
    const std::int64_t before = disk.trace().requests();
    const std::int64_t rbytes_before = disk.bytes_read();
    bool done = false;
    auto t = [](fsim::LocalFileSystem& f, fsim::FileId i, std::int64_t o,
                std::int64_t l, bool& flag) -> sim::Task<> {
      co_await f.write(i, o, l, {});
      flag = true;
    }(fs, id, off, len, done);
    t.start();
    sim.run_while_pending([&] { return done; });
    (void)before;
    return static_cast<std::uint64_t>(disk.bytes_read() - rbytes_before);
  }
};

TEST_F(RmwFixture, DisabledByDefaultInRawFs) {
  EXPECT_EQ(fs.rmw_page_bytes(), 0);
  EXPECT_EQ(reads_issued(100, 3000), 0u);
}

TEST_F(RmwFixture, PageAlignedWritesReadNothing) {
  fs.set_rmw_page_bytes(4096);
  EXPECT_EQ(reads_issued(0, 8192), 0u);
  EXPECT_EQ(reads_issued(4096, 4096), 0u);
}

TEST_F(RmwFixture, UnalignedHeadReadsOnePage) {
  fs.set_rmw_page_bytes(4096);
  // [100, 4096): head page partially covered, write ends on the boundary.
  EXPECT_EQ(reads_issued(100, 4096 - 100), 4096u);
}

TEST_F(RmwFixture, UnalignedTailReadsOnePage) {
  fs.set_rmw_page_bytes(4096);
  EXPECT_EQ(reads_issued(0, 3000), 4096u);
}

TEST_F(RmwFixture, InteriorSubPageWriteReadsBothBoundaryPages) {
  fs.set_rmw_page_bytes(4096);
  EXPECT_EQ(reads_issued(100, 10'000), 2 * 4096u);
}

TEST_F(RmwFixture, TinyWriteWithinOnePageReadsItOnce) {
  fs.set_rmw_page_bytes(4096);
  EXPECT_EQ(reads_issued(1000, 640), 4096u);
}

TEST(RmwCluster, SsdOnlySmallWritesPayRmw) {
  // The Figure 10 mechanism: sub-page writes to SSD datafiles trigger fill
  // reads; the iBridge log is exempt.
  auto cc = cluster::ClusterConfig::ssd_only();
  cc.data_servers = 2;
  cluster::Cluster c(cc);
  auto fh = c.create_file("f", 16 << 20);
  mpiio::MpiFile file(c.client(), fh);
  mpiio::MpiEnvironment env(c.sim(), c.client(), 1);
  env.launch([&](mpiio::MpiContext ctx) {
    return [](mpiio::MpiContext ctx2, mpiio::MpiFile f) -> sim::Task<> {
      for (int i = 0; i < 16; ++i) {
        co_await f.write_at(ctx2.rank(), i * 100'000, 640);
      }
    }(ctx, file);
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  std::int64_t fills = 0;
  for (int s = 0; s < c.server_count(); ++s) {
    fills += c.server(s).ssd()->bytes_read();
  }
  // One boundary-page fill per write, plus a second for the two offsets
  // (i = 7, 12) whose 640 bytes straddle a page boundary.
  EXPECT_EQ(fills, 18 * 4096);
}

}  // namespace
}  // namespace ibridge
