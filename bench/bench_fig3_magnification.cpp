// Figure 3 — the striping magnification effect.
//
// A 16-process group synchronously issues constant-size requests: k*64 KB
// (served by servers 0..k-1) versus k*64 KB + 1 KB (the extra 1 KB fragment
// lands on server k).  A second group concurrently reads random 64 KB
// segments from server k so the fragment contends with real work.  Both
// variants run with and without a barrier between iterations.  The paper's
// trend: the fragment's throughput penalty grows with k.
#include "bench/bench_common.hpp"
#include "mpiio/mpi.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

struct RunStats {
  std::int64_t bytes = 0;
};

sim::Task<> requester(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      std::int64_t req_size, std::int64_t iters,
                      std::int64_t region, bool barrier, RunStats* st) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off =
        (k * ctx.size() + ctx.rank()) * region % (8LL * kGB);
    co_await file.read_at(ctx.rank(), off, req_size);
    st->bytes += req_size;
    if (barrier) co_await ctx.barrier();
  }
}

sim::Task<> interferer(mpiio::MpiContext ctx, mpiio::MpiFile file,
                       int target_server, std::int64_t iters,
                       sim::Rng rng) {
  // Random 64 KB reads that always land on `target_server`: stripe indices
  // congruent to the target modulo the server count.
  const std::int64_t unit = 64 * 1024;
  const std::int64_t servers = 8;
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t stripe =
        (rng.below(10'000) * servers + static_cast<std::uint64_t>(target_server));
    co_await file.read_at(ctx.rank(), static_cast<std::int64_t>(stripe) * unit,
                          unit);
  }
}

double run_case(const Scale& scale, int k, bool with_fragment, bool barrier) {
  cluster::Cluster c(cluster::ClusterConfig::stock());
  auto fh = c.create_file("data", scale.file_bytes);
  mpiio::MpiFile file(c.client(), fh);

  const std::int64_t req =
      static_cast<std::int64_t>(k) * 64 * 1024 + (with_fragment ? 1024 : 0);
  // Requests are aligned to k-unit boundaries so they hit servers 0..k-1
  // (+ server k for the fragment).
  const std::int64_t region = static_cast<std::int64_t>(8) * 64 * 1024;
  const std::int64_t iters =
      std::max<std::int64_t>(1, scale.access_bytes / (16 * req) / 4);

  RunStats st;
  mpiio::MpiEnvironment group(c.sim(), c.client(), 16);
  mpiio::MpiEnvironment noise(c.sim(), c.client(), 4);
  const sim::SimTime t0 = c.sim().now();
  group.launch([&](mpiio::MpiContext ctx) {
    return requester(ctx, file, req, iters, region, barrier, &st);
  });
  sim::Rng seed_gen(77);
  noise.launch([&](mpiio::MpiContext ctx) {
    return interferer(ctx, file, /*target_server=*/k % 8, iters * 2,
                      seed_gen.fork());
  });
  c.sim().run_while_pending([&] { return group.finished(); });
  const double secs = (c.sim().now() - t0).to_seconds();
  return static_cast<double>(st.bytes) / 1e6 / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Figure 3", "striping magnification: k servers +- a 1 KB fragment");

  stats::Table t({"k (servers)", "no-frag", "frag", "reduction",
                  "no-frag+barrier", "frag+barrier", "reduction"});
  for (int k : {1, 2, 4, 6}) {
    const double nf = run_case(scale, k, false, false);
    const double fr = run_case(scale, k, true, false);
    const double nfb = run_case(scale, k, false, true);
    const double frb = run_case(scale, k, true, true);
    t.add_row({std::to_string(k), stats::Table::fmt("%.1f", nf),
               stats::Table::fmt("%.1f", fr),
               stats::Table::fmt("%.0f%%", 100.0 * (1.0 - fr / nf)),
               stats::Table::fmt("%.1f", nfb),
               stats::Table::fmt("%.1f", frb),
               stats::Table::fmt("%.0f%%", 100.0 * (1.0 - frb / nfb))});
  }
  t.print();
  std::printf("  paper trend: reduction grows with k; barriers amplify the "
              "fragment penalty\n");
  footnote();
  return 0;
}
