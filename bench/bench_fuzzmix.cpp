// Randomized-mix comparison built on the SimCheck generator: each seeded
// case draws a cluster geometry, iBridge knobs, and an interleaved
// unaligned read/write trace, then runs it under the three storage
// policies.  Unlike the per-figure benches (one workload shape each), this
// reports how the policies rank across a *population* of adversarial
// mixes, and doubles as a cheap payload-equivalence sweep: every case is
// checked with the full differential oracle.
//
// Cases are independent (fresh clusters per case), so --jobs N fans them
// over an exp::Runner pool; aggregation happens in seed order, making the
// table and BENCH_fuzzmix.json model metrics identical at every N.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "check/differential.hpp"
#include "check/generator.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"

using namespace ibridge;
using namespace ibridge::bench;
using namespace ibridge::check;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  const int cases = scale.trace_requests >= 20'000 ? 60 : 12;

  banner("FuzzMix", "policy comparison over SimCheck-generated workloads");

  exp::Stopwatch sw;
  exp::Runner runner(scale.jobs);
  struct CaseOut {
    DiffReport d;
    std::int64_t bytes = 0;
    unsigned long long seed = 0;
  };
  const auto outs = runner.map<CaseOut>(cases, [&](int i) {
    CaseOut o;
    const FuzzCase c = generate_case(0xF022ULL + static_cast<std::uint64_t>(i));
    o.seed = static_cast<unsigned long long>(c.seed);
    o.d = run_differential(c);
    for (const auto& r : c.trace) o.bytes += std::min(r.size, c.file_bytes);
    return o;
  });

  double disk_s = 0, ib_s = 0, ssd_s = 0;
  std::uint64_t requests = 0;
  std::int64_t bytes = 0;
  double worst_gap = 0.0;
  int failures = 0;
  std::uint64_t sim_events = 0;
  for (const CaseOut& o : outs) {
    if (!o.d.ok()) {
      std::printf("  case seed %llu FAILED: %s\n", o.seed,
                  o.d.failure.c_str());
      ++failures;
      continue;
    }
    disk_s += o.d.disk.total_elapsed.to_seconds();
    ib_s += o.d.ibridge.total_elapsed.to_seconds();
    ssd_s += o.d.ssd.total_elapsed.to_seconds();
    requests += o.d.ibridge.requests;
    bytes += o.bytes;
    worst_gap = std::max(worst_gap, o.d.max_rel_time_gap);
    sim_events += o.d.disk.events + o.d.ibridge.events + o.d.ssd.events;
  }

  stats::Table t({"policy", "total time (s)", "MB/s", "vs disk"});
  const auto row = [&](const char* name, double s) {
    t.add_row({name, stats::Table::fmt("%.3f", s),
               stats::Table::fmt("%.1f",
                                 s > 0 ? static_cast<double>(bytes) / 1e6 / s
                                       : 0.0),
               stats::Table::fmt("%.2fx", s > 0 ? disk_s / s : 0.0)});
  };
  row("disk-only", disk_s);
  row("ibridge", ib_s);
  row("ssd-only", ssd_s);
  t.print();
  std::printf("    %d cases, %llu requests, payload equivalence held on "
              "%d/%d; max per-case divergence %.2fx\n",
              cases, static_cast<unsigned long long>(requests),
              cases - failures, cases, 1.0 + worst_gap);
  footnote();

  const double wall_s = sw.seconds();
  exp::Gauge g("fuzzmix");
  g.set("cases", cases);
  g.set("failures", failures);
  g.set("requests", static_cast<double>(requests));
  g.set("bytes", static_cast<double>(bytes));
  g.set("sim.disk_s", disk_s);
  g.set("sim.ibridge_s", ib_s);
  g.set("sim.ssd_s", ssd_s);
  g.set("sim.events", static_cast<double>(sim_events));
  g.set("worst_gap", worst_gap);
  g.set_wall("seconds", wall_s);
  g.set_wall("jobs", scale.jobs);
  g.set_wall("events_per_sec",
             wall_s > 0 ? static_cast<double>(sim_events) / wall_s : 0.0);
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fuzzmix.json\n");
  }

  return failures == 0 ? 0 : 1;
}
