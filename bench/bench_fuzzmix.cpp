// Randomized-mix comparison built on the SimCheck generator: each seeded
// case draws a cluster geometry, iBridge knobs, and an interleaved
// unaligned read/write trace, then runs it under the three storage
// policies.  Unlike the per-figure benches (one workload shape each), this
// reports how the policies rank across a *population* of adversarial
// mixes, and doubles as a cheap payload-equivalence sweep: every case is
// checked with the full differential oracle.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "check/differential.hpp"
#include "check/generator.hpp"

using namespace ibridge;
using namespace ibridge::bench;
using namespace ibridge::check;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  const int cases = scale.trace_requests >= 20'000 ? 60 : 12;

  banner("FuzzMix", "policy comparison over SimCheck-generated workloads");

  double disk_s = 0, ib_s = 0, ssd_s = 0;
  std::uint64_t requests = 0;
  std::int64_t bytes = 0;
  double worst_gap = 0.0;
  int failures = 0;
  for (int i = 0; i < cases; ++i) {
    const FuzzCase c = generate_case(0xF022ULL + static_cast<std::uint64_t>(i));
    const DiffReport d = run_differential(c);
    if (!d.ok()) {
      std::printf("  case seed %llu FAILED: %s\n",
                  static_cast<unsigned long long>(c.seed), d.failure.c_str());
      ++failures;
      continue;
    }
    disk_s += d.disk.total_elapsed.to_seconds();
    ib_s += d.ibridge.total_elapsed.to_seconds();
    ssd_s += d.ssd.total_elapsed.to_seconds();
    requests += d.ibridge.requests;
    for (const auto& r : c.trace) bytes += std::min(r.size, c.file_bytes);
    worst_gap = std::max(worst_gap, d.max_rel_time_gap);
  }

  stats::Table t({"policy", "total time (s)", "MB/s", "vs disk"});
  const auto row = [&](const char* name, double s) {
    t.add_row({name, stats::Table::fmt("%.3f", s),
               stats::Table::fmt("%.1f",
                                 s > 0 ? static_cast<double>(bytes) / 1e6 / s
                                       : 0.0),
               stats::Table::fmt("%.2fx", s > 0 ? disk_s / s : 0.0)});
  };
  row("disk-only", disk_s);
  row("ibridge", ib_s);
  row("ssd-only", ssd_s);
  t.print();
  std::printf("    %d cases, %llu requests, payload equivalence held on "
              "%d/%d; max per-case divergence %.2fx\n",
              cases, static_cast<unsigned long long>(requests),
              cases - failures, cases, 1.0 + worst_gap);
  footnote();
  return failures == 0 ? 0 : 1;
}
