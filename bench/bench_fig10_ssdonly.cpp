// Figure 10 — BTIO: disk-only (stock) vs SSD-only (datafiles directly on
// the SSDs) vs iBridge.  The paper's point: iBridge beats even SSD-only
// storage because its log-structured cache writes the SSD sequentially,
// while direct SSD datafiles take the random-write path (140 vs 30 MB/s).
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, const cluster::ClusterConfig& cc,
                int procs) {
  cluster::Cluster c(cc);
  workloads::BtIoConfig cfg;
  cfg.nprocs = procs;
  cfg.time_steps = scale.btio_steps;
  return run_btio(c, cfg).elapsed.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig10_ssdonly");
  banner("Figure 10", "BTIO: disk-only vs SSD-only vs iBridge");

  stats::Table t({"procs", "disk-only (s)", "SSD-only (s)", "iBridge (s)"});
  for (int procs : {9, 16, 64, 100}) {
    const double disk =
        run_case(scale, cluster::ClusterConfig::stock(), procs);
    const double ssd =
        run_case(scale, cluster::ClusterConfig::ssd_only(), procs);
    const double ib =
        run_case(scale, cluster::ClusterConfig::with_ibridge(), procs);
    t.add_row({std::to_string(procs), stats::Table::fmt("%.2f", disk),
               stats::Table::fmt("%.2f", ssd),
               stats::Table::fmt("%.2f", ib)});
    // Built stepwise: the one-expression "p" + to_string(procs) form trips
    // GCC 12's -Werror=restrict false positive at -O3.
    std::string p = "p";
    p += std::to_string(procs);
    g.set("disk." + p + ".elapsed_s", disk);
    g.set("ssdonly." + p + ".elapsed_s", ssd);
    g.set("ibridge." + p + ".elapsed_s", ib);
  }
  t.print();
  std::printf("  paper: iBridge < SSD-only < disk-only — the log-structured "
              "cache turns the SSD's\n  random writes into sequential "
              "ones\n");
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_fig10_ssdonly.json\n");
  }
  return 0;
}
