// Figure 10 — BTIO: disk-only (stock) vs SSD-only (datafiles directly on
// the SSDs) vs iBridge.  The paper's point: iBridge beats even SSD-only
// storage because its log-structured cache writes the SSD sequentially,
// while direct SSD datafiles take the random-write path (140 vs 30 MB/s).
#include "bench/bench_common.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, const cluster::ClusterConfig& cc,
                int procs) {
  cluster::Cluster c(cc);
  workloads::BtIoConfig cfg;
  cfg.nprocs = procs;
  cfg.time_steps = scale.btio_steps;
  return run_btio(c, cfg).elapsed.to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Figure 10", "BTIO: disk-only vs SSD-only vs iBridge");

  stats::Table t({"procs", "disk-only (s)", "SSD-only (s)", "iBridge (s)"});
  for (int procs : {9, 16, 64, 100}) {
    t.add_row({std::to_string(procs),
               stats::Table::fmt(
                   "%.2f", run_case(scale, cluster::ClusterConfig::stock(),
                                    procs)),
               stats::Table::fmt(
                   "%.2f", run_case(scale, cluster::ClusterConfig::ssd_only(),
                                    procs)),
               stats::Table::fmt(
                   "%.2f",
                   run_case(scale, cluster::ClusterConfig::with_ibridge(),
                            procs))});
  }
  t.print();
  std::printf("  paper: iBridge < SSD-only < disk-only — the log-structured "
              "cache turns the SSD's\n  random writes into sequential "
              "ones\n");
  footnote();
  return 0;
}
