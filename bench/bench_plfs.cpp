// PLFS baseline study: checkpoint write phase + restart read phase.
//
// The paper's related work argues PLFS removes unaligned access at write
// time by logging, "nevertheless, this approach may not be effective for
// regular workloads, as spatial locality is largely lost in the log file
// system".  This bench quantifies that trade against stock and iBridge:
//
//   write phase: N ranks write a checkpoint with unaligned 65 KB records
//   read phase : M(!=N) ranks read the checkpoint back in aligned 64 KB
//                blocks (the usual restart-with-different-rank-count case)
#include "bench/bench_common.hpp"
#include "mpiio/mpi.hpp"
#include "plfs/plfs.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

constexpr int kWriters = 32;
constexpr int kReaders = 16;
constexpr std::int64_t kRecord = 65 * 1024;

struct PhaseResult {
  double write_mbps = 0.0;
  double read_mbps = 0.0;
};

// ------------------------------------------------------------- via PLFS ----

PhaseResult run_plfs(const Scale& scale) {
  cluster::Cluster c(cluster::ClusterConfig::stock());
  plfs::PlfsFile file(c, "ckpt", kWriters);
  const std::int64_t iters =
      std::max<std::int64_t>(1, scale.access_bytes / 4 / (kWriters * kRecord));
  const std::int64_t total = iters * kWriters * kRecord;

  PhaseResult out;
  {
    mpiio::MpiEnvironment env(c.sim(), c.client(), kWriters);
    const sim::SimTime t0 = c.sim().now();
    env.launch([&](mpiio::MpiContext ctx) {
      return [](mpiio::MpiContext x, plfs::PlfsFile* f,
                std::int64_t n) -> sim::Task<> {
        for (std::int64_t k = 0; k < n; ++k) {
          const std::int64_t off = (k * x.size() + x.rank()) * kRecord;
          co_await f->write_at(x.rank(), off, kRecord);
        }
      }(ctx, &file, iters);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    out.write_mbps = static_cast<double>(total) / 1e6 /
                     (c.sim().now() - t0).to_seconds();
  }
  {
    mpiio::MpiEnvironment env(c.sim(), c.client(), kReaders);
    const std::int64_t share = total / kReaders;
    const sim::SimTime t0 = c.sim().now();
    env.launch([&](mpiio::MpiContext ctx) {
      return [](mpiio::MpiContext x, plfs::PlfsFile* f,
                std::int64_t sh) -> sim::Task<> {
        const std::int64_t base = x.rank() * sh;
        for (std::int64_t pos = 0; pos + 64 * 1024 <= sh; pos += 64 * 1024) {
          co_await f->read_at(x.rank(), base + pos, 64 * 1024);
        }
      }(ctx, &file, share);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    out.read_mbps = static_cast<double>((share / (64 * 1024)) * 64 * 1024 *
                                        kReaders) /
                    1e6 / (c.sim().now() - t0).to_seconds();
  }
  return out;
}

// ------------------------------------------------------ via plain client ----

PhaseResult run_flat(const Scale& scale, const cluster::ClusterConfig& cc) {
  cluster::Cluster c(cc);
  auto fh = c.create_file("ckpt", scale.file_bytes);
  mpiio::MpiFile file(c.client(), fh);
  const std::int64_t iters =
      std::max<std::int64_t>(1, scale.access_bytes / 4 / (kWriters * kRecord));
  const std::int64_t total = iters * kWriters * kRecord;

  PhaseResult out;
  {
    mpiio::MpiEnvironment env(c.sim(), c.client(), kWriters);
    const sim::SimTime t0 = c.sim().now();
    env.launch([&](mpiio::MpiContext ctx) {
      return [](mpiio::MpiContext x, mpiio::MpiFile f,
                std::int64_t n) -> sim::Task<> {
        for (std::int64_t k = 0; k < n; ++k) {
          const std::int64_t off = (k * x.size() + x.rank()) * kRecord;
          co_await f.write_at(x.rank(), off, kRecord);
        }
      }(ctx, file, iters);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    const sim::SimTime flushed = c.drain();
    out.write_mbps =
        static_cast<double>(total) / 1e6 / (flushed - t0).to_seconds();
  }
  {
    c.restart_daemons();
    mpiio::MpiEnvironment env(c.sim(), c.client(), kReaders);
    const std::int64_t share = total / kReaders;
    const sim::SimTime t0 = c.sim().now();
    env.launch([&](mpiio::MpiContext ctx) {
      return [](mpiio::MpiContext x, mpiio::MpiFile f,
                std::int64_t sh) -> sim::Task<> {
        const std::int64_t base = x.rank() * sh;
        for (std::int64_t pos = 0; pos + 64 * 1024 <= sh; pos += 64 * 1024) {
          co_await f.read_at(x.rank(), base + pos, 64 * 1024);
        }
      }(ctx, file, share);
    });
    c.sim().run_while_pending([&] { return env.finished(); });
    out.read_mbps = static_cast<double>((share / (64 * 1024)) * 64 * 1024 *
                                        kReaders) /
                    1e6 / (c.sim().now() - t0).to_seconds();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("PLFS baseline",
         "checkpoint (unaligned 65 KB writes) then restart (aligned reads)");

  stats::Table t({"system", "checkpoint write MB/s", "restart read MB/s"});
  const auto stock = run_flat(scale, cluster::ClusterConfig::stock());
  t.add_row({"stock PVFS2", stats::Table::fmt("%.1f", stock.write_mbps),
             stats::Table::fmt("%.1f", stock.read_mbps)});
  const auto plfs = run_plfs(scale);
  t.add_row({"PLFS middleware", stats::Table::fmt("%.1f", plfs.write_mbps),
             stats::Table::fmt("%.1f", plfs.read_mbps)});
  const auto ib = run_flat(scale, cluster::ClusterConfig::with_ibridge());
  t.add_row({"iBridge", stats::Table::fmt("%.1f", ib.write_mbps),
             stats::Table::fmt("%.1f", ib.read_mbps)});
  t.print();
  std::printf(
      "  The paper's critique reproduces: the restart read scatters across "
      "the writers' logs\n  (locality lost), while iBridge keeps the flat "
      "layout.  Note PLFS's write-side advantage\n  depends on server page "
      "caches absorbing the log appends; with the synchronous servers\n  "
      "modelled here (see EXPERIMENTS.md) that advantage does not "
      "materialize.\n");
  footnote();
  return 0;
}
