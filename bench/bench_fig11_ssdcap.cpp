// Figure 11 — BTIO I/O time as a function of available SSD cache capacity,
// 8 GB down to 0 GB (effectively disk-only).
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig11_ssdcap");
  banner("Figure 11", "BTIO I/O time vs SSD cache capacity");

  // Capacities scale with the accessed data volume so the sweep spans
  // "everything fits" down to "nothing fits", as in the paper's 8 GB -> 0.
  workloads::BtIoConfig cfg;
  cfg.nprocs = 16;
  cfg.time_steps = scale.btio_steps;
  const std::int64_t data = cfg.dump_bytes() * cfg.time_steps;

  stats::Table t({"SSD capacity", "I/O time (s)", "exec time (s)"});
  double io0 = 0.0, exec0 = 0.0;
  for (double frac : {1.2, 0.75, 0.5, 0.25, 0.0}) {
    cluster::ClusterConfig cc;
    if (frac > 0.0) {
      core::IBridgeConfig ib;
      ib.ssd_cache_bytes = std::max<std::int64_t>(
          static_cast<std::int64_t>(static_cast<double>(data) * frac) /
              8,  // per server
          8 << 20);
      cc = cluster::ClusterConfig::with_ibridge(ib);
    } else {
      cc = cluster::ClusterConfig::stock();
    }
    cluster::Cluster c(cc);
    const auto r = run_btio(c, cfg);
    if (frac == 1.2) {
      io0 = r.io_time.to_seconds();
      exec0 = r.elapsed.to_seconds();
    }
    t.add_row({stats::Table::fmt("%.0f%% of data", frac * 100.0),
               stats::Table::fmt("%.3f", r.io_time.to_seconds()),
               stats::Table::fmt("%.2f", r.elapsed.to_seconds())});
    // Built stepwise: the one-expression "cap" + to_string(pct) form trips
    // GCC 12's -Werror=restrict false positive at -O3.
    std::string cap = "cap";
    cap += std::to_string(static_cast<int>(frac * 100.0));
    g.set(cap + ".io_s", r.io_time.to_seconds());
    g.set(cap + ".exec_s", r.elapsed.to_seconds());
    if (frac == 0.0 && io0 > 0) {
      std::printf("  I/O time ratio 0-capacity vs full: %.1fx (paper: 12x); "
                  "exec time ratio: %.1fx (paper: 2.2x)\n",
                  r.io_time.to_seconds() / io0,
                  r.elapsed.to_seconds() / exec0);
    }
  }
  t.print();
  std::printf("  paper: near-linear relation between cached share and I/O "
              "performance\n");
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig11_ssdcap.json\n");
  }
  return 0;
}
