// Table III — single-process replay of the ALEGRA / CTH / S3D traces:
// average request service time, stock vs iBridge.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("table3_replay");
  banner("Table III", "trace replay: average request service time (ms)");

  struct Row {
    workloads::TraceProfile profile;
    double paper_stock, paper_ibridge;
  };
  const Row rows[] = {
      {workloads::alegra_2744_profile(), 16.6, 14.2},
      {workloads::alegra_5832_profile(), 17.2, 14.0},
      {workloads::cth_profile(), 19.4, 14.4},
      {workloads::s3d_profile(), 36.0, 25.3},
  };

  stats::Table t({"Trace", "Stock", "iBridge", "reduction", "paper stock",
                  "paper iBridge"});
  int seed = 10;
  for (const auto& row : rows) {
    workloads::TraceSynthesizer synth(row.profile);
    const auto trace =
        synth.generate(scale.trace_requests, scale.file_bytes, seed++);
    workloads::ReplayConfig rc;
    rc.file_bytes = scale.file_bytes;
    double stock_ms, ib_ms;
    {
      cluster::Cluster c(cluster::ClusterConfig::stock());
      stock_ms = replay_trace(c, trace, rc).avg_request_ms;
    }
    {
      cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
      ib_ms = replay_trace(c, trace, rc).avg_request_ms;
    }
    t.add_row({row.profile.name, stats::Table::fmt("%.1fms", stock_ms),
               stats::Table::fmt("%.1fms", ib_ms),
               stats::Table::fmt("%.1f%%", 100.0 * (1.0 - ib_ms / stock_ms)),
               stats::Table::fmt("%.1fms", row.paper_stock),
               stats::Table::fmt("%.1fms", row.paper_ibridge)});
    std::string key = row.profile.name;
    key += ".";
    g.set(key + "stock_ms", stock_ms);
    g.set(key + "ibridge_ms", ib_ms);
    g.set(key + "reduction_pct", 100.0 * (1.0 - ib_ms / stock_ms));
  }
  t.print();
  std::printf("  paper reductions: 13.9%% / 18.7%% / 25.9%% / 29.8%%; CTH "
              "and S3D gain most\n  (more random/unaligned requests); S3D's "
              "larger requests double its service time\n");
  footnote();
  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_table3_replay.json\n");
  }
  return 0;
}
