// Figure 12 — heterogeneous workloads: mpi-io-test (fragment source, 64
// procs, 65 KB writes) running concurrently with BTIO (regular-random
// source, 64 procs).  Compares: stock (no SSD), static 1:1 and 1:2 SSD
// partitions, and iBridge's dynamic partitioning.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"
#include "mpiio/mpi.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

struct HeteroResult {
  double mpiio_mbps = 0.0;
  double btio_mbps = 0.0;
  double aggregate() const { return mpiio_mbps + btio_mbps; }
};

HeteroResult run_case(const Scale& scale, const cluster::ClusterConfig& cc) {
  cluster::Cluster c(cc);

  workloads::MpiIoTestConfig mcfg;
  mcfg.nprocs = 64;
  mcfg.request_size = 65 * 1024;
  mcfg.write = true;
  mcfg.file_bytes = scale.file_bytes;
  mcfg.access_bytes = scale.access_bytes / 2;
  mcfg.file_name = "mpi-io-test.dat";

  workloads::BtIoConfig bcfg;
  bcfg.nprocs = 64;
  bcfg.time_steps = scale.btio_steps;
  bcfg.compute_ms_per_step = 100.0;  // concurrency study: I/O-heavy
  bcfg.file_name = "btio.dat";

  // Launch both programs on the same cluster concurrently.
  c.restart_daemons();
  auto mfh = c.create_file(mcfg.file_name, mcfg.file_bytes);
  auto bfh = c.create_file(bcfg.file_name,
                           bcfg.dump_bytes() * (bcfg.time_steps + 1));

  HeteroResult out;
  // We reuse the workload drivers' internals by running the two benchmarks
  // as coroutine groups sharing the simulator.
  struct Shared {
    std::int64_t m_bytes = 0, b_bytes = 0;
    sim::SimTime m_done, b_done;
  } sh;

  mpiio::MpiEnvironment menv(c.sim(), c.client(), mcfg.nprocs);
  mpiio::MpiEnvironment benv(c.sim(), c.client(), bcfg.nprocs);
  mpiio::MpiFile mfile(c.client(), mfh);
  mpiio::MpiFile bfile(c.client(), bfh);

  const std::int64_t iters =
      mcfg.access_bytes / (mcfg.nprocs * mcfg.request_size);

  struct MBody {
    static sim::Task<> run(mpiio::MpiContext ctx, mpiio::MpiFile f,
                           std::int64_t iters, std::int64_t req,
                           Shared* sh, sim::Simulator* sim) {
      for (std::int64_t k = 0; k < iters; ++k) {
        const std::int64_t off = (k * ctx.size() + ctx.rank()) * req;
        co_await f.write_at(ctx.rank(), off, req);
        sh->m_bytes += req;
      }
      sh->m_done = sim->now();
    }
  };
  struct BBody {
    static sim::Task<> run(mpiio::MpiContext ctx, mpiio::MpiFile f,
                           workloads::BtIoConfig cfg, Shared* sh,
                           sim::Simulator* sim) {
      const int sq = 8;  // sqrt(64)
      const int cw = cfg.grid / sq;
      const std::int64_t run_bytes = static_cast<std::int64_t>(cw) * 40;
      const std::int64_t row = static_cast<std::int64_t>(cfg.grid) * 40;
      const std::int64_t plane = row * cfg.grid;
      const int pi = ctx.rank() % sq;
      const int pj = ctx.rank() / sq;
      for (int step = 0; step < cfg.time_steps; ++step) {
        co_await ctx.compute(
            sim::SimTime::from_seconds(cfg.compute_ms_per_step / 1e3));
        for (int k = 0; k < cfg.grid; ++k) {
          for (int j = pj * cw; j < (pj + 1) * cw; ++j) {
            const std::int64_t off = step * plane * cfg.grid +
                                     k * plane + j * row +
                                     static_cast<std::int64_t>(pi) * cw * 40;
            co_await f.write_at(ctx.rank(), off, run_bytes);
            sh->b_bytes += run_bytes;
          }
        }
        co_await ctx.barrier();
      }
      sh->b_done = sim->now();
    }
  };

  const sim::SimTime t0 = c.sim().now();
  menv.launch([&](mpiio::MpiContext ctx) {
    return MBody::run(ctx, mfile, iters, mcfg.request_size, &sh, &c.sim());
  });
  benv.launch([&](mpiio::MpiContext ctx) {
    return BBody::run(ctx, bfile, bcfg, &sh, &c.sim());
  });
  c.sim().run_while_pending(
      [&] { return menv.finished() && benv.finished(); });
  c.drain();

  out.mpiio_mbps = static_cast<double>(sh.m_bytes) / 1e6 /
                   (sh.m_done - t0).to_seconds();
  out.btio_mbps = static_cast<double>(sh.b_bytes) / 1e6 /
                  (sh.b_done - t0).to_seconds();
  return out;
}

// Cache sized to a fraction of the per-server working set so the two
// request classes genuinely compete for space — the paper's 8 GB total
// against a 16.8 GB working set, scaled to this bench's data volume.
constexpr std::int64_t kCachePerServer = 24 << 20;

cluster::ClusterConfig static_cfg(double frag_share) {
  core::IBridgeConfig ib;
  ib.partition_mode = core::PartitionMode::kStatic;
  ib.static_fragment_share = frag_share;
  ib.ssd_cache_bytes = kCachePerServer;
  return cluster::ClusterConfig::with_ibridge(ib);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig12_hetero");
  banner("Figure 12",
         "heterogeneous BTIO + mpi-io-test; partitioning policies");

  struct Case {
    const char* label;
    const char* key;  ///< gauge-safe case name
    cluster::ClusterConfig cc;
  };
  core::IBridgeConfig dyn;
  dyn.ssd_cache_bytes = kCachePerServer;
  const Case cases[] = {
      {"stock (no SSD)", "stock", cluster::ClusterConfig::stock()},
      {"static 1:1", "static_1to1", static_cfg(0.5)},
      {"static 1:2", "static_1to2", static_cfg(2.0 / 3.0)},
      {"dynamic (iBridge)", "dynamic",
       cluster::ClusterConfig::with_ibridge(dyn)},
  };

  stats::Table t({"system", "mpi-io-test", "BTIO", "aggregate"});
  double stock_agg = 0.0, dyn_agg = 0.0;
  for (const auto& k : cases) {
    const auto r = run_case(scale, k.cc);
    t.add_row({k.label, stats::Table::fmt("%.1f", r.mpiio_mbps),
               stats::Table::fmt("%.1f", r.btio_mbps),
               stats::Table::fmt("%.1f", r.aggregate())});
    std::string key = k.key;
    g.set(key + ".mpiio_mbps", r.mpiio_mbps);
    g.set(key + ".btio_mbps", r.btio_mbps);
    g.set(key + ".aggregate_mbps", r.aggregate());
    if (std::string(k.label) == "stock (no SSD)") stock_agg = r.aggregate();
    if (std::string(k.label) == "dynamic (iBridge)") dyn_agg = r.aggregate();
  }
  t.print();
  if (stock_agg > 0) {
    std::printf("  dynamic vs stock: %+.0f%% (paper: +53%%, 84 MB/s "
                "aggregate; dynamic beats 1:1 by 13%% and 1:2 by 5%%)\n",
                100.0 * (dyn_agg / stock_agg - 1.0));
    g.set("dynamic_vs_stock_pct", 100.0 * (dyn_agg / stock_agg - 1.0));
  }
  footnote();
  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig12_hetero.json\n");
  }
  return 0;
}
