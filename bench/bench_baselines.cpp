// Baseline comparison beyond the paper's figures: what do the classical
// middleware remedies buy against the same unaligned workload, and how does
// iBridge compare?
//
//   independent stock      — the paper's baseline (fragments hit the disks)
//   data sieving           — reads widened to stripe boundaries (wasted
//                            transfer buys alignment)
//   two-phase collective   — aggregation + shuffle (needs synchronized
//                            phases across all ranks)
//   independent + iBridge  — the paper's contribution (transparent)
//
// This operationalizes the paper's related-work discussion: collective I/O
// and sieving only apply when the program can use them; iBridge fixes the
// server side for any access pattern.
#include "bench/bench_common.hpp"
#include "mpiio/collective.hpp"
#include "mpiio/mpi.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

constexpr std::int64_t kReq = 65 * 1024;
constexpr int kProcs = 64;

sim::Task<> independent_rank(mpiio::MpiContext ctx, mpiio::MpiFile file,
                             std::int64_t iters, bool write) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off =
        (k * ctx.size() + ctx.rank()) * kReq;
    if (write) {
      co_await file.write_at(ctx.rank(), off, kReq);
    } else {
      co_await file.read_at(ctx.rank(), off, kReq);
    }
  }
}

sim::Task<> sieved_rank(mpiio::MpiContext ctx, mpiio::MpiFile file,
                        std::int64_t iters) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off = (k * ctx.size() + ctx.rank()) * kReq;
    co_await read_at_sieved(file, ctx.rank(), off, kReq, 64 * 1024);
  }
}

sim::Task<> collective_rank(mpiio::MpiContext ctx,
                            mpiio::CollectiveContext* coll,
                            std::int64_t iters, bool write) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off = (k * ctx.size() + ctx.rank()) * kReq;
    if (write) {
      co_await coll->write_at_all(ctx.rank(), off, kReq);
    } else {
      co_await coll->read_at_all(ctx.rank(), off, kReq);
    }
  }
}

enum class Mode { kIndependent, kSieved, kCollective };

double run_case(const Scale& scale, const cluster::ClusterConfig& cc,
                Mode mode, bool write) {
  cluster::Cluster c(cc);
  auto fh = c.create_file("f", scale.file_bytes);
  mpiio::MpiFile file(c.client(), fh);
  const std::int64_t iters =
      std::max<std::int64_t>(1, scale.access_bytes / 2 / (kProcs * kReq));

  mpiio::MpiEnvironment env(c.sim(), c.client(), kProcs);
  mpiio::CollectiveContext coll(env, file);
  const sim::SimTime t0 = c.sim().now();
  env.launch([&](mpiio::MpiContext ctx) -> sim::Task<> {
    switch (mode) {
      case Mode::kSieved:
        return sieved_rank(ctx, file, iters);
      case Mode::kCollective:
        return collective_rank(ctx, &coll, iters, write);
      case Mode::kIndependent:
      default:
        return independent_rank(ctx, file, iters, write);
    }
  });
  c.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime flushed = c.drain();
  const double bytes =
      static_cast<double>(iters) * kProcs * kReq;  // payload delivered
  return bytes / 1e6 / (flushed - t0).to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Baselines", "65 KB unaligned access: middleware remedies vs iBridge");

  stats::Table t({"approach", "write MB/s", "read MB/s", "notes"});
  const auto stock = cluster::ClusterConfig::stock();
  const auto ib = cluster::ClusterConfig::with_ibridge();

  t.add_row({"independent, stock",
             stats::Table::fmt("%.1f",
                               run_case(scale, stock, Mode::kIndependent, true)),
             stats::Table::fmt(
                 "%.1f", run_case(scale, stock, Mode::kIndependent, false)),
             "fragments hit the disks"});
  t.add_row({"data sieving, stock", "n/a",
             stats::Table::fmt("%.1f",
                               run_case(scale, stock, Mode::kSieved, false)),
             "reads widened to 64 KB bounds"});
  t.add_row({"two-phase collective, stock",
             stats::Table::fmt("%.1f",
                               run_case(scale, stock, Mode::kCollective, true)),
             stats::Table::fmt(
                 "%.1f", run_case(scale, stock, Mode::kCollective, false)),
             "needs synchronized phases"});
  t.add_row({"independent, iBridge",
             stats::Table::fmt("%.1f",
                               run_case(scale, ib, Mode::kIndependent, true)),
             stats::Table::fmt(
                 "%.1f", run_case(scale, ib, Mode::kIndependent, false)),
             "transparent (the paper)"});
  t.print();
  std::printf("  collective I/O removes fragments by aggregation when the "
              "program can synchronize;\n  iBridge removes their cost "
              "without touching the program\n");
  footnote();
  return 0;
}
