// Fault-scenario gauge: the same SimCheck-generated workload population
// replayed on iBridge clusters under three conditions — healthy, GC
// interference (churn-triggered pauses + per-read latency variability),
// and a data-server crash/restart mid-write-back — reporting mean
// ns/request and the straggler p99 for each column.  Every injected delay
// and crash instant derives from the case seed, so the "model" section is
// deterministic and tracked by bench/baselines/ + scripts/bench-diff.
//
// Cases are independent (fresh cluster + fault engine per case), so
// --jobs N fans them over an exp::Runner pool; aggregation commits in
// submission order and the gauge is identical at every N.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "check/generator.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"
#include "fault/engine.hpp"
#include "sim/task.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

constexpr std::uint64_t kSeed0 = 0xbe9cfa17ULL;
constexpr fault::Scenario kScenarios[] = {fault::Scenario::kHealthy,
                                          fault::Scenario::kGcInterference,
                                          fault::Scenario::kCrashRestart};

struct CaseOut {
  std::vector<std::int64_t> lat_ns;
  std::int64_t bytes = 0;
  fault::FaultEngine::Stats fstats;
  std::string failure;
};

sim::Task<> drive(cluster::Cluster& cl, const check::FuzzCase& c,
                  pvfs::FileHandle fh, CaseOut& o, bool& done) {
  std::vector<std::byte> buf;
  for (std::size_t i = 0; i < c.trace.size(); ++i) {
    const auto& rec = c.trace[i];
    const std::int64_t size = std::min(rec.size, c.file_bytes);
    const std::int64_t off =
        std::clamp<std::int64_t>(rec.offset, 0, c.file_bytes - size);
    buf.assign(static_cast<std::size_t>(size), std::byte{0});
    const sim::SimTime t0 = cl.sim().now();
    if (rec.write) {
      check::fill_payload(buf, check::record_seed(c.seed, i));
      co_await cl.client().write_at(0, fh, off, size, buf);
    } else {
      co_await cl.client().read_at(0, fh, off, size, buf);
    }
    o.lat_ns.push_back((cl.sim().now() - t0).ns());
    o.bytes += size;
  }
  done = true;
}

CaseOut run_one(std::uint64_t seed, fault::Scenario scen) {
  CaseOut o;
  check::FuzzCase c = check::generate_case(seed);
  c.faults = fault::make_scenario(scen, c.base.data_servers, seed,
                                  sim::SimTime::millis(40));

  cluster::Cluster cl(check::make_config(c, check::Policy::kIBridge));
  cl.restart_daemons();
  const pvfs::FileHandle fh = cl.create_file("bench-faults.dat", c.file_bytes);

  std::unique_ptr<fault::FaultEngine> engine;
  if (!c.faults.empty()) {
    engine = std::make_unique<fault::FaultEngine>(cl, c.faults);
    engine->start();
  }

  bool done = false;
  auto io = drive(cl, c, fh, o, done);
  io.start();
  cl.sim().run_while_pending([&] { return done; });
  if (engine != nullptr) {
    cl.sim().run_while_pending([&] { return engine->done(); });
    o.fstats = engine->stats();
    o.failure = engine->failure();
  }
  cl.drain();
  return o;
}

double p99_ns(std::vector<std::int64_t> lat) {
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  const std::size_t idx =
      std::min(lat.size() - 1, lat.size() * 99 / 100);
  return static_cast<double>(lat[idx]);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  const int cases = scale.trace_requests >= 20'000 ? 24 : 6;
  const int scenarios = static_cast<int>(std::size(kScenarios));

  banner("Faults",
         "healthy vs GC-interference vs crash/restart on one workload "
         "population");

  exp::Stopwatch sw;
  exp::Runner runner(scale.jobs);
  // Same case seeds for every scenario, so the columns differ only in the
  // injected faults.
  const auto outs = runner.map<CaseOut>(scenarios * cases, [&](int i) {
    const auto scen = kScenarios[static_cast<std::size_t>(i / cases)];
    return run_one(kSeed0 + static_cast<std::uint64_t>(i % cases), scen);
  });

  exp::Gauge g("faults");
  stats::Table t({"scenario", "ns/request", "p99 (us)", "vs healthy",
                  "gc pauses", "crashes"});
  double healthy_mean = 0.0;
  int failures = 0;
  std::uint64_t requests = 0;
  for (int s = 0; s < scenarios; ++s) {
    std::vector<std::int64_t> lat;
    fault::FaultEngine::Stats fs;
    for (int k = 0; k < cases; ++k) {
      const CaseOut& o = outs[static_cast<std::size_t>(s * cases + k)];
      if (!o.failure.empty()) {
        std::printf("  case %d FAILED: %s\n", k, o.failure.c_str());
        ++failures;
      }
      lat.insert(lat.end(), o.lat_ns.begin(), o.lat_ns.end());
      fs.crashes += o.fstats.crashes;
      fs.recoveries += o.fstats.recoveries;
      fs.degraded_flushes += o.fstats.degraded_flushes;
      fs.gc_pauses += o.fstats.gc_pauses;
      fs.slow_reads += o.fstats.slow_reads;
    }
    std::int64_t total = 0;
    for (std::int64_t v : lat) total += v;
    const double mean =
        lat.empty() ? 0.0
                    : static_cast<double>(total) /
                          static_cast<double>(lat.size());
    const double p99 = p99_ns(lat);
    if (s == 0) healthy_mean = mean;
    const char* name = fault::to_string(kScenarios[static_cast<std::size_t>(s)]);
    requests += lat.size();

    t.add_row({name, stats::Table::fmt("%.0f", mean),
               stats::Table::fmt("%.1f", p99 / 1000.0),
               stats::Table::fmt("%.2fx",
                                 healthy_mean > 0 ? mean / healthy_mean : 0.0),
               std::to_string(fs.gc_pauses), std::to_string(fs.crashes)});
    const std::string prefix = name;
    g.set(prefix + ".ns_per_req", mean);
    g.set(prefix + ".p99_ns", p99);
    if (fs.gc_pauses > 0) {
      g.set(prefix + ".gc_pauses", static_cast<double>(fs.gc_pauses));
      g.set(prefix + ".slow_reads", static_cast<double>(fs.slow_reads));
    }
    if (fs.crashes > 0) {
      g.set(prefix + ".crashes", static_cast<double>(fs.crashes));
      g.set(prefix + ".recoveries", static_cast<double>(fs.recoveries));
      g.set(prefix + ".degraded_flushes",
            static_cast<double>(fs.degraded_flushes));
    }
  }
  t.print();
  std::printf("    %d cases/scenario, %llu requests total; every injected "
              "pause and crash derives from the case seed\n",
              cases, static_cast<unsigned long long>(requests));
  footnote();

  g.set("cases", cases);
  g.set("failures", failures);
  g.set("requests", static_cast<double>(requests));
  g.set_wall("seconds", sw.seconds());
  g.set_wall("jobs", scale.jobs);
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_faults.json\n");
  }
  return failures == 0 ? 0 : 1;
}
