// Figure 13 — effect of the request-size threshold: mpi-io-test, 64 procs,
// 65 KB requests; threshold swept 10-40 KB.  Reports throughput normalized
// to aligned 64 KB access and SSD usage normalized to the accessed data.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig13_threshold");
  banner("Figure 13", "request-size threshold sweep (65 KB writes)");

  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = 65 * 1024;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = true;

  // Aligned reference for normalization.
  double aligned_mbps;
  {
    cluster::Cluster c(cluster::ClusterConfig::stock());
    auto acfg = cfg;
    acfg.request_size = 64 * 1024;
    aligned_mbps = mbps_total(run_mpi_io_test(c, acfg));
  }
  g.set("aligned_mbps", aligned_mbps);

  stats::Table t({"threshold", "throughput", "normalized", "SSD usage",
                  "SSD usage / data"});
  for (std::int64_t kb : {10, 20, 30, 40}) {
    core::IBridgeConfig ib;
    ib.fragment_threshold = kb * 1024;
    ib.random_threshold = kb * 1024;
    cluster::Cluster c(cluster::ClusterConfig::with_ibridge(ib));
    const auto r = run_mpi_io_test(c, cfg);
    const double mbps = mbps_total(r);
    const double ssd_used = static_cast<double>(c.ssd_bytes_served().count());
    t.add_row({std::to_string(kb) + " KB", stats::Table::fmt("%.1f", mbps),
               stats::Table::fmt("%.2f", mbps / aligned_mbps),
               stats::Table::fmt("%.0f MB", ssd_used / 1e6),
               stats::Table::fmt("%.0f%%", 100.0 * ssd_used /
                                               static_cast<double>(r.bytes))});
    std::string key = std::to_string(kb);
    key += "KB.";
    g.set(key + "mbps", mbps);
    g.set(key + "normalized", mbps / aligned_mbps);
    g.set(key + "ssd_used_mb", ssd_used / 1e6);
    g.set(key + "ssd_share_pct",
          100.0 * ssd_used / static_cast<double>(r.bytes));
  }
  t.print();
  std::printf("  paper: throughput rises with the threshold (+56%% at 40 KB "
              "vs 10 KB) while SSD usage\n  grows 3%% -> 42%% of accessed "
              "data; 20 KB balances performance and SSD longevity\n");
  footnote();
  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_fig13_threshold.json\n");
  }
  return 0;
}
