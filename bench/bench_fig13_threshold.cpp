// Figure 13 — effect of the request-size threshold: mpi-io-test, 64 procs,
// 65 KB requests; threshold swept 10-40 KB.  Reports throughput normalized
// to aligned 64 KB access and SSD usage normalized to the accessed data.
#include "bench/bench_common.hpp"

using namespace ibridge;
using namespace ibridge::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Figure 13", "request-size threshold sweep (65 KB writes)");

  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = 65 * 1024;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = true;

  // Aligned reference for normalization.
  double aligned_mbps;
  {
    cluster::Cluster c(cluster::ClusterConfig::stock());
    auto acfg = cfg;
    acfg.request_size = 64 * 1024;
    aligned_mbps = mbps_total(run_mpi_io_test(c, acfg));
  }

  stats::Table t({"threshold", "throughput", "normalized", "SSD usage",
                  "SSD usage / data"});
  for (std::int64_t kb : {10, 20, 30, 40}) {
    core::IBridgeConfig ib;
    ib.fragment_threshold = kb * 1024;
    ib.random_threshold = kb * 1024;
    cluster::Cluster c(cluster::ClusterConfig::with_ibridge(ib));
    const auto r = run_mpi_io_test(c, cfg);
    const double mbps = mbps_total(r);
    const double ssd_used = static_cast<double>(c.ssd_bytes_served().count());
    t.add_row({std::to_string(kb) + " KB", stats::Table::fmt("%.1f", mbps),
               stats::Table::fmt("%.2f", mbps / aligned_mbps),
               stats::Table::fmt("%.0f MB", ssd_used / 1e6),
               stats::Table::fmt("%.0f%%", 100.0 * ssd_used /
                                               static_cast<double>(r.bytes))});
  }
  t.print();
  std::printf("  paper: throughput rises with the threshold (+56%% at 40 KB "
              "vs 10 KB) while SSD usage\n  grows 3%% -> 42%% of accessed "
              "data; 20 KB balances performance and SSD longevity\n");
  footnote();
  return 0;
}
