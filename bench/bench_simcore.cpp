// bench_simcore — event-engine hot-path microbenchmark.
//
// Measures ns/event and allocs/event for the production engine
// (sim::Simulator: sim::InlineEvent callbacks + 4-ary implicit heap) against
// a frozen in-binary replica of the pre-optimization engine
// (std::function<void()> callbacks + std::push_heap/pop_heap binary heap).
// Allocations are counted by replacing global operator new in this binary.
//
// The workload is a fan of self-rescheduling event chains whose lambdas
// capture 32 bytes — more than libstdc++'s 16-byte std::function SBO (so the
// baseline heap-allocates every event) and within InlineEvent's 48-byte
// buffer (so the production engine allocates nothing per event).
//
//   bench_simcore [--events N] [--chains N] [--reps N] [--check]
//
// --check exits 1 unless the production engine shows >= 25% ns/event and
// >= 90% allocs/event reduction (the CI bench-gauge job runs this).  Emits
// BENCH_simcore.json.
//
// A second section exercises the sharded parallel core (sim::ShardGroup):
// the same event volume spread over 4 shards with cross-shard mailbox
// traffic, drained by 1 worker vs 4 workers.  The per-run checksum folds
// every chain's (shard, time, accumulator) history in drain order, so the
// worker counts must produce bit-identical checksums (enforced under
// --check always) and the 4-worker run must be >= 1.8x faster (enforced
// only when the machine has >= 4 hardware threads — wall-clock speedup is
// meaningless on fewer cores).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <thread>

#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

// ------------------------------------------------- allocation counting ----
// Counts every plain global operator new in the process.  Measured regions
// snapshot the counter before/after, so unrelated allocations (stdio, gauge
// output) never pollute the per-event numbers.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using ibridge::sim::SimTime;

// ------------------------------------------------------ frozen baseline ----
// Byte-for-byte the pre-optimization sim::Simulator: type-erased callbacks in
// std::function and a binary max-heap via the standard heap algorithms.  Kept
// here (not in src/sim/) so the comparison target cannot drift as the
// production engine evolves.

class FnSimulator {
 public:
  // lint: callback-ok (this IS the frozen std::function baseline under test)
  using Callback = std::function<void()>;

  FnSimulator() = default;
  FnSimulator(const FnSimulator&) = delete;
  FnSimulator& operator=(const FnSimulator&) = delete;

  SimTime now() const { return now_; }

  void schedule(SimTime delay, Callback fn) {
    heap_.push_back(Event{now_ + delay, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    ev.fn();
    ++executed_;
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// --------------------------------------------------------------- workload ----

volatile std::uint64_t g_sink = 0;

/// One link of a self-rescheduling chain.  The lambda captures 32 bytes:
/// engine reference + id + remaining + acc.
template <class Engine>
void chain(Engine& eng, std::uint64_t id, std::uint64_t remaining,
           std::uint64_t acc) {
  if (remaining == 0) {
    g_sink = g_sink + acc;
    return;
  }
  auto fn = [&eng, id, remaining, acc] {
    chain(eng, id, remaining - 1, acc * 6364136223846793005ULL + id);
  };
  static_assert(sizeof(fn) == 32);
  if constexpr (std::is_same_v<Engine, ibridge::sim::Simulator>) {
    static_assert(ibridge::sim::InlineEvent::stored_inline<decltype(fn)>(),
                  "workload closure must fit InlineEvent's inline buffer");
  }
  eng.schedule(SimTime::nanos(static_cast<std::int64_t>(1 + (acc & 7))),
               std::move(fn));
}

struct Measurement {
  double ns_per_event = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
};

template <class Engine>
Measurement measure(std::int64_t total_events, int chains, int reps) {
  const auto per_chain = static_cast<std::uint64_t>(total_events / chains);
  Measurement m;
  double best_s = 0;
  // Rep 0 warms caches and the allocator; timing keeps the minimum of the
  // remaining reps (least-noise estimator for a deterministic workload).
  for (int rep = 0; rep <= reps; ++rep) {
    Engine eng;
    if constexpr (requires { eng.reserve(std::size_t{0}); }) {
      eng.reserve(static_cast<std::size_t>(chains) + 16);
    }
    const std::uint64_t a0 = g_new_calls.load(std::memory_order_relaxed);
    ibridge::exp::Stopwatch sw;
    for (int c = 0; c < chains; ++c) {
      chain(eng, static_cast<std::uint64_t>(c), per_chain,
            0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(c));
    }
    eng.run();
    const double s = sw.seconds();
    const std::uint64_t a1 = g_new_calls.load(std::memory_order_relaxed);
    m.events = eng.events_executed();
    if (rep == 0) {
      m.allocs_per_event =
          static_cast<double>(a1 - a0) / static_cast<double>(m.events);
      best_s = s;
    } else if (s < best_s) {
      best_s = s;
    }
  }
  m.ns_per_event = best_s * 1e9 / static_cast<double>(m.events);
  return m;
}

// ------------------------------------------------ parallel shard section ----

/// Self-rescheduling chains on a sim::ShardGroup: links are shard-local
/// (1-8 ns apart) except every 8th, which crosses to the next shard through
/// the mailbox/barrier path.  The 1 us lookahead makes windows thousands of
/// events wide, so the barrier cost is amortized — the big-run shape the
/// parallel core is built for.  Terminal links fold into a per-shard cell
/// in drain order; the mixed checksum therefore depends on every link's
/// (shard, time, accumulator) history and catches any schedule divergence.
struct ParWorkload {
  ibridge::sim::ShardGroup* group = nullptr;
  std::vector<std::uint64_t> cells;  // one per shard, touched shard-locally

  void link(int s, std::uint64_t id, std::uint64_t remaining,
            std::uint64_t acc) {
    ibridge::sim::Simulator& sim = group->shard(s);
    acc = acc * 6364136223846793005ULL + id +
          static_cast<std::uint64_t>(sim.now().ns());
    if (remaining == 0) {
      std::uint64_t& cell = cells[static_cast<std::size_t>(s)];
      cell = cell * 0x100000001b3ULL ^ acc;
      return;
    }
    if ((remaining & 7) == 0) {
      const int dst = (s + 1) % group->shards();
      group->post(sim, group->shard(dst),
                  sim.now() + group->lookahead() +
                      ibridge::sim::SimTime::nanos(
                          static_cast<std::int64_t>(acc & 63)),
                  ibridge::sim::InlineEvent([this, dst, id, remaining, acc] {
                    link(dst, id, remaining - 1, acc);
                  }));
      return;
    }
    sim.schedule(
        SimTime::nanos(static_cast<std::int64_t>(1 + (acc & 7))),
        ibridge::sim::InlineEvent([this, s, id, remaining, acc] {
          link(s, id, remaining - 1, acc);
        }));
  }
};

struct ParResult {
  double secs = 0;
  std::uint64_t checksum = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t posts = 0;
};

/// One sharded run: `shards` logical shards drained by `workers` threads.
/// The schedule — and so checksum/events/windows/posts — must not depend
/// on `workers`; only `secs` may.
ParResult measure_par(int shards, int workers, std::int64_t total_events,
                      int reps) {
  constexpr int kChainsPerShard = 64;
  const auto links = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, total_events / (shards * kChainsPerShard)));
  ParResult r;
  double best_s = 0;
  for (int rep = 0; rep <= reps; ++rep) {
    ibridge::sim::ShardGroup group(shards, SimTime::micros(1), workers);
    ParWorkload w;
    w.group = &group;
    w.cells.assign(static_cast<std::size_t>(shards), 0);
    for (int s = 0; s < shards; ++s) {
      group.shard(s).reserve(kChainsPerShard + 64);
      for (int c = 0; c < kChainsPerShard; ++c) {
        const auto id = static_cast<std::uint64_t>(s * kChainsPerShard + c);
        group.shard(s).schedule_at(
            SimTime::nanos(static_cast<std::int64_t>(1 + id % 97)),
            ibridge::sim::InlineEvent([&w, s, id, links] {
              w.link(s, id, links, 0x9E3779B97F4A7C15ULL ^ id);
            }));
      }
    }
    ibridge::exp::Stopwatch sw;
    group.run_all();
    const double s = sw.seconds();
    std::uint64_t cs = 0;
    for (std::size_t i = 0; i < w.cells.size(); ++i) {
      cs = cs * 0x9E3779B97F4A7C15ULL ^ (w.cells[i] + i);
    }
    if (rep == 0) {
      r.checksum = cs;
      r.events = group.events_executed();
      r.windows = group.windows_run();
      r.posts = group.posts_delivered();
      best_s = s;
    } else {
      if (cs != r.checksum) {
        std::fprintf(stderr,
                     "bench_simcore: nondeterministic parallel rep "
                     "(workers=%d)\n",
                     workers);
        std::exit(1);
      }
      if (s < best_s) best_s = s;
    }
  }
  r.secs = best_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using ibridge::exp::require_int;
  std::int64_t events = 1'000'000;
  int chains = 256;
  int reps = 3;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_simcore: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--events") {
      events = require_int("bench_simcore", "--events", next(), 1000,
                           1'000'000'000);
    } else if (a == "--chains") {
      chains = static_cast<int>(
          require_int("bench_simcore", "--chains", next(), 1, 65536));
    } else if (a == "--reps") {
      reps = static_cast<int>(
          require_int("bench_simcore", "--reps", next(), 1, 100));
    } else if (a == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_simcore [--events N] [--chains N] [--reps N] "
                   "[--check]\n");
      return 2;
    }
  }
  if (events < chains) chains = static_cast<int>(events);

  const Measurement fn = measure<FnSimulator>(events, chains, reps);
  const Measurement inl = measure<ibridge::sim::Simulator>(events, chains,
                                                           reps);

  const double ns_red =
      (fn.ns_per_event - inl.ns_per_event) / fn.ns_per_event * 100.0;
  const double alloc_red = fn.allocs_per_event <= 0.0
                               ? 0.0
                               : (fn.allocs_per_event - inl.allocs_per_event) /
                                     fn.allocs_per_event * 100.0;

  std::printf("sim-core event engine, %llu events x %d chains\n",
              static_cast<unsigned long long>(fn.events), chains);
  std::printf("  %-34s %8.1f ns/event  %6.3f allocs/event\n",
              "std::function + binary heap", fn.ns_per_event,
              fn.allocs_per_event);
  std::printf("  %-34s %8.1f ns/event  %6.3f allocs/event\n",
              "InlineEvent + 4-ary heap", inl.ns_per_event,
              inl.allocs_per_event);
  std::printf("  reduction: %.1f%% ns/event, %.1f%% allocs/event\n", ns_red,
              alloc_red);

  // ---- sharded parallel core: 4 shards, 1 worker vs 4 workers ----------
  constexpr int kParShards = 4;
  const ParResult p1 = measure_par(kParShards, 1, events, reps);
  const ParResult p4 = measure_par(kParShards, 4, events, reps);
  const bool par_match = p1.checksum == p4.checksum &&
                         p1.events == p4.events &&
                         p1.windows == p4.windows && p1.posts == p4.posts;
  const double speedup = p4.secs > 0 ? p1.secs / p4.secs : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("sharded parallel core, %d shards, %llu events, %llu windows, "
              "%llu cross-shard posts\n",
              kParShards, static_cast<unsigned long long>(p1.events),
              static_cast<unsigned long long>(p1.windows),
              static_cast<unsigned long long>(p1.posts));
  std::printf("  %-34s %8.3f s\n", "1 worker", p1.secs);
  std::printf("  %-34s %8.3f s\n", "4 workers", p4.secs);
  std::printf("  speedup: %.2fx (%u hardware threads), checksum %s\n",
              speedup, hw, par_match ? "MATCH" : "MISMATCH");

  ibridge::exp::Gauge g("simcore");
  g.set("events", static_cast<double>(fn.events));
  g.set("chains", chains);
  g.set("allocs_per_event.fn", fn.allocs_per_event);
  g.set("allocs_per_event.inline", inl.allocs_per_event);
  g.set("alloc_reduction_pct", alloc_red);
  g.set("par.shards", kParShards);
  g.set("par.events", static_cast<double>(p1.events));
  g.set("par.windows", static_cast<double>(p1.windows));
  g.set("par.posts", static_cast<double>(p1.posts));
  g.set("par.checksum_match", par_match ? 1.0 : 0.0);
  g.set_wall("ns_per_event.fn", fn.ns_per_event);
  g.set_wall("ns_per_event.inline", inl.ns_per_event);
  g.set_wall("ns_reduction_pct", ns_red);
  g.set_wall("par.secs.workers1", p1.secs);
  g.set_wall("par.secs.workers4", p4.secs);
  g.set_wall("par.speedup", speedup);
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_simcore.json\n");
  }

  if (check && (ns_red < 25.0 || alloc_red < 90.0)) {
    std::fprintf(stderr,
                 "bench_simcore: FAIL --check thresholds (need >=25%% ns, "
                 ">=90%% allocs; got %.1f%%, %.1f%%)\n",
                 ns_red, alloc_red);
    return 1;
  }
  if (check && !par_match) {
    std::fprintf(stderr,
                 "bench_simcore: FAIL parallel determinism (1-worker vs "
                 "4-worker schedules diverged)\n");
    return 1;
  }
  // The wall-clock gate needs real parallel hardware; the determinism gate
  // above runs everywhere.
  if (check && hw >= 4 && speedup < 1.8) {
    std::fprintf(stderr,
                 "bench_simcore: FAIL parallel speedup (need >=1.8x at 4 "
                 "workers, got %.2fx)\n",
                 speedup);
    return 1;
  }
  return 0;
}
