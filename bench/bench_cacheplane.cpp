// bench_cacheplane — cache data-plane microbenchmark.
//
// Measures ns/serve and allocs/serve for the production data plane
// (slab MappingTable with intrusive LRU/dirty lists, pooled coroutine
// frames, live-bytes-indexed SsdLog, *_into lookups into reused scratch)
// against frozen in-binary replicas of the pre-optimization plane
// (std::list LRU + unordered_map nodes, vector-returning lookups, global
// operator new coroutine frames, O(n) victim scan).  Allocations are
// counted by replacing global operator new in this binary.
//
// Both engines run the byte-identical serve mix — coverage+touch on every
// serve, invalidate+append+insert on every 4th, a dirty-batch sweep on
// every 8th, a victim-segment probe on every 16th — and fold every result
// (slice lengths, log offsets, batch sizes, victim ids) into a checksum
// that must agree between them, so the speedup is measured against a
// behaviorally equivalent baseline, not a strawman.
//
//   bench_cacheplane [--serves N] [--entries N] [--files N] [--reps N]
//                    [--check]
//
// --check exits 1 unless the production plane shows >= 25% ns/serve and
// >= 90% allocs/serve reduction (the CI bench-gauge job runs this).  Emits
// BENCH_cacheplane.json.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <list>
#include <map>
#include <new>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mapping_table.hpp"
#include "core/ssd_log.hpp"
#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

// ------------------------------------------------- allocation counting ----
// Counts every plain global operator new in the process.  Measured regions
// snapshot the counter before/after, so unrelated allocations (stdio, gauge
// output) never pollute the per-serve numbers.  The frame pool and the
// table arenas grab their chunks through this same operator new, so pool
// warm-up is visible in rep 0 and steady-state reuse shows up as ~0.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// noinline keeps GCC from folding these bodies into container code and
// then warning that the malloc/free pair mismatches the new it inlined.
__attribute__((noinline)) void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t n) {
  return ::operator new(n);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace {

using ibridge::core::CacheClass;
using ibridge::core::CacheEntry;
using ibridge::core::EntryId;
using ibridge::core::kNumClasses;
using ibridge::core::LogSlice;
using ibridge::sim::Bytes;
using ibridge::sim::Offset;

// ------------------------------------------------------ frozen baseline ----
// Byte-for-byte the pre-optimization MappingTable / SsdLog / Task<void>.
// Kept here (not in src/) so the comparison target cannot drift as the
// production plane evolves.  Members carry an old_ prefix so the names the
// linter registers as unordered never collide with production members.

class LegacyTable {
 public:
  EntryId insert(CacheEntry e) {
    assert(e.length > Bytes::zero());
    assert(overlapping(e.file, e.file_off, e.length).empty() &&
           "insert over existing cached range");
    const EntryId id = next_id_++;
    auto& lru = old_lru_[idx(e.klass)];
    lru.push_back(id);
    Node node{e, std::prev(lru.end())};
    account_add(e);
    index_insert(id, e);
    old_entries_.emplace(id, std::move(node));
    return id;
  }

  CacheEntry erase(EntryId id) {
    auto it = old_entries_.find(id);
    assert(it != old_entries_.end());
    CacheEntry e = it->second.entry;
    old_lru_[idx(e.klass)].erase(it->second.lru_it);
    account_remove(e);
    index_erase(id, e);
    old_entries_.erase(it);
    return e;
  }

  void mark_clean(EntryId id) {
    auto it = old_entries_.find(id);
    assert(it != old_entries_.end());
    if (it->second.entry.dirty) {
      it->second.entry.dirty = false;
      dirty_bytes_ -= it->second.entry.length;
    }
  }

  void mark_dirty(EntryId id) {
    auto it = old_entries_.find(id);
    assert(it != old_entries_.end());
    if (!it->second.entry.dirty) {
      it->second.entry.dirty = true;
      dirty_bytes_ += it->second.entry.length;
    }
  }

  void touch(EntryId id) {
    auto it = old_entries_.find(id);
    assert(it != old_entries_.end());
    auto& lru = old_lru_[idx(it->second.entry.klass)];
    lru.splice(lru.end(), lru, it->second.lru_it);
    it->second.lru_it = std::prev(lru.end());
  }

  std::vector<LogSlice> coverage(ibridge::fsim::FileId file, Offset off,
                                 Bytes len) const {
    std::vector<LogSlice> out;
    auto fit = old_by_file_.find(file);
    if (fit == old_by_file_.end()) return out;
    const auto& index = fit->second;
    const Offset end = off + len;
    Offset pos = off;
    auto it = index.upper_bound(pos);
    if (it == index.begin()) return {};
    --it;
    while (pos < end) {
      const CacheEntry& e = old_entries_.at(it->second).entry;
      if (pos < e.file_off || pos >= e.file_end()) return {};  // gap
      const Bytes take = std::min(end, e.file_end()) - pos;
      out.push_back({it->second, pos, e.log_off + (pos - e.file_off), take});
      pos += take;
      if (pos >= end) break;
      ++it;
      if (it == index.end()) return {};  // ran out of entries
    }
    return out;
  }

  std::vector<EntryId> overlapping(ibridge::fsim::FileId file, Offset off,
                                   Bytes len) const {
    std::vector<EntryId> out;
    auto fit = old_by_file_.find(file);
    if (fit == old_by_file_.end()) return out;
    const auto& index = fit->second;
    const Offset end = off + len;
    auto it = index.upper_bound(off);
    if (it != index.begin()) {
      auto prev = std::prev(it);
      const CacheEntry& e = old_entries_.at(prev->second).entry;
      if (e.file_end() > off) out.push_back(prev->second);
    }
    for (; it != index.end() && it->first < end; ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  void trim(EntryId id, Offset off, Bytes len,
            std::vector<std::pair<Offset, Bytes>>& freed) {
    auto it = old_entries_.find(id);
    assert(it != old_entries_.end());
    const CacheEntry e = it->second.entry;
    const Offset cut_lo = std::max(off, e.file_off);
    const Offset cut_hi = std::min(off + len, e.file_end());
    if (cut_lo >= cut_hi) return;  // no intersection
    freed.emplace_back(e.log_off + (cut_lo - e.file_off), cut_hi - cut_lo);
    erase(id);
    if (cut_lo > e.file_off) {  // left remainder
      CacheEntry left = e;
      left.length = cut_lo - e.file_off;
      insert(left);
    }
    if (cut_hi < e.file_end()) {  // right remainder
      CacheEntry right = e;
      right.file_off = cut_hi;
      right.log_off = e.log_off + (cut_hi - e.file_off);
      right.length = e.file_end() - cut_hi;
      insert(right);
    }
  }

  std::vector<EntryId> dirty_entries(Bytes max_bytes) const {
    std::vector<EntryId> out;
    Bytes budget = max_bytes;
    std::vector<ibridge::fsim::FileId> files;
    files.reserve(old_by_file_.size());
    // lint: unordered-iteration-ok (keys are collected and sorted before use)
    for (const auto& [fid, _] : old_by_file_) files.push_back(fid);
    std::sort(files.begin(), files.end());
    for (ibridge::fsim::FileId fid : files) {
      for (const auto& [off, id] : old_by_file_.at(fid)) {
        const CacheEntry& e = old_entries_.at(id).entry;
        if (!e.dirty) continue;
        if (budget - e.length < Bytes::zero() && !out.empty()) return out;
        out.push_back(id);
        budget -= e.length;
        if (budget <= Bytes::zero()) return out;
      }
    }
    return out;
  }

  std::vector<EntryId> entries_in_log_range(Offset log_begin,
                                            Offset log_end) const {
    std::vector<EntryId> out;
    auto it = old_by_log_.upper_bound(log_begin);
    if (it != old_by_log_.begin()) {
      auto prev = std::prev(it);
      const CacheEntry& e = old_entries_.at(prev->second).entry;
      if (e.log_off + e.length > log_begin) out.push_back(prev->second);
    }
    for (; it != old_by_log_.end() && it->first < log_end; ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  std::size_t entry_count() const { return old_entries_.size(); }
  Bytes dirty_bytes() const { return dirty_bytes_; }

 private:
  static int idx(CacheClass c) { return static_cast<int>(c); }

  struct Node {
    CacheEntry entry;
    std::list<EntryId>::iterator lru_it;
  };

  void index_insert(EntryId id, const CacheEntry& e) {
    auto [it, inserted] = old_by_file_[e.file].emplace(e.file_off, id);
    (void)it;
    assert(inserted && "two entries with identical start offset");
    auto [lit, linserted] = old_by_log_.emplace(e.log_off, id);
    (void)lit;
    assert(linserted && "two entries with identical log offset");
  }

  void index_erase(EntryId id, const CacheEntry& e) {
    auto log_it = old_by_log_.find(e.log_off);
    assert(log_it != old_by_log_.end() && log_it->second == id);
    old_by_log_.erase(log_it);
    auto fit = old_by_file_.find(e.file);
    assert(fit != old_by_file_.end());
    auto it = fit->second.find(e.file_off);
    assert(it != fit->second.end() && it->second == id);
    (void)id;
    fit->second.erase(it);
    if (fit->second.empty()) old_by_file_.erase(fit);
  }

  void account_add(const CacheEntry& e) {
    bytes_[idx(e.klass)] += e.length;
    ret_sum_[idx(e.klass)] += e.ret_ms;
    if (e.dirty) dirty_bytes_ += e.length;
  }
  void account_remove(const CacheEntry& e) {
    bytes_[idx(e.klass)] -= e.length;
    ret_sum_[idx(e.klass)] -= e.ret_ms;
    if (e.dirty) dirty_bytes_ -= e.length;
  }

  std::unordered_map<EntryId, Node> old_entries_;
  std::unordered_map<ibridge::fsim::FileId, std::map<Offset, EntryId>>
      old_by_file_;
  std::map<Offset, EntryId> old_by_log_;
  std::list<EntryId> old_lru_[kNumClasses];  // front = LRU, back = MRU
  Bytes bytes_[kNumClasses];
  double ret_sum_[kNumClasses] = {0.0, 0.0};
  Bytes dirty_bytes_;
  EntryId next_id_ = 1;
};

/// The pre-index SsdLog: identical bookkeeping, but victim_segment() scans
/// every segment instead of reading the live-bytes-ordered index.
class LegacyLog {
 public:
  LegacyLog(Bytes capacity, Bytes segment_bytes)
      : segment_bytes_(segment_bytes),
        segments_(static_cast<std::size_t>(capacity / segment_bytes)) {
    assert(segment_bytes > Bytes::zero() && capacity >= segment_bytes);
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      free_segments_.push_back(static_cast<int>(i));
    }
    activate_next();
  }

  std::optional<Offset> append(Bytes len) {
    assert(len > Bytes::zero() && len <= segment_bytes_);
    if (active_ < 0) {
      if (!activate_next()) return std::nullopt;
    }
    if (head_ + len > segment_bytes_) {
      if (segments_[static_cast<std::size_t>(active_)].live == Bytes::zero()) {
        free_segments_.push_back(active_);
      }
      if (!activate_next()) return std::nullopt;
    }
    const Offset off = segment_start(active_) + head_;
    head_ += len;
    segments_[static_cast<std::size_t>(active_)].live += len;
    return off;
  }

  void release(Offset off, Bytes len) {
    assert(len > Bytes::zero());
    const int seg = static_cast<int>(off / segment_bytes_);
    assert(seg >= 0 && std::cmp_less(seg, segments_.size()));
    auto& s = segments_[static_cast<std::size_t>(seg)];
    s.live -= len;
    assert(s.live >= Bytes::zero());
    if (s.live == Bytes::zero() && seg != active_) {
      free_segments_.push_back(seg);
    }
  }

  int victim_segment() const {
    int best = -1;
    Bytes best_live = segment_bytes_ + Bytes{1};
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const int seg = static_cast<int>(i);
      if (seg == active_) continue;
      const Bytes live = segments_[i].live;
      if (live > Bytes::zero() && live < best_live) {
        best = seg;
        best_live = live;
      }
    }
    return best;
  }

  std::pair<Offset, Offset> segment_range(int seg) const {
    const Offset b = segment_start(seg);
    return {b, b + segment_bytes_};
  }

 private:
  Offset segment_start(int seg) const {
    return Offset::zero() + static_cast<std::int64_t>(seg) * segment_bytes_;
  }

  bool activate_next() {
    if (free_segments_.empty()) {
      active_ = -1;
      return false;
    }
    active_ = free_segments_.front();
    free_segments_.pop_front();
    head_ = Bytes::zero();
    return true;
  }

  struct Segment {
    Bytes live;
  };

  Bytes segment_bytes_;
  std::vector<Segment> segments_;
  std::deque<int> free_segments_;
  int active_ = -1;
  Bytes head_;
};

/// The pre-pooling coroutine task: identical to sim::Task<void> except that
/// its frames come from the global allocator instead of the frame pool.
class HeapTask {
 public:
  struct promise_type : ibridge::sim::detail::PromiseBase {
    static void* operator new(std::size_t n) { return ::operator new(n); }
    static void operator delete(void* p, std::size_t) noexcept {
      ::operator delete(p);
    }
    HeapTask get_return_object() {
      return HeapTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  HeapTask() = default;
  explicit HeapTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  HeapTask(HeapTask&& o) noexcept
      : handle_(std::exchange(o.handle_, nullptr)) {}
  HeapTask& operator=(HeapTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  HeapTask(const HeapTask&) = delete;
  HeapTask& operator=(const HeapTask&) = delete;
  ~HeapTask() { destroy(); }

  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {}

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

// --------------------------------------------------------------- workload ----

constexpr std::int64_t kEntryLen = 4096;
constexpr std::int64_t kSegmentLen = 256 * 1024;
constexpr std::int64_t kFlushBudget = 64 * 1024;

/// SplitMix64: fixed-arithmetic offsets, same sequence in both engines.
constexpr std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One cache data plane (mapping table + log) driven through a coroutine
/// serve chain.  Templated so the same serve mix runs against the frozen
/// and the production types; kPooled routes lookups through the *_into
/// variants with reused scratch (the production call shape) while the
/// legacy instantiation keeps the allocating vector-returning calls.
template <class TableT, class LogT, class TaskT>
struct Plane {
  static constexpr bool kPooled = requires(TableT& t, ibridge::fsim::FileId f,
                                           std::vector<LogSlice>& v) {
    t.coverage_into(f, Offset{}, Bytes{}, v);
  };

  Plane(std::uint64_t serves, std::uint64_t files, std::uint64_t per_file)
      : serves_(serves),
        files_(files),
        per_file_(per_file),
        log_(Bytes{static_cast<std::int64_t>(files * per_file) * kEntryLen * 4},
             Bytes{kSegmentLen}) {
    for (std::uint64_t f = 0; f < files_; ++f) {
      for (std::uint64_t k = 0; k < per_file_; ++k) {
        const auto slot = log_.append(Bytes{kEntryLen});
        assert(slot.has_value());
        CacheEntry e;
        e.file = static_cast<ibridge::fsim::FileId>(f + 1);
        e.file_off = Offset{static_cast<std::int64_t>(k) * kEntryLen};
        e.length = Bytes{kEntryLen};
        e.log_off = *slot;
        e.dirty = false;
        e.klass = (k & 1) != 0 ? CacheClass::kFragment : CacheClass::kRegular;
        e.ret_ms = 0.25;
        table_.insert(e);
      }
    }
  }

  void run() {
    for (std::uint64_t i = 0; i < serves_; ++i) {
      TaskT t = serve(i);
      t.start();
    }
  }

  // Scratch handling: the production plane clears and reuses capacity (the
  // VectorPool call shape in IBridgeCache); the legacy plane drops capacity
  // so every query allocates, exactly as the vector-returning API did.
  template <class V>
  void reset(V& v) {
    if constexpr (kPooled) {
      v.clear();
    } else {
      v = V{};
    }
  }

  void query_coverage(ibridge::fsim::FileId file, Offset off, Bytes len) {
    if constexpr (kPooled) {
      table_.coverage_into(file, off, len, slices_);
    } else {
      slices_ = table_.coverage(file, off, len);
    }
  }
  void query_overlapping(ibridge::fsim::FileId file, Offset off, Bytes len) {
    if constexpr (kPooled) {
      table_.overlapping_into(file, off, len, ids_);
    } else {
      ids_ = table_.overlapping(file, off, len);
    }
  }
  void query_dirty(Bytes budget) {
    if constexpr (kPooled) {
      table_.dirty_entries_into(budget, ids_);
    } else {
      ids_ = table_.dirty_entries(budget);
    }
  }
  void query_log_range(Offset b, Offset e) {
    if constexpr (kPooled) {
      table_.entries_in_log_range_into(b, e, ids_);
    } else {
      ids_ = table_.entries_in_log_range(b, e);
    }
  }

  ibridge::fsim::FileId pick_file(std::uint64_t r) const {
    return static_cast<ibridge::fsim::FileId>(1 + r % files_);
  }

  /// Frame 3: the table lookup itself.
  TaskT locate(ibridge::fsim::FileId file, Offset off) {
    query_coverage(file, off, Bytes{kEntryLen});
    co_return;
  }

  /// Frame 2: hit path — an unaligned read spanning two cached entries.
  TaskT lookup(std::uint64_t i) {
    const std::uint64_t r = mix(i);
    const ibridge::fsim::FileId file = pick_file(r);
    const Offset off{
        static_cast<std::int64_t>((r >> 32) % (per_file_ - 1)) * kEntryLen +
        kEntryLen / 2};
    co_await locate(file, off);
    if (slices_.empty()) {
      ++misses_;
      co_return;
    }
    ++hits_;
    sum_ += slices_.size() +
            static_cast<std::uint64_t>(slices_.front().log_off.value());
    for (const LogSlice& s : slices_) {
      sum_ += static_cast<std::uint64_t>(s.length.count());
      table_.touch(s.entry);
    }
    if ((i & 1) != 0) table_.mark_dirty(slices_.front().entry);
  }

  /// Overwrite of one entry: invalidate, release, append, insert dirty.
  /// When the log head has no room, evict a victim segment first (the
  /// cleaner path make_room() takes in IBridgeCache).
  TaskT update(std::uint64_t i) {
    const std::uint64_t r = mix(i ^ 0x8000000000000001ULL);
    const ibridge::fsim::FileId file = pick_file(r);
    const Offset off{static_cast<std::int64_t>((r >> 32) % per_file_) *
                     kEntryLen};
    query_overlapping(file, off, Bytes{kEntryLen});
    reset(freed_);
    for (const EntryId id : ids_) {
      table_.trim(id, off, Bytes{kEntryLen}, freed_);
    }
    for (const auto& [lo, n] : freed_) log_.release(lo, n);
    sum_ += ids_.size() + freed_.size();
    auto slot = log_.append(Bytes{kEntryLen});
    while (!slot) {
      const int seg = log_.victim_segment();
      if (seg < 0) break;
      const auto [b, e] = log_.segment_range(seg);
      query_log_range(b, e);
      for (const EntryId id : ids_) {
        const CacheEntry evicted = table_.erase(id);
        log_.release(evicted.log_off, evicted.length);
      }
      ++evictions_;
      slot = log_.append(Bytes{kEntryLen});
    }
    if (slot) {
      CacheEntry e;
      e.file = file;
      e.file_off = off;
      e.length = Bytes{kEntryLen};
      e.log_off = *slot;
      e.dirty = true;
      e.klass =
          ((r >> 32) & 1) != 0 ? CacheClass::kFragment : CacheClass::kRegular;
      e.ret_ms = 0.5;
      table_.insert(e);
      sum_ += static_cast<std::uint64_t>(slot->value());
    }
    ++updates_;
    co_return;
  }

  /// Write-back daemon tick: collect a dirty batch, mark it clean.
  TaskT writeback() {
    query_dirty(Bytes{kFlushBudget});
    for (const EntryId id : ids_) table_.mark_clean(id);
    sum_ += ids_.size();
    ++writebacks_;
    co_return;
  }

  /// Cleaner probe: pick a victim segment, enumerate its live entries.
  TaskT clean() {
    const int seg = log_.victim_segment();
    sum_ += static_cast<std::uint64_t>(seg + 1);
    if (seg >= 0) {
      const auto [b, e] = log_.segment_range(seg);
      query_log_range(b, e);
      sum_ += ids_.size();
    }
    ++cleans_;
    co_return;
  }

  /// Frame 1: one request through the serve chain.
  TaskT serve(std::uint64_t i) {
    co_await lookup(i);
    if ((i & 3) == 2) co_await update(i);
    if ((i & 7) == 5) co_await writeback();
    if ((i & 15) == 9) co_await clean();
  }

  std::uint64_t serves_;
  std::uint64_t files_;
  std::uint64_t per_file_;
  TableT table_;
  LogT log_;
  std::vector<LogSlice> slices_;
  std::vector<EntryId> ids_;
  std::vector<std::pair<Offset, Bytes>> freed_;
  std::uint64_t sum_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t cleans_ = 0;
  std::uint64_t evictions_ = 0;
};

struct Measurement {
  double ns_per_serve = 0;
  double allocs_per_serve = 0;
  std::uint64_t checksum = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t updates = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t cleans = 0;
  std::uint64_t evictions = 0;
  std::uint64_t final_entries = 0;
  std::int64_t final_dirty = 0;
};

template <class TableT, class LogT, class TaskT>
Measurement measure(std::uint64_t serves, std::uint64_t files,
                    std::uint64_t per_file, int reps) {
  Measurement m;
  double best_s = 0;
  // Rep 0 warms caches and the pools and counts allocations; timing keeps
  // the minimum of the remaining reps (least-noise estimator for a
  // deterministic workload).
  for (int rep = 0; rep <= reps; ++rep) {
    Plane<TableT, LogT, TaskT> plane(serves, files, per_file);
    const std::uint64_t a0 = g_new_calls.load(std::memory_order_relaxed);
    ibridge::exp::Stopwatch sw;
    plane.run();
    const double s = sw.seconds();
    const std::uint64_t a1 = g_new_calls.load(std::memory_order_relaxed);
    m.checksum = plane.sum_;
    m.hits = plane.hits_;
    m.misses = plane.misses_;
    m.updates = plane.updates_;
    m.writebacks = plane.writebacks_;
    m.cleans = plane.cleans_;
    m.evictions = plane.evictions_;
    m.final_entries = plane.table_.entry_count();
    m.final_dirty = plane.table_.dirty_bytes().count();
    if (rep == 0) {
      m.allocs_per_serve =
          static_cast<double>(a1 - a0) / static_cast<double>(serves);
      best_s = s;
    } else if (s < best_s) {
      best_s = s;
    }
  }
  m.ns_per_serve = best_s * 1e9 / static_cast<double>(serves);
  return m;
}

bool equivalent(const Measurement& a, const Measurement& b) {
  return a.checksum == b.checksum && a.hits == b.hits &&
         a.misses == b.misses && a.updates == b.updates &&
         a.writebacks == b.writebacks && a.cleans == b.cleans &&
         a.evictions == b.evictions && a.final_entries == b.final_entries &&
         a.final_dirty == b.final_dirty;
}

}  // namespace

int main(int argc, char** argv) {
  using ibridge::exp::require_int;
  std::int64_t serves = 200'000;
  std::int64_t entries = 4096;
  std::int64_t files = 4;
  int reps = 3;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_cacheplane: %s needs a value\n",
                     a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--serves") {
      serves = require_int("bench_cacheplane", "--serves", next(), 1000,
                           1'000'000'000);
    } else if (a == "--entries") {
      entries = require_int("bench_cacheplane", "--entries", next(), 64,
                            1 << 20);
    } else if (a == "--files") {
      files = require_int("bench_cacheplane", "--files", next(), 1, 256);
    } else if (a == "--reps") {
      reps = static_cast<int>(
          require_int("bench_cacheplane", "--reps", next(), 1, 100));
    } else if (a == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_cacheplane [--serves N] [--entries N] "
                   "[--files N] [--reps N] [--check]\n");
      return 2;
    }
  }
  const auto per_file =
      static_cast<std::uint64_t>(std::max<std::int64_t>(entries / files, 2));

  const Measurement legacy =
      measure<LegacyTable, LegacyLog, HeapTask>(
          static_cast<std::uint64_t>(serves),
          static_cast<std::uint64_t>(files), per_file, reps);
  const Measurement pooled =
      measure<ibridge::core::MappingTable, ibridge::core::SsdLog,
              ibridge::sim::Task<void>>(static_cast<std::uint64_t>(serves),
                                        static_cast<std::uint64_t>(files),
                                        per_file, reps);

  if (!equivalent(legacy, pooled)) {
    std::fprintf(stderr,
                 "bench_cacheplane: FAIL — engines diverged "
                 "(checksum %llu vs %llu, hits %llu vs %llu, entries %llu "
                 "vs %llu)\n",
                 static_cast<unsigned long long>(legacy.checksum),
                 static_cast<unsigned long long>(pooled.checksum),
                 static_cast<unsigned long long>(legacy.hits),
                 static_cast<unsigned long long>(pooled.hits),
                 static_cast<unsigned long long>(legacy.final_entries),
                 static_cast<unsigned long long>(pooled.final_entries));
    return 1;
  }

  const double ns_red =
      (legacy.ns_per_serve - pooled.ns_per_serve) / legacy.ns_per_serve *
      100.0;
  const double alloc_red =
      legacy.allocs_per_serve <= 0.0
          ? 0.0
          : (legacy.allocs_per_serve - pooled.allocs_per_serve) /
                legacy.allocs_per_serve * 100.0;

  std::printf("cache data plane, %lld serves over %lld entries (%llu hits, "
              "%llu updates)\n",
              static_cast<long long>(serves), static_cast<long long>(entries),
              static_cast<unsigned long long>(legacy.hits),
              static_cast<unsigned long long>(legacy.updates));
  std::printf("  %-38s %8.1f ns/serve  %6.3f allocs/serve\n",
              "list LRU + heap frames + O(n) scan", legacy.ns_per_serve,
              legacy.allocs_per_serve);
  std::printf("  %-38s %8.1f ns/serve  %6.3f allocs/serve\n",
              "slab + pooled frames + live index", pooled.ns_per_serve,
              pooled.allocs_per_serve);
  std::printf("  reduction: %.1f%% ns/serve, %.1f%% allocs/serve\n", ns_red,
              alloc_red);

  ibridge::exp::Gauge g("cacheplane");
  g.set("serves", static_cast<double>(serves));
  g.set("entries", static_cast<double>(entries));
  g.set("files", static_cast<double>(files));
  g.set("ops.hits", static_cast<double>(pooled.hits));
  g.set("ops.misses", static_cast<double>(pooled.misses));
  g.set("ops.updates", static_cast<double>(pooled.updates));
  g.set("ops.writebacks", static_cast<double>(pooled.writebacks));
  g.set("ops.cleans", static_cast<double>(pooled.cleans));
  g.set("ops.evictions", static_cast<double>(pooled.evictions));
  g.set("checksum.lo", static_cast<double>(pooled.checksum & 0xffffffffULL));
  g.set("checksum.hi", static_cast<double>(pooled.checksum >> 32));
  g.set("table.final_entries", static_cast<double>(pooled.final_entries));
  g.set("table.final_dirty_bytes", static_cast<double>(pooled.final_dirty));
  g.set("allocs_per_serve.legacy", legacy.allocs_per_serve);
  g.set("allocs_per_serve.pooled", pooled.allocs_per_serve);
  g.set("alloc_reduction_pct", alloc_red);
  g.set_wall("ns_per_serve.legacy", legacy.ns_per_serve);
  g.set_wall("ns_per_serve.pooled", pooled.ns_per_serve);
  g.set_wall("ns_reduction_pct", ns_red);
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_cacheplane.json\n");
  }

  if (check && (ns_red < 25.0 || alloc_red < 90.0)) {
    std::fprintf(stderr,
                 "bench_cacheplane: FAIL --check thresholds (need >=25%% ns, "
                 ">=90%% allocs; got %.1f%%, %.1f%%)\n",
                 ns_red, alloc_red);
    return 1;
  }
  return 0;
}
