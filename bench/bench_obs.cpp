// bench_obs — bounded-memory observability gauge.
//
// Proves the three headline properties of the always-on observability
// stack, and measures what they cost:
//
//   1. Accuracy/memory: QuantileSketch and Reservoir vs the exact
//      Histogram over three adversarial sample streams (constant,
//      bimodal latency, heavy-tail).  Sketch percentiles must land within
//      the configured relative error (1/buckets_per_octave) of the exact
//      answer while holding the 64 KiB per-metric budget; the reservoir
//      must be exact while under capacity.  ns/sample for each backend
//      goes into the wall section.
//
//   2. Timeline identity: the unaligned Figure-3-style workload is run
//      untraced, flight-recorded, fully traced, and with a SimProfiler
//      attached — the simulated completion time must be byte-identical
//      across all four (instrumentation never perturbs the model).
//
//   3. Parallel determinism: sketch-policy registries built under
//      exp::Runner produce byte-identical CSV + digests at --jobs 1 and
//      --jobs N.
//
//   bench_obs [--samples N] [--reps N] [--check]
//
// --check exits 1 unless all three properties hold (the CI bench-gauge
// job runs this).  Emits BENCH_obs.json; deterministic results go in the
// model section, host-dependent ones (ns/sample, bytes, peak RSS) under
// wall.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"
#include "mpiio/mpi.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/sketch.hpp"

namespace {

using ibridge::exp::Gauge;
using ibridge::exp::Runner;
using ibridge::exp::Stopwatch;
using ibridge::obs::FlightConfig;
using ibridge::obs::HistogramPolicy;
using ibridge::obs::MetricsRegistry;
using ibridge::obs::SimProfiler;
using ibridge::obs::TraceSession;
using ibridge::stats::Histogram;
using ibridge::stats::QuantileSketch;
using ibridge::stats::Reservoir;

// ------------------------------------------------ adversarial streams ----

struct Distribution {
  const char* name;
  double (*draw)(ibridge::sim::Rng&);
};

double draw_constant(ibridge::sim::Rng&) { return 42.0; }

// Two latency modes an order of magnitude apart — cache hit vs disk miss.
double draw_bimodal(ibridge::sim::Rng& rng) {
  return rng.below(3) == 0 ? 100.0 + 10.0 * rng.uniform01()
                           : 1.0 + rng.uniform01();
}

// Twenty octaves of spread: queueing tails, GC pauses, stragglers.
double draw_heavy_tail(ibridge::sim::Rng& rng) {
  return std::ldexp(1.0, static_cast<int>(rng.below(20))) *
         (1.0 + rng.uniform01());
}

const Distribution kDistributions[] = {
    {"constant", draw_constant},
    {"bimodal", draw_bimodal},
    {"heavy_tail", draw_heavy_tail},
};

constexpr double kPercentiles[] = {50.0, 95.0, 99.0};
constexpr std::size_t kMemoryBudget = 64 * 1024;  // bytes per metric

struct DistResult {
  double exact_p[3] = {};
  double sketch_p[3] = {};
  double sketch_rel_err = 0.0;  // worst observed across the percentiles
  double reservoir_p50 = 0.0;
  bool reservoir_exact = false;
  std::size_t sketch_bytes = 0;
  std::size_t exact_bytes = 0;
  std::uint64_t digest = 0;
  double ns_exact = 0.0;
  double ns_sketch = 0.0;
  double ns_reservoir = 0.0;
};

DistResult measure_distribution(const Distribution& dist, std::int64_t n,
                                int reps) {
  DistResult r;
  Histogram exact;
  QuantileSketch sketch;
  Reservoir reservoir(/*capacity=*/static_cast<std::size_t>(n));
  {
    ibridge::sim::Rng rng(0xd15e);
    for (std::int64_t i = 0; i < n; ++i) {
      const double x = dist.draw(rng);
      exact.add(x);
      sketch.add(x);
      reservoir.add(x);
    }
  }
  for (int p = 0; p < 3; ++p) {
    r.exact_p[p] = exact.percentile(kPercentiles[p]);
    r.sketch_p[p] = sketch.percentile(kPercentiles[p]);
    const double denom = std::abs(r.exact_p[p]);
    const double err = denom > 0.0
                           ? std::abs(r.sketch_p[p] - r.exact_p[p]) / denom
                           : std::abs(r.sketch_p[p] - r.exact_p[p]);
    if (err > r.sketch_rel_err) r.sketch_rel_err = err;
  }
  r.reservoir_p50 = reservoir.percentile(50.0);
  r.reservoir_exact = r.reservoir_p50 == exact.percentile(50.0);
  r.sketch_bytes = sketch.memory_bytes();
  r.exact_bytes = sizeof(Histogram) + exact.count() * sizeof(double);
  r.digest = sketch.digest();

  // ns/sample per backend: feed a fresh instance per rep, keep the
  // fastest rep (least-noise estimator for a deterministic stream).
  const auto time_adds = [&](auto& make, auto& feed) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      auto sink = make();
      ibridge::sim::Rng rng(0xd15e);
      Stopwatch sw;
      for (std::int64_t i = 0; i < n; ++i) feed(sink, dist.draw(rng));
      const double s = sw.seconds();
      if (rep == 0 || s < best) best = s;
    }
    return best * 1e9 / static_cast<double>(n);
  };
  auto make_exact = [] { return Histogram(); };
  auto make_sketch = [] { return QuantileSketch(); };
  auto make_reservoir = [n] {
    return Reservoir(static_cast<std::size_t>(n < 4096 ? n : 4096));
  };
  auto feed = [](auto& sink, double x) { sink.add(x); };
  r.ns_exact = time_adds(make_exact, feed);
  r.ns_sketch = time_adds(make_sketch, feed);
  r.ns_reservoir = time_adds(make_reservoir, feed);
  return r;
}

// ------------------------------------------------- timeline identity ----

ibridge::sim::Task<> reader(ibridge::mpiio::MpiContext ctx,
                            ibridge::mpiio::MpiFile file,
                            std::int64_t iters) {
  for (std::int64_t k = 0; k < iters; ++k) {
    const std::int64_t off =
        (k * ctx.size() + ctx.rank()) * (8LL << 16);
    co_await file.read_at(ctx.rank(), off, 65 * 1024);
    co_await ctx.barrier();
  }
}

enum class Mode { kUntraced, kFlight, kFull, kProfiled };

std::int64_t run_unaligned_ns(Mode mode) {
  ibridge::cluster::Cluster c(
      ibridge::cluster::ClusterConfig::with_ibridge());
  TraceSession session(c.sim());
  SimProfiler prof;
  switch (mode) {
    case Mode::kUntraced:
      break;
    case Mode::kFlight:
      session.enable_flight_recorder(FlightConfig{});
      c.set_trace(&session);
      break;
    case Mode::kFull:
      c.set_trace(&session);
      break;
    case Mode::kProfiled:
      c.set_profiler(&prof);
      break;
  }
  auto fh = c.create_file("data", 2LL << 30);
  ibridge::mpiio::MpiFile file(c.client(), fh);
  ibridge::mpiio::MpiEnvironment group(c.sim(), c.client(), 8);
  group.launch([&](ibridge::mpiio::MpiContext ctx) {
    return reader(ctx, file, 4);
  });
  c.sim().run_while_pending([&] { return group.finished(); });
  const std::int64_t flushed_ns = c.drain().ns();
  if (mode == Mode::kProfiled) c.set_profiler(nullptr);
  return flushed_ns;
}

// ---------------------------------------------- parallel determinism ----

std::string sketch_csv_batch(int jobs) {
  Runner r(jobs);
  const auto cells = r.map<std::string>(6, [](int i) {
    MetricsRegistry reg;
    reg.set_default_histogram_policy(HistogramPolicy::kSketch);
    ibridge::sim::Rng rng(0xc0ffee + static_cast<std::uint64_t>(i));
    for (int k = 0; k < 20000; ++k) {
      reg.histogram("lat_ms").add(draw_bimodal(rng));
      reg.histogram("tail_ms").add(draw_heavy_tail(rng));
    }
    std::ostringstream os;
    reg.write_csv(os);
    return os.str() + "#" + std::to_string(reg.sketch_digest()) + "\n";
  });
  std::string all;
  for (const std::string& s : cells) all += s;
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  using ibridge::exp::require_int;
  std::int64_t samples = 200'000;
  int reps = 3;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_obs: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--samples") {
      samples =
          require_int("bench_obs", "--samples", next(), 1000, 100'000'000);
    } else if (a == "--reps") {
      reps = static_cast<int>(require_int("bench_obs", "--reps", next(), 1,
                                          100));
    } else if (a == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_obs [--samples N] [--reps N] [--check]\n");
      return 2;
    }
  }

  Stopwatch total;
  Gauge g("obs");
  g.set("samples", static_cast<double>(samples));
  bool ok = true;

  // 1. Sketch accuracy and memory over the adversarial streams.
  const double budget_rel = QuantileSketch().relative_error();
  std::printf("quantile backends, %lld samples/stream (rel-err budget "
              "%.4f, memory budget %zu KiB)\n",
              static_cast<long long>(samples), budget_rel,
              kMemoryBudget / 1024);
  for (const Distribution& dist : kDistributions) {
    const DistResult r = measure_distribution(dist, samples, reps);
    const bool within_err = r.sketch_rel_err <= budget_rel + 1e-12;
    const bool within_mem = r.sketch_bytes <= kMemoryBudget;
    ok = ok && within_err && within_mem && r.reservoir_exact;
    std::printf(
        "  %-10s p99 exact %10.3f sketch %10.3f  rel-err %.5f  "
        "sketch %5zu B vs exact %8zu B  [%s]\n",
        dist.name, r.exact_p[2], r.sketch_p[2], r.sketch_rel_err,
        r.sketch_bytes, r.exact_bytes,
        within_err && within_mem ? "ok" : "FAIL");
    const std::string p = std::string("sketch.") + dist.name + ".";
    for (int i = 0; i < 3; ++i) {
      g.set(p + "p" + std::to_string(static_cast<int>(kPercentiles[i])),
            r.sketch_p[i]);
    }
    g.set(p + "rel_err", r.sketch_rel_err);
    g.set(p + "digest.lo", static_cast<double>(r.digest & 0xffffffffULL));
    g.set(p + "digest.hi", static_cast<double>(r.digest >> 32));
    g.set(p + "memory_ok", within_mem ? 1.0 : 0.0);
    g.set(p + "reservoir_exact", r.reservoir_exact ? 1.0 : 0.0);
    g.set_wall(p + "bytes", static_cast<double>(r.sketch_bytes));
    g.set_wall(p + "exact_bytes", static_cast<double>(r.exact_bytes));
    g.set_wall(p + "ns_exact", r.ns_exact);
    g.set_wall(p + "ns_sketch", r.ns_sketch);
    g.set_wall(p + "ns_reservoir", r.ns_reservoir);
  }

  // 2. Instrumentation must not perturb the simulated timeline.
  const std::int64_t untraced = run_unaligned_ns(Mode::kUntraced);
  const std::int64_t flight = run_unaligned_ns(Mode::kFlight);
  const std::int64_t full = run_unaligned_ns(Mode::kFull);
  const std::int64_t profiled = run_unaligned_ns(Mode::kProfiled);
  const bool timeline_ok =
      untraced == flight && untraced == full && untraced == profiled;
  ok = ok && timeline_ok;
  std::printf("timeline: untraced %.3f ms, flight %+" PRId64
                  " ns, full %+" PRId64 " ns, profiled %+" PRId64
                  " ns  [%s]\n",
              static_cast<double>(untraced) / 1e6, flight - untraced,
              full - untraced, profiled - untraced,
              timeline_ok ? "ok" : "FAIL");
  g.set("timeline.untraced_ms", static_cast<double>(untraced) / 1e6);
  g.set("timeline.identical", timeline_ok ? 1.0 : 0.0);

  // 3. Sketch output is byte-identical across Runner worker counts.
  const std::string serial = sketch_csv_batch(1);
  const std::string parallel = sketch_csv_batch(Runner::default_jobs());
  const bool jobs_ok = serial == parallel;
  ok = ok && jobs_ok;
  std::printf("parallel determinism: jobs 1 vs %d sketch CSV %s\n",
              Runner::default_jobs(), jobs_ok ? "identical [ok]" : "DIFFER");
  g.set("sketch.jobs_invariant", jobs_ok ? 1.0 : 0.0);

  g.set_wall("seconds", total.seconds());
  g.set_wall("peak_rss_mb", ibridge::exp::peak_rss_mb());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_obs.json\n");
  }

  if (check && !ok) {
    std::fprintf(stderr, "bench_obs: FAIL --check\n");
    return 1;
  }
  return 0;
}
