// Shared helpers for the per-figure benchmark binaries.
//
// Each bench_* executable regenerates one of the paper's tables or figures:
// it runs the corresponding workload on simulated clusters and prints the
// same rows/series the paper reports, with the paper's published numbers
// alongside for comparison.  Absolute MB/s are model-calibrated, not
// testbed-identical; EXPERIMENTS.md records the deltas.
//
// Benches accept an optional scale argument:
//   bench_figX [--full]     sweep the paper's full 10 GB dataset (slow)
// The default accesses a smaller slice so the whole suite finishes in
// minutes; shapes are unaffected because throughput is steady-state.
//
// Sweep benches also accept --jobs N: independent cells fan out over an
// exp::Runner pool.  Results are committed in submission order, so the
// printed tables and the BENCH_<name>.json model metrics are identical at
// every N (only the "wall" section changes).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"      // lint: include-ok (umbrella: benches print Tables)
#include "workloads/btio.hpp"   // lint: include-ok (umbrella: benches run BTIO)
#include "workloads/ior_mpi_io.hpp"
#include "workloads/mpi_io_test.hpp"
#include "workloads/trace.hpp"

namespace ibridge::bench {

inline constexpr std::int64_t kMB = 1000 * 1000;
inline constexpr std::int64_t kGB = 1000 * kMB;

struct Scale {
  std::int64_t file_bytes = 10 * kGB;
  std::int64_t access_bytes = 400 * kMB;  // per mpi-io-test/ior run
  int btio_steps = 2;                     // of the class-C 40
  std::size_t trace_requests = 2'000;
  int jobs = 1;  // exp::Runner pool size for independent sweep cells

  static Scale parse(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        s.access_bytes = 10 * kGB;
        s.btio_steps = 40;
        s.trace_requests = 20'000;
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        s.jobs = static_cast<int>(
            exp::require_int(argv[0], "--jobs", argv[++i], 1, 256));
      }
    }
    return s;
  }
};

inline void banner(const char* id, const char* what) {
  std::printf("\n=== %s: %s ===\n", id, what);
}

inline void footnote() {
  std::printf(
      "    (model-calibrated simulation; compare shapes/ratios with the "
      "paper, see EXPERIMENTS.md)\n");
}

/// Throughput including the end-of-run write-back drain, as the paper
/// measures ("we include ... the time for writing dirty data back").
inline double mbps_total(const workloads::WorkloadResult& r) {
  const double s = r.elapsed.to_seconds();
  return s > 0 ? static_cast<double>(r.bytes) / 1e6 / s : 0.0;
}

/// Scrape the cluster's unified metrics and print every row whose name
/// starts with `prefix` (empty prints all) — the registry-backed
/// replacement for ad-hoc per-bench meter dumps.
inline void print_metrics(const cluster::Cluster& c,
                          const std::string& prefix = "") {
  obs::MetricsRegistry reg;
  c.collect_metrics(reg);
  for (const auto& [name, value] : reg.flatten()) {
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::printf("    %-36s %.6g\n", name.c_str(), value);
  }
}

}  // namespace ibridge::bench
