// Table I — percentages of unaligned and random data accesses in the
// ALEGRA / CTH / S3D traces under a 64 KB striping unit.
//
// The Sandia traces are not redistributable; the synthesizer generates
// streams whose classification statistics match the published percentages,
// and this bench verifies the classifier reproduces the table from them.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("table1_traces");
  banner("Table I", "unaligned / random request percentages (64 KB unit)");

  struct Row {
    workloads::TraceProfile profile;
    double paper_unaligned, paper_random;
  };
  const Row rows[] = {
      {workloads::alegra_2744_profile(), 35.2, 7.3},
      {workloads::alegra_5832_profile(), 35.7, 6.9},
      {workloads::cth_profile(), 24.3, 30.1},
      {workloads::s3d_profile(), 62.8, 5.8},
  };

  stats::Table table({"Apps", "Unaligned (%)", "Random (%)", "Total (%)",
                      "paper U%", "paper R%"});
  const workloads::AccessClassifier cls;
  for (const auto& row : rows) {
    workloads::TraceSynthesizer synth(row.profile);
    const auto trace =
        synth.generate(scale.trace_requests * 10, 10 * kGB, /*seed=*/1);
    const auto s = cls.classify(trace);
    table.add_row({row.profile.name, stats::Table::fmt("%.1f", s.unaligned_pct),
                   stats::Table::fmt("%.1f", s.random_pct),
                   stats::Table::fmt("%.1f", s.total_pct),
                   stats::Table::fmt("%.1f", row.paper_unaligned),
                   stats::Table::fmt("%.1f", row.paper_random)});
    std::string key = row.profile.name;
    key += ".";
    g.set(key + "unaligned_pct", s.unaligned_pct);
    g.set(key + "random_pct", s.random_pct);
    g.set(key + "total_pct", s.total_pct);
  }
  table.print();
  footnote();
  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_table1_traces.json\n");
  }
  return 0;
}
