// Figure 7 — scalability with data-server count: mpi-io-test, 64 procs.
// Three series per direction: 64 KB aligned on stock (reference), 65 KB on
// stock, 65 KB with iBridge.  Servers 2-8.
//
// The 24 (servers × series × direction) cells are independent cluster runs
// and fan out over an exp::Runner pool (--jobs N), committed in table order.
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, int servers, bool ibridge, bool write,
                std::int64_t req) {
  auto cc = ibridge ? cluster::ClusterConfig::with_ibridge()
                    : cluster::ClusterConfig::stock();
  cc.data_servers = servers;
  cluster::Cluster c(cc);
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = req;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes / 2;
  cfg.write = write;
  if (!write) {  // repeated-execution read protocol on both systems
    run_mpi_io_test(c, cfg);
    run_mpi_io_test(c, cfg);
  }
  return mbps_total(run_mpi_io_test(c, cfg));
}

struct Cell {
  int servers;
  bool ibridge;
  bool write;
  std::int64_t req;
  const char* series;
};

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);

  std::vector<Cell> cells;
  for (bool write : {true, false}) {
    for (int servers : {2, 4, 6, 8}) {
      cells.push_back({servers, false, write, 64 * 1024, "aligned_stock"});
      cells.push_back({servers, false, write, 65 * 1024, "stock"});
      cells.push_back({servers, true, write, 65 * 1024, "ibridge"});
    }
  }

  exp::Stopwatch sw;
  exp::Runner runner(scale.jobs);
  const std::vector<double> mbps = runner.map<double>(
      static_cast<int>(cells.size()), [&](int i) {
        const Cell& cc = cells[static_cast<std::size_t>(i)];
        return run_case(scale, cc.servers, cc.ibridge, cc.write, cc.req);
      });

  std::size_t r = 0;
  for (bool write : {true, false}) {
    banner(write ? "Figure 7(a)" : "Figure 7(b)",
           write ? "server scaling, writes" : "server scaling, reads");
    stats::Table t({"servers", "64 KB stock (aligned)", "65 KB stock",
                    "65 KB iBridge"});
    for (int servers : {2, 4, 6, 8}) {
      t.add_row({std::to_string(servers),
                 stats::Table::fmt("%.1f", mbps[r]),
                 stats::Table::fmt("%.1f", mbps[r + 1]),
                 stats::Table::fmt("%.1f", mbps[r + 2])});
      r += 3;
    }
    t.print();
  }
  std::printf("  paper: throughput grows with server count everywhere; the "
              "aligned-vs-65KB gap\n  widens with more servers and iBridge "
              "nearly closes it\n");
  footnote();

  exp::Gauge g("fig7_serverscale");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    g.set(std::string(cells[i].series) +
              (cells[i].write ? ".write.s" : ".read.s") +
              std::to_string(cells[i].servers),
          mbps[i]);
  }
  g.set_wall("seconds", sw.seconds());
  g.set_wall("jobs", scale.jobs);
  if (!g.write_file()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_fig7_serverscale.json\n");
  }
  return 0;
}
