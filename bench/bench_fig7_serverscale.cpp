// Figure 7 — scalability with data-server count: mpi-io-test, 64 procs.
// Three series per direction: 64 KB aligned on stock (reference), 65 KB on
// stock, 65 KB with iBridge.  Servers 2-8.
#include "bench/bench_common.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, int servers, bool ibridge, bool write,
                std::int64_t req) {
  auto cc = ibridge ? cluster::ClusterConfig::with_ibridge()
                    : cluster::ClusterConfig::stock();
  cc.data_servers = servers;
  cluster::Cluster c(cc);
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = req;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes / 2;
  cfg.write = write;
  if (!write) {  // repeated-execution read protocol on both systems
    run_mpi_io_test(c, cfg);
    run_mpi_io_test(c, cfg);
  }
  return mbps_total(run_mpi_io_test(c, cfg));
}

void table_for(const Scale& scale, bool write) {
  banner(write ? "Figure 7(a)" : "Figure 7(b)",
         write ? "server scaling, writes" : "server scaling, reads");
  stats::Table t({"servers", "64 KB stock (aligned)", "65 KB stock",
                  "65 KB iBridge"});
  for (int servers : {2, 4, 6, 8}) {
    t.add_row(
        {std::to_string(servers),
         stats::Table::fmt("%.1f",
                           run_case(scale, servers, false, write, 64 * 1024)),
         stats::Table::fmt("%.1f",
                           run_case(scale, servers, false, write, 65 * 1024)),
         stats::Table::fmt("%.1f",
                           run_case(scale, servers, true, write, 65 * 1024))});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  table_for(scale, /*write=*/true);
  table_for(scale, /*write=*/false);
  std::printf("  paper: throughput grows with server count everywhere; the "
              "aligned-vs-65KB gap\n  widens with more servers and iBridge "
              "nearly closes it\n");
  footnote();
  return 0;
}
