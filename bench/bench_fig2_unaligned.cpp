// Figure 2 — the motivating study: stock-system throughput under the three
// alignment patterns, and the block-level request-size distributions.
//
//  (a) Pattern II: request sizes 64/65/74/84/94 KB x process counts 16-512
//  (b) Pattern III: 64 KB requests at offsets +0/+1/+10/+20 KB x processes
//  (c,d,e) blktrace request-size distributions for 64 KB aligned, 65 KB,
//          and 64 KB + 10 KB offset.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

workloads::WorkloadResult run(const Scale& scale, int procs,
                              std::int64_t size, std::int64_t shift,
                              cluster::Cluster* keep = nullptr) {
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = procs;
  cfg.request_size = size;
  cfg.offset_shift = shift;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  if (keep) return run_mpi_io_test(*keep, cfg);
  cluster::Cluster c(cluster::ClusterConfig::stock());
  return run_mpi_io_test(c, cfg);
}

void print_distribution(const stats::IntHistogram& h, const char* label) {
  std::printf("  %s (top sizes, sectors: fraction)\n", label);
  for (const auto& [sectors, count] : h.top(6)) {
    std::printf("    %5lld sectors : %5.1f%%\n",
                static_cast<long long>(sectors),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(h.total()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig2_unaligned");

  banner("Figure 2(a)", "stock read throughput, Pattern II (request size)");
  {
    stats::Table t({"req size", "16 procs", "64 procs", "128 procs",
                    "512 procs"});
    for (std::int64_t kb : {64, 65, 74, 84, 94}) {
      std::vector<std::string> row{std::to_string(kb) + " KB"};
      for (int procs : {16, 64, 128, 512}) {
        const double mbps = run(scale, procs, kb * 1024, 0).mbps();
        row.push_back(stats::Table::fmt("%.1f", mbps));
        g.set("p2." + std::to_string(kb) + "kb.p" + std::to_string(procs),
              mbps);
      }
      t.add_row(row);
    }
    t.print();
    std::printf("  paper anchors: 64KB/16p=159.6, 65KB/16p=77.4, "
                "64KB/512p=116.2 MB/s\n");
  }

  banner("Figure 2(b)", "stock read throughput, Pattern III (offset shift)");
  {
    stats::Table t({"offset", "16 procs", "64 procs", "128 procs",
                    "512 procs"});
    for (std::int64_t kb : {0, 1, 10, 20}) {
      // Built stepwise: the one-expression "+" + to_string(kb) + " KB" form
      // trips GCC 12's -Werror=restrict false positive at -O3.
      std::string label = "+";
      label += std::to_string(kb);
      label += " KB";
      std::vector<std::string> row{std::move(label)};
      for (int procs : {16, 64, 128, 512}) {
        const double mbps = run(scale, procs, 64 * 1024, kb * 1024).mbps();
        row.push_back(stats::Table::fmt("%.1f", mbps));
        g.set("p3.shift" + std::to_string(kb) + "kb.p" + std::to_string(procs),
              mbps);
      }
      t.add_row(row);
    }
    t.print();
    std::printf("  paper anchors: +1KB/512p=102.1, +10KB/512p=81.8 MB/s\n");
  }

  banner("Figure 2(c-e)", "block-level request-size distributions (server 0)");
  {
    struct Case {
      const char* label;
      std::int64_t size, shift;
    };
    const Case cases[] = {
        {"(c) aligned 64 KB requests", 64 * 1024, 0},
        {"(d) 65 KB requests", 65 * 1024, 0},
        {"(e) 64 KB requests + 10 KB offset", 64 * 1024, 10 * 1024},
    };
    for (const auto& k : cases) {
      cluster::Cluster c(cluster::ClusterConfig::stock());
      c.enable_disk_trace(0);
      run(scale, 16, k.size, k.shift, &c);
      print_distribution(c.server(0).disk().trace().size_histogram(),
                         k.label);
    }
    std::printf("  paper anchors: (c) 72%% at 128 sectors, 18%% at 256; "
                "(d) many small sizes; (e) 40 KB / 88 KB dominant\n");
  }
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig2_unaligned.json\n");
  }
  return 0;
}
