// Figure 6 — scalability with process count: mpi-io-test, 65 KB requests,
// 16-512 processes, reads and writes, stock vs iBridge.
#include "bench/bench_common.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, bool ibridge, bool write, int procs) {
  cluster::Cluster c(ibridge ? cluster::ClusterConfig::with_ibridge()
                             : cluster::ClusterConfig::stock());
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = procs;
  cfg.request_size = 65 * 1024;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = write;
  if (!write) {  // repeated-execution read protocol on both systems
    run_mpi_io_test(c, cfg);
    run_mpi_io_test(c, cfg);
  }
  return mbps_total(run_mpi_io_test(c, cfg));
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Figure 6", "mpi-io-test 65 KB requests, process-count scaling");

  stats::Table t({"procs", "read stock", "read iBridge", "write stock",
                  "write iBridge"});
  for (int procs : {16, 64, 128, 512}) {
    t.add_row({std::to_string(procs),
               stats::Table::fmt("%.1f", run_case(scale, false, false, procs)),
               stats::Table::fmt("%.1f", run_case(scale, true, false, procs)),
               stats::Table::fmt("%.1f", run_case(scale, false, true, procs)),
               stats::Table::fmt("%.1f", run_case(scale, true, true, procs))});
  }
  t.print();
  std::printf("  paper: iBridge improves throughput by 154%% on average "
              "across process counts;\n  512 procs slightly lower than 64 "
              "for both systems\n");
  footnote();
  return 0;
}
