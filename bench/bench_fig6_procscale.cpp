// Figure 6 — scalability with process count: mpi-io-test, 65 KB requests,
// 16-512 processes, reads and writes, stock vs iBridge.
//
// Every cell is an independent cluster run, so the 16 cells fan out over an
// exp::Runner pool (--jobs N); cells are committed back into the table in
// row-major order, so the output is identical at every N.
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"
#include "exp/runner.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, bool ibridge, bool write, int procs) {
  cluster::Cluster c(ibridge ? cluster::ClusterConfig::with_ibridge()
                             : cluster::ClusterConfig::stock());
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = procs;
  cfg.request_size = 65 * 1024;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = write;
  if (!write) {  // repeated-execution read protocol on both systems
    run_mpi_io_test(c, cfg);
    run_mpi_io_test(c, cfg);
  }
  return mbps_total(run_mpi_io_test(c, cfg));
}

struct Cell {
  int procs;
  bool ibridge;
  bool write;
  const char* series;
};

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  banner("Figure 6", "mpi-io-test 65 KB requests, process-count scaling");

  std::vector<Cell> cells;
  for (int procs : {16, 64, 128, 512}) {
    cells.push_back({procs, false, false, "read_stock"});
    cells.push_back({procs, true, false, "read_ibridge"});
    cells.push_back({procs, false, true, "write_stock"});
    cells.push_back({procs, true, true, "write_ibridge"});
  }

  exp::Stopwatch sw;
  exp::Runner runner(scale.jobs);
  const std::vector<double> mbps = runner.map<double>(
      static_cast<int>(cells.size()), [&](int i) {
        const Cell& cc = cells[static_cast<std::size_t>(i)];
        return run_case(scale, cc.ibridge, cc.write, cc.procs);
      });

  stats::Table t({"procs", "read stock", "read iBridge", "write stock",
                  "write iBridge"});
  for (std::size_t r = 0; r < cells.size(); r += 4) {
    t.add_row({std::to_string(cells[r].procs),
               stats::Table::fmt("%.1f", mbps[r]),
               stats::Table::fmt("%.1f", mbps[r + 1]),
               stats::Table::fmt("%.1f", mbps[r + 2]),
               stats::Table::fmt("%.1f", mbps[r + 3])});
  }
  t.print();
  std::printf("  paper: iBridge improves throughput by 154%% on average "
              "across process counts;\n  512 procs slightly lower than 64 "
              "for both systems\n");
  footnote();

  exp::Gauge g("fig6_procscale");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    g.set(std::string(cells[i].series) + ".p" + std::to_string(cells[i].procs),
          mbps[i]);
  }
  g.set_wall("seconds", sw.seconds());
  g.set_wall("jobs", scale.jobs);
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig6_procscale.json\n");
  }
  return 0;
}
