// Table II — basic performance of the SSD and HDD device models.
//
// The paper benchmarked its drives with 4 KB requests.  We measure the
// simulated devices the same way: streaming for the sequential rates,
// scattered 4 KB requests for the random rates.  Sequential rates are
// calibrated to match the paper exactly; the HDD random rates land below
// the paper's published numbers (which exceed what a 7200 RPM disk can do
// without cache effects) — the *ordering* and read/write asymmetry match.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"
#include "sim/rng.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/ssd.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

// Measured throughput of a request stream issued back-to-back.
template <typename Device>
double measure(Device& dev, sim::Simulator& sim,
               const std::vector<storage::BlockRequest>& reqs) {
  std::int64_t bytes = 0;
  const sim::SimTime t0 = sim.now();
  for (const auto& r : reqs) {
    dev.submit(r);
    bytes += r.bytes();
  }
  sim.run();
  return static_cast<double>(bytes) / 1e6 / (sim.now() - t0).to_seconds();
}

std::vector<storage::BlockRequest> sequential(storage::IoDirection dir,
                                              int count) {
  std::vector<storage::BlockRequest> v;
  const std::int64_t chunk = 2048;  // 1 MB
  for (int i = 0; i < count; ++i) v.push_back({dir, i * chunk, chunk, 0});
  return v;
}

std::vector<storage::BlockRequest> random4k(storage::IoDirection dir,
                                            int count, std::int64_t span,
                                            std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<storage::BlockRequest> v;
  for (int i = 0; i < count; ++i) {
    v.push_back({dir, rng.uniform(0, span - 8), 8, 0});
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  (void)Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("table2_devices");
  banner("Table II", "device microbenchmarks (4 KB random, 1 MB streaming)");

  stats::Table t({"", "SSD model", "SSD paper", "HDD model", "HDD paper"});

  auto row = [&](const char* label, const char* key, storage::IoDirection dir,
                 bool seq, double ssd_paper, double hdd_paper) {
    double ssd_v, hdd_v;
    {
      sim::Simulator sim;
      storage::SsdModel ssd(sim, storage::paper_ssd());
      ssd_v = measure(ssd, sim,
                      seq ? sequential(dir, 128)
                          : random4k(dir, 2000, ssd.capacity_sectors(), 1));
    }
    {
      sim::Simulator sim;
      auto p = storage::paper_hdd();
      p.anticipation_ms = 0;
      storage::HddModel hdd(sim, p);
      hdd_v = measure(hdd, sim,
                      seq ? sequential(dir, 128)
                          : random4k(dir, 500, hdd.capacity_sectors(), 2));
    }
    t.add_row({label, stats::Table::fmt("%.1f MB/s", ssd_v),
               stats::Table::fmt("%.0f MB/s", ssd_paper),
               stats::Table::fmt("%.1f MB/s", hdd_v),
               stats::Table::fmt("%.0f MB/s", hdd_paper)});
    std::string k = key;
    g.set(k + ".ssd_mbps", ssd_v);
    g.set(k + ".hdd_mbps", hdd_v);
  };

  row("Sequential Read", "seq_read", storage::IoDirection::kRead, true, 160,
      85);
  row("Random Read", "rand_read", storage::IoDirection::kRead, false, 60, 15);
  row("Sequential Write", "seq_write", storage::IoDirection::kWrite, true, 140,
      80);
  row("Random Write", "rand_write", storage::IoDirection::kWrite, false, 30, 5);
  t.print();
  std::printf(
      "  note: the paper's HDD random 4 KB rates (15/5 MB/s = 3750/1250 "
      "IOPS)\n  exceed raw 7200-RPM mechanics; the model reproduces the "
      "ordering and\n  the ~3x read/write asymmetry at physically consistent "
      "magnitudes.\n");
  footnote();
  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_table2_devices.json\n");
  }
  return 0;
}
