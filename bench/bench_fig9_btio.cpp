// Figure 9 — BTIO (NPB BT class C) execution times, 9/16/64/100 processes,
// stock vs iBridge.  All BTIO requests are regular random requests (640 B -
// 2160 B), so this exercises the non-fragment admission path.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

workloads::BtIoResult run_case(const Scale& scale, bool ibridge, int procs) {
  cluster::Cluster c(ibridge ? cluster::ClusterConfig::with_ibridge()
                             : cluster::ClusterConfig::stock());
  workloads::BtIoConfig cfg;
  cfg.nprocs = procs;
  cfg.time_steps = scale.btio_steps;
  return run_btio(c, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig9_btio");
  banner("Figure 9", "BTIO execution time (class C grid), stock vs iBridge");

  stats::Table t({"procs", "req size", "stock (s)", "iBridge (s)",
                  "reduction", "stock I/O frac", "iBridge I/O frac"});
  for (int procs : {9, 16, 64, 100}) {
    const auto stock = run_case(scale, false, procs);
    const auto ib = run_case(scale, true, procs);
    workloads::BtIoConfig cfg;
    cfg.nprocs = procs;
    t.add_row(
        {std::to_string(procs), std::to_string(cfg.request_bytes()) + " B",
         stats::Table::fmt("%.2f", stock.elapsed.to_seconds()),
         stats::Table::fmt("%.2f", ib.elapsed.to_seconds()),
         stats::Table::fmt(
             "%.0f%%", 100.0 * (1.0 - ib.elapsed.to_seconds() /
                                          stock.elapsed.to_seconds())),
         stats::Table::fmt("%.0f%%", 100.0 * stock.io_time.to_seconds() /
                                         stock.elapsed.to_seconds()),
         stats::Table::fmt("%.0f%%", 100.0 * ib.io_time.to_seconds() /
                                         ib.elapsed.to_seconds())});
    // Built stepwise: the one-expression "p" + to_string(procs) form trips
    // GCC 12's -Werror=restrict false positive at -O3.
    std::string p = "p";
    p += std::to_string(procs);
    g.set("stock." + p + ".elapsed_s", stock.elapsed.to_seconds());
    g.set("ibridge." + p + ".elapsed_s", ib.elapsed.to_seconds());
    g.set("stock." + p + ".io_s", stock.io_time.to_seconds());
    g.set("ibridge." + p + ".io_s", ib.io_time.to_seconds());
  }
  t.print();
  std::printf("  paper: reductions 45%%/55%%/61%%/59%%; I/O fraction drops "
              "from 58%% to 4%% on average\n");
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig9_btio.json\n");
  }
  return 0;
}
