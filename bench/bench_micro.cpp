// Google-benchmark microbenchmarks of the simulator's hot paths: event
// dispatch, scheduler operations, layout decomposition, mapping-table
// lookups, and the admission estimate.  These guard the simulator's own
// performance (wall-clock per simulated request), not the modelled system.
#include <benchmark/benchmark.h>

#include "core/mapping_table.hpp"
#include "core/return_estimator.hpp"
#include "core/service_time.hpp"
#include "pvfs/layout.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/calibration.hpp"
#include "storage/hdd.hpp"
#include "storage/scheduler.hpp"

namespace {

using namespace ibridge;

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(sim::SimTime::micros(i), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_LayoutDecompose(benchmark::State& state) {
  pvfs::StripingLayout layout(8, sim::Bytes{64 * 1024});
  sim::Rng rng(1);
  std::int64_t sink = 0;
  for (auto _ : state) {
    const std::int64_t off = rng.uniform(0, 10'000'000'000LL);
    auto v = layout.decompose(sim::Offset{off}, sim::Bytes{65 * 1024});
    sink += static_cast<std::int64_t>(v.size());
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LayoutDecompose);

void BM_CfqAddPop(benchmark::State& state) {
  sim::Simulator sim;
  sim::Rng rng(2);
  for (auto _ : state) {
    storage::CfqScheduler sched;
    for (int i = 0; i < 64; ++i) {
      sched.add({storage::BlockRequest{storage::IoDirection::kRead,
                                       rng.uniform(0, 1'000'000), 128, i % 8},
                 sim.now(), sim::SimPromise<storage::BlockCompletion>(sim)});
    }
    std::int64_t head = 0;
    while (!sched.empty()) {
      auto b = sched.pop_next(head);
      head = b.end();
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CfqAddPop);

void BM_MappingTableLookup(benchmark::State& state) {
  core::MappingTable table;
  for (int i = 0; i < 10'000; ++i) {
    table.insert({1, sim::Offset{static_cast<std::int64_t>(i) * 10'000},
                  sim::Bytes{8000},
                  sim::Offset{static_cast<std::int64_t>(i) * 8000}, false,
                  core::CacheClass::kRegular, 1.0});
  }
  sim::Rng rng(3);
  for (auto _ : state) {
    const std::int64_t off = rng.uniform(0, 9999) * 10'000;
    benchmark::DoNotOptimize(
        table.coverage(1, sim::Offset{off + 100}, sim::Bytes{4000}));
  }
}
BENCHMARK(BM_MappingTableLookup);

void BM_ReturnEstimate(benchmark::State& state) {
  storage::SeekProfile profile({{1000, 0.5}, {1'000'000, 2.0}});
  profile.set_rotation(sim::SimTime::millis(2));
  profile.set_peak_bandwidth(85e6);
  core::ServiceTimeModel model(profile, 1.0 / 8.0);
  model.observe_disk(0, sim::Bytes{65536}, storage::IoDirection::kRead, 128);
  core::ReturnEstimator est(true);
  core::TBoard board{1.0, 2.0, 3.0, 4.0};
  // Self is piece 0 of a 4-piece parent: siblings enumerate servers 1..3.
  const core::SiblingSet siblings{sim::ServerId{0}, 4, 4, 0};
  sim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(
        model, rng.uniform(0, 1'000'000), sim::Bytes{8192},
        storage::IoDirection::kWrite, true, sim::ServerId{0}, siblings,
        board));
  }
}
BENCHMARK(BM_ReturnEstimate);

void BM_HddSubmitComplete(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    auto p = storage::paper_hdd();
    p.anticipation_ms = 0;
    storage::HddModel disk(sim, p);
    sim::Rng rng(5);
    for (int i = 0; i < 256; ++i) {
      disk.submit({storage::IoDirection::kRead,
                   rng.uniform(0, disk.capacity_sectors() - 128), 128, i % 8});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HddSubmitComplete);

}  // namespace
