// bench_scale — the million-rank scale campaign.
//
// Sweeps the cluster from 8 servers / 10^3 ranks to 512 servers / 10^5
// ranks (default) and 512 / 10^6 (--full), with every rank drawing its
// requests on demand from a per-rank exp::WorkloadStream — no materialized
// request list anywhere, so the workload's memory footprint is O(ranks),
// not O(requests).  Servers fold onto a bounded shard-group fleet
// (shard_group_size) with adaptive lookahead, so simulator state stays
// bounded while the modeled cluster grows 1000x.
//
//   bench_scale [--full] [--reps N] [--check] [--point small|mid|large]
//
// Emits ns/request (wall) and peak_rss_mb (wall) per point plus the
// deterministic model metrics (simulated seconds, requests, bytes) into
// BENCH_scale.json.
//
// --check gates the scale machinery against the classic core on the small
// point (exit 1 on failure):
//   * classic (shards=0) vs grouped+adaptive sharded runs must agree on
//     every timing-invariant checksum (requests, client bytes, server
//     bytes) — the request set is a pure function of the per-rank seeds;
//   * the grouped+adaptive sharded run must be byte-identical across
//     worker counts (elapsed ns, events executed, bytes);
//   * the steady-state serve path must be allocation-free: after a warmup
//     prefix on a stock cluster, the remaining requests must allocate
//     exactly zero times (global operator new is counted in-binary, as in
//     bench_simcore).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/cli.hpp"
#include "exp/gauge.hpp"
#include "exp/workload_stream.hpp"
#include "mpiio/mpi.hpp"
#include "workloads/trace.hpp"

// ------------------------------------------------- allocation counting ----
// Same idiom as bench_simcore: count every plain global operator new in the
// process; measured regions snapshot the counter before/after.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
// --trace-allocs diagnostics: when armed (during the steady-state window),
// the first few allocations dump a raw backtrace so the offending call
// site is identifiable without a heap profiler.
std::atomic<int> g_trace_budget{0};
}  // namespace

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace {
__attribute__((noinline)) void maybe_trace_alloc(std::size_t n) {
#if defined(__GLIBC__)
  if (g_trace_budget.load(std::memory_order_relaxed) > 0 &&
      g_trace_budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
    void* frames[32];
    const int depth = backtrace(frames, 32);
    std::fprintf(stderr, "---- alloc of %zu bytes ----\n", n);
    backtrace_symbols_fd(frames, depth, 2);
  }
#else
  (void)n;
#endif
}
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  maybe_trace_alloc(n);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

namespace wl = ibridge::workloads;
using ibridge::cluster::Cluster;
using ibridge::cluster::ClusterConfig;

constexpr std::int64_t kFileBytes = 4LL << 30;
constexpr int kReqsPerRank = 4;
bool g_trace_allocs = false;

/// One sweep cell: `ranks` MPI processes against `servers` data servers.
struct Point {
  int servers;
  std::int64_t ranks;
};

struct RunSpec {
  int servers = 8;
  std::int64_t ranks = 1000;
  int shards = 8;           ///< worker budget (0 = classic single simulator)
  int group_size = 1;       ///< servers per shard
  double adaptive_us = 0.0;
  bool ibridge = true;      ///< stock cluster when false (alloc phase)
  int reqs_per_rank = kReqsPerRank;
};

struct RunResult {
  std::int64_t sim_ns = 0;      ///< simulated elapsed incl. drain
  std::uint64_t requests = 0;
  std::int64_t client_bytes = 0;
  std::int64_t served_bytes = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
};

struct Shared {
  std::uint64_t requests = 0;
  std::int64_t bytes = 0;
};

/// One rank's life: draw kReqsPerRank requests from a private stream
/// seeded by the rank id and issue them synchronously.  The stream state
/// lives on the coroutine frame — O(1) per rank, zero shared workload
/// structures.
ibridge::sim::Task<> rank_body(ibridge::mpiio::MpiContext ctx,
                               ibridge::mpiio::MpiFile file, Shared* shared,
                               int reqs) {
  ibridge::exp::WorkloadStream stream =
      wl::TraceSynthesizer(wl::alegra_2744_profile())
          .stream(kFileBytes, 0x5ca1eULL ^ static_cast<std::uint64_t>(
                                               ctx.rank() * 2654435761ULL));
  for (int k = 0; k < reqs; ++k) {
    const ibridge::exp::StreamRecord r = stream.next();
    std::int64_t off = r.offset;
    std::int64_t size = std::min<std::int64_t>(r.size, kFileBytes);
    if (off + size > kFileBytes) off = kFileBytes - size;
    if (r.write) {
      co_await file.write_at(ctx.rank(), off, size);
    } else {
      co_await file.read_at(ctx.rank(), off, size);
    }
    ++shared->requests;
    shared->bytes += size;
  }
}

ClusterConfig make_config(const RunSpec& spec) {
  ClusterConfig cc =
      spec.ibridge ? ClusterConfig::with_ibridge() : ClusterConfig::stock();
  cc.data_servers = spec.servers;
  cc.shards = spec.shards;
  cc.shard_group_size = spec.group_size;
  cc.adaptive_window_us = spec.adaptive_us;
  cc.procs_per_node = 64;
  cc.client_nodes = static_cast<int>(
      std::max<std::int64_t>(1, spec.ranks / cc.procs_per_node));
  return cc;
}

/// Run one cell; `steady_allocs_per_req` (when non-null) receives the
/// allocs/request over the post-warmup half of the run.
RunResult run_cell(const RunSpec& spec, double* steady_allocs_per_req) {
  Cluster cluster(make_config(spec));
  auto fh = cluster.create_file("scale.dat", kFileBytes);
  ibridge::mpiio::MpiFile file(cluster.client(), fh);

  Shared shared;
  ibridge::mpiio::MpiEnvironment env(cluster.sim(), cluster.client(),
                                     static_cast<int>(spec.ranks));
  const ibridge::sim::SimTime t0 = cluster.sim().now();
  ibridge::exp::Stopwatch sw;
  env.launch([&](ibridge::mpiio::MpiContext ctx) {
    return rank_body(ctx, file, &shared, spec.reqs_per_rank);
  });

  const std::uint64_t total_reqs = static_cast<std::uint64_t>(spec.ranks) *
                                   static_cast<std::uint64_t>(
                                       spec.reqs_per_rank);
  std::uint64_t steady_reqs = 0;
  std::uint64_t a0 = 0, a1 = 0;
  if (steady_allocs_per_req != nullptr) {
    // Warmup until half of the requests completed (pools, rings, and the
    // event heap reach their high-water marks — these grow in rare bursts,
    // so the plateau needs a long runway), count allocations over the
    // mid-flight 50%..87.5% window, then run the tail unmeasured — rank
    // completion/teardown churn stays out of the steady-state count.
    cluster.sim().run_while_pending(
        [&] { return shared.requests >= total_reqs / 2; });
    const std::uint64_t measured_from = shared.requests;
    a0 = g_new_calls.load(std::memory_order_relaxed);
    if (g_trace_allocs) g_trace_budget.store(24, std::memory_order_relaxed);
    cluster.sim().run_while_pending(
        [&] { return shared.requests >= (total_reqs * 7) / 8; });
    g_trace_budget.store(0, std::memory_order_relaxed);
    a1 = g_new_calls.load(std::memory_order_relaxed);
    steady_reqs = shared.requests - measured_from;
    cluster.sim().run_while_pending([&] { return env.finished(); });
  } else {
    cluster.sim().run_while_pending([&] { return env.finished(); });
  }
  const ibridge::sim::SimTime flushed = cluster.drain();

  RunResult r;
  r.wall_s = sw.seconds();
  r.sim_ns = (flushed - t0).ns();
  r.requests = shared.requests;
  r.client_bytes = shared.bytes;
  r.served_bytes = cluster.total_bytes_served().count();
  r.events = cluster.sim().events_executed();  // delegates to the group
  if (steady_allocs_per_req != nullptr) {
    *steady_allocs_per_req =
        steady_reqs == 0
            ? -1.0
            : static_cast<double>(a1 - a0) / static_cast<double>(steady_reqs);
  }
  return r;
}

/// Sweep spec for a point: servers fold onto at most 8 server shards and
/// windows widen up to 50 us beyond the wire latency.  The worker budget
/// follows the host (threads beyond the core count only add barrier
/// context switches); the model metrics are worker-invariant, so the
/// tracked baseline holds on any host.
RunSpec spec_for(const Point& p) {
  RunSpec s;
  s.servers = p.servers;
  s.ranks = p.ranks;
  const unsigned hw = std::thread::hardware_concurrency();
  s.shards = static_cast<int>(std::clamp(hw, 1u, 8u));
  s.group_size = std::max(1, p.servers / 8);
  s.adaptive_us = 50.0;
  return s;
}

std::string key(const Point& p, const char* metric) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "p%dx%lld.%s", p.servers,
                static_cast<long long>(p.ranks), metric);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using ibridge::exp::require_int;
  bool full = false;
  bool check = false;
  int reps = 1;
  std::string point_sel;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--full") {
      full = true;
    } else if (a == "--check") {
      check = true;
    } else if (a == "--reps" && i + 1 < argc) {
      reps = static_cast<int>(
          require_int("bench_scale", "--reps", argv[++i], 1, 100));
    } else if (a == "--trace-allocs") {
      g_trace_allocs = true;
    } else if (a == "--point" && i + 1 < argc) {
      point_sel = argv[++i];
      if (point_sel != "small" && point_sel != "mid" && point_sel != "large") {
        std::fprintf(stderr, "bench_scale: unknown --point '%s'\n",
                     point_sel.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--full] [--reps N] [--check] "
                   "[--point small|mid|large]\n");
      return 2;
    }
  }

  std::vector<Point> points{{8, 1'000}, {64, 10'000}, {512, 100'000}};
  if (!point_sel.empty()) {
    // CI cells: one point per run keeps the job under its time budget; the
    // tracked baseline only pins the small point's model keys, so a subset
    // run still diffs cleanly.
    points = {point_sel == "small"  ? points[0]
              : point_sel == "mid"  ? points[1]
                                    : points[2]};
  }
  if (full) points.push_back({512, 1'000'000});

  ibridge::exp::Gauge g("scale");
  std::printf("scale campaign: per-rank streamed requests (%d/rank), shard "
              "groups, adaptive lookahead\n",
              kReqsPerRank);
  std::printf("  %-18s %12s %12s %12s %10s %12s\n", "point", "requests",
              "sim_s", "events", "wall_s", "ns/request");

  for (const Point& p : points) {
    const RunSpec spec = spec_for(p);
    RunResult best{};
    for (int rep = 0; rep < reps; ++rep) {
      const RunResult r = run_cell(spec, nullptr);
      if (rep == 0 || r.wall_s < best.wall_s) best = r;
    }
    const double ns_per_req =
        best.requests == 0
            ? 0.0
            : best.wall_s * 1e9 / static_cast<double>(best.requests);
    std::printf("  %6dsrv %8lldrk %12llu %12.3f %12llu %10.2f %12.1f\n",
                p.servers, static_cast<long long>(p.ranks),
                static_cast<unsigned long long>(best.requests),
                static_cast<double>(best.sim_ns) / 1e9,
                static_cast<unsigned long long>(best.events), best.wall_s,
                ns_per_req);
    g.set(key(p, "requests"), static_cast<double>(best.requests));
    g.set(key(p, "sim_seconds"), static_cast<double>(best.sim_ns) / 1e9);
    g.set(key(p, "client_bytes"), static_cast<double>(best.client_bytes));
    g.set(key(p, "served_bytes"), static_cast<double>(best.served_bytes));
    g.set(key(p, "events"), static_cast<double>(best.events));
    g.set_wall(key(p, "wall_s"), best.wall_s);
    g.set_wall(key(p, "ns_per_request"), ns_per_req);
  }
  g.set_wall("peak_rss_mb", ibridge::exp::peak_rss_mb());

  int rc = 0;
  if (check) {
    const Point small{8, 1'000};  // gates always run at the small point

    // 1. Classic vs grouped+adaptive sharded: timing-invariant checksums.
    RunSpec classic = spec_for(small);
    classic.shards = 0;
    classic.group_size = 1;
    classic.adaptive_us = 0.0;
    const RunResult rc_classic = run_cell(classic, nullptr);
    const RunResult rc_sharded = run_cell(spec_for(small), nullptr);
    const bool classic_match =
        rc_classic.requests == rc_sharded.requests &&
        rc_classic.client_bytes == rc_sharded.client_bytes &&
        rc_classic.served_bytes == rc_sharded.served_bytes;
    if (!classic_match) {
      std::fprintf(stderr,
                   "bench_scale: FAIL classic-vs-sharded checksums "
                   "(reqs %llu/%llu, client %lld/%lld, served %lld/%lld)\n",
                   static_cast<unsigned long long>(rc_classic.requests),
                   static_cast<unsigned long long>(rc_sharded.requests),
                   static_cast<long long>(rc_classic.client_bytes),
                   static_cast<long long>(rc_sharded.client_bytes),
                   static_cast<long long>(rc_classic.served_bytes),
                   static_cast<long long>(rc_sharded.served_bytes));
      rc = 1;
    }
    g.set("check.classic_match", classic_match ? 1.0 : 0.0);

    // 2. Worker-count identity at the grouped+adaptive config: the full
    // model metrics must be byte-identical at 1 vs 2 worker threads.
    RunSpec w1 = spec_for(small);
    w1.shards = 1;
    RunSpec w2 = spec_for(small);
    w2.shards = 2;
    const RunResult rw1 = run_cell(w1, nullptr);
    const RunResult rw2 = run_cell(w2, nullptr);
    const bool worker_match = rw1.sim_ns == rw2.sim_ns &&
                              rw1.events == rw2.events &&
                              rw1.client_bytes == rw2.client_bytes &&
                              rw1.served_bytes == rw2.served_bytes;
    if (!worker_match) {
      std::fprintf(stderr,
                   "bench_scale: FAIL worker-count identity "
                   "(sim_ns %lld/%lld, events %llu/%llu)\n",
                   static_cast<long long>(rw1.sim_ns),
                   static_cast<long long>(rw2.sim_ns),
                   static_cast<unsigned long long>(rw1.events),
                   static_cast<unsigned long long>(rw2.events));
      rc = 1;
    }
    g.set("check.worker_match", worker_match ? 1.0 : 0.0);

    // 3. Allocation-free steady state on a stock cluster (no cache
    // daemons), classic core so the count sees only the serve path.
    // 48 requests/rank gives the warmup half a long runway: every pool,
    // ring, histogram lane, and scheduler map reaches its high-water mark
    // before the measured window opens.
    RunSpec stock = spec_for(small);
    stock.shards = 0;
    stock.adaptive_us = 0.0;
    stock.ibridge = false;
    stock.reqs_per_rank = 48;
    double steady = -1.0;
    run_cell(stock, &steady);
    if (steady != 0.0) {
      std::fprintf(stderr,
                   "bench_scale: FAIL steady-state allocation freedom "
                   "(%.6f allocs/request after warmup)\n",
                   steady);
      rc = 1;
    }
    g.set("check.steady_allocs_per_request", steady);
    std::printf("  --check: classic %s, workers %s, steady allocs/req %.3f\n",
                classic_match ? "MATCH" : "MISMATCH",
                worker_match ? "MATCH" : "MISMATCH", steady);
  }

  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_scale.json\n");
  }
  return rc;
}
