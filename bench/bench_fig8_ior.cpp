// Figure 8 — ior-mpi-io (ASCI Purple), 64 processes, random effective
// access pattern: request sizes 33/64/65/129 KB, writes and reads, stock vs
// iBridge.
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, bool ibridge, bool write,
                std::int64_t req) {
  cluster::Cluster c(ibridge ? cluster::ClusterConfig::with_ibridge()
                             : cluster::ClusterConfig::stock());
  workloads::IorMpiIoConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = req;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = write;
  if (!write) {  // repeated-execution read protocol on both systems
    run_ior_mpi_io(c, cfg);
    run_ior_mpi_io(c, cfg);
  }
  return mbps_total(run_ior_mpi_io(c, cfg));
}

void table_for(const Scale& scale, bool write, exp::Gauge& g) {
  banner(write ? "Figure 8(a)" : "Figure 8(b)",
         write ? "ior-mpi-io writes" : "ior-mpi-io reads");
  stats::Table t({"req size", "stock", "iBridge", "improvement"});
  for (std::int64_t kb : {33, 64, 65, 129}) {
    const double stock = run_case(scale, false, write, kb * 1024);
    const double ib = run_case(scale, true, write, kb * 1024);
    const std::string stem =
        std::string(write ? "write." : "read.") + std::to_string(kb) + "kb";
    g.set(stem + ".stock", stock);
    g.set(stem + ".ibridge", ib);
    t.add_row({std::to_string(kb) + " KB", stats::Table::fmt("%.1f", stock),
               stats::Table::fmt("%.1f", ib),
               stats::Table::fmt("%+.0f%%", 100.0 * (ib / stock - 1.0))});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig8_ior");
  table_for(scale, /*write=*/true, g);
  table_for(scale, /*write=*/false, g);
  std::printf("  paper: average improvement 169%% for writes, 48%% for "
              "reads; 64 KB aligned unchanged;\n  even 129 KB (4%% SSD "
              "share) gains 60%%/35%%\n");
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr, "warning: could not write BENCH_fig8_ior.json\n");
  }
  return 0;
}
