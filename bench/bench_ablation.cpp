// Ablation studies beyond the paper's figures — each isolates one design
// choice DESIGN.md calls out:
//   1. Equation (3) fragment boost on/off
//   2. Eq. (1) decay weight (1/8 vs alternatives)
//   3. log-structured vs in-place SSD cache writes (emulated by forcing
//      random placement through a tiny segment size)
//   4. CFQ vs Elevator vs Noop on the data-server disks
//   5. write-back daemon on/off (drain-only)
#include "bench/bench_common.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run65k(const Scale& scale, const cluster::ClusterConfig& cc,
              bool write = true) {
  cluster::Cluster c(cc);
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = 65 * 1024;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes / 2;
  cfg.write = write;
  return mbps_total(run_mpi_io_test(c, cfg));
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);

  banner("Ablation 1", "Equation (3) striping-magnification boost");
  {
    core::IBridgeConfig on;
    core::IBridgeConfig off;
    off.fragment_boost = false;
    stats::Table t({"variant", "65 KB write MB/s"});
    t.add_row({"boost on (paper)",
               stats::Table::fmt(
                   "%.1f", run65k(scale,
                                  cluster::ClusterConfig::with_ibridge(on)))});
    t.add_row({"boost off",
               stats::Table::fmt(
                   "%.1f", run65k(scale,
                                  cluster::ClusterConfig::with_ibridge(off)))});
    t.print();
  }

  banner("Ablation 2", "Equation (1) decay weight on the old average");
  {
    stats::Table t({"old weight", "65 KB write MB/s"});
    for (double w : {1.0 / 8.0, 1.0 / 2.0, 7.0 / 8.0}) {
      core::IBridgeConfig ib;
      ib.t_old_weight = w;
      t.add_row({stats::Table::fmt("%.3f", w),
                 stats::Table::fmt(
                     "%.1f",
                     run65k(scale, cluster::ClusterConfig::with_ibridge(ib)))});
    }
    t.print();
    std::printf("  paper uses 1/8 (Linux anticipatory-scheduler weights)\n");
  }

  banner("Ablation 3",
         "admission policy: iBridge vs always-small vs hot-block (BTIO)");
  {
    stats::Table t({"policy", "BTIO exec (s)"});
    for (auto [label, policy] :
         {std::pair{"return-based (iBridge)",
                    core::AdmissionPolicy::kReturnBased},
          std::pair{"always-small", core::AdmissionPolicy::kAlwaysSmall},
          std::pair{"hot-block (Hystor-like)",
                    core::AdmissionPolicy::kHotBlock}}) {
      core::IBridgeConfig ib;
      ib.admission = policy;
      cluster::Cluster c(cluster::ClusterConfig::with_ibridge(ib));
      workloads::BtIoConfig cfg;
      cfg.nprocs = 16;
      cfg.time_steps = scale.btio_steps;
      t.add_row({label, stats::Table::fmt(
                            "%.2f", run_btio(c, cfg).elapsed.to_seconds())});
    }
    t.print();
    std::printf("  hot-block caches a region only after repeated access, so "
                "one-pass checkpoint\n  dumps miss it; always-small matches "
                "iBridge here but cannot prioritize fragments\n  under "
                "capacity pressure (Figure 12)\n");
  }

  banner("Ablation 4", "disk anticipation window (CFQ idling)");
  {
    stats::Table t({"anticipation", "65 KB read MB/s (stock)"});
    for (double ms : {0.0, 1.2, 3.0}) {
      auto cc = cluster::ClusterConfig::stock();
      cc.server.hdd.anticipation_ms = ms;
      t.add_row({stats::Table::fmt("%.1f ms", ms),
                 stats::Table::fmt("%.1f", run65k(scale, cc, false))});
    }
    t.print();
  }

  banner("Ablation 5", "write-back daemon interval");
  {
    stats::Table t({"interval", "65 KB write MB/s"});
    for (int ms : {10, 50, 500}) {
      core::IBridgeConfig ib;
      ib.writeback_interval = sim::SimTime::millis(ms);
      t.add_row({stats::Table::fmt("%lld ms", static_cast<long long>(ms)),
                 stats::Table::fmt(
                     "%.1f",
                     run65k(scale, cluster::ClusterConfig::with_ibridge(ib)))});
    }
    t.print();
  }

  footnote();
  return 0;
}
