// Figures 4 and 5 — mpi-io-test with iBridge.
//
//  Fig. 4(a) writes / 4(b) reads, 64 processes: request sizes 33/65/129 KB
//  and 64 KB requests at offsets +0/+1/+10/+20 KB, stock vs iBridge.
//  Fig. 5: block-level request-size distribution with iBridge for the
//  64 KB + 10 KB-offset read case.
//
// Read runs with iBridge use one warm-up execution first: the paper's read
// benefit comes from fragments identified and cached in earlier runs of the
// same program ("the data access patterns ... are generally consistent from
// one run to another").
#include "bench/bench_common.hpp"
#include "exp/gauge.hpp"

using namespace ibridge;
using namespace ibridge::bench;

namespace {

double run_case(const Scale& scale, bool ibridge, bool write,
                std::int64_t size, std::int64_t shift,
                double* ssd_share = nullptr, cluster::Cluster* ext = nullptr) {
  std::unique_ptr<cluster::Cluster> owned;
  cluster::Cluster* c = ext;
  if (!c) {
    owned = std::make_unique<cluster::Cluster>(
        ibridge ? cluster::ClusterConfig::with_ibridge()
                : cluster::ClusterConfig::stock());
    c = owned.get();
  }
  workloads::MpiIoTestConfig cfg;
  cfg.nprocs = 64;
  cfg.request_size = size;
  cfg.offset_shift = shift;
  cfg.file_bytes = scale.file_bytes;
  cfg.access_bytes = scale.access_bytes;
  cfg.write = write;
  if (!write) {
    // Reads use a repeated-execution protocol on BOTH systems (identical
    // measurement conditions): two unmeasured runs, then the measured one.
    // For iBridge the warm-ups cache the fragments, as the paper's
    // repeated-program-runs rationale describes.
    run_mpi_io_test(*c, cfg);
    run_mpi_io_test(*c, cfg);
  }
  const sim::Bytes ssd_before = c->ssd_bytes_served();
  const auto r = run_mpi_io_test(*c, cfg);
  if (ssd_share) {
    *ssd_share =
        r.bytes > 0
            ? 100.0 *
                  static_cast<double>(
                      (c->ssd_bytes_served() - ssd_before).count()) /
                  static_cast<double>(r.bytes)
            : 0.0;
  }
  return mbps_total(r);
}

void figure4(const Scale& scale, bool write, exp::Gauge& g) {
  banner(write ? "Figure 4(a)" : "Figure 4(b)",
         write ? "mpi-io-test writes, 64 procs, stock vs iBridge"
               : "mpi-io-test reads, 64 procs, stock vs iBridge (warm)");
  stats::Table t({"case", "stock", "iBridge", "improvement", "SSD share"});
  struct Case {
    std::string label;
    std::string key;  ///< gauge-safe case name, e.g. "33KB" / "64KB+10KB"
    std::int64_t size, shift;
  };
  std::vector<Case> cases;
  for (std::int64_t kb : {33, 65, 129}) {
    // Built stepwise: the one-expression concatenation trips GCC 12's
    // -Werror=restrict false positive at -O3 (see bench_fig2_unaligned).
    std::string label = std::to_string(kb);
    label += " KB";
    std::string key = std::to_string(kb);
    key += "KB";
    cases.push_back({std::move(label), std::move(key), kb * 1024, 0});
  }
  for (std::int64_t kb : {0, 1, 10, 20}) {
    std::string label = "64 KB +";
    label += std::to_string(kb);
    label += " KB";
    std::string key = "64KB+";
    key += std::to_string(kb);
    key += "KB";
    cases.push_back({std::move(label), std::move(key), 64 * 1024,
                     kb * 1024});
  }
  const std::string section = write ? "write." : "read.";
  for (const auto& k : cases) {
    const double stock = run_case(scale, false, write, k.size, k.shift);
    double share = 0.0;
    const double ib = run_case(scale, true, write, k.size, k.shift, &share);
    t.add_row({k.label, stats::Table::fmt("%.1f", stock),
               stats::Table::fmt("%.1f", ib),
               stats::Table::fmt("%+.0f%%", 100.0 * (ib / stock - 1.0)),
               stats::Table::fmt("%.0f%%", share)});
    g.set(section + k.key + ".stock", stock);
    g.set(section + k.key + ".ibridge", ib);
    g.set(section + k.key + ".ssd_share_pct", share);
  }
  t.print();
  if (write) {
    std::printf("  paper anchors (writes): +105%%/+183%%/+171%% for "
                "33/65/129 KB; aligned ~167 MB/s\n");
  } else {
    std::printf("  paper: SSD shares 19%%/10%%/4%% for 33/65/129 KB; "
                "offsets nearly close the gap to aligned\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::parse(argc, argv);
  exp::Stopwatch sw;
  exp::Gauge g("fig4_mpiiotest");
  figure4(scale, /*write=*/true, g);
  figure4(scale, /*write=*/false, g);

  banner("Figure 5",
         "block-size distribution with iBridge, 64 KB + 10 KB offset reads");
  {
    cluster::Cluster c(cluster::ClusterConfig::with_ibridge());
    // Warm-ups run inside run_case; count only the measured run's
    // dispatches by re-arming the trace after enabling it (run_case clears
    // nothing itself, so enable collects everything; we clear below).
    c.enable_disk_trace(0);
    workloads::MpiIoTestConfig warm;
    warm.nprocs = 64;
    warm.request_size = 64 * 1024;
    warm.offset_shift = 10 * 1024;
    warm.file_bytes = scale.file_bytes;
    warm.access_bytes = scale.access_bytes;
    run_mpi_io_test(c, warm);
    run_mpi_io_test(c, warm);
    c.server(0).disk().trace().clear();
    run_mpi_io_test(c, warm);
    const auto& h = c.server(0).disk().trace().size_histogram();
    for (const auto& [sectors, count] : h.top(6)) {
      std::printf("    %5lld sectors : %5.1f%%\n",
                  static_cast<long long>(sectors),
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(h.total()));
    }
    std::printf("  paper: 128- and 256-sector requests predominate once "
                "fragments go to the SSDs\n");
    std::printf("  cluster-wide cache metrics after the measured run:\n");
    print_metrics(c, "cache.");
  }
  footnote();

  g.set_wall("seconds", sw.seconds());
  if (!g.write_file()) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_fig4_mpiiotest.json\n");
  }
  return 0;
}
