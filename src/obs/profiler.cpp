#include "obs/profiler.hpp"

#include <cstring>
#include <string>

#include "obs/metrics.hpp"

namespace ibridge::obs {

int SimProfiler::category(const char* name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (std::strcmp(names_[i], name) == 0) return static_cast<int>(i);
  }
  names_.push_back(name);
  event_counts_.push_back(0);
  model_ns_.push_back(0);
  wall_ns_.push_back(0);
  // Keep already-created shard lanes in sync so a late interning can never
  // index past a lane's counters.
  for (ProfilerLane& lane : lanes_) {
    lane.event_counts_.push_back(0);
    lane.model_ns_.push_back(0);
    lane.wall_ns_.push_back(0);
  }
  return static_cast<int>(names_.size()) - 1;
}

void SimProfiler::publish(MetricsRegistry& reg) const {
  reg.counter("sim.events") =
      static_cast<std::int64_t>(events_total());
  reg.gauge("sim.queue_depth") = static_cast<double>(queue_depth_last());
  reg.gauge("prof.queue_depth.mean") = queue_depth_mean();
  reg.gauge("prof.queue_depth.max") =
      static_cast<double>(queue_depth_peak());
  for (std::size_t c = 0; c < names_.size(); ++c) {
    const std::string suffix(names_[c]);
    reg.counter("prof.events." + suffix) = static_cast<std::int64_t>(
        events(static_cast<int>(c)));
    reg.gauge("prof.model_ms." + suffix) =
        static_cast<double>(model_ns(static_cast<int>(c))) / 1e6;
  }
  for (std::size_t s = 0; s < heat_ops_.size(); ++s) {
    const std::string prefix = "srv" + std::to_string(s) + ".prof.";
    reg.counter(prefix + "heat_ops") =
        static_cast<std::int64_t>(heat_ops_[s]);
    reg.counter(prefix + "heat_bytes") = heat_bytes_[s];
  }
}

}  // namespace ibridge::obs
