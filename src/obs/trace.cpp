#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/simulator.hpp"

namespace ibridge::obs {

void TraceSession::enable_flight_recorder(FlightConfig cfg) {
  assert(next_id_ == 0 && "enable_flight_recorder before recording spans");
  flight_ = true;
  flight_cfg_ = cfg;
}

TrackId TraceSession::track(const std::string& process,
                            const std::string& thread) {
  const auto key = std::make_pair(process, thread);
  const auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{process, thread});
  track_index_.emplace(key, id);
  return id;
}

SpanId TraceSession::begin(TrackId trk, const char* name, const char* cat,
                           RequestId request, SpanId parent) {
  SpanRecord r;
  r.id = ++next_id_;
  r.parent = parent;
  r.request = request;
  r.track = trk;
  r.name = name;
  r.category = cat;
  r.start = sim_.now();
  if (!flight_) {
    spans_.push_back(std::move(r));
    return next_id_;
  }
  const SpanId id = r.id;
  if (request != 0) {
    Pending& p = pending_[request];
    if (p.ids.empty()) p.root = id;
    p.ids.push_back(id);
  }
  live_.emplace(id, std::move(r));
  return id;
}

SpanId TraceSession::child(SpanId parent, const char* name, const char* cat) {
  assert(parent != 0 && "child() needs a live parent span");
  if (!flight_) {
    const SpanRecord& p = span(parent);
    return begin(p.track, name, cat, p.request, parent);
  }
  const SpanRecord* p = find_live(parent);
  if (p == nullptr) {
    // Parent already retired (request committed) — record the child as an
    // unanchored background span; exporters skip kNoTrack spans.
    return begin(kNoTrack, name, cat, 0, 0);
  }
  return begin(p->track, name, cat, p->request, parent);
}

void TraceSession::end(SpanId id) {
  if (id == 0) return;
  if (!flight_) {
    SpanRecord& r = mutable_span(id);
    assert(r.open && "span ended twice");
    r.finish = sim_.now();
    r.open = false;
    return;
  }
  SpanRecord* r = find_live(id);
  if (r == nullptr) return;  // span's request was committed and dropped
  assert(r->open && "span ended twice");
  r->finish = sim_.now();
  r->open = false;
  if (r->request != 0) {
    const auto p = pending_.find(r->request);
    if (p != pending_.end()) {
      if (p->second.root == id) {
        commit_request(r->request, r->finish - r->start);
      }
      // Non-root spans stay in live_ until their request commits.
      return;
    }
  }
  retire_background(id);
}

SpanId TraceSession::complete(TrackId trk, const char* name, const char* cat,
                              sim::SimTime start, sim::SimTime duration,
                              RequestId request) {
  const SpanId id = begin(trk, name, cat, request, 0);
  if (!flight_) {
    SpanRecord& r = mutable_span(id);
    r.start = start;
    r.finish = start + duration;
    r.open = false;
    return id;
  }
  SpanRecord* r = find_live(id);
  assert(r != nullptr);
  r->start = start;
  r->finish = start + duration;
  r->open = false;
  // Background completes retire through the linger FIFO so the arg() calls
  // that conventionally follow complete() still land; request-owned
  // completes wait in live_ for their request to commit.
  if (r->request == 0 || pending_.count(r->request) == 0) {
    retire_background(id);
  }
  return id;
}

void TraceSession::arg(SpanId id, const char* key, std::int64_t value) {
  if (id == 0) return;
  if (!flight_) {
    mutable_span(id).args.push_back(SpanArg{key, value, {}, true});
    return;
  }
  if (SpanRecord* r = find_live(id)) {
    r->args.push_back(SpanArg{key, value, {}, true});
  }
}

void TraceSession::arg(SpanId id, const char* key, std::string value) {
  if (id == 0) return;
  if (!flight_) {
    mutable_span(id).args.push_back(SpanArg{key, 0, std::move(value), false});
    return;
  }
  if (SpanRecord* r = find_live(id)) {
    r->args.push_back(SpanArg{key, 0, std::move(value), false});
  }
}

void TraceSession::counter(const std::string& name, double value) {
  counters_.push_back(CounterSample{name, sim_.now(), value});
  if (flight_ && counters_.size() > flight_cfg_.counter_capacity) {
    // Ring semantics via oldest-half compaction (amortized O(1)).
    counters_.erase(counters_.begin(),
                    counters_.begin() +
                        static_cast<std::ptrdiff_t>(counters_.size() / 2));
  }
}

std::vector<RequestId> TraceSession::retained_request_ids() const {
  std::vector<RequestId> ids;
  ids.reserve(retained_.size());
  for (const auto& [req, _] : retained_) ids.push_back(req);
  return ids;
}

SpanRecord* TraceSession::find_live(SpanId id) {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

void TraceSession::commit_request(RequestId request, sim::SimTime duration) {
  Pending p = std::move(pending_.at(request));
  pending_.erase(request);
  if (retained_.count(request) != 0) {
    // A span arrived under an already-committed request id and re-opened
    // it; retire its closed spans as background rather than re-deciding.
    for (const SpanId id : p.ids) {
      const auto it = live_.find(id);
      if (it != live_.end() && !it->second.open) retire_background(id);
    }
    return;
  }

  const bool sampled =
      flight_cfg_.sample_every != 0 &&
      (request - 1) % flight_cfg_.sample_every == 0;
  const std::int64_t dns = duration.ns();
  bool slow = false;
  if (flight_cfg_.keep_slowest > 0) {
    slow = slow_index_.size() < flight_cfg_.keep_slowest ||
           std::make_pair(dns, request) > *slow_index_.begin();
  }

  if (!sampled && !slow) {
    for (const SpanId id : p.ids) {
      const auto it = live_.find(id);
      // Spans still open (async staging) stay live and retire as
      // background when they end.
      if (it != live_.end() && !it->second.open) live_.erase(it);
    }
    return;
  }

  Retained r;
  r.sampled = sampled;
  r.slow = slow;
  r.spans.reserve(p.ids.size());
  for (const SpanId id : p.ids) {
    const auto it = live_.find(id);
    if (it == live_.end() || it->second.open) continue;
    r.spans.push_back(std::move(it->second));
    live_.erase(it);
  }
  retained_.emplace(request, std::move(r));

  if (slow) {
    slow_index_.emplace(dns, request);
    if (slow_index_.size() > flight_cfg_.keep_slowest) {
      const RequestId victim = slow_index_.begin()->second;
      slow_index_.erase(slow_index_.begin());
      const auto vit = retained_.find(victim);
      if (vit != retained_.end()) {
        vit->second.slow = false;
        drop_retained_if_unreferenced(victim);
      }
    }
  }
  if (sampled) {
    sampled_fifo_.push_back(request);
    if (sampled_fifo_.size() > flight_cfg_.sampled_capacity) {
      const RequestId oldest = sampled_fifo_.front();
      sampled_fifo_.erase(sampled_fifo_.begin());
      const auto oit = retained_.find(oldest);
      if (oit != retained_.end()) {
        oit->second.sampled = false;
        drop_retained_if_unreferenced(oldest);
      }
    }
  }
}

void TraceSession::drop_retained_if_unreferenced(RequestId request) {
  const auto it = retained_.find(request);
  if (it != retained_.end() && !it->second.slow && !it->second.sampled) {
    retained_.erase(it);
  }
}

void TraceSession::retire_background(SpanId id) {
  bg_linger_.push_back(id);
  if (bg_linger_.size() <= kBackgroundLinger) return;
  const SpanId oldest = bg_linger_.front();
  bg_linger_.erase(bg_linger_.begin());
  const auto it = live_.find(oldest);
  if (it != live_.end()) {
    background_.push_back(std::move(it->second));
    live_.erase(it);
    if (background_.size() > flight_cfg_.background_capacity) {
      background_.erase(
          background_.begin(),
          background_.begin() +
              static_cast<std::ptrdiff_t>(background_.size() / 2));
    }
  }
}

TraceSession::SpanView TraceSession::export_spans() const {
  SpanView v;
  if (!flight_) {
    v.alias_ = &spans_;
    return v;
  }
  std::vector<SpanRecord>& out = v.owned_;
  std::size_t total = background_.size() + live_.size();
  for (const auto& [_, r] : retained_) total += r.spans.size();
  out.reserve(total);
  for (const auto& [_, r] : retained_) {
    out.insert(out.end(), r.spans.begin(), r.spans.end());
  }
  out.insert(out.end(), background_.begin(), background_.end());
  for (const auto& [_, s] : live_) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  // Renumber to the dense 1..n ids exporters index with; parents that were
  // not retained become 0 (the span renders as a lane root).
  std::vector<SpanId> old_ids;
  old_ids.reserve(out.size());
  for (const SpanRecord& s : out) old_ids.push_back(s.id);
  const auto remap = [&](SpanId old) -> SpanId {
    if (old == 0) return 0;
    const auto it = std::lower_bound(old_ids.begin(), old_ids.end(), old);
    if (it == old_ids.end() || *it != old) return 0;
    return static_cast<SpanId>(it - old_ids.begin()) + 1;
  };
  for (SpanRecord& s : out) s.parent = remap(s.parent);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<SpanId>(i) + 1;
  }
  return v;
}

}  // namespace ibridge::obs
