#include "obs/trace.hpp"

#include <cassert>
#include <utility>

#include "sim/simulator.hpp"

namespace ibridge::obs {

TrackId TraceSession::track(const std::string& process,
                            const std::string& thread) {
  const auto key = std::make_pair(process, thread);
  const auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{process, thread});
  track_index_.emplace(key, id);
  return id;
}

SpanId TraceSession::begin(TrackId trk, const char* name, const char* cat,
                           RequestId request, SpanId parent) {
  SpanRecord r;
  r.id = static_cast<SpanId>(spans_.size()) + 1;
  r.parent = parent;
  r.request = request;
  r.track = trk;
  r.name = name;
  r.category = cat;
  r.start = sim_.now();
  spans_.push_back(std::move(r));
  return spans_.back().id;
}

SpanId TraceSession::child(SpanId parent, const char* name, const char* cat) {
  assert(parent != 0 && "child() needs a live parent span");
  const SpanRecord& p = span(parent);
  return begin(p.track, name, cat, p.request, parent);
}

void TraceSession::end(SpanId id) {
  if (id == 0) return;
  SpanRecord& r = mutable_span(id);
  assert(r.open && "span ended twice");
  r.finish = sim_.now();
  r.open = false;
}

SpanId TraceSession::complete(TrackId trk, const char* name, const char* cat,
                              sim::SimTime start, sim::SimTime duration,
                              RequestId request) {
  const SpanId id = begin(trk, name, cat, request, 0);
  SpanRecord& r = mutable_span(id);
  r.start = start;
  r.finish = start + duration;
  r.open = false;
  return id;
}

void TraceSession::arg(SpanId id, const char* key, std::int64_t value) {
  if (id == 0) return;
  mutable_span(id).args.push_back(SpanArg{key, value, {}, true});
}

void TraceSession::arg(SpanId id, const char* key, std::string value) {
  if (id == 0) return;
  mutable_span(id).args.push_back(SpanArg{key, 0, std::move(value), false});
}

void TraceSession::counter(const std::string& name, double value) {
  counters_.push_back(CounterSample{name, sim_.now(), value});
}

}  // namespace ibridge::obs
