#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace ibridge::obs {

std::vector<MetricRow> MetricsRegistry::flatten() const {
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& [name, v] : counters_) {
    rows.emplace_back(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : gauges_) rows.emplace_back(name, v);
  for (const auto& [name, h] : histograms_) {
    rows.emplace_back(name + ".count", static_cast<double>(h.count()));
    rows.emplace_back(name + ".mean", h.mean());
    rows.emplace_back(name + ".p50", h.percentile(50.0));
    rows.emplace_back(name + ".p95", h.percentile(95.0));
    rows.emplace_back(name + ".max", h.max());
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.first < b.first;
            });
  return rows;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "name,value\n";
  for (const auto& [name, value] : flatten()) {
    os << name << ',' << value << '\n';
  }
}

void TimeSeries::sample(sim::SimTime when, const MetricsRegistry& reg) {
  const auto rows = reg.flatten();
  for (const auto& [name, _] : rows) {
    if (column_index_.count(name) != 0) continue;
    column_index_.emplace(name, columns_.size());
    columns_.push_back(name);
  }
  std::vector<double> cells(columns_.size(), 0.0);
  for (const auto& [name, value] : rows) {
    cells[column_index_.at(name)] = value;
  }
  samples_.emplace_back(when, std::move(cells));
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "time_ms";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  for (const auto& [when, cells] : samples_) {
    os << when.to_millis();
    // Early rows may predate late-appearing columns; pad with zeros.
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      os << ',' << (i < cells.size() ? cells[i] : 0.0);
    }
    os << '\n';
  }
}

}  // namespace ibridge::obs
