#include "obs/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>

namespace ibridge::obs {

HistogramCell& MetricsRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  HistogramPolicy policy = default_policy_;
  if (const auto ov = policy_overrides_.find(name);
      ov != policy_overrides_.end()) {
    policy = ov->second;
  }
  // Seed reservoirs from the metric name so per-metric sample choices are
  // independent but reproducible.
  std::uint64_t seed = 0x0b5e55edULL;
  for (const char c : name) {
    seed ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    seed = sim::splitmix64(seed);
  }
  return histograms_
      .emplace(name, HistogramCell(policy, buckets_per_octave_,
                                   reservoir_capacity_, seed))
      .first->second;
}

void MetricsRegistry::set_histogram_policy(const std::string& name,
                                           HistogramPolicy p) {
  policy_overrides_[name] = p;
  if (const auto it = histograms_.find(name);
      it != histograms_.end() && it->second.count() == 0) {
    histograms_.erase(it);  // recreated with the new policy on next use
  }
}

std::vector<MetricRow> MetricsRegistry::flatten(
    std::vector<MetricKind>* kinds) const {
  struct Entry {
    MetricRow row;
    MetricKind kind;
  };
  std::vector<Entry> entries;
  entries.reserve(counters_.size() + gauges_.size() + 6 * histograms_.size());
  for (const auto& [name, v] : counters_) {
    entries.push_back({{name, static_cast<double>(v)}, MetricKind::kCounter});
  }
  for (const auto& [name, v] : gauges_) {
    entries.push_back({{name, v}, MetricKind::kGauge});
  }
  for (const auto& [name, h] : histograms_) {
    entries.push_back({{name + ".count", static_cast<double>(h.count())},
                       MetricKind::kCounter});
    entries.push_back({{name + ".mean", h.mean()}, MetricKind::kGauge});
    entries.push_back({{name + ".p50", h.percentile(50.0)},
                       MetricKind::kGauge});
    entries.push_back({{name + ".p95", h.percentile(95.0)},
                       MetricKind::kGauge});
    entries.push_back({{name + ".p99", h.percentile(99.0)},
                       MetricKind::kGauge});
    entries.push_back({{name + ".max", h.max()}, MetricKind::kGauge});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.row.first < b.row.first;
            });
  std::vector<MetricRow> rows;
  rows.reserve(entries.size());
  if (kinds) {
    kinds->clear();
    kinds->reserve(entries.size());
  }
  for (auto& e : entries) {
    rows.push_back(std::move(e.row));
    if (kinds) kinds->push_back(e.kind);
  }
  return rows;
}

std::size_t MetricsRegistry::histogram_memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [_, h] : histograms_) total += h.memory_bytes();
  return total;
}

std::uint64_t MetricsRegistry::sketch_digest() const {
  std::uint64_t h = 0;
  for (const auto& [name, cell] : histograms_) {
    const stats::QuantileSketch* sk = cell.sketch();
    if (!sk) continue;
    std::uint64_t s = sk->digest();
    for (const char c : name) {
      s ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    }
    h ^= sim::splitmix64(s);
  }
  return h;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "name,value\n";
  for (const auto& [name, value] : flatten()) {
    os << name << ',' << value << '\n';
  }
}

void TimeSeries::sample(sim::SimTime when, const MetricsRegistry& reg) {
  std::vector<MetricKind> kinds;
  const auto rows = reg.flatten(&kinds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string& name = rows[i].first;
    if (column_index_.count(name) != 0) continue;
    column_index_.emplace(name, columns_.size());
    columns_.push_back(name);
    kinds_.push_back(kinds[i]);
  }
  std::vector<double> cells(columns_.size(), 0.0);
  for (const auto& [name, value] : rows) {
    cells[column_index_.at(name)] = value;
  }
  samples_.emplace_back(when, std::move(cells));
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "time_ms";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  for (const auto& [when, cells] : samples_) {
    os << when.to_millis();
    // Early rows may predate late-appearing columns.  A missing counter
    // cell really was 0; a missing gauge was unknown, so emit an empty
    // cell rather than a false zero (see header).
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      os << ',';
      if (i < cells.size()) {
        os << cells[i];
      } else if (kinds_[i] == MetricKind::kCounter) {
        os << 0.0;
      }
    }
    os << '\n';
  }
}

}  // namespace ibridge::obs
