// Span-based request tracing for the iBridge simulator.
//
// The paper's central observation is that a synchronous parallel request
// completes only when its *slowest* sub-request does (the striping
// magnification effect, Fig. 3).  A TraceSession records where each request
// spent its simulated time as a tree of spans — client setup, sub-request
// fan-out, network transfer, server queueing, cache/disk service, background
// staging and write-back — linked by a RequestId threaded from pvfs::Client
// down through core::IBridgeCache.
//
// Determinism and cost:
//   * Timestamps are sim::SimTime only; ids are assigned in event order, so
//     a traced run is exactly as deterministic as an untraced one.
//   * Every instrumentation point is guarded by a null-session-pointer test
//     (the CacheObserver pattern): with tracing off, the per-request cost is
//     a handful of predictable branches and the simulated timeline is
//     byte-identical.
//
// Tracks: each span lives on a track — a (process, thread) name pair that
// maps onto the pid/tid grid of the Chrome trace-event format (see
// obs/export.hpp).  Spans on one track may overlap (concurrent sub-requests,
// multi-channel SSD dispatches); the exporter assigns overlapping span trees
// to separate lanes so Perfetto renders every slice.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ibridge::sim {
class Simulator;
}

namespace ibridge::obs {

/// Identifies one span within a session.  0 is "no span".
using SpanId = std::uint64_t;
/// Links every span of one client request.  0 is "no request".
using RequestId = std::uint64_t;
/// Index into the session's track table.  -1 is "no track".
using TrackId = int;
inline constexpr TrackId kNoTrack = -1;

/// A key/value annotation on a span.  Keys are static string literals;
/// values are either integers or owned strings.
struct SpanArg {
  const char* key = "";
  std::int64_t ival = 0;
  std::string sval;
  bool is_int = true;
};

/// One recorded span.  `name`/`category` must be string literals (they are
/// stored unowned; every call site passes constants).
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;       ///< enclosing span (same request), 0 for roots
  RequestId request = 0;   ///< owning client request, 0 for background work
  TrackId track = kNoTrack;
  const char* name = "";
  const char* category = "";
  sim::SimTime start;
  sim::SimTime finish;
  bool open = true;        ///< end() not called yet
  std::vector<SpanArg> args;
};

/// A (process, thread) display location for spans.
struct Track {
  std::string process;
  std::string thread;
};

/// One sample of a named time-series counter (Chrome "C" event).
struct CounterSample {
  std::string name;
  sim::SimTime when;
  double value = 0.0;
};

/// Collects spans and counter samples for one simulation run.
///
/// Components hold a `TraceSession*` that is null by default; all recording
/// goes through that pointer, so an untraced run never touches this class.
class TraceSession {
 public:
  explicit TraceSession(sim::Simulator& sim) : sim_(sim) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Allocate the id that links all spans of one client request.
  RequestId new_request() { return ++last_request_; }

  /// Intern a track; repeated calls with the same names return the same id.
  TrackId track(const std::string& process, const std::string& thread);

  /// Open a span starting now.  `name` and `cat` must be string literals.
  SpanId begin(TrackId track, const char* name, const char* cat,
               RequestId request = 0, SpanId parent = 0);

  /// Open a span nested in `parent` (same track and request).
  SpanId child(SpanId parent, const char* name, const char* cat);

  /// Close a span at the current simulated time.  Safe to call with 0.
  void end(SpanId id);

  /// Record an already-finished span (device dispatches know their service
  /// time up front).
  SpanId complete(TrackId track, const char* name, const char* cat,
                  sim::SimTime start, sim::SimTime duration,
                  RequestId request = 0);

  /// Attach an argument to an open or completed span.
  void arg(SpanId id, const char* key, std::int64_t value);
  void arg(SpanId id, const char* key, std::string value);

  /// Record one time-series counter sample at the current simulated time.
  void counter(const std::string& name, double value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<Track>& tracks() const { return tracks_; }
  const std::vector<CounterSample>& counters() const { return counters_; }
  std::uint64_t requests_traced() const { return last_request_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// The record for `id`; id must be a live span id from this session.
  const SpanRecord& span(SpanId id) const { return spans_[id - 1]; }

 private:
  SpanRecord& mutable_span(SpanId id) { return spans_[id - 1]; }

  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;      // index = id - 1
  std::vector<Track> tracks_;
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::vector<CounterSample> counters_;
  RequestId last_request_ = 0;
};

}  // namespace ibridge::obs
