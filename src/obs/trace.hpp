// Span-based request tracing for the iBridge simulator.
//
// The paper's central observation is that a synchronous parallel request
// completes only when its *slowest* sub-request does (the striping
// magnification effect, Fig. 3).  A TraceSession records where each request
// spent its simulated time as a tree of spans — client setup, sub-request
// fan-out, network transfer, server queueing, cache/disk service, background
// staging and write-back — linked by a RequestId threaded from pvfs::Client
// down through core::IBridgeCache.
//
// Determinism and cost:
//   * Timestamps are sim::SimTime only; ids are assigned in event order, so
//     a traced run is exactly as deterministic as an untraced one.
//   * Every instrumentation point is guarded by a null-session-pointer test
//     (the CacheObserver pattern): with tracing off, the per-request cost is
//     a handful of predictable branches and the simulated timeline is
//     byte-identical.
//
// Recording modes:
//   * Full (default): every span is appended and kept; ids index `spans()`
//     directly.  Memory grows O(requests) — fine for figure-sized runs.
//   * Flight recorder (`enable_flight_recorder`): fixed-capacity tail
//     sampling so tracing can stay on at any scale.  Only the N slowest
//     requests' complete span trees plus a deterministic 1-in-K sample (by
//     request id) are retained; everything else is discarded when its
//     request commits.  Background spans (request 0: device dispatches,
//     write-back, staging) go to a bounded ring with oldest-half
//     compaction, as do counter samples.  Retention decisions depend only
//     on simulated time and request ids, so a flight-recorded run keeps the
//     byte-identical timeline guarantee and retains the *same* requests on
//     every run.  Exporters consume either mode through `export_spans()`.
//
// Tracks: each span lives on a track — a (process, thread) name pair that
// maps onto the pid/tid grid of the Chrome trace-event format (see
// obs/export.hpp).  Spans on one track may overlap (concurrent sub-requests,
// multi-channel SSD dispatches); the exporter assigns overlapping span trees
// to separate lanes so Perfetto renders every slice.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ibridge::sim {
class Simulator;
}

namespace ibridge::obs {

/// Identifies one span within a session.  0 is "no span".
using SpanId = std::uint64_t;
/// Links every span of one client request.  0 is "no request".
using RequestId = std::uint64_t;
/// Index into the session's track table.  -1 is "no track".
using TrackId = int;
inline constexpr TrackId kNoTrack = -1;

/// A key/value annotation on a span.  Keys are static string literals;
/// values are either integers or owned strings.
struct SpanArg {
  const char* key = "";
  std::int64_t ival = 0;
  std::string sval;
  bool is_int = true;
};

/// One recorded span.  `name`/`category` must be string literals (they are
/// stored unowned; every call site passes constants).
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;       ///< enclosing span (same request), 0 for roots
  RequestId request = 0;   ///< owning client request, 0 for background work
  TrackId track = kNoTrack;
  const char* name = "";
  const char* category = "";
  sim::SimTime start;
  sim::SimTime finish;
  bool open = true;        ///< end() not called yet
  std::vector<SpanArg> args;
};

/// A (process, thread) display location for spans.
struct Track {
  std::string process;
  std::string thread;
};

/// One sample of a named time-series counter (Chrome "C" event).
struct CounterSample {
  std::string name;
  sim::SimTime when;
  double value = 0.0;
};

/// Retention knobs for flight-recorder mode.
struct FlightConfig {
  std::size_t keep_slowest = 16;        ///< full trees of N slowest requests
  std::uint64_t sample_every = 64;      ///< plus every K-th request by id
  std::size_t sampled_capacity = 256;   ///< FIFO cap on sampled requests
  std::size_t background_capacity = 2048;  ///< background-span ring size
  std::size_t counter_capacity = 4096;     ///< counter-sample ring size
};

/// Collects spans and counter samples for one simulation run.
///
/// Components hold a `TraceSession*` that is null by default; all recording
/// goes through that pointer, so an untraced run never touches this class.
class TraceSession {
 public:
  explicit TraceSession(sim::Simulator& sim) : sim_(sim) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Switch to flight-recorder retention (see file comment).  Must be
  /// called before any span is recorded.
  void enable_flight_recorder(FlightConfig cfg = {});
  bool flight_mode() const { return flight_; }
  const FlightConfig& flight_config() const { return flight_cfg_; }

  /// Allocate the id that links all spans of one client request.
  RequestId new_request() { return ++last_request_; }

  /// Intern a track; repeated calls with the same names return the same id.
  TrackId track(const std::string& process, const std::string& thread);

  /// Open a span starting now.  `name` and `cat` must be string literals.
  SpanId begin(TrackId track, const char* name, const char* cat,
               RequestId request = 0, SpanId parent = 0);

  /// Open a span nested in `parent` (same track and request).
  SpanId child(SpanId parent, const char* name, const char* cat);

  /// Close a span at the current simulated time.  Safe to call with 0.
  /// In flight mode, closing a request's first span commits the request:
  /// its tree is retained (slowest-N / sampled) or discarded.
  void end(SpanId id);

  /// Record an already-finished span (device dispatches know their service
  /// time up front).
  SpanId complete(TrackId track, const char* name, const char* cat,
                  sim::SimTime start, sim::SimTime duration,
                  RequestId request = 0);

  /// Attach an argument to an open or completed span.  In flight mode args
  /// reach spans still in the working set (open spans, recently closed
  /// background spans); later calls are dropped.
  void arg(SpanId id, const char* key, std::int64_t value);
  void arg(SpanId id, const char* key, std::string value);

  /// Record one time-series counter sample at the current simulated time.
  void counter(const std::string& name, double value);

  /// Full-mode span store (empty in flight mode — use export_spans()).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<Track>& tracks() const { return tracks_; }
  const std::vector<CounterSample>& counters() const { return counters_; }
  std::uint64_t requests_traced() const { return last_request_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// Total spans ever recorded (both modes — flight mode keeps fewer).
  std::uint64_t spans_recorded() const { return next_id_; }

  /// Flight mode: requests whose full trees are currently retained, and
  /// their ids (slowest-N plus the 1-in-K sample), ascending.
  std::size_t requests_retained() const { return retained_.size(); }
  std::vector<RequestId> retained_request_ids() const;

  /// The record for `id`; id must be a live span id from this session.
  /// Full mode only (flight mode discards; see export_spans()).
  const SpanRecord& span(SpanId id) const { return spans_[id - 1]; }

  /// A dense, export-ready view of every span the session still holds, in
  /// either mode.  Ids are renumbered 1..size() in recording order with
  /// parents remapped (parent 0 when the parent was not retained), so
  /// exporters can index `all()[id - 1]` exactly as in full mode.  Full
  /// mode aliases the span store with zero copies.
  class SpanView {
   public:
    const std::vector<SpanRecord>& all() const {
      return alias_ != nullptr ? *alias_ : owned_;
    }
    const SpanRecord& span(SpanId id) const { return all()[id - 1]; }

   private:
    friend class TraceSession;
    const std::vector<SpanRecord>* alias_ = nullptr;
    std::vector<SpanRecord> owned_;
  };
  SpanView export_spans() const;

 private:
  /// Flight mode: one retained request's full span tree.
  struct Retained {
    std::vector<SpanRecord> spans;  ///< ascending original id
    bool slow = false;              ///< currently in the slowest-N set
    bool sampled = false;           ///< kept by the 1-in-K sample
  };
  /// Flight mode: a not-yet-committed request.
  struct Pending {
    SpanId root = 0;             ///< first span recorded for the request
    std::vector<SpanId> ids;     ///< every span of the request, ascending
  };

  SpanRecord& mutable_span(SpanId id) { return spans_[id - 1]; }
  SpanRecord* find_live(SpanId id);
  void commit_request(RequestId request, sim::SimTime duration);
  void drop_retained_if_unreferenced(RequestId request);
  void retire_background(SpanId id);

  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;      // full mode; index = id - 1
  std::vector<Track> tracks_;
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::vector<CounterSample> counters_;
  RequestId last_request_ = 0;
  SpanId next_id_ = 0;

  // --- flight-recorder state (unused in full mode) ---
  bool flight_ = false;
  FlightConfig flight_cfg_;
  std::map<SpanId, SpanRecord> live_;      ///< working set (see file comment)
  std::map<RequestId, Pending> pending_;   ///< uncommitted requests
  std::map<RequestId, Retained> retained_;
  /// (duration ns, request) of the current slowest-N, min first.
  std::set<std::pair<std::int64_t, RequestId>> slow_index_;
  std::vector<RequestId> sampled_fifo_;    ///< oldest first
  std::vector<SpanId> bg_linger_;          ///< closed background spans, FIFO
  std::vector<SpanRecord> background_;     ///< background ring, oldest first
  /// Closed background spans linger in live_ this long so immediately
  /// following arg() calls still land (the device-dispatch pattern).
  static constexpr std::size_t kBackgroundLinger = 64;
};

}  // namespace ibridge::obs
