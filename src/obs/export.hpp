// Trace exporters: Chrome trace-event JSON, straggler report, and the
// per-request analysis both are built on.
//
// write_chrome_trace() emits the Trace Event Format (JSON object form with a
// "traceEvents" array) that Perfetto and chrome://tracing load directly.
// Spans on one simulator track may overlap (concurrent sub-requests of one
// client, multi-channel SSD dispatches), which the format's complete ("X")
// events cannot express on a single tid — so the exporter assigns each
// overlapping span tree to a *lane*: root spans of a track get the lowest
// lane whose previous occupant has finished, descendants inherit their
// root's lane, and each (track, lane) pair becomes its own tid.  Within a
// lane, spans nest properly because a span's same-track descendants run
// sequentially inside it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace ibridge::obs {

/// One sub-request of an analyzed client request.
struct SubSpan {
  SpanId id = 0;
  std::int64_t server = -1;    ///< data server index, -1 if untagged
  bool fragment = false;       ///< partial-stripe fragment piece
  sim::SimTime duration;
};

/// Where one client request spent its time (derived from its span tree).
struct RequestBreakdown {
  RequestId request = 0;
  SpanId root = 0;
  std::int64_t rank = -1;      ///< issuing client rank, -1 if untagged
  std::int64_t offset = -1;    ///< file offset of the request, bytes
  std::int64_t length = -1;    ///< request length, bytes
  sim::SimTime total;          ///< root span duration
  std::vector<SubSpan> subs;   ///< one per sub-request, span order
  sim::SimTime slowest;        ///< max sub duration
  sim::SimTime median;         ///< median sub duration
  /// Striping magnification: slowest / median sibling sub-request (Fig. 3).
  /// 1.0 when the request has fewer than two sub-requests.
  double magnification = 1.0;
  /// True when (one of) the slowest sub-requests is a fragment piece.
  bool straggler_is_fragment = false;
  /// Exclusive simulated time per span category over the whole request tree
  /// (span duration minus its children's durations, clamped at zero).
  std::map<std::string, sim::SimTime> category_exclusive;
};

/// Derive a breakdown for every traced request, ordered by RequestId.
/// Requests whose root span never closed are skipped.
std::vector<RequestBreakdown> analyze(const TraceSession& session);

/// Chrome trace-event JSON ("traceEvents" + metadata), Perfetto-loadable.
void write_chrome_trace(std::ostream& os, const TraceSession& session);

/// Plain-text report: the top_n slowest requests with their magnification
/// factors and straggler sub-requests, plus per-layer exclusive-time and
/// fragment-straggler aggregates.
void write_straggler_report(std::ostream& os, const TraceSession& session,
                            std::size_t top_n);

}  // namespace ibridge::obs
