// Sim-core profiler: where do a run's events — and its simulated and host
// time — actually go?
//
// SimProfiler implements sim::StepHook, so it observes every event the
// Simulator executes.  Subsystems mark the running event with a category
// ("client", "server", "cache", "disk", "ssd") through the same
// null-guarded-pointer pattern as TraceSession; the first mark during an
// event wins, so device-completion events are attributed to the device
// model even when a coroutine resumes on top of them.  Per event the
// profiler attributes:
//
//   * model time — the simulated-clock advance the event consumed (the gap
//     from the previous event's timestamp), credited to the marked
//     category.  Summing over categories reconstructs the timeline, which
//     is how "the run spent 70% of simulated time in disk service" is read
//     directly off `prof.model_ms.*`.
//   * wall time — optional host steady_clock timing of the event callback
//     (enable_wall_timing), for finding which subsystem burns host CPU.
//     Wall numbers are host-dependent and never published into the
//     MetricsRegistry; tools and benches read them via accessors.
//
// It also tracks event-queue depth (mean/peak occupancy) and per-server
// heat counters (operations and bytes served), published as
// `sim.*`/`prof.*`/`srv<N>.prof.*` metrics — see docs/OBSERVABILITY.md.
//
// Determinism: both hook callbacks run inside Simulator::step()'s static
// no-alloc zone, so every container is pre-sized during wiring
// (category()/set_server_count() allocate and must happen before the run).
// The hooks neither allocate nor touch the event queue, so an attached
// profiler keeps the simulated timeline byte-identical to an unprofiled
// run.
//
// Sharded runs (sim::ShardGroup): one profiler cannot be the step hook of
// several shards draining on different threads, so set_lane_count() creates
// one ProfilerLane per shard — each a StepHook owning its own attribution
// state and counters — and Cluster::set_profiler installs lane k on shard
// k.  mark() routes through a thread-local active-lane pointer (set by the
// lane's on_event_begin, cleared by the unsharded hook), so subsystem code
// is oblivious to sharding.  The accessors and publish() fan the lanes back
// in; every merged value is a sum/max over per-shard counters, hence
// worker-count invariant.  See docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibridge::obs {

class MetricsRegistry;
class ProfilerLane;

/// The lane whose event is currently executing on this thread (sharded runs
/// only; null under the classic single-threaded hook).  Each worker thread
/// drains one shard at a time, so one slot per thread suffices.
// lint: shard-owned(obs)
inline thread_local ProfilerLane* t_active_lane = nullptr;

class SimProfiler final : public sim::StepHook {
 public:
  /// Category 0 is pre-registered: events nothing marked (queue plumbing,
  /// coroutine resumptions, daemon ticks).
  static constexpr int kOther = 0;

  explicit SimProfiler(bool enable_wall_timing = false)
      : wall_(enable_wall_timing) {
    names_.push_back("other");
    event_counts_.push_back(0);
    model_ns_.push_back(0);
    wall_ns_.push_back(0);
  }

  /// Intern a category name (a string literal) and size its counters.
  /// Pre-run only — allocates.  Re-interning a name returns the same id.
  int category(const char* name);

  /// Size the per-server heat tables.  Pre-run only — allocates.
  void set_server_count(std::size_t n) {
    heat_ops_.assign(n, 0);
    heat_bytes_.assign(n, 0);
  }

  /// Attribute the currently running event to `cat`.  First mark per event
  /// wins.  Hot path: no allocation, single predictable branch when unset.
  /// Routes to the executing shard's lane in sharded runs (defined after
  /// ProfilerLane below).
  void mark(int cat);

  /// Create one per-shard lane per shard (sharded runs).  Call after every
  /// category() interning and before the run — lanes size their counters to
  /// the categories known here (category() also back-fills existing lanes).
  void set_lane_count(std::size_t n);
  std::size_t lane_count() const { return lanes_.size(); }
  /// The StepHook to install on shard k's simulator.
  sim::StepHook* lane_hook(std::size_t k);

  /// Record one served operation of `bytes` on `server`.  Hot path.
  void heat(std::size_t server, std::int64_t bytes) {
    if (server < heat_ops_.size()) {
      ++heat_ops_[server];
      heat_bytes_[server] += bytes;
    }
  }

  // sim::StepHook — runs inside the Simulator::step() no-alloc zone.  This
  // is the classic single-simulator hook; sharded runs install lane_hook(k)
  // per shard instead.
  void on_event_begin(sim::SimTime now) override {
    t_active_lane = nullptr;  // a sharded run may have left a stale lane
    gap_ns_ = (now - last_now_).ns();
    last_now_ = now;
    current_cat_ = kOther;
    cat_marked_ = false;
    if (wall_) wall_t0_ = std::chrono::steady_clock::now();
  }

  void on_event_end(sim::SimTime /*now*/, std::size_t pending) override {
    const auto cat = static_cast<std::size_t>(current_cat_);
    ++event_counts_[cat];
    model_ns_[cat] += gap_ns_;
    depth_sum_ += pending;
    ++depth_samples_;
    if (pending > depth_peak_) depth_peak_ = pending;
    last_depth_ = pending;
    if (wall_) {
      wall_ns_[cat] += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_t0_)
                           .count();
    }
  }

  /// Write `sim.*`, `prof.*`, and `srv<N>.prof.*` rows into the registry.
  /// Model-derived values only — wall times stay out of the registry (they
  /// are host noise; read them via wall_ns()).
  void publish(MetricsRegistry& reg) const;

  // Accessors (tools, benches, tests).  All fan in the per-shard lanes, so
  // callers see one merged view whether the run was sharded or not.
  std::size_t category_count() const { return names_.size(); }
  const char* category_name(int cat) const {
    return names_[static_cast<std::size_t>(cat)];
  }
  std::uint64_t events(int cat) const;
  std::uint64_t events_total() const {
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      n += events(static_cast<int>(c));
    }
    return n;
  }
  std::int64_t model_ns(int cat) const;
  std::int64_t wall_ns(int cat) const;
  bool wall_timing_enabled() const { return wall_; }
  double queue_depth_mean() const;
  std::size_t queue_depth_peak() const;
  /// Final queue occupancy: the per-shard sum of each lane's last-seen
  /// depth in sharded runs.
  std::size_t queue_depth_last() const;
  std::size_t server_count() const { return heat_ops_.size(); }
  std::uint64_t heat_ops(std::size_t server) const {
    return heat_ops_[server];
  }
  std::int64_t heat_bytes(std::size_t server) const {
    return heat_bytes_[server];
  }

 private:
  friend class ProfilerLane;

  bool wall_;
  std::vector<const char*> names_;          ///< literals; index = category id
  std::vector<std::uint64_t> event_counts_;
  std::vector<std::int64_t> model_ns_;
  std::vector<std::int64_t> wall_ns_;
  // Heat tables stay unsharded: each server's entries are only written from
  // that server's shard, so concurrent writers always touch disjoint
  // elements.
  std::vector<std::uint64_t> heat_ops_;
  std::vector<std::int64_t> heat_bytes_;

  sim::SimTime last_now_ = sim::SimTime::zero();
  std::int64_t gap_ns_ = 0;
  int current_cat_ = kOther;
  bool cat_marked_ = false;
  std::chrono::steady_clock::time_point wall_t0_{};

  std::uint64_t depth_sum_ = 0;
  std::uint64_t depth_samples_ = 0;
  std::size_t depth_peak_ = 0;
  std::size_t last_depth_ = 0;

  std::deque<ProfilerLane> lanes_;  ///< stable addresses; one per shard
};

/// One shard's step hook: the same attribution state and counters as the
/// parent profiler, owned exclusively by the worker draining that shard.
/// Merged back into the parent's accessors after the run.
class ProfilerLane final : public sim::StepHook {
 public:
  explicit ProfilerLane(SimProfiler* parent)
      : parent_(parent),
        event_counts_(parent->names_.size(), 0),
        model_ns_(parent->names_.size(), 0),
        wall_ns_(parent->names_.size(), 0) {}

  void mark(int cat) {
    if (!cat_marked_) {
      current_cat_ = cat;
      cat_marked_ = true;
    }
  }

  // sim::StepHook — same no-alloc contract as the parent's hook.
  void on_event_begin(sim::SimTime now) override {
    t_active_lane = this;
    gap_ns_ = (now - last_now_).ns();
    last_now_ = now;
    current_cat_ = SimProfiler::kOther;
    cat_marked_ = false;
    if (parent_->wall_) wall_t0_ = std::chrono::steady_clock::now();
  }

  void on_event_end(sim::SimTime /*now*/, std::size_t pending) override {
    const auto cat = static_cast<std::size_t>(current_cat_);
    ++event_counts_[cat];
    model_ns_[cat] += gap_ns_;
    depth_sum_ += pending;
    ++depth_samples_;
    if (pending > depth_peak_) depth_peak_ = pending;
    last_depth_ = pending;
    if (parent_->wall_) {
      wall_ns_[cat] += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_t0_)
                           .count();
    }
  }

 private:
  friend class SimProfiler;

  SimProfiler* parent_;
  std::vector<std::uint64_t> event_counts_;
  std::vector<std::int64_t> model_ns_;
  std::vector<std::int64_t> wall_ns_;

  sim::SimTime last_now_ = sim::SimTime::zero();
  std::int64_t gap_ns_ = 0;
  int current_cat_ = SimProfiler::kOther;
  bool cat_marked_ = false;
  std::chrono::steady_clock::time_point wall_t0_{};

  std::uint64_t depth_sum_ = 0;
  std::uint64_t depth_samples_ = 0;
  std::size_t depth_peak_ = 0;
  std::size_t last_depth_ = 0;
};

inline void SimProfiler::mark(int cat) {
  if (ProfilerLane* lane = t_active_lane; lane != nullptr) {
    lane->mark(cat);
    return;
  }
  if (!cat_marked_) {
    current_cat_ = cat;
    cat_marked_ = true;
  }
}

inline void SimProfiler::set_lane_count(std::size_t n) {
  lanes_.clear();
  for (std::size_t i = 0; i < n; ++i) lanes_.emplace_back(this);
}

inline sim::StepHook* SimProfiler::lane_hook(std::size_t k) {
  return &lanes_[k];
}

inline std::uint64_t SimProfiler::events(int cat) const {
  const auto c = static_cast<std::size_t>(cat);
  std::uint64_t n = event_counts_[c];
  for (const ProfilerLane& lane : lanes_) n += lane.event_counts_[c];
  return n;
}

inline std::int64_t SimProfiler::model_ns(int cat) const {
  const auto c = static_cast<std::size_t>(cat);
  std::int64_t n = model_ns_[c];
  for (const ProfilerLane& lane : lanes_) n += lane.model_ns_[c];
  return n;
}

inline std::int64_t SimProfiler::wall_ns(int cat) const {
  const auto c = static_cast<std::size_t>(cat);
  std::int64_t n = wall_ns_[c];
  for (const ProfilerLane& lane : lanes_) n += lane.wall_ns_[c];
  return n;
}

inline double SimProfiler::queue_depth_mean() const {
  std::uint64_t sum = depth_sum_;
  std::uint64_t samples = depth_samples_;
  for (const ProfilerLane& lane : lanes_) {
    sum += lane.depth_sum_;
    samples += lane.depth_samples_;
  }
  return samples != 0
             ? static_cast<double>(sum) / static_cast<double>(samples)
             : 0.0;
}

inline std::size_t SimProfiler::queue_depth_peak() const {
  std::size_t peak = depth_peak_;
  for (const ProfilerLane& lane : lanes_) {
    if (lane.depth_peak_ > peak) peak = lane.depth_peak_;
  }
  return peak;
}

inline std::size_t SimProfiler::queue_depth_last() const {
  std::size_t last = last_depth_;
  for (const ProfilerLane& lane : lanes_) last += lane.last_depth_;
  return last;
}

}  // namespace ibridge::obs
