// Sim-core profiler: where do a run's events — and its simulated and host
// time — actually go?
//
// SimProfiler implements sim::StepHook, so it observes every event the
// Simulator executes.  Subsystems mark the running event with a category
// ("client", "server", "cache", "disk", "ssd") through the same
// null-guarded-pointer pattern as TraceSession; the first mark during an
// event wins, so device-completion events are attributed to the device
// model even when a coroutine resumes on top of them.  Per event the
// profiler attributes:
//
//   * model time — the simulated-clock advance the event consumed (the gap
//     from the previous event's timestamp), credited to the marked
//     category.  Summing over categories reconstructs the timeline, which
//     is how "the run spent 70% of simulated time in disk service" is read
//     directly off `prof.model_ms.*`.
//   * wall time — optional host steady_clock timing of the event callback
//     (enable_wall_timing), for finding which subsystem burns host CPU.
//     Wall numbers are host-dependent and never published into the
//     MetricsRegistry; tools and benches read them via accessors.
//
// It also tracks event-queue depth (mean/peak occupancy) and per-server
// heat counters (operations and bytes served), published as
// `sim.*`/`prof.*`/`srv<N>.prof.*` metrics — see docs/OBSERVABILITY.md.
//
// Determinism: both hook callbacks run inside Simulator::step()'s static
// no-alloc zone, so every container is pre-sized during wiring
// (category()/set_server_count() allocate and must happen before the run).
// The hooks neither allocate nor touch the event queue, so an attached
// profiler keeps the simulated timeline byte-identical to an unprofiled
// run.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibridge::obs {

class MetricsRegistry;

class SimProfiler final : public sim::StepHook {
 public:
  /// Category 0 is pre-registered: events nothing marked (queue plumbing,
  /// coroutine resumptions, daemon ticks).
  static constexpr int kOther = 0;

  explicit SimProfiler(bool enable_wall_timing = false)
      : wall_(enable_wall_timing) {
    names_.push_back("other");
    event_counts_.push_back(0);
    model_ns_.push_back(0);
    wall_ns_.push_back(0);
  }

  /// Intern a category name (a string literal) and size its counters.
  /// Pre-run only — allocates.  Re-interning a name returns the same id.
  int category(const char* name);

  /// Size the per-server heat tables.  Pre-run only — allocates.
  void set_server_count(std::size_t n) {
    heat_ops_.assign(n, 0);
    heat_bytes_.assign(n, 0);
  }

  /// Attribute the currently running event to `cat`.  First mark per event
  /// wins.  Hot path: no allocation, single predictable branch when unset.
  void mark(int cat) {
    if (!cat_marked_) {
      current_cat_ = cat;
      cat_marked_ = true;
    }
  }

  /// Record one served operation of `bytes` on `server`.  Hot path.
  void heat(std::size_t server, std::int64_t bytes) {
    if (server < heat_ops_.size()) {
      ++heat_ops_[server];
      heat_bytes_[server] += bytes;
    }
  }

  // sim::StepHook — runs inside the Simulator::step() no-alloc zone.
  void on_event_begin(sim::SimTime now) override {
    gap_ns_ = (now - last_now_).ns();
    last_now_ = now;
    current_cat_ = kOther;
    cat_marked_ = false;
    if (wall_) wall_t0_ = std::chrono::steady_clock::now();
  }

  void on_event_end(sim::SimTime /*now*/, std::size_t pending) override {
    const auto cat = static_cast<std::size_t>(current_cat_);
    ++event_counts_[cat];
    model_ns_[cat] += gap_ns_;
    depth_sum_ += pending;
    ++depth_samples_;
    if (pending > depth_peak_) depth_peak_ = pending;
    last_depth_ = pending;
    if (wall_) {
      wall_ns_[cat] += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_t0_)
                           .count();
    }
  }

  /// Write `sim.*`, `prof.*`, and `srv<N>.prof.*` rows into the registry.
  /// Model-derived values only — wall times stay out of the registry (they
  /// are host noise; read them via wall_ns()).
  void publish(MetricsRegistry& reg) const;

  // Accessors (tools, benches, tests).
  std::size_t category_count() const { return names_.size(); }
  const char* category_name(int cat) const {
    return names_[static_cast<std::size_t>(cat)];
  }
  std::uint64_t events(int cat) const {
    return event_counts_[static_cast<std::size_t>(cat)];
  }
  std::uint64_t events_total() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : event_counts_) n += c;
    return n;
  }
  std::int64_t model_ns(int cat) const {
    return model_ns_[static_cast<std::size_t>(cat)];
  }
  std::int64_t wall_ns(int cat) const {
    return wall_ns_[static_cast<std::size_t>(cat)];
  }
  bool wall_timing_enabled() const { return wall_; }
  double queue_depth_mean() const {
    return depth_samples_ != 0
               ? static_cast<double>(depth_sum_) /
                     static_cast<double>(depth_samples_)
               : 0.0;
  }
  std::size_t queue_depth_peak() const { return depth_peak_; }
  std::size_t queue_depth_last() const { return last_depth_; }
  std::size_t server_count() const { return heat_ops_.size(); }
  std::uint64_t heat_ops(std::size_t server) const {
    return heat_ops_[server];
  }
  std::int64_t heat_bytes(std::size_t server) const {
    return heat_bytes_[server];
  }

 private:
  bool wall_;
  std::vector<const char*> names_;          ///< literals; index = category id
  std::vector<std::uint64_t> event_counts_;
  std::vector<std::int64_t> model_ns_;
  std::vector<std::int64_t> wall_ns_;
  std::vector<std::uint64_t> heat_ops_;
  std::vector<std::int64_t> heat_bytes_;

  sim::SimTime last_now_ = sim::SimTime::zero();
  std::int64_t gap_ns_ = 0;
  int current_cat_ = kOther;
  bool cat_marked_ = false;
  std::chrono::steady_clock::time_point wall_t0_{};

  std::uint64_t depth_sum_ = 0;
  std::uint64_t depth_samples_ = 0;
  std::size_t depth_peak_ = 0;
  std::size_t last_depth_ = 0;
};

}  // namespace ibridge::obs
