#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <utility>

namespace ibridge::obs {

namespace {

sim::SimTime span_duration(const SpanRecord& s) {
  return s.open ? sim::SimTime::zero() : s.finish - s.start;
}

std::int64_t int_arg(const SpanRecord& s, const std::string& key,
                     std::int64_t fallback) {
  for (const SpanArg& a : s.args) {
    if (a.is_int && key == a.key) return a.ival;
  }
  return fallback;
}

/// Format a SimTime as microseconds with sub-µs precision (trace ts/dur).
void write_us(std::ostream& os, sim::SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t.ns() / 1000),
                static_cast<long long>(t.ns() % 1000));
  os << buf;
}

void write_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Assign every span a display lane on its track.  Lane roots (spans whose
/// parent is absent or lives on another track) sweep start-ordered into the
/// lowest free lane; descendants inherit their ancestor's lane.  Returns
/// lane-per-span (indexed id-1) and the lane count per track.
/// `view` must be a dense TraceSession::export_spans() view (ids 1..n).
void assign_lanes(const TraceSession::SpanView& view, std::size_t track_count,
                  std::vector<int>& lane_of,
                  std::vector<int>& lanes_per_track) {
  const auto& spans = view.all();
  lane_of.assign(spans.size(), 0);
  lanes_per_track.assign(track_count, 0);

  std::vector<SpanId> roots;
  for (const SpanRecord& s : spans) {
    if (s.track == kNoTrack) continue;
    if (s.parent == 0 || view.span(s.parent).track != s.track) {
      roots.push_back(s.id);
    }
  }
  std::sort(roots.begin(), roots.end(), [&](SpanId a, SpanId b) {
    const SpanRecord& sa = view.span(a);
    const SpanRecord& sb = view.span(b);
    if (sa.start != sb.start) return sa.start < sb.start;
    return a < b;
  });

  // lane -> finish time of its latest occupant, one vector per track.
  std::vector<std::vector<sim::SimTime>> occupied(track_count);
  for (const SpanId id : roots) {
    const SpanRecord& s = view.span(id);
    auto& lanes = occupied[static_cast<std::size_t>(s.track)];
    const sim::SimTime finish = s.open ? sim::SimTime::max() : s.finish;
    std::size_t lane = 0;
    while (lane < lanes.size() && lanes[lane] > s.start) ++lane;
    if (lane == lanes.size()) {
      lanes.push_back(finish);
    } else {
      lanes[lane] = finish;
    }
    lane_of[id - 1] = static_cast<int>(lane);
  }
  // Spans are created parent-first and renumbering preserves recording
  // order, so one id-ordered pass resolves every descendant after its
  // ancestors.
  for (const SpanRecord& s : spans) {
    if (s.track == kNoTrack) continue;
    if (s.parent != 0 && view.span(s.parent).track == s.track) {
      lane_of[s.id - 1] = lane_of[s.parent - 1];
    }
  }
  for (std::size_t t = 0; t < occupied.size(); ++t) {
    lanes_per_track[t] = static_cast<int>(occupied[t].size());
  }
}

}  // namespace

std::vector<RequestBreakdown> analyze(const TraceSession& session) {
  const TraceSession::SpanView view = session.export_spans();
  const auto& spans = view.all();

  // Sum of direct children's durations per span, for exclusive time.
  std::vector<sim::SimTime> child_sum(spans.size(), sim::SimTime::zero());
  for (const SpanRecord& s : spans) {
    if (s.parent != 0) child_sum[s.parent - 1] += span_duration(s);
  }

  // request id -> root span (parent == 0).
  std::map<RequestId, SpanId> root_of;
  for (const SpanRecord& s : spans) {
    if (s.request != 0 && s.parent == 0 && root_of.count(s.request) == 0) {
      root_of.emplace(s.request, s.id);
    }
  }

  std::vector<RequestBreakdown> out;
  out.reserve(root_of.size());
  for (const auto& [request, root_id] : root_of) {
    const SpanRecord& root = view.span(root_id);
    if (root.open) continue;  // request never completed; no total to report
    RequestBreakdown b;
    b.request = request;
    b.root = root_id;
    b.rank = int_arg(root, "rank", -1);
    b.offset = int_arg(root, "offset", -1);
    b.length = int_arg(root, "length", -1);
    b.total = span_duration(root);
    for (const SpanRecord& s : spans) {
      if (s.request != request) continue;
      const sim::SimTime dur = span_duration(s);
      const sim::SimTime kids = child_sum[s.id - 1];
      b.category_exclusive[s.category] +=
          kids < dur ? dur - kids : sim::SimTime::zero();
      if (s.parent == root_id && std::string_view(s.name) == "sub") {
        b.subs.push_back(SubSpan{s.id, int_arg(s, "server", -1),
                                 int_arg(s, "fragment", 0) != 0, dur});
      }
    }
    if (!b.subs.empty()) {
      std::vector<sim::SimTime> durs;
      durs.reserve(b.subs.size());
      for (const SubSpan& sub : b.subs) durs.push_back(sub.duration);
      std::sort(durs.begin(), durs.end());
      b.slowest = durs.back();
      b.median = durs[(durs.size() - 1) / 2];
      if (b.subs.size() >= 2 && b.median.ns() > 0) {
        b.magnification = static_cast<double>(b.slowest.ns()) /
                          static_cast<double>(b.median.ns());
      }
      for (const SubSpan& sub : b.subs) {
        if (sub.duration == b.slowest && sub.fragment) {
          b.straggler_is_fragment = true;
        }
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const TraceSession& session) {
  const TraceSession::SpanView view = session.export_spans();
  std::vector<int> lane_of;
  std::vector<int> lanes_per_track;
  assign_lanes(view, session.tracks().size(), lane_of, lanes_per_track);

  const auto& tracks = session.tracks();

  // Distinct process names -> pid, in track order.
  std::map<std::string, int> pid_of;
  std::vector<int> track_pid(tracks.size(), 0);
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    auto [it, inserted] =
        pid_of.emplace(tracks[t].process, static_cast<int>(pid_of.size()) + 1);
    (void)inserted;
    track_pid[t] = it->second;
  }

  // (track, lane) -> tid, enumerated track-major so related lanes adjoin.
  std::map<std::pair<std::size_t, int>, int> tid_of;
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    for (int lane = 0; lane < lanes_per_track[t]; ++lane) {
      tid_of.emplace(std::make_pair(t, lane),
                     static_cast<int>(tid_of.size()) + 1);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (const auto& [process, pid] : pid_of) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    write_json_string(os, process);
    os << "}}";
  }
  for (const auto& [key, tid] : tid_of) {
    const Track& trk = tracks[key.first];
    std::string name = trk.thread;
    if (key.second > 0) name += " #" + std::to_string(key.second + 1);
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
       << track_pid[key.first] << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":"
       << track_pid[key.first] << ",\"tid\":" << tid
       << ",\"args\":{\"sort_index\":" << tid << "}}";
  }

  for (const SpanRecord& s : view.all()) {
    if (s.track == kNoTrack) continue;
    const auto t = static_cast<std::size_t>(s.track);
    const int tid = tid_of.at(std::make_pair(t, lane_of[s.id - 1]));
    sep();
    os << "{\"ph\":\"X\",\"name\":";
    write_json_string(os, s.name);
    os << ",\"cat\":";
    write_json_string(os, s.category);
    os << ",\"pid\":" << track_pid[t] << ",\"tid\":" << tid << ",\"ts\":";
    write_us(os, s.start);
    os << ",\"dur\":";
    write_us(os, span_duration(s));
    os << ",\"args\":{\"span\":" << s.id;
    if (s.request != 0) os << ",\"request\":" << s.request;
    for (const SpanArg& a : s.args) {
      os << ",";
      write_json_string(os, a.key);
      os << ":";
      if (a.is_int) {
        os << a.ival;
      } else {
        write_json_string(os, a.sval);
      }
    }
    os << "}}";
  }

  // Counter samples render as per-name counter tracks on a synthetic pid.
  const int counter_pid = static_cast<int>(pid_of.size()) + 1;
  if (!session.counters().empty()) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << counter_pid
       << ",\"tid\":0,\"args\":{\"name\":\"metrics\"}}";
  }
  for (const CounterSample& c : session.counters()) {
    sep();
    os << "{\"ph\":\"C\",\"name\":";
    write_json_string(os, c.name);
    os << ",\"pid\":" << counter_pid << ",\"tid\":0,\"ts\":";
    write_us(os, c.when);
    os << ",\"args\":{\"value\":";
    write_double(os, c.value);
    os << "}}";
  }

  os << "\n]}\n";
}

void write_straggler_report(std::ostream& os, const TraceSession& session,
                            std::size_t top_n) {
  std::vector<RequestBreakdown> reqs = analyze(session);

  char buf[256];
  os << "=== straggler report: " << reqs.size() << " traced request(s) ===\n";
  if (reqs.empty()) return;

  std::vector<const RequestBreakdown*> by_total;
  by_total.reserve(reqs.size());
  for (const RequestBreakdown& b : reqs) by_total.push_back(&b);
  std::sort(by_total.begin(), by_total.end(),
            [](const RequestBreakdown* a, const RequestBreakdown* b) {
              if (a->total != b->total) return a->total > b->total;
              return a->request < b->request;
            });
  if (by_total.size() > top_n) by_total.resize(top_n);

  os << "\ntop " << by_total.size() << " slowest requests:\n";
  std::snprintf(buf, sizeof buf, "%8s %5s %12s %10s %10s %5s %8s %9s %s\n",
                "request", "rank", "offset", "length", "total_ms", "subs",
                "slow_ms", "magnif", "straggler");
  os << buf;
  for (const RequestBreakdown* b : by_total) {
    const char* kind = b->subs.empty()
                           ? "-"
                           : (b->straggler_is_fragment ? "fragment" : "stripe");
    std::snprintf(buf, sizeof buf,
                  "%8llu %5lld %12lld %10lld %10.3f %5zu %8.3f %8.2fx %s\n",
                  static_cast<unsigned long long>(b->request),
                  static_cast<long long>(b->rank),
                  static_cast<long long>(b->offset),
                  static_cast<long long>(b->length), b->total.to_millis(),
                  b->subs.size(), b->slowest.to_millis(), b->magnification,
                  kind);
    os << buf;
  }

  // Per-layer exclusive time, aggregated over every traced request.
  std::map<std::string, sim::SimTime> layer;
  sim::SimTime layer_total = sim::SimTime::zero();
  double mag_sum = 0.0, mag_max = 0.0;
  std::size_t parallel_reqs = 0, fragment_straggled = 0;
  for (const RequestBreakdown& b : reqs) {
    for (const auto& [cat, t] : b.category_exclusive) {
      layer[cat] += t;
      layer_total += t;
    }
    if (b.subs.size() >= 2) {
      ++parallel_reqs;
      mag_sum += b.magnification;
      mag_max = std::max(mag_max, b.magnification);
      if (b.straggler_is_fragment) ++fragment_straggled;
    }
  }
  os << "\nper-layer exclusive time (all requests):\n";
  for (const auto& [cat, t] : layer) {
    const double share = layer_total.ns() > 0
                             ? 100.0 * static_cast<double>(t.ns()) /
                                   static_cast<double>(layer_total.ns())
                             : 0.0;
    std::snprintf(buf, sizeof buf, "%16s %12.3f ms %6.1f%%\n", cat.c_str(),
                  t.to_millis(), share);
    os << buf;
  }

  if (parallel_reqs > 0) {
    std::snprintf(buf, sizeof buf,
                  "\nmagnification (slowest/median sibling sub-request): "
                  "mean %.2fx, max %.2fx over %zu request(s)\n",
                  mag_sum / static_cast<double>(parallel_reqs), mag_max,
                  parallel_reqs);
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "fragment sub-request was the straggler in %zu/%zu "
                  "(%.1f%%) of parallel requests\n",
                  fragment_straggled, parallel_reqs,
                  100.0 * static_cast<double>(fragment_straggled) /
                      static_cast<double>(parallel_reqs));
    os << buf;
  }
}

}  // namespace ibridge::obs
