// Unified registry of named counters, gauges, and histograms.
//
// Replaces the ad-hoc per-bench meters: components keep their cheap native
// counters (CacheStats, BlockDevice byte totals, NIC totals) and
// cluster::Cluster::collect_metrics() publishes them all into one registry
// under a uniform naming scheme, which benches print and the time-series
// sampler snapshots to CSV.
//
// Naming scheme (see docs/OBSERVABILITY.md):
//   <subsystem>.<metric>[.<class>]          cluster-wide aggregate
//   srv<N>.<subsystem>.<metric>[.<class>]   per data server
//
// e.g. "cache.read_hits", "srv3.disk.busy_ms", "cache.admit.fragment".
// All storage is ordered (std::map) so iteration, flattening, and CSV output
// are deterministic.
//
// Distributions go through HistogramCell, which dispatches on a per-metric
// HistogramPolicy: kExact keeps every sample (stats::Histogram, exact
// percentiles, O(n) memory), kSketch uses the bounded-memory
// stats::QuantileSketch (guaranteed relative error, exact mergeable), and
// kReservoir keeps a seeded fixed-size uniform sample.  The default policy
// is kExact for compatibility; scale runs switch the registry default (or
// individual metrics) to kSketch — see docs/OBSERVABILITY.md
// "Bounded-memory mode".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/sketch.hpp"

namespace ibridge::obs {

/// A flattened (name, value) view of the registry, for tables and CSV.
using MetricRow = std::pair<std::string, double>;

/// How a flattened row behaves over time — drives TimeSeries backfill
/// semantics (see TimeSeries below).
enum class MetricKind {
  kCounter,  ///< monotonic count; "absent" genuinely means zero
  kGauge,    ///< point-in-time value; "absent" means *unknown*, not zero
};

/// Storage policy for one distribution metric.
enum class HistogramPolicy {
  kExact,      ///< stats::Histogram — every sample kept, exact percentiles
  kSketch,     ///< stats::QuantileSketch — O(1) memory, bounded rel. error
  kReservoir,  ///< stats::Reservoir — fixed-size seeded uniform sample
};

/// One distribution metric behind MetricsRegistry::histogram().  Presents
/// the add/merge/percentile surface of stats::Histogram but stores samples
/// according to its policy, fixed at creation.
class HistogramCell {
 public:
  explicit HistogramCell(HistogramPolicy policy = HistogramPolicy::kExact,
                         int buckets_per_octave = 100,
                         std::size_t reservoir_capacity = 1024,
                         std::uint64_t reservoir_seed = 0x0b5e55ed)
      : policy_(policy),
        sketch_(buckets_per_octave),
        reservoir_(reservoir_capacity, reservoir_seed) {}

  HistogramPolicy policy() const { return policy_; }

  void add(double x) {
    switch (policy_) {
      case HistogramPolicy::kExact:
        exact_.add(x);
        break;
      case HistogramPolicy::kSketch:
        sketch_.add(x);
        break;
      case HistogramPolicy::kReservoir:
        reservoir_.add(x);
        break;
    }
  }

  /// Fold a component-side exact histogram into this cell (the
  /// collect_metrics publication path).  Under kExact this is
  /// Histogram::merge; bounded policies re-feed the samples one by one.
  void merge(const stats::Histogram& h) {
    if (policy_ == HistogramPolicy::kExact) {
      exact_.merge(h);
      return;
    }
    for (const double x : h.samples()) add(x);
  }

  std::uint64_t count() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.count();
      case HistogramPolicy::kSketch:
        return sketch_.count();
      case HistogramPolicy::kReservoir:
        return reservoir_.count();
    }
    return 0;
  }

  double mean() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.mean();
      case HistogramPolicy::kSketch:
        return sketch_.mean();
      case HistogramPolicy::kReservoir:
        return reservoir_.mean();
    }
    return 0.0;
  }

  double min() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.min();
      case HistogramPolicy::kSketch:
        return sketch_.min();
      case HistogramPolicy::kReservoir:
        return reservoir_.min();
    }
    return 0.0;
  }

  double max() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.max();
      case HistogramPolicy::kSketch:
        return sketch_.max();
      case HistogramPolicy::kReservoir:
        return reservoir_.max();
    }
    return 0.0;
  }

  double sum() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.sum();
      case HistogramPolicy::kSketch:
        return sketch_.sum();
      case HistogramPolicy::kReservoir:
        return reservoir_.sum();
    }
    return 0.0;
  }

  double percentile(double p) const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return exact_.percentile(p);
      case HistogramPolicy::kSketch:
        return sketch_.percentile(p);
      case HistogramPolicy::kReservoir:
        return reservoir_.percentile(p);
    }
    return 0.0;
  }

  double median() const { return percentile(50.0); }

  /// Heap bytes this cell holds — O(samples) under kExact, O(1) otherwise
  /// (bench_obs --check asserts the bound).
  std::size_t memory_bytes() const {
    switch (policy_) {
      case HistogramPolicy::kExact:
        return sizeof(*this) + exact_.count() * sizeof(double);
      case HistogramPolicy::kSketch:
        return sizeof(*this) + sketch_.memory_bytes();
      case HistogramPolicy::kReservoir:
        return sizeof(*this) + reservoir_.memory_bytes();
    }
    return sizeof(*this);
  }

  void clear() {
    exact_.clear();
    sketch_.clear();
    reservoir_.clear();
  }

  /// Typed views; null unless the matching policy is active.
  const stats::Histogram* exact() const {
    return policy_ == HistogramPolicy::kExact ? &exact_ : nullptr;
  }
  const stats::QuantileSketch* sketch() const {
    return policy_ == HistogramPolicy::kSketch ? &sketch_ : nullptr;
  }
  const stats::Reservoir* reservoir() const {
    return policy_ == HistogramPolicy::kReservoir ? &reservoir_ : nullptr;
  }

 private:
  HistogramPolicy policy_;
  stats::Histogram exact_;
  stats::QuantileSketch sketch_;
  stats::Reservoir reservoir_;
};

class MetricsRegistry {
 public:
  /// Monotonic event count; created at zero on first use.
  std::int64_t& counter(const std::string& name) { return counters_[name]; }

  /// Point-in-time value; created at zero on first use.
  double& gauge(const std::string& name) { return gauges_[name]; }

  /// Value distribution with percentiles; created empty on first use with
  /// the per-name policy override if one was set, else the registry
  /// default.
  HistogramCell& histogram(const std::string& name);

  /// Policy for histograms created after this call (existing non-empty
  /// cells keep their storage; existing *empty* cells are re-created).
  void set_default_histogram_policy(HistogramPolicy p) {
    default_policy_ = p;
  }
  HistogramPolicy default_histogram_policy() const { return default_policy_; }

  /// Per-metric override, same re-creation rule as the default.
  void set_histogram_policy(const std::string& name, HistogramPolicy p);

  /// Sketch resolution / reservoir size for subsequently created cells.
  void set_sketch_buckets_per_octave(int b) { buckets_per_octave_ = b; }
  int sketch_buckets_per_octave() const { return buckets_per_octave_; }
  void set_reservoir_capacity(std::size_t n) { reservoir_capacity_ = n; }

  bool has(const std::string& name) const {
    return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
           histograms_.count(name) != 0;
  }

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramCell>& histograms() const {
    return histograms_;
  }

  /// Every metric as (name, value), sorted by name.  Histograms expand to
  /// .count/.mean/.p50/.p95/.p99/.max rows.  When `kinds` is non-null it is
  /// filled parallel to the result: counters and histogram .count rows are
  /// kCounter, everything else kGauge.
  std::vector<MetricRow> flatten(std::vector<MetricKind>* kinds = nullptr) const;

  /// Total heap bytes held by histogram cells plus a stable fingerprint of
  /// every sketch-backed cell (0 when none) — the bench_obs hooks.
  std::size_t histogram_memory_bytes() const;
  std::uint64_t sketch_digest() const;

  /// Two-column "name,value" CSV of flatten().
  void write_csv(std::ostream& os) const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramCell> histograms_;
  std::map<std::string, HistogramPolicy> policy_overrides_;
  HistogramPolicy default_policy_ = HistogramPolicy::kExact;
  int buckets_per_octave_ = 100;
  std::size_t reservoir_capacity_ = 1024;
};

/// Periodic snapshots of a metric set: one row per sample time, one column
/// per metric name (union over all samples).
///
/// Missing-cell rule: a row sampled before a column first appeared has no
/// value for it.  Counter columns backfill as 0 (the count genuinely was
/// zero before the subsystem emitted it); gauge columns backfill as an
/// *empty* CSV cell, because a gauge that did not exist yet was unknown —
/// writing 0 would plot false zeros on dashboards.
/// cluster::Cluster::start_metrics_sampler() feeds one of these on a
/// configurable sim-time cadence.
class TimeSeries {
 public:
  /// Append one sample row at `when` from the registry's flattened view.
  void sample(sim::SimTime when, const MetricsRegistry& reg);

  std::size_t rows() const { return samples_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<MetricKind>& column_kinds() const { return kinds_; }

  /// "time_ms,<col>,<col>,..." CSV of all samples (see missing-cell rule
  /// above).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<MetricKind> kinds_;
  std::map<std::string, std::size_t> column_index_;
  std::vector<std::pair<sim::SimTime, std::vector<double>>> samples_;
};

}  // namespace ibridge::obs
