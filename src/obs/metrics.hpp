// Unified registry of named counters, gauges, and histograms.
//
// Replaces the ad-hoc per-bench meters: components keep their cheap native
// counters (CacheStats, BlockDevice byte totals, NIC totals) and
// cluster::Cluster::collect_metrics() publishes them all into one registry
// under a uniform naming scheme, which benches print and the time-series
// sampler snapshots to CSV.
//
// Naming scheme (see docs/OBSERVABILITY.md):
//   <subsystem>.<metric>[.<class>]          cluster-wide aggregate
//   srv<N>.<subsystem>.<metric>[.<class>]   per data server
//
// e.g. "cache.read_hits", "srv3.disk.busy_ms", "cache.admit.fragment".
// All storage is ordered (std::map) so iteration, flattening, and CSV output
// are deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace ibridge::obs {

/// A flattened (name, value) view of the registry, for tables and CSV.
using MetricRow = std::pair<std::string, double>;

class MetricsRegistry {
 public:
  /// Monotonic event count; created at zero on first use.
  std::int64_t& counter(const std::string& name) { return counters_[name]; }

  /// Point-in-time value; created at zero on first use.
  double& gauge(const std::string& name) { return gauges_[name]; }

  /// Value distribution with percentiles; created empty on first use.
  stats::Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  bool has(const std::string& name) const {
    return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
           histograms_.count(name) != 0;
  }

  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, stats::Histogram>& histograms() const {
    return histograms_;
  }

  /// Every metric as (name, value), sorted by name.  Histograms expand to
  /// .count/.mean/.p50/.p95/.max rows.
  std::vector<MetricRow> flatten() const;

  /// Two-column "name,value" CSV of flatten().
  void write_csv(std::ostream& os) const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, stats::Histogram> histograms_;
};

/// Periodic snapshots of a metric set: one row per sample time, one column
/// per metric name (union over all samples; missing cells repeat as 0).
/// cluster::Cluster::start_metrics_sampler() feeds one of these on a
/// configurable sim-time cadence.
class TimeSeries {
 public:
  /// Append one sample row at `when` from the registry's flattened view.
  void sample(sim::SimTime when, const MetricsRegistry& reg);

  std::size_t rows() const { return samples_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// "time_ms,<col>,<col>,..." CSV of all samples.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::map<std::string, std::size_t> column_index_;
  std::vector<std::pair<sim::SimTime, std::vector<double>>> samples_;
};

}  // namespace ibridge::obs
