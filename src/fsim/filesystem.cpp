#include "fsim/filesystem.hpp"

#include <algorithm>
#include <cassert>

namespace ibridge::fsim {

using storage::kSectorBytes;

// -------------------------------------------------------- allocator ----

std::int64_t ExtentAllocator::allocate(std::int64_t n) {
  assert(n > 0);
  // First fit in the free list.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= n) {
      const std::int64_t lbn = it->first;
      const std::int64_t rest = it->second - n;
      free_list_.erase(it);
      if (rest > 0) free_list_.emplace(lbn + n, rest);
      return lbn;
    }
  }
  if (frontier_ + n > total_) return -1;
  const std::int64_t lbn = frontier_;
  frontier_ += n;
  return lbn;
}

void ExtentAllocator::release(std::int64_t lbn, std::int64_t n) {
  assert(n > 0);
  auto [it, inserted] = free_list_.emplace(lbn, n);
  assert(inserted);
  // Coalesce with neighbours.
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_list_.erase(it);
      it = prev;
    }
  }
  auto next = std::next(it);
  if (next != free_list_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_list_.erase(next);
  }
}

std::int64_t ExtentAllocator::free_sectors() const {
  std::int64_t f = total_ - frontier_;
  for (const auto& [_, len] : free_list_) f += len;
  return f;
}

// ------------------------------------------------------------- file ----

std::vector<MappedRange> LocalFile::map(std::int64_t offset,
                                        std::int64_t length) const {
  std::vector<MappedRange> out;
  map_into(offset, length, out);
  return out;
}

void LocalFile::map_into(std::int64_t offset, std::int64_t length,
                         std::vector<MappedRange>& out) const {
  out.clear();
  assert(offset >= 0 && length > 0);
  assert(offset + length <= allocated_sectors_ * storage::kSectorBytes);
  const std::int64_t first_sector = offset / kSectorBytes;
  const std::int64_t last_sector = (offset + length - 1) / kSectorBytes;

  std::int64_t cur = first_sector;
  for (const auto& e : extents_) {
    if (cur > last_sector) break;
    const std::int64_t e_end = e.file_sector + e.sectors;
    if (cur < e.file_sector || cur >= e_end) continue;
    const std::int64_t take = std::min(last_sector + 1, e_end) - cur;
    const std::int64_t lbn = e.lbn + (cur - e.file_sector);
    if (!out.empty() && out.back().lbn + out.back().sectors == lbn) {
      out.back().sectors += take;
    } else {
      out.push_back({lbn, take});
    }
    cur += take;
  }
  assert(cur == last_sector + 1 && "range not fully mapped");
}

// ------------------------------------------------------------ fs ----

FileId LocalFileSystem::create(std::string name, std::int64_t prealloc_bytes) {
  assert(by_name_.find(name) == by_name_.end() && "duplicate file name");
  const FileId id = next_id_++;
  LocalFile f;
  f.name_ = name;
  if (prealloc_bytes > 0) {
    if (!ensure_allocated(f, prealloc_bytes)) return kInvalidFile;
    f.size_bytes_ = prealloc_bytes;
  }
  by_name_.emplace(std::move(name), id);
  files_.emplace(id, std::move(f));
  return id;
}

bool LocalFileSystem::truncate(FileId id, std::int64_t new_size) {
  LocalFile& f = file(id);
  if (!ensure_allocated(f, new_size)) return false;
  f.size_bytes_ = std::max(f.size_bytes_, new_size);
  return true;
}

void LocalFileSystem::remove(FileId id) {
  LocalFile& f = file(id);
  for (const auto& e : f.extents_) alloc_.release(e.lbn, e.sectors);
  by_name_.erase(f.name_);
  data_.erase(id);
  files_.erase(id);
}

LocalFile& LocalFileSystem::file(FileId id) {
  auto it = files_.find(id);
  assert(it != files_.end());
  return it->second;
}

const LocalFile& LocalFileSystem::file(FileId id) const {
  auto it = files_.find(id);
  assert(it != files_.end());
  return it->second;
}

FileId LocalFileSystem::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidFile : it->second;
}

bool LocalFileSystem::ensure_allocated(LocalFile& f, std::int64_t size_bytes) {
  const std::int64_t need =
      (size_bytes + kSectorBytes - 1) / kSectorBytes;
  if (need <= f.allocated_sectors_) return true;
  std::int64_t grow = need - f.allocated_sectors_;
  // Extend the last extent in place when the allocator's frontier allows;
  // otherwise add a new extent.  (We just allocate a new extent and rely on
  // the frontier making it contiguous with the previous one, coalescing.)
  const std::int64_t lbn = alloc_.allocate(grow);
  if (lbn < 0) return false;
  if (!f.extents_.empty()) {
    Extent& last = f.extents_.back();
    if (last.lbn + last.sectors == lbn) {
      last.sectors += grow;
      f.allocated_sectors_ = need;
      return true;
    }
  }
  f.extents_.push_back({f.allocated_sectors_, lbn, grow});
  f.allocated_sectors_ = need;
  return true;
}

sim::Task<sim::SimTime> LocalFileSystem::read(FileId id, std::int64_t offset,
                                              std::int64_t length,
                                              std::span<std::byte> out,
                                              int tag) {
  LocalFile& f = file(id);
  // Reading past EOF of allocated space is a caller bug; reading allocated
  // but unwritten space returns zeroes (kVerify) like a sparse file.
  const bool ok = ensure_allocated(f, offset + length);
  assert(ok && "device full during read mapping");
  (void)ok;

  const sim::SimTime t0 = sim_.now();
  auto pieces = map_pool_.acquire();
  f.map_into(offset, length, *pieces);
  auto futs = fut_pool_.acquire();
  futs->reserve(pieces->size());
  for (const auto& p : *pieces) {
    futs->push_back(
        dev_.submit({storage::IoDirection::kRead, p.lbn, p.sectors, tag}));
  }
  for (auto& fu : *futs) co_await fu;

  if (mode_ == DataMode::kVerify && !out.empty()) {
    assert(std::cmp_equal(out.size(), length));
    peek_bytes(id, offset, out);
  }
  co_return sim_.now() - t0;
}

sim::Task<sim::SimTime> LocalFileSystem::write(FileId id, std::int64_t offset,
                                               std::int64_t length,
                                               std::span<const std::byte> in,
                                               int tag) {
  LocalFile& f = file(id);
  const bool ok = ensure_allocated(f, offset + length);
  assert(ok && "device full");
  (void)ok;
  f.size_bytes_ = std::max(f.size_bytes_, offset + length);

  const sim::SimTime t0 = sim_.now();

  // Page-granularity read-modify-write: partially covered boundary pages
  // must be read in before the write can proceed.
  if (rmw_page_ > 0) {
    auto fills = fut_pool_.acquire();
    auto fill_pieces = map_pool_.acquire();
    const std::int64_t head = offset % rmw_page_;
    const std::int64_t tail = (offset + length) % rmw_page_;
    // The boundary pages may extend past the sector-rounded allocation.
    const bool ok2 = ensure_allocated(
        f, ((offset + length) / rmw_page_ + 1) * rmw_page_);
    assert(ok2 && "device full during RMW fill");
    (void)ok2;
    if (head != 0) {
      f.map_into(offset - head, rmw_page_, *fill_pieces);
      for (const auto& p : *fill_pieces) {
        fills->push_back(
            dev_.submit({storage::IoDirection::kRead, p.lbn, p.sectors, tag}));
      }
    }
    if (tail != 0 && (head == 0 || length > rmw_page_ - head)) {
      f.map_into(((offset + length) / rmw_page_) * rmw_page_, rmw_page_,
                 *fill_pieces);
      for (const auto& p : *fill_pieces) {
        fills->push_back(
            dev_.submit({storage::IoDirection::kRead, p.lbn, p.sectors, tag}));
      }
    }
    for (auto& fu : *fills) co_await fu;
  }

  auto pieces = map_pool_.acquire();
  f.map_into(offset, length, *pieces);
  auto futs = fut_pool_.acquire();
  futs->reserve(pieces->size());
  for (const auto& p : *pieces) {
    futs->push_back(
        dev_.submit({storage::IoDirection::kWrite, p.lbn, p.sectors, tag}));
  }
  for (auto& fu : *futs) co_await fu;

  if (mode_ == DataMode::kVerify && !in.empty()) {
    assert(std::cmp_equal(in.size(), length));
    poke_bytes(id, offset, in);
  }
  co_return sim_.now() - t0;
}

void LocalFileSystem::poke_bytes(FileId id, std::int64_t offset,
                                 std::span<const std::byte> in) {
  if (mode_ != DataMode::kVerify) return;
  auto& chunks = data_[id];
  std::int64_t pos = 0;
  while (pos < static_cast<std::int64_t>(in.size())) {
    const std::int64_t abs = offset + pos;
    const std::int64_t ci = abs / kChunk;
    const std::int64_t co = abs % kChunk;
    const std::int64_t n =
        std::min<std::int64_t>(kChunk - co, static_cast<std::int64_t>(in.size()) - pos);
    auto& chunk = chunks[ci];
    if (chunk.empty()) chunk.assign(kChunk, std::byte{0});
    std::memcpy(chunk.data() + co, in.data() + pos, static_cast<std::size_t>(n));
    pos += n;
  }
}

void LocalFileSystem::peek_bytes(FileId id, std::int64_t offset,
                                 std::span<std::byte> out) const {
  if (mode_ != DataMode::kVerify) return;
  auto fit = data_.find(id);
  std::int64_t pos = 0;
  while (pos < static_cast<std::int64_t>(out.size())) {
    const std::int64_t abs = offset + pos;
    const std::int64_t ci = abs / kChunk;
    const std::int64_t co = abs % kChunk;
    const std::int64_t n = std::min<std::int64_t>(
        kChunk - co, static_cast<std::int64_t>(out.size()) - pos);
    const std::vector<std::byte>* chunk = nullptr;
    if (fit != data_.end()) {
      auto cit = fit->second.find(ci);
      if (cit != fit->second.end()) chunk = &cit->second;
    }
    if (chunk) {
      std::memcpy(out.data() + pos, chunk->data() + co,
                  static_cast<std::size_t>(n));
    } else {
      std::memset(out.data() + pos, 0, static_cast<std::size_t>(n));
    }
    pos += n;
  }
}

}  // namespace ibridge::fsim
