// Local file system on a simulated block device (the ext2 stand-in).
//
// Each data server in PVFS2 stores its share of every striped file as a
// local "datafile" managed by the server-local file system.  What iBridge's
// analysis depends on is the mapping from file offsets to disk LBNs: a
// contiguous server datafile turns server-sequential access into
// disk-sequential access, and unaligned fragments into small block requests.
//
// LocalFileSystem provides:
//   * extent-based allocation (append-frontier with a free list — files
//     preallocated in one step are contiguous, late growth can fragment);
//   * map(): file byte range -> device sector ranges (sector-granular
//     rounding, as the kernel block layer would issue);
//   * coroutine read()/write() that submit the mapped block requests to the
//     owning device and await completion;
//   * an optional byte-accurate backing store (DataMode::kVerify) so tests
//     can check end-to-end data integrity through every cache layer.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/block.hpp"

namespace ibridge::fsim {

using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = 0;

/// Whether file contents are actually stored (tests) or only timed (benches).
enum class DataMode { kTimingOnly, kVerify };

/// A contiguous run of sectors backing part of a file.
struct Extent {
  std::int64_t file_sector;  ///< first file-relative sector this extent backs
  std::int64_t lbn;          ///< first device sector
  std::int64_t sectors;      ///< length
};

/// One piece of a mapped byte range.
struct MappedRange {
  std::int64_t lbn;      ///< device sector of the piece's first sector
  std::int64_t sectors;  ///< sector-rounded length
};

/// Sector-range allocator with an append frontier and first-fit free list.
class ExtentAllocator {
 public:
  explicit ExtentAllocator(std::int64_t total_sectors)
      : total_(total_sectors) {}

  /// Allocate `n` contiguous sectors; returns first LBN or -1 if full.
  std::int64_t allocate(std::int64_t n);
  void release(std::int64_t lbn, std::int64_t n);

  std::int64_t free_sectors() const;
  std::int64_t total_sectors() const { return total_; }

 private:
  std::int64_t total_;
  std::int64_t frontier_ = 0;
  std::map<std::int64_t, std::int64_t> free_list_;  // lbn -> length
};

class LocalFileSystem;

/// Per-file metadata: size and extent list.
class LocalFile {
 public:
  const std::string& name() const { return name_; }
  std::int64_t size() const { return size_bytes_; }
  const std::vector<Extent>& extents() const { return extents_; }

  /// Map a byte range to device sector ranges (one entry per extent piece,
  /// adjacent pieces coalesced).  The range must be inside the file.
  std::vector<MappedRange> map(std::int64_t offset, std::int64_t length) const;

  /// Allocation-free variant: clear `out` and fill it with the mapped
  /// pieces, reusing its capacity.  read()/write() feed this pooled vectors
  /// so the per-request hot path stays off the allocator.
  void map_into(std::int64_t offset, std::int64_t length,
                std::vector<MappedRange>& out) const;

  /// True if the whole file is one contiguous extent.
  bool contiguous() const { return extents_.size() <= 1; }

 private:
  friend class LocalFileSystem;
  std::string name_;
  std::int64_t size_bytes_ = 0;
  std::int64_t allocated_sectors_ = 0;
  std::vector<Extent> extents_;
};

class LocalFileSystem {
 public:
  LocalFileSystem(sim::Simulator& sim, storage::BlockDevice& dev,
                  DataMode mode = DataMode::kTimingOnly)
      : sim_(sim), dev_(dev), mode_(mode),
        alloc_(dev.capacity_sectors()) {}

  /// OS page-granularity read-modify-write: when > 0, a write whose first
  /// or last page is only partially covered first reads that page (the
  /// kernel must fill the rest of the page before marking it dirty).  This
  /// is what makes sub-page writes to a file system — on disk OR SSD —
  /// expensive, and what iBridge's packed log file sidesteps.  Off by
  /// default; data servers enable it for their datafile systems.
  void set_rmw_page_bytes(std::int64_t bytes) { rmw_page_ = bytes; }
  std::int64_t rmw_page_bytes() const { return rmw_page_; }

  /// Create a file, optionally preallocating `prealloc_bytes` (preallocation
  /// in one step yields a contiguous file).  Returns kInvalidFile on ENOSPC.
  FileId create(std::string name, std::int64_t prealloc_bytes = 0);

  /// Extend `id` so that [0, new_size) is allocated.  False on ENOSPC.
  bool truncate(FileId id, std::int64_t new_size);

  void remove(FileId id);

  LocalFile& file(FileId id);
  const LocalFile& file(FileId id) const;
  FileId lookup(const std::string& name) const;

  storage::BlockDevice& device() { return dev_; }
  DataMode data_mode() const { return mode_; }

  /// Coroutine: read [offset, offset+length) of the file.  Submits one block
  /// request per mapped piece, awaits all, returns the elapsed time.  In
  /// kVerify mode, fills `out` (may be empty in kTimingOnly mode).
  sim::Task<sim::SimTime> read(FileId id, std::int64_t offset,
                               std::int64_t length, std::span<std::byte> out,
                               int tag = 0);

  /// Coroutine: write [offset, offset+length); extends the file as needed.
  sim::Task<sim::SimTime> write(FileId id, std::int64_t offset,
                                std::int64_t length,
                                std::span<const std::byte> in, int tag = 0);

  // Direct byte-store access, used by cache layers that move data between
  // devices without a full coroutine round trip.
  void poke_bytes(FileId id, std::int64_t offset,
                  std::span<const std::byte> in);
  void peek_bytes(FileId id, std::int64_t offset,
                  std::span<std::byte> out) const;

 private:
  bool ensure_allocated(LocalFile& f, std::int64_t size_bytes);

  sim::Simulator& sim_;
  storage::BlockDevice& dev_;
  DataMode mode_;
  std::int64_t rmw_page_ = 0;
  ExtentAllocator alloc_;
  // Ordered maps so any iteration (extent scans, verify-mode dumps) visits
  // files and chunks in a deterministic order.
  std::map<FileId, LocalFile> files_;
  std::map<std::string, FileId> by_name_;
  // kVerify backing store: per file, 4 KiB chunks.
  static constexpr std::int64_t kChunk = 4096;
  std::map<FileId, std::map<std::int64_t, std::vector<std::byte>>> data_;
  FileId next_id_ = 1;
  // Per-request scratch vectors (mapped pieces, completion futures) recycle
  // through these pools: steady-state reads/writes do zero heap allocation
  // even in timing-only mode (see docs/PERF.md).
  sim::VectorPool<MappedRange> map_pool_;
  sim::VectorPool<sim::SimFuture<storage::BlockCompletion>> fut_pool_;
};

}  // namespace ibridge::fsim
