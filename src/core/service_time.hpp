// Server-side disk service-time estimation — Equations (1) and (2).
//
// Each data server maintains a decayed average request service time T for
// its disk.  For the i-th request, the predicted cost of serving it on the
// disk is
//
//     sample_i = D_to_T(|lambda_i - lambda_{i-1}|) + R + Size_i / B
//
// where lambda is the LBN of the request's first block, R the average
// rotational delay, B the disk's peak bandwidth, and D_to_T the seek curve
// learned by offline profiling (storage::DeviceProfiler).  Serving on the
// disk updates T with decay (Eq. 1); serving on the SSD leaves T unchanged
// (Eq. 2).  The difference is the *return* of SSD redirection.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"
#include "storage/profiler.hpp"

namespace ibridge::core {

using sim::Bytes;

class ServiceTimeModel {
 public:
  /// `old_weight` is the decay factor on the previous average (1/8 in the
  /// paper, after Linux anticipatory scheduling).
  ServiceTimeModel(storage::SeekProfile profile, double old_weight)
      : profile_(std::move(profile)), old_weight_(old_weight) {}

  /// Predicted disk service time (ms) for a request at `lbn` of `bytes`,
  /// given the location of the last disk-served request.  The profile is
  /// direction-aware: discontinuous writes carry the measured surcharge
  /// (Table II's random-write weakness) and use the write streaming rate.
  // lint: units-ok (LBNs are device sector addresses, not byte offsets)
  double predict_ms(std::int64_t lbn, Bytes bytes,
                    storage::IoDirection dir) const {
    const std::int64_t dist =
        last_lbn_ < 0 ? 0 : (lbn > last_lbn_ ? lbn - last_lbn_
                                             : last_lbn_ - lbn);
    const double seek_ms = profile_.seek_time(dist).to_millis();
    double pos_ms = dist == 0 ? 0.0 : seek_ms + profile_.rotation().to_millis();
    const bool is_write = dir == storage::IoDirection::kWrite;
    if (is_write && dist != 0) pos_ms += profile_.write_surcharge_ms(bytes);
    const double bw = is_write ? profile_.peak_write_bandwidth()
                               : profile_.peak_bandwidth();
    const double xfer_ms =
        bw > 0 ? static_cast<double>(bytes.count()) / bw * 1e3 : 0.0;
    return pos_ms + xfer_ms;
  }

  /// What T would become if this request were served at the disk (Eq. 1).
  double t_if_disk(std::int64_t lbn, Bytes bytes,  // lint: units-ok (LBN)
                   storage::IoDirection dir) const {
    return old_weight_ * t_ +
           (1.0 - old_weight_) * predict_ms(lbn, bytes, dir);
  }

  /// What T would become if served at the SSD (Eq. 2): unchanged.
  double t_if_ssd() const { return t_; }

  /// Commit: the request was dispatched to the disk.
  // lint: units-ok (LBNs are device sector addresses, not byte offsets)
  void observe_disk(std::int64_t lbn, Bytes bytes,
                    storage::IoDirection dir,
                    std::int64_t end_lbn) {  // lint: units-ok (LBN)
    t_ = t_if_disk(lbn, bytes, dir);
    last_lbn_ = end_lbn;
  }

  /// Current decayed average service time T (ms).
  double t() const { return t_; }

  const storage::SeekProfile& profile() const { return profile_; }

 private:
  storage::SeekProfile profile_;
  double old_weight_;
  double t_ = 0.0;
  std::int64_t last_lbn_ = -1;  // lint: units-ok (LBN)
};

}  // namespace ibridge::core
