// iBridge configuration knobs.
//
// Defaults follow the paper's evaluation setup (Section III-A): 20 KB
// thresholds for both regular random requests and fragments, a 10 GB SSD
// cache partition, 1-second T-value reporting, and dynamic SSD-space
// partitioning between the two request classes.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ibridge::core {

/// How SSD cache space is split between regular random requests and
/// fragments (Section II-B / Figure 12).
enum class PartitionMode {
  kDynamic,  ///< proportional to per-class average return (the paper's design)
  kStatic,   ///< fixed ratio (the 1:1 / 1:2 baselines of Figure 12)
};

/// Which requests are admitted into the SSD cache.  kReturnBased is the
/// paper's contribution; the others are baselines from its related-work
/// comparison, used by bench_baselines:
///   kAlwaysSmall — cache every request below the size threshold ("SSD is
///     simply used for caching small/random data", which the paper
///     distinguishes itself from);
///   kHotBlock   — Hystor-style: cache small requests to regions that have
///     been accessed repeatedly (frequency-based, fragment-unaware).
enum class AdmissionPolicy {
  kReturnBased,
  kAlwaysSmall,
  kHotBlock,
};

struct IBridgeConfig {
  /// Master switch: disabled reproduces the stock PVFS2 system.
  bool enabled = true;

  /// Sub-requests of multi-server parents smaller than this are fragments.
  std::int64_t fragment_threshold = 20 * 1024;

  /// Stand-alone requests smaller than this are regular random requests.
  std::int64_t random_threshold = 20 * 1024;

  /// SSD cache partition size (bytes of cached payload).
  std::int64_t ssd_cache_bytes = 10LL * 1000 * 1000 * 1000;

  /// Log segment size for the SSD cache file.
  std::int64_t log_segment_bytes = 4 << 20;

  /// Partitioning policy between the two request classes.
  PartitionMode partition_mode = PartitionMode::kDynamic;
  /// For kStatic: fraction of capacity given to fragments
  /// (1:1 -> 0.5, 1:2 -> 2.0/3.0).
  double static_fragment_share = 0.5;

  /// Decay weights of Equation (1): T_i = old_weight*T_{i-1} +
  /// (1-old_weight)*(new sample).  The paper uses 1/8 and 7/8.
  double t_old_weight = 1.0 / 8.0;

  /// Apply the striping-magnification boost of Equation (3).
  bool fragment_boost = true;

  /// Admission policy (kReturnBased is iBridge; others are baselines).
  AdmissionPolicy admission = AdmissionPolicy::kReturnBased;
  /// kHotBlock: accesses to a region before caching kicks in.
  int hot_block_min_hits = 2;
  /// kHotBlock: region granularity for the heat map.
  std::int64_t hot_block_region = 1 << 20;
  /// kHotBlock: tracked-region cap for the heat map.  When the map grows
  /// past this, every count is halved and zeroed regions are swept, so the
  /// map stays bounded over arbitrarily long runs while hot regions keep
  /// their relative standing (a coarse exponential decay).
  std::int64_t hot_block_max_regions = 1 << 16;

  /// How often each server reports its T value to the metadata server, and
  /// how often the metadata server broadcasts the board (1 s default).
  sim::SimTime t_report_interval = sim::SimTime::seconds(1);

  /// Write-back daemon wake interval and per-wake budget.  The daemon's
  /// budget is small so a wake-up steals little from foreground bursts;
  /// drain() (program exit) uses the large batch size.
  sim::SimTime writeback_interval = sim::SimTime::millis(50);
  std::int64_t writeback_batch_bytes = 8 << 20;
  std::int64_t writeback_daemon_bytes = 256 << 10;

  /// Bytes charged to the SSD for persisting a mapping-table entry update
  /// (the paper updates dirty table entries on the SSD with each write).
  std::int64_t mapping_entry_bytes = 64;

  /// MappingTable slots reserved at construction (slab + hash index + dirty
  /// scratch), so steady-state entry churn below this mark never grows
  /// them.  The hard ceiling on live entries is ssd_cache_bytes divided by
  /// the smallest cached range; the default covers typical working sets
  /// without bloating small runs — scale campaigns raise it alongside
  /// ssd_cache_bytes.
  std::int64_t mapping_reserve_entries = 4096;

  /// Convenience: the stock (no-SSD) configuration.
  static IBridgeConfig stock() {
    IBridgeConfig c;
    c.enabled = false;
    return c;
  }
};

}  // namespace ibridge::core
