#include "core/cache.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ibridge::core {

using storage::IoDirection;

IBridgeCache::IBridgeCache(sim::Simulator& sim, IBridgeConfig cfg,
                           ServerId self, fsim::LocalFileSystem& disk_fs,
                           fsim::LocalFileSystem& ssd_fs,
                           storage::SeekProfile profile)
    : sim_(sim),
      cfg_(cfg),
      self_(self),
      disk_fs_(disk_fs),
      ssd_fs_(ssd_fs),
      stm_(std::move(profile), cfg.t_old_weight),
      estimator_(cfg.fragment_boost),
      log_(Bytes{cfg.ssd_cache_bytes}, Bytes{cfg.log_segment_bytes}),
      partition_(cfg, Bytes{cfg.ssd_cache_bytes}),
      background_(sim) {
  // Pre-create the log file with slack for piggybacked mapping updates.
  log_file_ = ssd_fs_.create("ibridge.log",
                             cfg.ssd_cache_bytes + (1 << 20));
  assert(log_file_ != fsim::kInvalidFile && "SSD too small for cache log");
  if (cfg_.mapping_reserve_entries > 0) {
    table_.reserve(static_cast<std::size_t>(cfg_.mapping_reserve_entries));
  }
}

void IBridgeCache::set_trace(obs::TraceSession* session) {
  trace_ = session;
  trace_bg_track_ = obs::kNoTrack;
  if (trace_ != nullptr) {
    trace_bg_track_ =
        trace_->track("srv" + std::to_string(self_.index()), "cache-bg");
  }
}

void IBridgeCache::start() {
  if (running_) return;
  running_ = true;
  ++daemon_epoch_;
  background_.spawn(writeback_daemon());
}

void IBridgeCache::stop() {
  running_ = false;
  ++daemon_epoch_;
}

std::int64_t IBridgeCache::disk_lbn(const CacheRequest& r) const {
  const auto& f = disk_fs_.file(r.file);
  if ((r.offset + r.length).value() > f.size()) {
    // Write extending the file: predict placement at the current tail.
    const auto& ext = f.extents();
    if (ext.empty()) return 0;
    return ext.back().lbn + ext.back().sectors;
  }
  auto pieces = f.map(r.offset.value(), r.length.count());
  assert(!pieces.empty());
  return pieces.front().lbn;
}

std::int64_t IBridgeCache::disk_end_lbn(const CacheRequest& r) const {
  const auto& f = disk_fs_.file(r.file);
  if ((r.offset + r.length).value() > f.size()) return disk_lbn(r);
  auto pieces = f.map(r.offset.value(), r.length.count());
  assert(!pieces.empty());
  return pieces.back().lbn + pieces.back().sectors;
}

bool IBridgeCache::window_overlaps(const std::vector<RangeWindow>& ws,
                                   fsim::FileId f, Offset off, Bytes len) {
  for (const auto& w : ws) {
    if (w.file == f && w.off < off + len && off < w.off + w.len) return true;
  }
  return false;
}

std::uint64_t IBridgeCache::open_window(std::vector<RangeWindow>& ws,
                                        fsim::FileId f, Offset off,
                                        Bytes len) {
  const std::uint64_t id = ++next_window_id_;
  ws.push_back({id, f, off, len});
  return id;
}

void IBridgeCache::close_window(std::vector<RangeWindow>& ws,
                                std::uint64_t id) {
  std::erase_if(ws, [id](const RangeWindow& w) { return w.id == id; });
}

sim::Task<> IBridgeCache::wait_flush_windows(fsim::FileId f, Offset off,
                                             Bytes len) {
  // Broadcast wake-up, then re-check: another flush of the range may have
  // started while this coroutine was parked (local classes in a member
  // function share the enclosing class's access).
  while (window_overlaps(flush_windows_, f, off, len)) {
    struct FlushWake {
      IBridgeCache& c;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c.flush_waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await FlushWake{*this};
  }
}

void IBridgeCache::notify_flush_waiters() {
  if (flush_waiters_.empty()) return;
  auto batch = std::move(flush_waiters_);
  flush_waiters_.clear();
  for (auto h : batch) {
    sim_.defer([h] { h.resume(); });
  }
}

std::uint64_t IBridgeCache::pin_log_range(Offset off, Bytes len) {
  return open_window(read_pins_, log_file_, off, len);
}

void IBridgeCache::unpin_log_range(std::uint64_t id) {
  close_window(read_pins_, id);
  std::erase_if(deferred_releases_, [this](const auto& r) {
    if (window_overlaps(read_pins_, log_file_, r.first, r.second)) {
      return false;  // still pinned by another reader
    }
    log_.release(r.first, r.second);
    return true;
  });
}

void IBridgeCache::release_log(Offset off, Bytes len) {
  if (len <= Bytes::zero()) return;
  if (window_overlaps(read_pins_, log_file_, off, len)) {
    deferred_releases_.emplace_back(off, len);
  } else {
    log_.release(off, len);
  }
}

void IBridgeCache::invalidate_range(fsim::FileId file, Offset off, Bytes len) {
  auto ids = id_pool_.acquire();
  table_.overlapping_into(file, off, len, *ids);
  auto freed = range_pool_.acquire();
  for (EntryId id : *ids) table_.trim(id, off, len, *freed);
  for (const auto& [log_off, n] : *freed) release_log(log_off, n);
}

bool IBridgeCache::note_region_access(const CacheRequest& r) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(r.file) << 40) ^
      static_cast<std::uint64_t>(r.offset / Bytes{cfg_.hot_block_region});
  const bool hot = ++region_heat_[key] >= cfg_.hot_block_min_hits;
  // Keep the heat map bounded: long runs over huge, cold address spaces
  // would otherwise grow it without limit.  Halve every count (erasing
  // zeroed regions) until the map fits — exponential decay that preserves
  // the relative standing of genuinely hot regions.
  while (std::cmp_greater(region_heat_.size(), cfg_.hot_block_max_regions)) {
    for (auto it = region_heat_.begin(); it != region_heat_.end();) {
      it->second /= 2;
      it = it->second == 0 ? region_heat_.erase(it) : std::next(it);
    }
  }
  return hot;
}

bool IBridgeCache::admit(const CacheRequest& r, const ReturnEstimate& est) {
  if (!small_enough(r)) return false;
  switch (cfg_.admission) {
    case AdmissionPolicy::kReturnBased:
      return est.ret_ms > 0.0;
    case AdmissionPolicy::kAlwaysSmall:
      return true;
    case AdmissionPolicy::kHotBlock:
      return note_region_access(r);
  }
  return false;
}

sim::Task<std::optional<Offset>> IBridgeCache::make_room(CacheClass c,
                                                         Bytes len) {
  if (len > partition_.quota(table_, c) || len > log_.segment_bytes()) {
    co_return std::nullopt;
  }
  // Quota pressure: evict LRU entries of the same class.
  while (partition_.over_quota(table_, c, len)) {
    const EntryId victim = table_.lru_victim(c);
    if (victim == kNoEntry) break;  // class empty yet over quota: shrink race
    co_await evict(victim);
  }
  // The other class may hold space beyond its (possibly shrunken) quota;
  // reclaim from it if the log is still out of room.
  const CacheClass other =
      c == CacheClass::kFragment ? CacheClass::kRegular : CacheClass::kFragment;
  while (!log_.has_room(len) &&
         table_.bytes_cached(other) > partition_.quota(table_, other)) {
    const EntryId victim = table_.lru_victim(other);
    if (victim == kNoEntry) break;
    co_await evict(victim);
  }
  // Space pressure despite quotas (log fragmentation): clean segments.
  int guard = log_.free_segment_count() + 64;
  while (!log_.has_room(len) && guard-- > 0) {
    const int seg = log_.victim_segment();
    if (seg < 0) break;
    ++stats_.cleanings;
    const auto [b, e] = log_.segment_range(seg);
    auto victims = id_pool_.acquire();
    table_.entries_in_log_range_into(b, e, *victims);
    for (EntryId id : *victims) {
      co_await evict(id);
    }
  }
  co_return log_.append(len);
}

sim::Task<bool> IBridgeCache::evict(EntryId id) {
  if (!table_.contains(id)) co_return false;
  if (table_.get(id).dirty) {
    // Flushing one tiny dirty entry per eviction would thrash under
    // capacity pressure (every admission would pay a synchronous small
    // disk write).  Amortize: flush a whole file-ordered batch, which
    // coalesces into long runs and leaves a clean cohort to evict cheaply.
    auto batch = id_pool_.acquire();
    table_.dirty_entries_into(Bytes{cfg_.writeback_daemon_bytes}, *batch);
    co_await flush_batch(*batch);
    if (!table_.contains(id)) co_return false;  // raced with invalidation
    if (table_.get(id).dirty) co_await flush_entry(id);  // not in the batch
    if (!table_.contains(id)) co_return false;
  }
  const CacheEntry e = table_.erase(id);
  release_log(e.log_off, e.length);
  ++stats_.evictions;
  if (trace_ != nullptr) {
    const obs::SpanId tspan = trace_->complete(
        trace_bg_track_, "cache.evict", "cache", sim_.now(),
        sim::SimTime::zero());
    trace_->arg(tspan, "length", e.length.count());
  }
  check("evict");
  co_return true;
}

sim::Task<> IBridgeCache::flush_entry(EntryId id) {
  if (!table_.contains(id) || !table_.get(id).dirty) co_return;
  const CacheEntry e = table_.get(id);

  sim::BufferPool::Lease buf = pool_.acquire();
  std::span<std::byte> span;
  if (ssd_fs_.data_mode() == fsim::DataMode::kVerify) {
    buf->resize(static_cast<std::size_t>(e.length.count()));
    span = *buf;
  }
  // Read the payload from the log, then write it to its home location.
  co_await ssd_fs_.read(log_file_, e.log_off.value(), e.length.count(), span);
  // A concurrent write may have trimmed or replaced the entry while the log
  // read was in flight (trim re-inserts remainders under new ids).  If the
  // id is gone, this copy is partially stale: skip the disk write — the
  // surviving remainder entries are still dirty and will be flushed.
  if (!table_.contains(id) || !table_.get(id).dirty) co_return;
  // Note: write-back traffic does NOT update the Eq. (1) state — T is the
  // average service time of *workload* requests served by the disk, and
  // letting internal bulk flushes (large coalesced runs) into the average
  // would spike T and starve admission right after every flush.
  const std::uint64_t win =
      open_window(flush_windows_, e.file, e.file_off, e.length);
  co_await disk_fs_.write(e.file, e.file_off.value(), e.length.count(),
                          std::span<const std::byte>(span.data(), span.size()));
  close_window(flush_windows_, win);
  notify_flush_waiters();
  if (table_.contains(id)) table_.mark_clean(id);
  ++stats_.writebacks;
  stats_.writeback_bytes += e.length;
  check("flush.entry");
}

void IBridgeCache::charge_mapping_update(Offset near_log_off) {
  if (cfg_.mapping_entry_bytes <= 0) return;
  // Piggyback a tiny sequential write right behind the data (the real
  // implementation appends the updated table entry with the log record).
  const std::int64_t off =
      std::min(near_log_off.value(), ssd_fs_.file(log_file_).size() - 512);
  auto pieces = ssd_fs_.file(log_file_).map(
      std::max<std::int64_t>(off, 0), cfg_.mapping_entry_bytes);
  if (pieces.empty()) return;
  // Fire and forget: the device charges the time; nothing waits on it.
  ssd_fs_.device().submit(
      {IoDirection::kWrite, pieces.front().lbn, pieces.front().sectors, 0});
}

sim::Task<ServeResult> IBridgeCache::serve(CacheRequest r,
                                           std::span<const std::byte> wdata,
                                           std::span<std::byte> rdata) {
  assert(r.length > Bytes::zero());
  const sim::SimTime t0 = sim_.now();
  ServeResult result;
  const CacheClass klass = classify(r);
  const obs::SpanId cspan =
      (trace_ != nullptr && r.trace_parent != 0)
          ? trace_->child(r.trace_parent, "cache.serve", "cache")
          : 0;

  if (r.dir == IoDirection::kWrite) {
    // Write-after-write barrier: a write-back of an older version of this
    // range may still be in flight, and if its disk write completed after
    // ours the stale bytes would win.  Wait for overlapping flush windows
    // first (both the admit and the disk branch supersede the range), then
    // publish our own window so stage_read won't snapshot mid-write bytes.
    co_await wait_flush_windows(r.file, r.offset, r.length);
    const std::uint64_t win =
        open_window(write_windows_, r.file, r.offset, r.length);
    const std::int64_t lbn = disk_lbn(r);
    const auto est = estimator_.estimate(stm_, lbn, r.length, r.dir,
                                         r.fragment, self_, r.siblings,
                                         board_);
    stats_.ret_estimate_ms.add(est.ret_ms);
    if (est.boosted) ++stats_.boosts;
    bool admit = this->admit(r, est);
    std::optional<Offset> log_off;
    if (admit) {
      // Any cached overlap is superseded by this write.
      invalidate_range(r.file, r.offset, r.length);
      log_off = co_await make_room(klass, r.length);
      admit = log_off.has_value();
    }
    if (admit) {
      co_await ssd_fs_.write(log_file_, log_off->value(), r.length.count(),
                             wdata);
      charge_mapping_update(*log_off + r.length);
      // A concurrent admission may have cached the same range while the SSD
      // write was in flight; supersede it.
      invalidate_range(r.file, r.offset, r.length);
      table_.insert({r.file, r.offset, r.length, *log_off, /*dirty=*/true,
                     klass, est.ret_ms});
      // Eq. (2): disk state unchanged.
      ++stats_.write_admits;
      ++stats_.admit_by_class[static_cast<int>(klass)];
      stats_.ssd_bytes_served += r.length;
      result.ssd = true;
      result.boosted = est.boosted;
      check("serve.write.ssd");
    } else {
      if (log_off) release_log(*log_off, r.length);
      // Disk write supersedes any cached overlap.
      invalidate_range(r.file, r.offset, r.length);
      co_await disk_fs_.write(r.file, r.offset.value(), r.length.count(),
                              wdata, r.tag);
      stm_.observe_disk(lbn, r.length, r.dir, disk_end_lbn(r));  // Eq. (1)
      ++stats_.write_disk;
      stats_.disk_bytes_served += r.length;
      check("serve.write.disk");
    }
    close_window(write_windows_, win);
    if (active_stages_ > 0) {
      completed_writes_.push_back({win, r.file, r.offset, r.length});
    }
    result.elapsed = sim_.now() - t0;
    if (cspan != 0) {
      trace_->arg(cspan, "outcome", admit ? "write.ssd" : "write.disk");
      trace_->end(cspan);
    }
    co_return result;
  }

  // ------------------------------------------------------------- read ----
  auto slices = slice_pool_.acquire();
  table_.coverage_into(r.file, r.offset, r.length, *slices);
  if (!slices->empty()) {
    // Pin every slice's log bytes for the duration of the reads: a
    // concurrent eviction may erase these entries and recycle their log
    // space mid-read (the stale-read hazard SimCheck's fuzzer caught).
    auto pins = pin_pool_.acquire();
    pins->reserve(slices->size());
    for (const auto& s : *slices) {
      pins->push_back(pin_log_range(s.log_off, s.length));
    }
    for (const auto& s : *slices) {
      std::span<std::byte> sub;
      if (!rdata.empty()) {
        sub = rdata.subspan(
            static_cast<std::size_t>((s.file_off - r.offset).count()),
            static_cast<std::size_t>(s.length.count()));
      }
      co_await ssd_fs_.read(log_file_, s.log_off.value(), s.length.count(),
                            sub);
      if (table_.contains(s.entry)) table_.touch(s.entry);
    }
    for (const std::uint64_t p : *pins) unpin_log_range(p);
    ++stats_.read_hits;
    stats_.ssd_bytes_served += r.length;
    result.ssd = true;
    result.elapsed = sim_.now() - t0;
    if (cspan != 0) {
      trace_->arg(cspan, "outcome", "read.hit");
      trace_->end(cspan);
    }
    check("serve.read.hit");
    co_return result;  // Eq. (2): disk untouched
  }

  // Miss.  Dirty cached data overlapping the range is newer than the disk:
  // flush it first so the disk read returns current bytes.
  {
    auto dirty_overlaps = id_pool_.acquire();
    table_.overlapping_into(r.file, r.offset, r.length, *dirty_overlaps);
    for (EntryId id : *dirty_overlaps) {
      if (table_.contains(id) && table_.get(id).dirty) {
        co_await flush_entry(id);
      }
    }
  }

  const std::int64_t lbn = disk_lbn(r);
  const auto est = estimator_.estimate(stm_, lbn, r.length, r.dir, r.fragment,
                                       self_, r.siblings, board_);
  stats_.ret_estimate_ms.add(est.ret_ms);
  if (est.boosted) ++stats_.boosts;
  co_await disk_fs_.read(r.file, r.offset.value(), r.length.count(),
                         rdata, r.tag);
  stm_.observe_disk(lbn, r.length, r.dir, disk_end_lbn(r));  // Eq. (1)
  ++stats_.read_misses;
  stats_.disk_bytes_served += r.length;
  result.boosted = est.boosted;

  // Positive return (or baseline-policy admission): cache the data for
  // future runs, copying it into the log in the background ("when the SSD
  // is idle").
  if (admit(r, est)) {
    background_.spawn(stage_read(r, klass, est.ret_ms));
  }
  result.elapsed = sim_.now() - t0;
  if (cspan != 0) {
    trace_->arg(cspan, "outcome", "read.miss");
    trace_->end(cspan);
  }
  check("serve.read.miss");
  co_return result;
}

sim::Task<> IBridgeCache::stage_read(CacheRequest r, CacheClass klass,
                                     double ret_ms) {
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);
  const obs::SpanId tspan =
      trace_ != nullptr
          ? trace_->begin(trace_bg_track_, "cache.stage", "cache",
                          r.trace_request)
          : 0;
  if (tspan != 0) trace_->arg(tspan, "length", r.length.count());
  const std::optional<Offset> log_off = co_await make_room(klass, r.length);
  if (!log_off) {
    if (trace_ != nullptr) trace_->end(tspan);
    co_return;
  }

  ++active_stages_;
  const std::size_t mark = completed_writes_.size();
  sim::BufferPool::Lease buf = pool_.acquire();
  std::span<const std::byte> span;
  if (ssd_fs_.data_mode() == fsim::DataMode::kVerify) {
    buf->resize(static_cast<std::size_t>(r.length.count()));
    // The bytes were just read from the disk; fetch them from its store.
    std::span<std::byte> mut(*buf);
    disk_fs_.peek_bytes(r.file, r.offset.value(), mut);
    span = *buf;
  }
  co_await ssd_fs_.write(log_file_, log_off->value(), r.length.count(), span);
  charge_mapping_update(*log_off + r.length);

  // While the copy was in flight, a write may have cached or rewritten the
  // range; if anything overlaps now, the staged copy is stale — drop it.
  // A foreground write that is still in flight — or that started *and*
  // finished while our SSD write was pending — is just as fatal: the peek
  // above may predate its poke, so the staged bytes could be either version.
  bool stale = table_.has_overlap(r.file, r.offset, r.length) ||
               window_overlaps(write_windows_, r.file, r.offset, r.length);
  for (std::size_t k = mark; !stale && k < completed_writes_.size(); ++k) {
    const RangeWindow& w = completed_writes_[k];
    stale = w.file == r.file && w.off < r.offset + r.length &&
            r.offset < w.off + w.len;
  }
  if (--active_stages_ == 0) completed_writes_.clear();
  if (stale) {
    release_log(*log_off, r.length);
    if (trace_ != nullptr) trace_->end(tspan);
    co_return;
  }
  table_.insert({r.file, r.offset, r.length, *log_off, /*dirty=*/false, klass,
                 ret_ms});
  ++stats_.stages;
  ++stats_.admit_by_class[static_cast<int>(klass)];
  if (trace_ != nullptr) trace_->end(tspan);
  check("stage");
}

sim::Task<> IBridgeCache::flush_batch(std::vector<EntryId>& batch,
                                      bool yield_to_foreground) {
  // Crash-gate phase boundaries (see WritebackGate in observer.hpp).  A cut
  // leaves every touched entry dirty and no window open, so the batch can be
  // re-flushed after recovery.
  if (gate_cut("batch.begin")) co_return;
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);
  const obs::SpanId tspan =
      (trace_ != nullptr && !batch.empty())
          ? trace_->begin(trace_bg_track_, "cache.writeback", "cache")
          : 0;
  // Sort by home location so the flushed writes form long forward runs.
  std::sort(batch.begin(), batch.end(), [this](EntryId a, EntryId b) {
    const auto& ea = table_.get(a);
    const auto& eb = table_.get(b);
    if (ea.file != eb.file) return ea.file < eb.file;
    return ea.file_off < eb.file_off;
  });

  // Stage every payload out of the SSD log concurrently so the disk writes
  // can then stream back-to-back with no inter-write gaps.
  struct Staged {
    EntryId id;
    CacheEntry e;
    sim::BufferPool::Lease buf;
  };
  // reserve() up front makes the element addresses handed to the reader
  // coroutines stable; the vector outlives reads.join() below.
  std::vector<Staged> staged;
  staged.reserve(batch.size());
  const bool verify = ssd_fs_.data_mode() == fsim::DataMode::kVerify;
  sim::JoinSet reads(sim_);
  for (EntryId id : batch) {
    if (!table_.contains(id) || !table_.get(id).dirty) continue;
    staged.push_back({id, table_.get(id), pool_.acquire()});
    if (verify) {
      staged.back().buf->resize(
          static_cast<std::size_t>(staged.back().e.length.count()));
    }
    Staged* s = &staged.back();
    reads.add([](IBridgeCache& c, Staged* st) -> sim::Task<> {
      co_await c.ssd_fs_.read(c.log_file_, st->e.log_off.value(),
                              st->e.length.count(), *st->buf);
    }(*this, s));
  }
  co_await reads.join();
  if (gate_cut("batch.staged")) {
    if (tspan != 0) trace_->end(tspan);
    co_return;
  }

  // Coalesce byte-contiguous entries into single long disk writes — the
  // paper's write-back is "scheduled to form as many long sequential
  // accesses as possible".  Without this, dense small dirty data (e.g.
  // BTIO's 640-2160 B strided records) would pay a positioning cost per
  // entry even though the union of the entries is one contiguous region.
  constexpr Bytes kMaxRun{8 << 20};
  std::size_t i = 0;
  while (i < staged.size()) {
    if (yield_to_foreground && disk_fs_.device().queue_depth() > 0) break;
    // Find the start of a valid run.
    const Staged& head = staged[i];
    if (!table_.contains(head.id) || !table_.get(head.id).dirty) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    Bytes run_len = head.e.length;
    while (j < staged.size() && run_len < kMaxRun) {
      const Staged& next = staged[j];
      if (next.e.file != head.e.file ||
          next.e.file_off != head.e.file_off + run_len ||
          !table_.contains(next.id) || !table_.get(next.id).dirty) {
        break;
      }
      run_len += next.e.length;
      ++j;
    }
    if (gate_cut("batch.write")) break;

    sim::BufferPool::Lease run_buf = pool_.acquire();
    std::span<const std::byte> span;
    if (verify) {
      run_buf->reserve(static_cast<std::size_t>(run_len.count()));
      for (std::size_t k = i; k < j; ++k) {
        run_buf->insert(run_buf->end(), staged[k].buf->begin(),
                        staged[k].buf->end());
      }
      span = *run_buf;
    }
    // (As in flush_entry: internal write-back does not update Eq. (1).)
    const std::uint64_t win =
        open_window(flush_windows_, head.e.file, head.e.file_off, run_len);
    co_await disk_fs_.write(head.e.file, head.e.file_off.value(),
                            run_len.count(), span);
    close_window(flush_windows_, win);
    notify_flush_waiters();
    // Crash after the data write but before the metadata update: the
    // entries stay dirty and will be written again post-recovery —
    // idempotent, since the payload already matches.
    if (gate_cut("batch.clean")) break;
    stats_.writeback_bytes += run_len;
    for (std::size_t k = i; k < j; ++k) {
      if (table_.contains(staged[k].id)) {
        table_.mark_clean(staged[k].id);
      }
      ++stats_.writebacks;
    }
    i = j;
  }
  if (tspan != 0) {
    trace_->arg(tspan, "entries",
                static_cast<std::int64_t>(staged.size()));
    trace_->end(tspan);
  }
  check("flush.batch");
}

sim::Task<> IBridgeCache::writeback_daemon() {
  const std::uint64_t epoch = daemon_epoch_;
  while (running_ && epoch == daemon_epoch_) {
    co_await sim::Delay{sim_, cfg_.writeback_interval};
    if (!running_ || epoch != daemon_epoch_) break;
    // Quiet-period detection: skip the wake-up when foreground work is
    // queued at the disk — unless dirty data is piling up toward the
    // capacity limit, in which case flushing now is cheaper than letting
    // admissions evict synchronously later.
    const bool pressure =
        table_.dirty_bytes() > partition_.capacity() / 2;  // Bytes compare
    if (!pressure && disk_fs_.device().queue_depth() > 0) continue;
    auto batch = id_pool_.acquire();
    table_.dirty_entries_into(Bytes{cfg_.writeback_daemon_bytes}, *batch);
    if (batch->empty()) continue;
    co_await flush_batch(*batch, /*yield_to_foreground=*/!pressure);
  }
}

sim::Task<> IBridgeCache::drain() {
  if (profiler_ != nullptr) profiler_->mark(prof_cat_);
  const obs::SpanId tspan =
      trace_ != nullptr
          ? trace_->begin(trace_bg_track_, "cache.drain", "cache")
          : 0;
  while (table_.dirty_bytes() > Bytes::zero()) {
    auto batch = id_pool_.acquire();
    table_.dirty_entries_into(Bytes{cfg_.writeback_batch_bytes}, *batch);
    if (batch->empty()) break;
    co_await flush_batch(*batch);
  }
  if (trace_ != nullptr) trace_->end(tspan);
  check("drain");
}

sim::Task<> IBridgeCache::flush_dirty(Bytes budget) {
  auto batch = id_pool_.acquire();
  table_.dirty_entries_into(budget, *batch);
  if (batch->empty()) co_return;
  co_await flush_batch(*batch, /*yield_to_foreground=*/true);
}

bool IBridgeCache::recover(std::istream& in) {
  assert(background_.all_finished() && read_pins_.empty() &&
         flush_windows_.empty() && write_windows_.empty());
  // Drop the current (post-crash, untrusted) state: erase every entry and
  // zero the log's allocation accounting.
  for (EntryId id : table_.all_entries()) table_.erase(id);
  log_.reset();
  if (!table_.load(in)) {
    // Malformed image: load() may have admitted a prefix of the entries
    // before rejecting — drop them and come back empty but usable.
    for (EntryId id : table_.all_entries()) table_.erase(id);
    log_.finish_restore();
    check("recover");
    return false;
  }
  for (EntryId id : table_.all_entries()) {
    const CacheEntry& e = table_.get(id);
    log_.restore_range(e.log_off, e.length);
  }
  log_.finish_restore();
  check("recover");
  return true;
}

}  // namespace ibridge::core
