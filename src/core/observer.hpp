// Checker hook for the iBridge cache (the SimCheck attachment point).
//
// An observer installed on an IBridgeCache is invoked after every
// state-changing step of the serve/evict/stage/flush/drain machinery, with a
// label naming the step that just completed.  Production paths never install
// one — the hook is a single null-pointer test — while src/check/'s
// InvariantOracle uses it to audit the mapping table, the SSD log, and the
// partition after each transition.
#pragma once

namespace ibridge::core {

class IBridgeCache;

class CacheObserver {
 public:
  virtual ~CacheObserver() = default;

  /// `where` names the step that just completed (e.g. "serve.read.hit",
  /// "evict", "drain").  The cache is in a consistent externally-visible
  /// state whenever this fires; steps labelled "drain" are also quiescent
  /// with respect to dirty data.
  virtual void on_check(const IBridgeCache& cache, const char* where) = 0;
};

}  // namespace ibridge::core
