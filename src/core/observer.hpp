// Checker hook for the iBridge cache (the SimCheck attachment point).
//
// An observer installed on an IBridgeCache is invoked after every
// state-changing step of the serve/evict/stage/flush/drain machinery, with a
// label naming the step that just completed.  Production paths never install
// one — the hook is a single null-pointer test — while src/check/'s
// InvariantOracle uses it to audit the mapping table, the SSD log, and the
// partition after each transition.
#pragma once

namespace ibridge::core {

class IBridgeCache;

class CacheObserver {
 public:
  virtual ~CacheObserver() = default;

  /// `where` names the step that just completed (e.g. "serve.read.hit",
  /// "evict", "drain").  The cache is in a consistent externally-visible
  /// state whenever this fires; steps labelled "drain" are also quiescent
  /// with respect to dirty data.
  virtual void on_check(const IBridgeCache& cache, const char* where) = 0;
};

/// Crash hook for the write-back machinery (the fault-engine attachment
/// point).  A gate installed on an IBridgeCache is consulted at the phase
/// boundaries of flush_batch(); returning true "cuts" the batch there,
/// modelling a server that died mid-write-back.  The phases, in order:
///
///   "batch.begin"   before any staging read is issued
///   "batch.staged"  after staging reads complete, before any disk write
///   "batch.write"   before each coalesced run's disk write
///   "batch.clean"   after a run's disk write, before entries are marked
///                   clean (crash between data write and metadata update)
///
/// A cut never leaves a flush window open and never marks entries clean, so
/// re-flushing after recovery is idempotent.  Gates must be one-shot per
/// crash: drain() retries until dirty data reaches zero, so a gate that cuts
/// forever would spin.  The foreground flush_entry() path (read-miss
/// consistency) is intentionally not gated.
class WritebackGate {
 public:
  virtual ~WritebackGate() = default;

  /// Return true to cut the current flush batch at this phase.
  virtual bool cut(const char* phase) = 0;
};

}  // namespace ibridge::core
