#include "core/mapping_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <istream>
#include <ostream>
#include <string>

namespace ibridge::core {

MappingTable::MappingTable()
    : entries_(0, EntriesMap::hasher{}, EntriesMap::key_equal{},
               EntriesMap::allocator_type{arena_}),
      by_file_(ByFileMap::key_compare{}, ByFileMap::allocator_type{arena_}),
      by_log_(ByLogMap::key_compare{}, ByLogMap::allocator_type{arena_}) {}

void MappingTable::reserve(std::size_t entries) {
  slab_.reserve(entries);
  entries_.reserve(entries);
  dirty_scratch_.reserve(entries);
}

std::uint32_t MappingTable::slot_of(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  return it->second;
}

std::uint32_t MappingTable::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t s = free_head_;
    free_head_ = slab_[s].link[kLruChain].next;
    return s;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void MappingTable::free_slot(std::uint32_t s) {
  slab_[s].id = kNoEntry;
  slab_[s].link[kLruChain].next = free_head_;
  free_head_ = s;
}

void MappingTable::list_push_back(int chain, ListHead& h, std::uint32_t s) {
  Links& l = slab_[s].link[chain];
  l.prev = h.tail;
  l.next = kNil;
  if (h.tail != kNil) {
    slab_[h.tail].link[chain].next = s;
  } else {
    h.head = s;
  }
  h.tail = s;
  ++h.size;
}

void MappingTable::list_unlink(int chain, ListHead& h, std::uint32_t s) {
  Links& l = slab_[s].link[chain];
  if (l.prev != kNil) {
    slab_[l.prev].link[chain].next = l.next;
  } else {
    h.head = l.next;
  }
  if (l.next != kNil) {
    slab_[l.next].link[chain].prev = l.prev;
  } else {
    h.tail = l.prev;
  }
  l.prev = l.next = kNil;
  --h.size;
}

EntryId MappingTable::insert(CacheEntry e) {
  assert(e.length > Bytes::zero());
  assert(!has_overlap(e.file, e.file_off, e.length) &&
         "insert over existing cached range");
  const EntryId id = next_id_++;
  const std::uint32_t s = alloc_slot();
  Slot& slot = slab_[s];
  slot.entry = e;
  slot.id = id;
  entries_.emplace(id, s);
  list_push_back(kLruChain, lru_[idx(e.klass)], s);
  if (e.dirty) list_push_back(kDirtyChain, dirty_[idx(e.klass)], s);
  account_add(e);
  index_insert(id, e);
  return id;
}

CacheEntry MappingTable::erase(EntryId id) {
  const std::uint32_t s = slot_of(id);
  const CacheEntry e = slab_[s].entry;
  list_unlink(kLruChain, lru_[idx(e.klass)], s);
  if (e.dirty) list_unlink(kDirtyChain, dirty_[idx(e.klass)], s);
  account_remove(e);
  index_erase(id, e);
  entries_.erase(id);
  free_slot(s);
  return e;
}

const CacheEntry& MappingTable::get(EntryId id) const {
  return slab_[slot_of(id)].entry;
}

void MappingTable::mark_clean(EntryId id) {
  const std::uint32_t s = slot_of(id);
  CacheEntry& e = slab_[s].entry;
  if (e.dirty) {
    e.dirty = false;
    dirty_bytes_ -= e.length;
    list_unlink(kDirtyChain, dirty_[idx(e.klass)], s);
  }
}

void MappingTable::mark_dirty(EntryId id) {
  const std::uint32_t s = slot_of(id);
  CacheEntry& e = slab_[s].entry;
  if (!e.dirty) {
    e.dirty = true;
    dirty_bytes_ += e.length;
    list_push_back(kDirtyChain, dirty_[idx(e.klass)], s);
  }
}

void MappingTable::touch(EntryId id) {
  const std::uint32_t s = slot_of(id);
  ListHead& lru = lru_[idx(slab_[s].entry.klass)];
  if (lru.tail == s) return;  // already MRU
  list_unlink(kLruChain, lru, s);
  list_push_back(kLruChain, lru, s);
}

// lint: no-alloc
void MappingTable::coverage_into(fsim::FileId file, Offset off, Bytes len,
                                 std::vector<LogSlice>& out) const {
  out.clear();
  const Offset end = off + len;

  Offset pos = off;
  // Find the entry containing `pos`: the last entry of `file` starting at
  // or before it.
  auto it = by_file_.upper_bound(FileKey{file, pos});
  if (it == by_file_.begin()) return;
  --it;
  if (it->first.first != file) return;
  while (pos < end) {
    const CacheEntry& e = slab_[slot_of(it->second)].entry;
    if (pos < e.file_off || pos >= e.file_end()) {  // gap
      out.clear();
      return;
    }
    const Bytes take = std::min(end, e.file_end()) - pos;
    // lint: alloc-ok (pooled lease: serve passes slice_pool_ vectors whose capacity survives release/acquire)
    out.push_back({it->second, pos, e.log_off + (pos - e.file_off), take});
    pos += take;
    if (pos >= end) break;
    ++it;
    if (it == by_file_.end() || it->first.first != file) {  // ran out
      out.clear();
      return;
    }
  }
}

// lint: no-alloc
void MappingTable::overlapping_into(fsim::FileId file, Offset off, Bytes len,
                                    std::vector<EntryId>& out) const {
  out.clear();
  const Offset end = off + len;

  auto it = by_file_.upper_bound(FileKey{file, off});
  if (it != by_file_.begin()) {
    auto prev = std::prev(it);
    if (prev->first.first == file) {
      const CacheEntry& e = slab_[slot_of(prev->second)].entry;
      // lint: alloc-ok (pooled lease: id_pool_ vectors keep their capacity across serves)
      if (e.file_end() > off) out.push_back(prev->second);
    }
  }
  for (; it != by_file_.end() && it->first.first == file &&
         it->first.second < end;
       ++it) {
    // lint: alloc-ok (pooled lease: id_pool_ vectors keep their capacity across serves)
    out.push_back(it->second);
  }
}

bool MappingTable::has_overlap(fsim::FileId file, Offset off,
                               Bytes len) const {
  const Offset end = off + len;
  auto it = by_file_.upper_bound(FileKey{file, off});
  if (it != by_file_.begin()) {
    auto prev = std::prev(it);
    if (prev->first.first == file) {
      const CacheEntry& e = slab_[slot_of(prev->second)].entry;
      if (e.file_end() > off) return true;
    }
  }
  return it != by_file_.end() && it->first.first == file &&
         it->first.second < end;
}

std::vector<LogSlice> MappingTable::coverage(fsim::FileId file, Offset off,
                                             Bytes len) const {
  std::vector<LogSlice> out;
  coverage_into(file, off, len, out);
  return out;
}

std::vector<EntryId> MappingTable::overlapping(fsim::FileId file, Offset off,
                                               Bytes len) const {
  std::vector<EntryId> out;
  overlapping_into(file, off, len, out);
  return out;
}

void MappingTable::trim(EntryId id, Offset off, Bytes len,
                        std::vector<std::pair<Offset, Bytes>>& freed) {
  const CacheEntry e = slab_[slot_of(id)].entry;
  const Offset cut_lo = std::max(off, e.file_off);
  const Offset cut_hi = std::min(off + len, e.file_end());
  if (cut_lo >= cut_hi) return;  // no intersection

  freed.emplace_back(e.log_off + (cut_lo - e.file_off), cut_hi - cut_lo);
  erase(id);

  if (cut_lo > e.file_off) {  // left remainder
    CacheEntry left = e;
    left.length = cut_lo - e.file_off;
    insert(left);
  }
  if (cut_hi < e.file_end()) {  // right remainder
    CacheEntry right = e;
    right.file_off = cut_hi;
    right.log_off = e.log_off + (cut_hi - e.file_off);
    right.length = e.file_end() - cut_hi;
    insert(right);
  }
}

EntryId MappingTable::lru_victim(CacheClass c) const {
  const ListHead& lru = lru_[idx(c)];
  return lru.head == kNil ? kNoEntry : slab_[lru.head].id;
}

// lint: no-alloc
void MappingTable::dirty_entries_into(Bytes max_bytes,
                                      std::vector<EntryId>& out) const {
  out.clear();
  // Walk only the intrusive dirty lists, then order by (file, offset) so a
  // batch is as contiguous as the dirty data allows — the write-back path
  // coalesces adjacent entries into single long disk writes ("as many long
  // sequential accesses as possible").
  dirty_scratch_.clear();
  for (int c = 0; c < kNumClasses; ++c) {
    for (std::uint32_t s = dirty_[c].head; s != kNil;
         s = slab_[s].link[kDirtyChain].next) {
      // lint: alloc-ok (member scratch: capacity reaches dirty-entry high-water mark once, then stays)
      dirty_scratch_.push_back(s);
    }
  }
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const CacheEntry& ea = slab_[a].entry;
              const CacheEntry& eb = slab_[b].entry;
              if (ea.file != eb.file) return ea.file < eb.file;
              return ea.file_off < eb.file_off;
            });
  Bytes budget = max_bytes;
  for (std::uint32_t s : dirty_scratch_) {
    const CacheEntry& e = slab_[s].entry;
    if (budget - e.length < Bytes::zero() && !out.empty()) return;
    // lint: alloc-ok (pooled lease: id_pool_ vectors keep their capacity across serves)
    out.push_back(slab_[s].id);
    budget -= e.length;
    if (budget <= Bytes::zero()) return;
  }
}

std::vector<EntryId> MappingTable::dirty_entries(Bytes max_bytes) const {
  std::vector<EntryId> out;
  dirty_entries_into(max_bytes, out);
  return out;
}

// lint: no-alloc
void MappingTable::entries_in_log_range_into(Offset log_begin, Offset log_end,
                                             std::vector<EntryId>& out) const {
  out.clear();
  auto it = by_log_.upper_bound(log_begin);
  if (it != by_log_.begin()) {
    auto prev = std::prev(it);
    const CacheEntry& e = slab_[slot_of(prev->second)].entry;
    // lint: alloc-ok (pooled lease: id_pool_ vectors keep their capacity across serves)
    if (e.log_off + e.length > log_begin) out.push_back(prev->second);
  }
  for (; it != by_log_.end() && it->first < log_end; ++it)
    // lint: alloc-ok (pooled lease: id_pool_ vectors keep their capacity across serves)
    out.push_back(it->second);
}

std::vector<EntryId> MappingTable::entries_in_log_range(Offset log_begin,
                                                        Offset log_end) const {
  std::vector<EntryId> out;
  entries_in_log_range_into(log_begin, log_end, out);
  return out;
}

std::vector<EntryId> MappingTable::all_entries() const {
  std::vector<EntryId> out;
  out.reserve(entries_.size());
  for (const auto& [key, id] : by_file_) out.push_back(id);
  return out;
}

std::vector<EntryId> MappingTable::lru_order(CacheClass c) const {
  std::vector<EntryId> out;
  const ListHead& lru = lru_[idx(c)];
  out.reserve(lru.size);
  for (std::uint32_t s = lru.head; s != kNil; s = slab_[s].link[kLruChain].next)
    out.push_back(slab_[s].id);
  return out;
}

namespace {
constexpr const char* kTableMagic = "ibridge-mapping-table-v1";
}

void MappingTable::save(std::ostream& os) const {
  os << kTableMagic << ' ' << entry_count() << '\n';
  // LRU order per class: load() re-inserts in stream order, which appends
  // to the back of each class list — front stays LRU, back stays MRU.
  // ret_ms is stored as its IEEE-754 bit pattern for an exact round trip.
  for (int c = 0; c < kNumClasses; ++c) {
    for (std::uint32_t s = lru_[c].head; s != kNil;
         s = slab_[s].link[kLruChain].next) {
      const CacheEntry& e = slab_[s].entry;
      os << e.file << ' ' << e.file_off.value() << ' ' << e.length.count()
         << ' ' << e.log_off.value() << ' ' << (e.dirty ? 1 : 0) << ' ' << c
         << ' ' << std::bit_cast<std::uint64_t>(e.ret_ms) << '\n';
    }
  }
}

bool MappingTable::load(std::istream& is) {
  assert(entries_.empty() && "load into a non-empty table");
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != kTableMagic) return false;
  for (std::size_t i = 0; i < n; ++i) {
    CacheEntry e;
    std::int64_t file_off = 0, length = 0, log_off = 0;
    int dirty = 0, klass = 0;
    std::uint64_t ret_bits = 0;
    if (!(is >> e.file >> file_off >> length >> log_off >> dirty >> klass >>
          ret_bits)) {
      return false;
    }
    if (length <= 0 || log_off < 0 || klass < 0 || klass >= kNumClasses ||
        (dirty != 0 && dirty != 1)) {
      return false;
    }
    e.file_off = Offset{file_off};
    e.length = Bytes{length};
    e.log_off = Offset{log_off};
    e.dirty = dirty != 0;
    e.klass = static_cast<CacheClass>(klass);
    e.ret_ms = std::bit_cast<double>(ret_bits);
    if (has_overlap(e.file, e.file_off, e.length)) return false;
    insert(e);
  }
  return true;
}

void MappingTable::index_insert(EntryId id, const CacheEntry& e) {
  auto [it, inserted] = by_file_.emplace(FileKey{e.file, e.file_off}, id);
  (void)it;
  assert(inserted && "two entries with identical start offset");
  auto [lit, linserted] = by_log_.emplace(e.log_off, id);
  (void)lit;
  assert(linserted && "two entries with identical log offset");
}

void MappingTable::index_erase(EntryId id, const CacheEntry& e) {
  auto log_it = by_log_.find(e.log_off);
  assert(log_it != by_log_.end() && log_it->second == id);
  by_log_.erase(log_it);
  auto it = by_file_.find(FileKey{e.file, e.file_off});
  assert(it != by_file_.end() && it->second == id);
  (void)id;
  by_file_.erase(it);
}

void MappingTable::account_add(const CacheEntry& e) {
  bytes_[idx(e.klass)] += e.length;
  ret_sum_[idx(e.klass)] += e.ret_ms;
  if (e.dirty) dirty_bytes_ += e.length;
}

void MappingTable::account_remove(const CacheEntry& e) {
  bytes_[idx(e.klass)] -= e.length;
  ret_sum_[idx(e.klass)] -= e.ret_ms;
  if (e.dirty) dirty_bytes_ -= e.length;
}

}  // namespace ibridge::core
