#include "core/mapping_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <istream>
#include <ostream>
#include <string>

namespace ibridge::core {

EntryId MappingTable::insert(CacheEntry e) {
  assert(e.length > Bytes::zero());
  assert(overlapping(e.file, e.file_off, e.length).empty() &&
         "insert over existing cached range");
  const EntryId id = next_id_++;
  auto& lru = lru_[idx(e.klass)];
  lru.push_back(id);
  Node node{e, std::prev(lru.end())};
  account_add(e);
  index_insert(id, e);
  entries_.emplace(id, std::move(node));
  return id;
}

CacheEntry MappingTable::erase(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  CacheEntry e = it->second.entry;
  lru_[idx(e.klass)].erase(it->second.lru_it);
  account_remove(e);
  index_erase(id, e);
  entries_.erase(it);
  return e;
}

const CacheEntry& MappingTable::get(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  return it->second.entry;
}

void MappingTable::mark_clean(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  if (it->second.entry.dirty) {
    it->second.entry.dirty = false;
    dirty_bytes_ -= it->second.entry.length;
  }
}

void MappingTable::mark_dirty(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  if (!it->second.entry.dirty) {
    it->second.entry.dirty = true;
    dirty_bytes_ += it->second.entry.length;
  }
}

void MappingTable::touch(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  auto& lru = lru_[idx(it->second.entry.klass)];
  lru.splice(lru.end(), lru, it->second.lru_it);
  it->second.lru_it = std::prev(lru.end());
}

std::vector<LogSlice> MappingTable::coverage(fsim::FileId file, Offset off,
                                             Bytes len) const {
  std::vector<LogSlice> out;
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) return out;
  const auto& index = fit->second;
  const Offset end = off + len;

  Offset pos = off;
  // Find the entry containing `pos`: the last entry starting at or before it.
  auto it = index.upper_bound(pos);
  if (it == index.begin()) return {};
  --it;
  while (pos < end) {
    const CacheEntry& e = entries_.at(it->second).entry;
    if (pos < e.file_off || pos >= e.file_end()) return {};  // gap
    const Bytes take = std::min(end, e.file_end()) - pos;
    out.push_back({it->second, pos, e.log_off + (pos - e.file_off), take});
    pos += take;
    if (pos >= end) break;
    ++it;
    if (it == index.end()) return {};  // ran out of entries
  }
  return out;
}

std::vector<EntryId> MappingTable::overlapping(fsim::FileId file, Offset off,
                                               Bytes len) const {
  std::vector<EntryId> out;
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) return out;
  const auto& index = fit->second;
  const Offset end = off + len;

  auto it = index.upper_bound(off);
  if (it != index.begin()) {
    auto prev = std::prev(it);
    const CacheEntry& e = entries_.at(prev->second).entry;
    if (e.file_end() > off) out.push_back(prev->second);
  }
  for (; it != index.end() && it->first < end; ++it) out.push_back(it->second);
  return out;
}

void MappingTable::trim(EntryId id, Offset off, Bytes len,
                        std::vector<std::pair<Offset, Bytes>>& freed) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  const CacheEntry e = it->second.entry;
  const Offset cut_lo = std::max(off, e.file_off);
  const Offset cut_hi = std::min(off + len, e.file_end());
  if (cut_lo >= cut_hi) return;  // no intersection

  freed.emplace_back(e.log_off + (cut_lo - e.file_off), cut_hi - cut_lo);
  erase(id);

  if (cut_lo > e.file_off) {  // left remainder
    CacheEntry left = e;
    left.length = cut_lo - e.file_off;
    insert(left);
  }
  if (cut_hi < e.file_end()) {  // right remainder
    CacheEntry right = e;
    right.file_off = cut_hi;
    right.log_off = e.log_off + (cut_hi - e.file_off);
    right.length = e.file_end() - cut_hi;
    insert(right);
  }
}

EntryId MappingTable::lru_victim(CacheClass c) const {
  const auto& lru = lru_[idx(c)];
  return lru.empty() ? kNoEntry : lru.front();
}

std::vector<EntryId> MappingTable::dirty_entries(Bytes max_bytes) const {
  std::vector<EntryId> out;
  Bytes budget = max_bytes;
  // Walk files in id order and entries in file-offset order, so a batch is
  // as contiguous as the dirty data allows — the write-back path coalesces
  // adjacent entries into single long disk writes ("as many long sequential
  // accesses as possible").
  std::vector<fsim::FileId> files;
  files.reserve(by_file_.size());
  // lint: unordered-iteration-ok (keys are collected and sorted before use)
  for (const auto& [fid, _] : by_file_) files.push_back(fid);
  std::sort(files.begin(), files.end());
  for (fsim::FileId fid : files) {
    for (const auto& [off, id] : by_file_.at(fid)) {
      const CacheEntry& e = entries_.at(id).entry;
      if (!e.dirty) continue;
      if (budget - e.length < Bytes::zero() && !out.empty()) return out;
      out.push_back(id);
      budget -= e.length;
      if (budget <= Bytes::zero()) return out;
    }
  }
  return out;
}

std::vector<EntryId> MappingTable::entries_in_log_range(Offset log_begin,
                                                        Offset log_end) const {
  std::vector<EntryId> out;
  auto it = by_log_.upper_bound(log_begin);
  if (it != by_log_.begin()) {
    auto prev = std::prev(it);
    const CacheEntry& e = entries_.at(prev->second).entry;
    if (e.log_off + e.length > log_begin) out.push_back(prev->second);
  }
  for (; it != by_log_.end() && it->first < log_end; ++it)
    out.push_back(it->second);
  return out;
}

std::vector<EntryId> MappingTable::all_entries() const {
  std::vector<EntryId> out;
  out.reserve(entries_.size());
  std::vector<fsim::FileId> files;
  files.reserve(by_file_.size());
  // lint: unordered-iteration-ok (keys are collected and sorted before use)
  for (const auto& [fid, _] : by_file_) files.push_back(fid);
  std::sort(files.begin(), files.end());
  for (fsim::FileId fid : files) {
    for (const auto& [off, id] : by_file_.at(fid)) out.push_back(id);
  }
  return out;
}

std::vector<EntryId> MappingTable::lru_order(CacheClass c) const {
  const auto& lru = lru_[idx(c)];
  return {lru.begin(), lru.end()};
}

namespace {
constexpr const char* kTableMagic = "ibridge-mapping-table-v1";
}

void MappingTable::save(std::ostream& os) const {
  os << kTableMagic << ' ' << entry_count() << '\n';
  // LRU order per class: load() re-inserts in stream order, which appends
  // to the back of each class list — front stays LRU, back stays MRU.
  // ret_ms is stored as its IEEE-754 bit pattern for an exact round trip.
  for (int c = 0; c < kNumClasses; ++c) {
    for (EntryId id : lru_[c]) {
      const CacheEntry& e = entries_.at(id).entry;
      os << e.file << ' ' << e.file_off.value() << ' ' << e.length.count()
         << ' ' << e.log_off.value() << ' ' << (e.dirty ? 1 : 0) << ' ' << c
         << ' ' << std::bit_cast<std::uint64_t>(e.ret_ms) << '\n';
    }
  }
}

bool MappingTable::load(std::istream& is) {
  assert(entries_.empty() && "load into a non-empty table");
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != kTableMagic) return false;
  for (std::size_t i = 0; i < n; ++i) {
    CacheEntry e;
    std::int64_t file_off = 0, length = 0, log_off = 0;
    int dirty = 0, klass = 0;
    std::uint64_t ret_bits = 0;
    if (!(is >> e.file >> file_off >> length >> log_off >> dirty >> klass >>
          ret_bits)) {
      return false;
    }
    if (length <= 0 || log_off < 0 || klass < 0 || klass >= kNumClasses ||
        (dirty != 0 && dirty != 1)) {
      return false;
    }
    e.file_off = Offset{file_off};
    e.length = Bytes{length};
    e.log_off = Offset{log_off};
    e.dirty = dirty != 0;
    e.klass = static_cast<CacheClass>(klass);
    e.ret_ms = std::bit_cast<double>(ret_bits);
    if (!overlapping(e.file, e.file_off, e.length).empty()) return false;
    insert(e);
  }
  return true;
}

void MappingTable::index_insert(EntryId id, const CacheEntry& e) {
  auto [it, inserted] = by_file_[e.file].emplace(e.file_off, id);
  (void)it;
  assert(inserted && "two entries with identical start offset");
  auto [lit, linserted] = by_log_.emplace(e.log_off, id);
  (void)lit;
  assert(linserted && "two entries with identical log offset");
}

void MappingTable::index_erase(EntryId id, const CacheEntry& e) {
  auto log_it = by_log_.find(e.log_off);
  assert(log_it != by_log_.end() && log_it->second == id);
  by_log_.erase(log_it);
  auto fit = by_file_.find(e.file);
  assert(fit != by_file_.end());
  auto it = fit->second.find(e.file_off);
  assert(it != fit->second.end() && it->second == id);
  (void)id;
  fit->second.erase(it);
  if (fit->second.empty()) by_file_.erase(fit);
}

void MappingTable::account_add(const CacheEntry& e) {
  bytes_[idx(e.klass)] += e.length;
  ret_sum_[idx(e.klass)] += e.ret_ms;
  if (e.dirty) dirty_bytes_ += e.length;
}

void MappingTable::account_remove(const CacheEntry& e) {
  bytes_[idx(e.klass)] -= e.length;
  ret_sum_[idx(e.klass)] -= e.ret_ms;
  if (e.dirty) dirty_bytes_ -= e.length;
}

}  // namespace ibridge::core
