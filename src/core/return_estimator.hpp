// The return of redirecting a request to the SSD — Equation (3).
//
// For any request, the base return is
//
//     T_ret = T_if_disk - T_if_ssd
//
// (positive means serving it on the disk would slow the disk down, so the
// SSD should take it).  For a *fragment*, the return is underestimated when
// this server is currently the slowest among the servers holding the
// fragment's siblings: serving the fragment faster then speeds up the whole
// parent request, and through it every sibling server's productivity.  The
// paper models that striping-magnification bonus as
//
//     T_ret_frag = T_ret + (T_max - T_sec_max) * n
//
// applied only when this server's T is the maximum among the siblings'
// servers' T values (broadcast by the metadata server); n is the number of
// sibling sub-requests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/service_time.hpp"
#include "core/siblings.hpp"
#include "sim/units.hpp"

namespace ibridge::core {

using sim::ServerId;

/// A snapshot of all servers' T values as last broadcast by the metadata
/// server (ms; index = server id).
using TBoard = std::vector<double>;

struct ReturnEstimate {
  double ret_ms = 0.0;          ///< T_ret or T_ret_frag
  bool boosted = false;         ///< Equation (3) bonus applied
};

class ReturnEstimator {
 public:
  explicit ReturnEstimator(bool fragment_boost = true)
      : fragment_boost_(fragment_boost) {}

  /// Base return for any request (Eq. 1 minus Eq. 2).
  // lint: units-ok (LBNs are device sector addresses, not byte offsets)
  static double base_return(const ServiceTimeModel& model, std::int64_t lbn,
                            Bytes bytes, storage::IoDirection dir) {
    return model.t_if_disk(lbn, bytes, dir) - model.t_if_ssd();
  }

  /// Full estimate.  `self` is this server's id; `siblings` describes the
  /// servers holding the fragment's sibling sub-requests (empty for
  /// non-fragments).  The descriptor enumerates the same servers in the
  /// same order as the materialized list it replaced, so the arithmetic —
  /// including the skip of entries equal to `self` and n = sibling count —
  /// is unchanged.
  // lint: no-alloc
  ReturnEstimate estimate(const ServiceTimeModel& model,
                          std::int64_t lbn,  // lint: units-ok (LBN)
                          Bytes bytes, storage::IoDirection dir,
                          bool is_fragment, ServerId self,
                          const SiblingSet& siblings,
                          const TBoard& board) const {
    ReturnEstimate e;
    e.ret_ms = base_return(model, lbn, bytes, dir);
    if (!is_fragment || !fragment_boost_ || siblings.empty()) return e;

    // Local T is the live value; peers come from the (possibly stale)
    // broadcast board — exactly the information a real server has.
    const double t_self = model.t();
    double t_max = t_self;
    double t_sec = 0.0;
    bool self_is_max = true;
    siblings.for_each_sibling([&](ServerId s) {
      if (s == self) return;
      const double t = s.index() >= 0 && std::cmp_less(s.index(), board.size())
                           ? board[static_cast<std::size_t>(s.index())]
                           : 0.0;
      if (t > t_max) {
        self_is_max = false;
        t_sec = std::max(t_sec, t_max);
        t_max = t;
      } else {
        t_sec = std::max(t_sec, t);
      }
    });
    if (!self_is_max) return e;  // bottleneck is elsewhere: no bonus

    const auto n = static_cast<double>(siblings.size());
    e.ret_ms += (t_max - t_sec) * n;
    e.boosted = true;
    return e;
  }

  bool fragment_boost() const { return fragment_boost_; }

 private:
  bool fragment_boost_;
};

}  // namespace ibridge::core
