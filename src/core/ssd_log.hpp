// Log-structured allocation inside the SSD cache file.
//
// The paper writes new cache data "sequentially into a pre-created large
// file that is maintained much like a log-based file system", because
// sequential SSD writes are far faster than random ones (Table II: 140 vs
// 30 MB/s).  SsdLog manages that file's space in fixed-size segments:
// appends fill the active segment front to back (so the device sees a
// sequential write stream); released ranges decrement their segment's live
// count; fully dead segments return to the free list.  When no free segment
// exists but live data is below capacity (fragmentation), the cache layer
// asks for a victim segment and relocates or evicts its remaining live
// entries (a minimal log cleaner).
//
// Victim selection is O(log n): live_index_ orders the segments with live
// data by (live bytes, segment index) and is maintained incrementally by
// append()/release(), so the cleaner reads the front of the index instead
// of scanning every segment.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sim/mem_pool.hpp"
#include "sim/units.hpp"

namespace ibridge::core {

class SsdLog {
 public:
  SsdLog(sim::Bytes capacity, sim::Bytes segment_bytes)
      : segment_bytes_(segment_bytes),
        segments_(static_cast<std::size_t>(capacity / segment_bytes)),
        live_index_(LiveIndex::key_compare{},
                    LiveIndex::allocator_type{arena_}) {
    assert(segment_bytes > sim::Bytes::zero() && capacity >= segment_bytes);
    for (std::size_t i = 0; i < segments_.size(); ++i)
      free_segments_.push_back(static_cast<int>(i));
    activate_next();
  }
  // live_index_ allocates from the log's own arena; moving or copying would
  // carry dangling allocator pointers.
  SsdLog(const SsdLog&) = delete;
  SsdLog& operator=(const SsdLog&) = delete;

  /// Byte capacity of the log file.
  sim::Bytes capacity() const {
    return static_cast<std::int64_t>(segments_.size()) * segment_bytes_;
  }

  /// Try to allocate `len` contiguous bytes at the log head.  Returns the
  /// log offset, or nullopt when no segment can take it (caller must clean
  /// or evict first).  `len` must fit in one segment.
  std::optional<sim::Offset> append(sim::Bytes len) {
    assert(len > sim::Bytes::zero() && len <= segment_bytes_);
    if (active_ < 0) {
      if (!activate_next()) return std::nullopt;
    }
    if (head_ + len > segment_bytes_) {
      // Active segment cannot fit the allocation; seal it and move on.
      // If everything in it was already released, it goes straight back to
      // the free list (release() cannot free the active segment itself).
      if (segments_[static_cast<std::size_t>(active_)].live ==
          sim::Bytes::zero()) {
        free_segments_.push_back(active_);
      }
      if (!activate_next()) return std::nullopt;
    }
    const sim::Offset off = segment_start(active_) + head_;
    head_ += len;
    add_live(active_, len);
    live_bytes_ += len;
    return off;
  }

  /// Release a previously appended range (entry evicted or trimmed).
  void release(sim::Offset off, sim::Bytes len) {
    assert(len > sim::Bytes::zero());
    const int seg = static_cast<int>(off / segment_bytes_);
    assert(seg >= 0 && std::cmp_less(seg, segments_.size()));
    add_live(seg, -len);
    live_bytes_ -= len;
    assert(segments_[static_cast<std::size_t>(seg)].live >=
           sim::Bytes::zero());
    if (segments_[static_cast<std::size_t>(seg)].live == sim::Bytes::zero() &&
        seg != active_) {
      free_segments_.push_back(seg);
    }
  }

  /// Segment with the least live data, excluding the active one; -1 if none.
  /// Used by the cleaner to pick a victim.  The index holds exactly the
  /// segments with live data, smallest (live, index) first, so this reads
  /// at most two elements.
  int victim_segment() const {
    for (const auto& [live, seg] : live_index_) {
      if (seg != active_) return seg;
    }
    return -1;
  }

  /// Byte range [begin, end) of a segment within the log file.
  std::pair<sim::Offset, sim::Offset> segment_range(int seg) const {
    const sim::Offset b = segment_start(seg);
    return {b, b + segment_bytes_};
  }

  sim::Bytes live_bytes() const { return live_bytes_; }
  sim::Bytes segment_bytes() const { return segment_bytes_; }
  int segment_count() const { return static_cast<int>(segments_.size()); }
  /// Live bytes of one segment (SimCheck oracle: must equal the summed
  /// lengths of the mapping-table entries whose log ranges fall inside it).
  sim::Bytes segment_live(int seg) const {
    return segments_[static_cast<std::size_t>(seg)].live;
  }
  /// The segment currently receiving appends (-1 when the log is full).
  int active_segment() const { return active_; }
  int free_segment_count() const {
    return static_cast<int>(free_segments_.size());
  }
  bool has_room(sim::Bytes len) const {
    return (active_ >= 0 && head_ + len <= segment_bytes_) ||
           !free_segments_.empty();
  }

  // --- Crash-recovery rebuild -------------------------------------------
  //
  // After a crash the mapping table is reloaded from its saved image and the
  // log's segment accounting is rebuilt from the surviving entries:
  //
  //   log.reset();
  //   for each recovered entry e: log.restore_range(e.log_off, e.length);
  //   log.finish_restore();
  //
  // The rebuilt log has exactly the recovered entries live; everything else
  // is free space.  Segments that held now-lost allocations simply come back
  // empty — the log is an allocator, not a data store, so no cleaning pass
  // is needed.

  /// Drop all allocation state (segment live counts, free list, active
  /// head).  The log is unusable until finish_restore().
  void reset() {
    for (auto& s : segments_) s.live = sim::Bytes::zero();
    live_index_.clear();
    free_segments_.clear();
    active_ = -1;
    head_ = sim::Bytes::zero();
    live_bytes_ = sim::Bytes::zero();
  }

  /// Re-account one surviving allocation.  Ranges never straddle segments
  /// (append() seals the active segment instead of splitting).
  void restore_range(sim::Offset off, sim::Bytes len) {
    assert(len > sim::Bytes::zero() && len <= segment_bytes_);
    const int seg = static_cast<int>(off / segment_bytes_);
    assert(seg >= 0 && std::cmp_less(seg, segments_.size()));
    assert(off % segment_bytes_ + len <= segment_bytes_);
    add_live(seg, len);
    live_bytes_ += len;
  }

  /// Rebuild the free list from the zero-live segments (in index order, for
  /// determinism) and open a fresh active segment.  If every segment holds
  /// live data the log comes back full (active_ == -1); append() recovers
  /// via activate_next() once something is released.
  void finish_restore() {
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i].live == sim::Bytes::zero()) {
        free_segments_.push_back(static_cast<int>(i));
      }
    }
    activate_next();
  }

 private:
  sim::Offset segment_start(int seg) const {
    return sim::Offset::zero() + static_cast<std::int64_t>(seg) * segment_bytes_;
  }

  bool activate_next() {
    if (free_segments_.empty()) {
      active_ = -1;
      return false;
    }
    active_ = free_segments_.front();
    free_segments_.pop_front();
    head_ = sim::Bytes::zero();
    return true;
  }

  /// Apply a live-byte delta to a segment, keeping live_index_ in sync:
  /// the index holds {live, seg} for exactly the segments with live > 0.
  void add_live(int seg, sim::Bytes delta) {
    auto& s = segments_[static_cast<std::size_t>(seg)];
    if (s.live > sim::Bytes::zero()) live_index_.erase({s.live, seg});
    s.live += delta;
    if (s.live > sim::Bytes::zero()) live_index_.insert({s.live, seg});
  }

  struct Segment {
    sim::Bytes live;
  };

  using LiveKey = std::pair<sim::Bytes, int>;
  using LiveIndex =
      std::set<LiveKey, std::less<LiveKey>, sim::PoolAllocator<LiveKey>>;

  sim::Bytes segment_bytes_;
  std::vector<Segment> segments_;
  std::deque<int> free_segments_;
  // Node arena for live_index_; must outlive (so precede) it.
  sim::ChunkPool arena_;
  LiveIndex live_index_;
  int active_ = -1;
  sim::Bytes head_;
  sim::Bytes live_bytes_;
};

}  // namespace ibridge::core
