// IBridgeCache — the server-side heart of iBridge.
//
// One instance lives on each data server, sitting between the pvfs2-server
// request handler and the server's local disk file system.  For every
// arriving request it:
//
//   1. classifies it (fragment flag from the client, regular-random by size),
//   2. estimates the return of SSD redirection (Equations 1-3) using the
//      profiled disk model and the broadcast T-value board,
//   3. serves it from the SSD cache (log-structured writes, mapping-table
//      reads) when the return is positive, from the disk otherwise,
//   4. maintains the dynamic class partition, per-class LRU eviction, and
//      the idle-time write-back of dirty cached data to the disk.
#pragma once

#include <coroutine>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/mapping_table.hpp"
#include "core/observer.hpp"
#include "core/partition.hpp"
#include "core/return_estimator.hpp"
#include "core/service_time.hpp"
#include "core/ssd_log.hpp"
#include "fsim/filesystem.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/sync.hpp"
#include "sim/units.hpp"
#include "stats/histogram.hpp"

namespace ibridge::core {

/// A request as seen by a data server (after decomposition + tagging).
struct CacheRequest {
  storage::IoDirection dir = storage::IoDirection::kRead;
  fsim::FileId file = fsim::kInvalidFile;  ///< server-local datafile
  Offset offset;                           ///< within the datafile
  Bytes length;
  bool fragment = false;
  SiblingSet siblings;  ///< sibling sub-requests' servers, O(1) descriptor
  int tag = 0;                     ///< issuing process (scheduler anticipation)
  obs::RequestId trace_request = 0;  ///< owning traced client request (0 = off)
  obs::SpanId trace_parent = 0;      ///< span to nest server-side spans under
};

struct ServeResult {
  bool ssd = false;       ///< payload served by the SSD
  bool boosted = false;   ///< Equation (3) bonus participated in admission
  sim::SimTime elapsed;
};

/// Operation counters exposed to benchmarks and tests.
struct CacheStats {
  Bytes ssd_bytes_served;   ///< payload bytes served by the SSD
  Bytes disk_bytes_served;  ///< payload bytes served by the disk
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_admits = 0;
  std::uint64_t write_disk = 0;
  std::uint64_t stages = 0;       ///< read-miss copies into the cache
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;   ///< dirty entries flushed to disk
  std::uint64_t boosts = 0;       ///< Eq. (3) bonuses applied
  std::uint64_t cleanings = 0;    ///< log segments forcibly emptied
  std::uint64_t admit_by_class[kNumClasses] = {0, 0};
  Bytes writeback_bytes;          ///< dirty payload flushed back to the disk
  /// Distribution of Eq. (1-3) return estimates (ms) across served requests.
  // lint: obs-bounded-ok (merged into the registry's bounded HistogramCell)
  stats::Histogram ret_estimate_ms;
};

class IBridgeCache {
 public:
  /// `disk_fs` holds the server's datafiles; `ssd_fs` is the file system on
  /// the companion SSD (the cache creates its log file there); `profile` is
  /// the offline-learned seek curve of the disk.
  IBridgeCache(sim::Simulator& sim, IBridgeConfig cfg, ServerId self,
               fsim::LocalFileSystem& disk_fs, fsim::LocalFileSystem& ssd_fs,
               storage::SeekProfile profile);

  IBridgeCache(const IBridgeCache&) = delete;
  IBridgeCache& operator=(const IBridgeCache&) = delete;

  /// Spawn the write-back daemon.  Call once after construction.
  void start();
  /// Stop the daemon (pending wake-ups become no-ops).
  void stop();

  /// Serve one request.  For writes, `wdata` carries the payload (may be
  /// empty in timing-only mode); for reads, `rdata` receives it.
  sim::Task<ServeResult> serve(CacheRequest r, std::span<const std::byte> wdata,
                               std::span<std::byte> rdata);

  /// Flush every dirty cached byte back to the disk, sorted by disk
  /// location (program-exit accounting: the paper includes this time).
  sim::Task<> drain();

  /// Flush up to `budget` dirty bytes (oldest-dirty first), yielding to
  /// foreground traffic.  The degraded-mode drain after a crash recovery
  /// trickles the recovered dirty data out through this.
  sim::Task<> flush_dirty(Bytes budget);

  /// Rebuild the cache from a mapping-table image previously written by
  /// table().save() — the crash-recovery path, run cluster-wide by the
  /// fault engine.  Requires quiescence (daemon stopped, no requests in
  /// flight).  Drops all current entries, reloads the table, and rebuilds
  /// the SSD log's segment accounting from the recovered entries.  Returns
  /// false (leaving the cache empty) when the image is malformed.
  bool recover(std::istream& in);

  /// True when no background work (write-back daemon, staging, eviction)
  /// is in flight.  The fault engine polls this to find a crash-consistent
  /// quiescent point.
  bool background_idle() const { return background_.all_finished(); }

  /// This server's current decayed average disk service time T (ms).
  double current_t() const { return stm_.t(); }

  /// Install the latest broadcast of all servers' T values.
  void set_board(TBoard board) { board_ = std::move(board); }
  const TBoard& board() const { return board_; }

  const CacheStats& stats() const { return stats_; }
  const MappingTable& table() const { return table_; }
  const SsdLog& log() const { return log_; }
  const IBridgeConfig& config() const { return cfg_; }
  const ServiceTimeModel& service_model() const { return stm_; }
  const PartitionController& partition() const { return partition_; }
  const sim::Simulator& simulator() const { return sim_; }
  Bytes cached_bytes() const { return table_.bytes_cached(); }
  /// Regions currently tracked by the kHotBlock heat map (tests assert the
  /// hot_block_max_regions bound holds under long workloads).
  std::size_t region_heat_regions() const { return region_heat_.size(); }

  /// Install a SimCheck observer (nullptr to detach).  Invoked after every
  /// state-changing cache step; never installed on production paths.
  void set_observer(CacheObserver* obs) { observer_ = obs; }

  /// Install a write-back crash gate (nullptr to detach).  Consulted at the
  /// flush_batch phase boundaries; only src/fault/'s engine installs one.
  void set_writeback_gate(WritebackGate* gate) { writeback_gate_ = gate; }

  /// Attach a TraceSession (nullptr to detach).  Foreground serves nest
  /// "cache.serve" spans under the request's server span; background work
  /// (staging, write-back, eviction) lands on this server's "cache-bg"
  /// track.  Same zero-cost-when-null contract as set_observer().
  void set_trace(obs::TraceSession* session);

  /// Attach a SimProfiler (nullptr to detach).  Cache-initiated background
  /// events (staging, write-back, drain) mark their simulator events with
  /// `category` so the profiler attributes their model time to the cache.
  void set_profiler(obs::SimProfiler* profiler, int category) {
    profiler_ = profiler;
    prof_cat_ = category;
  }

 private:
  CacheClass classify(const CacheRequest& r) const {
    return r.fragment ? CacheClass::kFragment : CacheClass::kRegular;
  }
  bool small_enough(const CacheRequest& r) const {
    return r.length < Bytes{r.fragment ? cfg_.fragment_threshold
                                       : cfg_.random_threshold};
  }

  /// Admission decision for a small request under the configured policy.
  /// Returns the return value to record with the cached data (baselines
  /// record the base estimate so dynamic partitioning still functions).
  bool admit(const CacheRequest& r, const ReturnEstimate& est);

  /// kHotBlock: count an access and report whether its region is hot.
  bool note_region_access(const CacheRequest& r);

  /// First disk LBN the request would touch (lambda_i of Equation 1).
  // lint: units-ok (LBNs are device sector addresses, not byte offsets)
  std::int64_t disk_lbn(const CacheRequest& r) const;
  std::int64_t disk_end_lbn(const CacheRequest& r) const;  // lint: units-ok (LBN)

  /// Trim every cached entry overlapping [off, off+len) of `file`,
  /// releasing the freed log space.  Dirty data in the range is dropped —
  /// callers only invalidate ranges that are being overwritten.
  void invalidate_range(fsim::FileId file, Offset off, Bytes len);

  /// Allocate `len` log bytes for class `c`, evicting under quota pressure
  /// and cleaning segments under space pressure.  Returns nullopt when the
  /// class quota cannot fit the allocation at all.
  sim::Task<std::optional<Offset>> make_room(CacheClass c, Bytes len);

  /// Evict one entry (write-back first when dirty); false if id vanished.
  sim::Task<bool> evict(EntryId id);

  /// Write a dirty entry's bytes back to the disk and mark it clean.
  sim::Task<> flush_entry(EntryId id);

  /// Flush a batch: stage all payloads out of the SSD log concurrently,
  /// then stream the disk writes back-to-back in sorted home order (the
  /// paper's "as many long sequential accesses as possible").  With
  /// `yield_to_foreground`, the write stream stops as soon as foreground
  /// requests queue at the disk (daemon mode); drain() flushes regardless.
  /// `batch` is sorted in place; the caller keeps it alive (pool leases)
  /// until the task completes.
  sim::Task<> flush_batch(std::vector<EntryId>& batch,
                          bool yield_to_foreground = false);

  /// Charge the SSD for persisting a mapping-table entry update.
  void charge_mapping_update(Offset near_log_off);

  /// Background copy of freshly disk-read data into the cache.
  sim::Task<> stage_read(CacheRequest r, CacheClass klass, double ret_ms);

  sim::Task<> writeback_daemon();

  /// A disk write in flight over a byte range of a datafile.  Two races hide
  /// here: a write-back whose disk write completes *after* a newer foreground
  /// write to the same range would resurrect stale bytes (write-after-write),
  /// and a stage_read that snapshots the disk while a foreground write is in
  /// flight would cache pre-write bytes as clean.  Windows make both visible:
  /// foreground writes barrier on overlapping flush windows, and stage_read
  /// drops its copy when a foreground write window overlaps.
  struct RangeWindow {
    std::uint64_t id;
    fsim::FileId file;
    Offset off;
    Bytes len;
  };
  static bool window_overlaps(const std::vector<RangeWindow>& ws,
                              fsim::FileId f, Offset off, Bytes len);
  std::uint64_t open_window(std::vector<RangeWindow>& ws, fsim::FileId f,
                            Offset off, Bytes len);
  void close_window(std::vector<RangeWindow>& ws, std::uint64_t id);
  /// Suspend until no flush window overlaps [off, off+len) of `file`.
  sim::Task<> wait_flush_windows(fsim::FileId f, Offset off, Bytes len);
  void notify_flush_waiters();

  /// Pin a byte range of the SSD log while a read streams out of it.  A
  /// concurrent eviction (e.g. make_room on behalf of a sibling
  /// sub-request's stage) may otherwise erase the entry being read and
  /// recycle its log bytes mid-read, handing the reader whatever the new
  /// tenant wrote.  Releases of pinned bytes are deferred to unpin time.
  std::uint64_t pin_log_range(Offset off, Bytes len);
  void unpin_log_range(std::uint64_t id);
  /// Every log release funnels through here so pins are honoured.
  void release_log(Offset off, Bytes len);

  void check(const char* where) {
    if (observer_) observer_->on_check(*this, where);
  }

  bool gate_cut(const char* phase) {
    return writeback_gate_ != nullptr && writeback_gate_->cut(phase);
  }

  sim::Simulator& sim_;
  IBridgeConfig cfg_;
  ServerId self_;
  fsim::LocalFileSystem& disk_fs_;
  fsim::LocalFileSystem& ssd_fs_;
  fsim::FileId log_file_ = fsim::kInvalidFile;
  ServiceTimeModel stm_;
  ReturnEstimator estimator_;
  MappingTable table_;
  SsdLog log_;
  PartitionController partition_;
  TBoard board_;
  CacheStats stats_;
  // kHotBlock heat map: (file, region index) -> access count.  Ordered so
  // the bounding sweep in note_region_access iterates deterministically;
  // bounded by cfg_.hot_block_max_regions via periodic halving.
  std::map<std::uint64_t, int> region_heat_;
  std::vector<RangeWindow> flush_windows_;  ///< write-back writes in flight
  std::vector<RangeWindow> write_windows_;  ///< foreground writes in flight
  std::vector<std::coroutine_handle<>> flush_waiters_;
  std::uint64_t next_window_id_ = 0;
  // Foreground writes that completed while at least one stage_read was in
  // flight: a stage whose disk snapshot predates such a write must drop its
  // copy even though the write's window is already closed.  Cleared whenever
  // the last live stage retires, so the list stays tiny.
  std::vector<RangeWindow> completed_writes_;
  int active_stages_ = 0;
  std::vector<RangeWindow> read_pins_;  ///< log ranges with reads in flight
  std::vector<std::pair<Offset, Bytes>> deferred_releases_;
  bool running_ = false;
  std::uint64_t daemon_epoch_ = 0;
  /// Recycled payload staging buffers (verify-mode flush/stage copies).
  /// Keeps write-back and staging off the allocator in steady state.
  sim::BufferPool pool_;
  /// Recycled scratch vectors for the mapping-table *_into queries on the
  /// serve/invalidate/write-back paths: coverage slices, overlapping and
  /// batch entry ids, freed (log_off, length) ranges, and read pins.
  sim::VectorPool<LogSlice> slice_pool_;
  sim::VectorPool<EntryId> id_pool_;
  sim::VectorPool<std::pair<Offset, Bytes>> range_pool_;
  sim::VectorPool<std::uint64_t> pin_pool_;
  CacheObserver* observer_ = nullptr;
  WritebackGate* writeback_gate_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  obs::TrackId trace_bg_track_ = obs::kNoTrack;
  obs::SimProfiler* profiler_ = nullptr;
  int prof_cat_ = 0;
  sim::TaskGroup background_;
};

}  // namespace ibridge::core
