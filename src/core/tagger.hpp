// Client-side fragment identification.
//
// The paper instruments PVFS2's io_datafile_setup_msgpairs() so that when a
// parent request is split into sub-requests, every sub-request smaller than
// the fragment threshold whose parent spans more than one server is flagged
// as a fragment, and the identifiers of the servers holding its sibling
// sub-requests are attached.  The data servers use that information for the
// Equation (3) return boost.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/siblings.hpp"
#include "sim/units.hpp"

namespace ibridge::core {

/// Decomposition-independent view of one sub-request, as produced by the
/// striping layout.  (core does not depend on pvfs; pvfs adapts its
/// SubRequestSpec into this.)
struct TaggedSubRequest {
  sim::ServerId server;
  sim::Offset server_offset;
  sim::Bytes length;
  bool fragment = false;
  /// The parent's sibling descriptor (set only on fragments).
  SiblingSet siblings;
};

class FragmentTagger {
 public:
  explicit FragmentTagger(sim::Bytes fragment_threshold)
      : threshold_(fragment_threshold) {}

  /// Annotate the pieces of one parent request into `out` (cleared first —
  /// pass a pooled vector for an allocation-free steady state).  `pieces` is
  /// the per-piece decomposition: (server, server_offset, length) triples in
  /// stripe order; `ring` is the striping server count, the modulus the
  /// SiblingSet enumerates siblings with.
  template <typename Piece>
  // lint: no-alloc
  void tag_into(const std::vector<Piece>& pieces, int ring,
                std::vector<TaggedSubRequest>& out) const {
    out.clear();
    // lint: alloc-ok (amortized: pooled/reused vector keeps its capacity)
    out.reserve(pieces.size());
    bool multi_server = false;
    for (const auto& p : pieces) {
      if (!out.empty() && p.server != out.front().server) multi_server = true;
      // lint: alloc-ok (within the reserve above; pooled vector keeps capacity)
      out.push_back({p.server, p.server_offset, p.length, false, {}});
    }
    if (!multi_server) return;  // single-server parent: no fragments

    const auto count = static_cast<std::uint32_t>(out.size());
    const sim::ServerId first = out.front().server;
    for (std::size_t i = 0; i < out.size(); ++i) {
      // A multi-server parent's pieces follow the round-robin ring — the
      // invariant that lets four integers stand in for the sibling list.
      assert(out[i].server.index() ==
                 static_cast<int>(
                     (static_cast<std::uint32_t>(first.index()) + i) %
                     static_cast<std::uint32_t>(ring)) &&
             "pieces must be in stripe order over the striping ring");
      if (out[i].length >= threshold_) continue;
      out[i].fragment = true;
      out[i].siblings = SiblingSet{first, static_cast<std::uint32_t>(ring),
                                   count, static_cast<std::uint32_t>(i)};
    }
  }

  /// Convenience wrapper returning a fresh vector (tests, cold paths).
  template <typename Piece>
  std::vector<TaggedSubRequest> tag(const std::vector<Piece>& pieces,
                                    int ring) const {
    std::vector<TaggedSubRequest> out;
    tag_into(pieces, ring, out);
    return out;
  }

  sim::Bytes threshold() const { return threshold_; }

 private:
  sim::Bytes threshold_;
};

}  // namespace ibridge::core
