// Client-side fragment identification.
//
// The paper instruments PVFS2's io_datafile_setup_msgpairs() so that when a
// parent request is split into sub-requests, every sub-request smaller than
// the fragment threshold whose parent spans more than one server is flagged
// as a fragment, and the identifiers of the servers holding its sibling
// sub-requests are attached.  The data servers use that information for the
// Equation (3) return boost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "sim/units.hpp"

namespace ibridge::core {

/// Decomposition-independent view of one sub-request, as produced by the
/// striping layout.  (core does not depend on pvfs; pvfs adapts its
/// SubRequestSpec into this.)
struct TaggedSubRequest {
  sim::ServerId server;
  sim::Offset server_offset;
  sim::Bytes length;
  bool fragment = false;
  /// Servers of the other sub-requests.
  std::vector<sim::ServerId> sibling_servers;
};

class FragmentTagger {
 public:
  explicit FragmentTagger(sim::Bytes fragment_threshold)
      : threshold_(fragment_threshold) {}

  /// Annotate the pieces of one parent request.  `pieces` is the per-piece
  /// decomposition: (server, server_offset, length) triples in stripe order.
  template <typename Piece>
  std::vector<TaggedSubRequest> tag(const std::vector<Piece>& pieces) const {
    std::vector<TaggedSubRequest> out;
    out.reserve(pieces.size());
    bool multi_server = false;
    for (const auto& p : pieces) {
      if (!out.empty() && p.server != out.front().server) multi_server = true;
      out.push_back({p.server, p.server_offset, p.length, false, {}});
    }
    if (!multi_server) return out;  // single-server parent: no fragments

    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].length >= threshold_) continue;
      out[i].fragment = true;
      out[i].sibling_servers.reserve(out.size() - 1);
      for (std::size_t j = 0; j < out.size(); ++j) {
        if (j != i) out[i].sibling_servers.push_back(out[j].server);
      }
    }
    return out;
  }

  sim::Bytes threshold() const { return threshold_; }

 private:
  sim::Bytes threshold_;
};

}  // namespace ibridge::core
