// Compact sibling descriptor for fragment sub-requests.
//
// The paper attaches, to every fragment, the identities of the servers
// holding its sibling sub-requests (the Equation (3) inputs).  A materialized
// server list costs one heap allocation per fragment and O(servers) bytes on
// every client->server message — both walls at the scale tier.  But PVFS2's
// round-robin striping makes the list pure arithmetic: decompose() emits a
// multi-server parent's pieces in stripe order, so piece j lives on server
// (first + j) mod ring.  Four integers therefore reproduce the full sibling
// list — same values, same order, including the duplicate entries a parent
// spanning more than `ring` units produces — with no allocation and O(1)
// space at any cluster size.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/units.hpp"

namespace ibridge::core {

struct SiblingSet {
  sim::ServerId first{0};       ///< server of the parent's first piece
  std::uint32_t ring = 0;       ///< server count (the round-robin modulus)
  std::uint32_t count = 0;      ///< total pieces of the parent (0 = no set)
  std::uint32_t self_index = 0; ///< this piece's position in stripe order

  /// Number of siblings (the other pieces), matching the old materialized
  /// list's size().
  std::size_t size() const {
    return count > 0 ? static_cast<std::size_t>(count) - 1 : 0;
  }
  bool empty() const { return count <= 1; }

  sim::ServerId server_of_piece(std::uint32_t j) const {
    return sim::ServerId{static_cast<int>(
        (static_cast<std::uint32_t>(first.index()) + j) % ring)};
  }

  /// Visit every sibling's server in stripe order — exactly the iteration
  /// order of the old materialized list.  Duplicate servers (parents wider
  /// than one full stripe round) are visited once per piece, as before.
  template <typename Fn>
  void for_each_sibling(Fn&& fn) const {
    for (std::uint32_t j = 0; j < count; ++j) {
      if (j != self_index) fn(server_of_piece(j));
    }
  }
};

}  // namespace ibridge::core
