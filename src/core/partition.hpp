// Dynamic SSD-space partitioning between regular random requests and
// fragments (Section II-B, evaluated in Figure 12).
//
// Every cached item carries the return value computed at admission.  The
// controller sets each class's byte quota proportional to the class's
// *average* return over its currently cached items, so the class whose items
// buy more disk time per cached byte gets more space.  A class with no
// cached items yet receives a floor share so it can bootstrap.  Static 1:1 /
// 1:2 splits (the paper's comparison points) are supported for the Figure 12
// baselines.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/config.hpp"
#include "core/mapping_table.hpp"

namespace ibridge::core {

class PartitionController {
 public:
  PartitionController(const IBridgeConfig& cfg, Bytes capacity)
      : mode_(cfg.partition_mode),
        static_frag_share_(cfg.static_fragment_share),
        capacity_(capacity) {}

  /// Byte quota for a class given the table's current contents.
  Bytes quota(const MappingTable& table, CacheClass c) const {
    double frag_share;
    if (mode_ == PartitionMode::kStatic) {
      frag_share = static_frag_share_;
    } else {
      const double avg_frag = table.return_avg(CacheClass::kFragment);
      const double avg_reg = table.return_avg(CacheClass::kRegular);
      if (avg_frag <= 0.0 && avg_reg <= 0.0) {
        frag_share = 0.5;  // no signal yet: split evenly
      } else {
        frag_share = avg_frag / (avg_frag + avg_reg);
      }
      // Bootstrap floor: an empty or low-return class keeps 5% so future
      // admissions of that class are not starved outright.
      frag_share = std::clamp(frag_share, 0.05, 0.95);
    }
    const Bytes frag_quota{static_cast<std::int64_t>(
        static_cast<double>(capacity_.count()) * frag_share)};
    return c == CacheClass::kFragment ? frag_quota : capacity_ - frag_quota;
  }

  /// True when inserting `len` bytes of class `c` would overflow its quota.
  bool over_quota(const MappingTable& table, CacheClass c, Bytes len) const {
    return table.bytes_cached(c) + len > quota(table, c);
  }

  Bytes capacity() const { return capacity_; }
  PartitionMode mode() const { return mode_; }

 private:
  PartitionMode mode_;
  double static_frag_share_;
  Bytes capacity_;
};

}  // namespace ibridge::core
