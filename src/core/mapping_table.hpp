// The iBridge mapping table.
//
// Records which byte ranges of which server-local files are cached in the
// SSD log, whether each range is dirty (newer than the disk copy) or clean,
// which request class it belongs to (regular random vs fragment), and the
// return value recorded at admission (used for dynamic partitioning).  The
// paper persists this table on the SSD; the simulator charges that cost in
// IBridgeCache via IBridgeConfig::mapping_entry_bytes.
//
// Supported queries:
//   * coverage(): is a byte range fully cached (possibly tiled by several
//     contiguous entries)?  -> log slices for reading;
//   * overlapping(): all entries intersecting a range (for invalidation);
//   * trim(): cut a byte range out of an entry (splitting it when the cut is
//     interior), keeping the untouched parts cached without moving data;
//   * per-class LRU with byte/return accounting for the partition logic.
//
// Layout: entries live in a dense slab of slots recycled through a free
// list.  Each slot carries intrusive prev/next indices for two chains — its
// class's LRU list and, while dirty, its class's dirty list — so
// touch/insert/erase/lru_victim never allocate, and dirty_entries() walks
// only dirty slots instead of the whole table.  The range indexes are
// ordered maps whose nodes come from a per-table ChunkPool, so steady-state
// insert/erase churn recycles nodes instead of hitting the global
// allocator.  The *_into query variants fill caller-owned vectors (pool
// leases in IBridgeCache), completing the allocation-free serve path.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fsim/filesystem.hpp"
#include "sim/mem_pool.hpp"
#include "sim/units.hpp"

namespace ibridge::core {

using sim::Bytes;
using sim::Offset;
using sim::ServerId;

enum class CacheClass : std::uint8_t { kRegular = 0, kFragment = 1 };
inline constexpr int kNumClasses = 2;

inline const char* to_string(CacheClass c) {
  return c == CacheClass::kRegular ? "regular" : "fragment";
}

using EntryId = std::uint64_t;
inline constexpr EntryId kNoEntry = 0;

struct CacheEntry {
  fsim::FileId file = fsim::kInvalidFile;
  Offset file_off;
  Bytes length;
  Offset log_off;  ///< byte position within the SSD log file
  bool dirty = false;
  CacheClass klass = CacheClass::kRegular;
  double ret_ms = 0.0;

  Offset file_end() const { return file_off + length; }
};

/// A piece of a lookup result: `log_off`..`log_off+length` in the SSD log
/// holds file bytes `file_off`..`file_off+length`.
struct LogSlice {
  EntryId entry = kNoEntry;
  Offset file_off;
  Offset log_off;
  Bytes length;
};

class MappingTable {
 public:
  MappingTable();
  // The range indexes allocate from the table's own arena; moving or
  // copying would carry dangling allocator pointers.
  MappingTable(const MappingTable&) = delete;
  MappingTable& operator=(const MappingTable&) = delete;

  /// Pre-size the slab, hash index, and dirty scratch for `entries` live
  /// entries so steady-state insert/erase churn below that mark never grows
  /// them.  (The ordered range indexes already recycle nodes through the
  /// table's ChunkPool arena.)  Callers size this from the SSD log capacity:
  /// capacity / smallest admitted range is a hard ceiling on live entries.
  void reserve(std::size_t entries);

  /// Insert a new entry covering a range with NO existing overlap (callers
  /// invalidate first).  Returns its id.
  EntryId insert(CacheEntry e);

  /// Remove an entry entirely; returns it for log-space release.
  CacheEntry erase(EntryId id);

  const CacheEntry& get(EntryId id) const;
  bool contains(EntryId id) const { return entries_.count(id) != 0; }

  /// Mark an entry clean (after write-back).
  void mark_clean(EntryId id);
  void mark_dirty(EntryId id);

  /// Move an entry to the MRU end of its class list.
  void touch(EntryId id);

  /// Full-coverage lookup: fills `out` (cleared first) with slices in
  /// file-offset order iff [off, off+len) of `file` is entirely cached;
  /// leaves it empty otherwise.
  void coverage_into(fsim::FileId file, Offset off, Bytes len,
                     std::vector<LogSlice>& out) const;

  /// All entries intersecting [off, off+len), into `out` (cleared first).
  void overlapping_into(fsim::FileId file, Offset off, Bytes len,
                        std::vector<EntryId>& out) const;

  /// Does any entry intersect [off, off+len)?
  bool has_overlap(fsim::FileId file, Offset off, Bytes len) const;

  /// Allocating conveniences over the *_into variants (tests, oracle code).
  std::vector<LogSlice> coverage(fsim::FileId file, Offset off,
                                 Bytes len) const;
  std::vector<EntryId> overlapping(fsim::FileId file, Offset off,
                                   Bytes len) const;

  /// Remove the intersection of entry `id` with [off, off+len).  The parts
  /// of the entry outside the range stay cached (an interior cut splits the
  /// entry in two; the new piece inherits class/dirty/ret).  Each
  /// (log_off, length) pair freed is appended to `freed`.
  void trim(EntryId id, Offset off, Bytes len,
            std::vector<std::pair<Offset, Bytes>>& freed);

  /// Least-recently-used entry of a class (kNoEntry if none).
  EntryId lru_victim(CacheClass c) const;

  /// All entries whose log ranges intersect [log_begin, log_end) — used by
  /// the log cleaner to empty a victim segment.
  void entries_in_log_range_into(Offset log_begin, Offset log_end,
                                 std::vector<EntryId>& out) const;
  std::vector<EntryId> entries_in_log_range(Offset log_begin,
                                            Offset log_end) const;

  /// Dirty entries in file/offset order up to `max_bytes` total (used by
  /// the write-back daemon to build coalescable batches).  Walks only the
  /// intrusive dirty lists, never clean entries.
  void dirty_entries_into(Bytes max_bytes, std::vector<EntryId>& out) const;
  std::vector<EntryId> dirty_entries(Bytes max_bytes) const;

  /// Every entry id, in file/offset order (used by the SimCheck oracle to
  /// audit the table exhaustively; not on any hot path).
  std::vector<EntryId> all_entries() const;

  /// The LRU list of a class, front (LRU) to back (MRU).
  std::vector<EntryId> lru_order(CacheClass c) const;

  /// Persist the table to a stream (the paper keeps the mapping table on
  /// the SSD so cached data survives restarts).  Entries are written in LRU
  /// order per class so load() reconstructs recency exactly; ret_ms is
  /// written as its bit pattern so the round trip is bit-exact.
  void save(std::ostream& os) const;

  /// Reload a table persisted by save() into *this (must be empty).
  /// Returns false (leaving a partially loaded table) on malformed input.
  bool load(std::istream& is);

  Bytes bytes_cached(CacheClass c) const { return bytes_[idx(c)]; }
  Bytes bytes_cached() const { return bytes_[0] + bytes_[1]; }
  Bytes dirty_bytes() const { return dirty_bytes_; }
  std::size_t entry_count() const { return entries_.size(); }
  std::size_t entry_count(CacheClass c) const { return lru_[idx(c)].size; }
  double return_sum(CacheClass c) const { return ret_sum_[idx(c)]; }
  double return_avg(CacheClass c) const {
    const auto n = lru_[idx(c)].size;
    return n ? ret_sum_[idx(c)] / static_cast<double>(n) : 0.0;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  // The two intrusive chains every slot participates in.
  enum : int { kLruChain = 0, kDirtyChain = 1 };

  struct Links {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  struct Slot {
    CacheEntry entry;
    EntryId id = kNoEntry;  // kNoEntry while the slot sits on the free list
    Links link[2];          // [kLruChain] doubles as the free-list link
  };

  struct ListHead {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::size_t size = 0;
  };

  using FileKey = std::pair<fsim::FileId, Offset>;
  using EntriesMap =
      std::unordered_map<EntryId, std::uint32_t, std::hash<EntryId>,
                         std::equal_to<EntryId>,
                         sim::PoolAllocator<std::pair<const EntryId,
                                                      std::uint32_t>>>;
  using ByFileMap =
      std::map<FileKey, EntryId, std::less<FileKey>,
               sim::PoolAllocator<std::pair<const FileKey, EntryId>>>;
  using ByLogMap =
      std::map<Offset, EntryId, std::less<Offset>,
               sim::PoolAllocator<std::pair<const Offset, EntryId>>>;

  static int idx(CacheClass c) { return static_cast<int>(c); }

  std::uint32_t slot_of(EntryId id) const;
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t s);
  void list_push_back(int chain, ListHead& h, std::uint32_t s);
  void list_unlink(int chain, ListHead& h, std::uint32_t s);

  void index_insert(EntryId id, const CacheEntry& e);
  void index_erase(EntryId id, const CacheEntry& e);
  void account_add(const CacheEntry& e);
  void account_remove(const CacheEntry& e);

  // Node arena for the maps below; must outlive (so precede) all of them.
  sim::ChunkPool arena_;
  std::vector<Slot> slab_;
  std::uint32_t free_head_ = kNil;
  EntriesMap entries_;  // id -> slot index; never iterated
  // Range index over (file, first file offset) -> entry id.  Entries never
  // overlap, so the key uniquely orders them per file.
  ByFileMap by_file_;
  // Log-offset index (entries' log ranges never overlap).
  ByLogMap by_log_;
  ListHead lru_[kNumClasses];    // front = LRU, back = MRU
  ListHead dirty_[kNumClasses];  // insertion-ordered; queries sort by range
  mutable std::vector<std::uint32_t> dirty_scratch_;
  Bytes bytes_[kNumClasses];
  double ret_sum_[kNumClasses] = {0.0, 0.0};
  Bytes dirty_bytes_;
  EntryId next_id_ = 1;
};

}  // namespace ibridge::core
