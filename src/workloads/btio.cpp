#include "workloads/btio.hpp"

#include <cassert>
#include <cmath>

#include "mpiio/mpi.hpp"
#include "stats/histogram.hpp"

namespace ibridge::workloads {

namespace {

constexpr std::int64_t kVarBytes = 5 * 8;  // 5 doubles per grid point

int int_sqrt(int p) {
  const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  assert(s * s == p && "BTIO requires a square process count");
  return s;
}

struct Shared {
  stats::Summary request_ms;
  std::int64_t bytes = 0;
  std::uint64_t requests = 0;
  sim::SimTime io_time_total;
  sim::SimTime compute_total;
};

sim::Task<> rank_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      BtIoConfig cfg, Shared* shared) {
  const int sq = int_sqrt(cfg.nprocs);
  const int cw = cfg.grid / sq;  // cell width (contiguous run, grid points)
  const int pi = ctx.rank() % sq;
  const int pj = ctx.rank() / sq;
  const std::int64_t run_bytes = static_cast<std::int64_t>(cw) * kVarBytes;
  const std::int64_t row_stride =
      static_cast<std::int64_t>(cfg.grid) * kVarBytes;
  const std::int64_t plane_stride = row_stride * cfg.grid;
  const std::int64_t dump_bytes =
      plane_stride * cfg.grid;  // nominal full-grid dump

  const sim::SimTime compute_per_step =
      sim::SimTime::from_seconds(cfg.compute_ms_per_step / 1e3);

  std::int64_t dump_index = 0;
  for (int step = 0; step < cfg.time_steps; ++step) {
    co_await ctx.compute(compute_per_step);
    shared->compute_total += compute_per_step;
    if ((step + 1) % cfg.write_interval != 0) continue;

    // Append this process's sub-domain of the solution array: one
    // contiguous run per (k, j) row it owns.
    const std::int64_t dump_base = dump_index * dump_bytes;
    for (int k = 0; k < cfg.grid; ++k) {
      for (int j = pj * cw; j < (pj + 1) * cw; ++j) {
        const std::int64_t offset =
            dump_base + k * plane_stride + j * row_stride +
            static_cast<std::int64_t>(pi) * cw * kVarBytes;
        const sim::SimTime t =
            co_await file.write_at(ctx.rank(), offset, run_bytes);
        shared->request_ms.add(t.to_millis());
        shared->io_time_total += t;
        shared->bytes += run_bytes;
        ++shared->requests;
      }
    }
    ++dump_index;
    // BT synchronizes between time steps.
    co_await ctx.barrier();
  }
}

}  // namespace

std::int64_t BtIoConfig::request_bytes() const {
  const int sq = int_sqrt(nprocs);
  return static_cast<std::int64_t>(grid / sq) * kVarBytes;
}

BtIoResult run_btio(cluster::Cluster& cluster, const BtIoConfig& cfg) {
  const int dumps = cfg.time_steps / cfg.write_interval;
  const std::int64_t file_bytes = cfg.dump_bytes() * (dumps + 1);
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  Shared shared;
  mpiio::MpiEnvironment env(cluster.sim(), cluster.client(), cfg.nprocs);
  const sim::SimTime t0 = cluster.sim().now();
  env.launch([&](mpiio::MpiContext ctx) {
    return rank_body(ctx, file, cfg, &shared);
  });
  cluster.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime io_done = cluster.sim().now();
  const sim::SimTime flushed = cluster.drain();

  BtIoResult r;
  r.io_elapsed = io_done - t0;
  r.elapsed = flushed - t0;
  r.bytes = shared.bytes;
  r.requests = shared.requests;
  r.avg_request_ms = shared.request_ms.mean();
  r.io_time = shared.io_time_total / cfg.nprocs;
  r.compute_time = shared.compute_total / cfg.nprocs;
  r.compute_seconds = r.compute_time.to_seconds();
  return r;
}

}  // namespace ibridge::workloads
