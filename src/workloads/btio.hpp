// BTIO: the NAS Parallel Benchmarks BT solver's MPI-IO output stage.
//
// BT solves the 3D compressible Navier-Stokes equations on an n^3 grid
// partitioned over sqrt(P) x sqrt(P) process columns; every `write_interval`
// time steps each process appends its sub-domain of the 5-variable solution
// array to a shared file.  The contiguous runs a process writes are
// cell_width * 5 * sizeof(double) bytes — 2160 B at 9 processes and 640 B at
// 100 processes for the class-C 162^3 grid, matching the paper — scattered
// with large strides, i.e. a stream of regular random requests.
//
// The simulated program alternates compute phases (calibrated per step) with
// the I/O dump, so both total execution time and I/O time are reported
// (Figures 9-11).
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.hpp"

namespace ibridge::workloads {

struct BtIoConfig {
  int nprocs = 64;       ///< must be a perfect square (BT requirement)
  int grid = 162;        ///< class C
  int time_steps = 40;   ///< class C default; lower for faster runs
  int write_interval = 1;
  double compute_ms_per_step = 450.0;  ///< per-process compute per step
  std::string file_name = "btio.dat";

  /// Bytes of one full solution dump (all processes).
  std::int64_t dump_bytes() const {
    return static_cast<std::int64_t>(grid) * grid * grid * 5 * 8;
  }
  /// Contiguous run length one process writes (the request size).
  std::int64_t request_bytes() const;
};

struct BtIoResult : WorkloadResult {
  sim::SimTime io_time;       ///< per-process average time blocked in I/O
  sim::SimTime compute_time;  ///< per-process compute time
};

BtIoResult run_btio(cluster::Cluster& cluster, const BtIoConfig& cfg);

}  // namespace ibridge::workloads
