// The mpi-io-test benchmark (PVFS2's sequential-throughput test).
//
// N processes iteratively access a shared striped file: at iteration k,
// process i accesses one segment of size s at offset k*N*s + i*s (+ an
// optional constant shift, the paper's "+x KB" Pattern III variant).  The
// paper removes the barrier between iterations so requests from different
// processes overlap freely; a barrier option is kept for the Figure 3
// synchronization study.  Requests are all reads or all writes.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.hpp"

namespace ibridge::workloads {

struct MpiIoTestConfig {
  int nprocs = 64;
  std::int64_t request_size = 64 * 1024;
  std::int64_t offset_shift = 0;     ///< "+x KB" request offset
  std::int64_t file_bytes = 10LL * 1000 * 1000 * 1000;
  std::int64_t access_bytes = 0;     ///< 0 = sweep the whole file once
  bool write = false;
  bool barrier_each_iteration = false;
  std::string file_name = "mpi-io-test.dat";
};

/// Run the benchmark on a freshly created file in `cluster`; returns after
/// drain() (write-back time included in `elapsed`, as the paper measures).
WorkloadResult run_mpi_io_test(cluster::Cluster& cluster,
                               const MpiIoTestConfig& cfg);

}  // namespace ibridge::workloads
