// The ior-mpi-io benchmark (ASCI Purple suite, LLNL).
//
// The shared file is split into P equal chunks; process i sequentially reads
// or writes chunk i using requests of a configurable size.  Because every
// process is at the same relative offset of its own chunk at the same time,
// the data servers see an effectively random arrival pattern — the paper's
// random-access study (Figure 8).
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.hpp"

namespace ibridge::workloads {

struct IorMpiIoConfig {
  int nprocs = 64;
  std::int64_t request_size = 64 * 1024;
  std::int64_t file_bytes = 10LL * 1000 * 1000 * 1000;
  std::int64_t access_bytes = 0;  ///< 0 = each process sweeps its whole chunk
  bool write = false;
  std::string file_name = "ior-mpi-io.dat";
};

WorkloadResult run_ior_mpi_io(cluster::Cluster& cluster,
                              const IorMpiIoConfig& cfg);

}  // namespace ibridge::workloads
