// I/O trace toolkit: record format, text serialization, the Table I access
// classifier, synthetic trace generation, and replay through the cluster.
//
// The paper's Table I / Table III traces (ALEGRA-2744, ALEGRA-5832, CTH,
// S3D) come from Sandia's Scalable I/O project and are not redistributable;
// TraceSynthesizer generates streams whose classification statistics match
// the table's published percentages (unaligned %, random %, and relative
// request sizes), which is what the experiments depend on.  TraceReader /
// TraceWriter handle a one-record-per-line text format ("R|W offset size")
// so externally obtained traces can be replayed directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/workload_stream.hpp"
#include "sim/rng.hpp"
#include "workloads/common.hpp"

namespace ibridge::workloads {

struct TraceRecord {
  bool write = false;
  std::int64_t offset = 0;
  std::int64_t size = 0;
};

using Trace = std::vector<TraceRecord>;

// ------------------------------------------------------------- text IO ----

/// Serialize one record per line: "R <offset> <size>" / "W <offset> <size>".
void write_trace(std::ostream& os, const Trace& trace);
/// Parse the text format; throws std::runtime_error on malformed input.
Trace read_trace(std::istream& is);

// ----------------------------------------------------------- classifier ----

/// Table I classification of a trace against a striping unit.
struct AccessStats {
  double unaligned_pct = 0.0;  ///< > unit but not unit-aligned
  double random_pct = 0.0;     ///< smaller than the random threshold
  double total_pct = 0.0;      ///< unaligned + random
  double avg_size = 0.0;       ///< mean request size (bytes)
  std::uint64_t requests = 0;
};

class AccessClassifier {
 public:
  explicit AccessClassifier(std::int64_t stripe_unit = 64 * 1024,
                            std::int64_t random_threshold = 20 * 1024)
      : unit_(stripe_unit), random_(random_threshold) {}

  bool is_unaligned(const TraceRecord& r) const {
    return r.size > unit_ && (r.offset % unit_ != 0 || r.size % unit_ != 0);
  }
  bool is_random(const TraceRecord& r) const { return r.size < random_; }

  /// Incremental classification state for streamed workloads: feed records
  /// one at a time with add(), read the stats with finish() — no
  /// materialized Trace needed.  classify() is add() over a vector.
  struct Accumulator {
    std::uint64_t unaligned = 0;
    std::uint64_t random = 0;
    std::uint64_t requests = 0;
    double size_sum = 0.0;
  };

  // lint: no-alloc
  void add(Accumulator& acc, const TraceRecord& r) const {
    if (is_unaligned(r)) ++acc.unaligned;
    if (is_random(r)) ++acc.random;
    ++acc.requests;
    acc.size_sum += static_cast<double>(r.size);
  }

  AccessStats finish(const Accumulator& acc) const;
  AccessStats classify(const Trace& trace) const;

 private:
  std::int64_t unit_;
  std::int64_t random_;
};

// ---------------------------------------------------------- synthesizer ----

/// Distributional profile of one application's I/O (Table I row).
struct TraceProfile {
  std::string name;
  double unaligned_frac;   ///< requests larger than the unit, unaligned
  double random_frac;      ///< requests below 20 KB
  std::int64_t large_size; ///< typical size of large requests (bytes)
  std::int64_t small_size; ///< typical size of random requests (bytes)
  double write_frac = 0.7; ///< checkpoint-style traces are write-heavy
};

/// Profiles for the paper's four traces (Table I percentages; S3D's larger
/// average request size reflects its roughly 2x service time in Table III).
TraceProfile alegra_2744_profile();
TraceProfile alegra_5832_profile();
TraceProfile cth_profile();
TraceProfile s3d_profile();

class TraceSynthesizer {
 public:
  TraceSynthesizer(TraceProfile profile, std::int64_t stripe_unit = 64 * 1024)
      : profile_(std::move(profile)), unit_(stripe_unit) {}

  /// Generate `n` requests over a file of `file_bytes`.  Delegates to
  /// stream(): the materialized trace and the streamed sequence are
  /// record-for-record identical for the same seed.
  Trace generate(std::size_t n, std::int64_t file_bytes,
                 std::uint64_t seed) const;

  /// The same generator as an O(1)-state on-demand stream (scale runs that
  /// cannot afford a materialized Trace).
  exp::WorkloadStream stream(std::int64_t file_bytes,
                             std::uint64_t seed) const {
    return exp::WorkloadStream(
        {profile_.unaligned_frac, profile_.random_frac, profile_.large_size,
         profile_.small_size, profile_.write_frac},
        unit_, file_bytes, seed);
  }

 private:
  TraceProfile profile_;
  std::int64_t unit_;
};

// -------------------------------------------------------------- replayer ----

struct ReplayConfig {
  std::int64_t file_bytes = 10LL * 1000 * 1000 * 1000;  ///< data-size cap
  std::string file_name = "trace.dat";
  int rank = 0;  ///< the paper replays with a single process
};

/// Replay a trace synchronously through the cluster; WorkloadResult's
/// avg_request_ms is the Table III metric.
WorkloadResult replay_trace(cluster::Cluster& cluster, const Trace& trace,
                            const ReplayConfig& cfg = {});

/// Replay `n` records pulled from a stream on demand — no materialized
/// Trace, bounded memory at any n.  For a stream built from the same
/// (profile, unit, file_bytes, seed), the issued requests (and therefore
/// the simulated schedule) are identical to replay_trace() over
/// TraceSynthesizer::generate(n, ...).
WorkloadResult replay_stream(cluster::Cluster& cluster,
                             exp::WorkloadStream& stream, std::size_t n,
                             const ReplayConfig& cfg = {});

}  // namespace ibridge::workloads
