#include "workloads/ior_mpi_io.hpp"

#include <algorithm>

#include "mpiio/mpi.hpp"
#include "stats/histogram.hpp"

namespace ibridge::workloads {

namespace {

struct Shared {
  stats::Summary request_ms;
  std::int64_t bytes = 0;
  std::uint64_t requests = 0;
};

sim::Task<> rank_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      IorMpiIoConfig cfg, std::int64_t chunk_bytes,
                      std::int64_t sweep_bytes, Shared* shared) {
  const std::int64_t base =
      static_cast<std::int64_t>(ctx.rank()) * chunk_bytes;
  for (std::int64_t pos = 0; pos < sweep_bytes;) {
    const std::int64_t len =
        std::min(cfg.request_size, chunk_bytes - pos);
    if (len <= 0) break;
    sim::SimTime t;
    if (cfg.write) {
      t = co_await file.write_at(ctx.rank(), base + pos, len);
    } else {
      t = co_await file.read_at(ctx.rank(), base + pos, len);
    }
    shared->request_ms.add(t.to_millis());
    shared->bytes += len;
    ++shared->requests;
    pos += len;
  }
}

}  // namespace

WorkloadResult run_ior_mpi_io(cluster::Cluster& cluster,
                              const IorMpiIoConfig& cfg) {
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, cfg.file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  const std::int64_t chunk = cfg.file_bytes / cfg.nprocs;
  const std::int64_t sweep =
      cfg.access_bytes > 0
          ? std::min(chunk, cfg.access_bytes / cfg.nprocs)
          : chunk;

  Shared shared;
  mpiio::MpiEnvironment env(cluster.sim(), cluster.client(), cfg.nprocs);
  const sim::SimTime t0 = cluster.sim().now();
  env.launch([&](mpiio::MpiContext ctx) {
    return rank_body(ctx, file, cfg, chunk, sweep, &shared);
  });
  cluster.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime io_done = cluster.sim().now();
  const sim::SimTime flushed = cluster.drain();

  WorkloadResult r;
  r.io_elapsed = io_done - t0;
  r.elapsed = flushed - t0;
  r.bytes = shared.bytes;
  r.requests = shared.requests;
  r.avg_request_ms = shared.request_ms.mean();
  return r;
}

}  // namespace ibridge::workloads
