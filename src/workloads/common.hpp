// Shared result types and helpers for workload drivers.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "sim/time.hpp"

namespace ibridge::workloads {

/// Outcome of one workload execution on a cluster.
struct WorkloadResult {
  sim::SimTime elapsed;            ///< wall time incl. final write-back drain
  sim::SimTime io_elapsed;         ///< wall time of the access phase only
  std::int64_t bytes = 0;          ///< payload bytes moved
  double avg_request_ms = 0.0;     ///< mean client-observed request time
  std::uint64_t requests = 0;
  double compute_seconds = 0.0;    ///< simulated compute (BTIO)

  /// Aggregate throughput in MB/s (decimal MB, as the paper plots).
  double mbps() const {
    const double s = io_elapsed.to_seconds();
    return s > 0 ? static_cast<double>(bytes) / 1e6 / s : 0.0;
  }
};

}  // namespace ibridge::workloads
