#include "workloads/trace.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "mpiio/mpi.hpp"
#include "stats/histogram.hpp"

namespace ibridge::workloads {

// -------------------------------------------------------------- text IO ----

void write_trace(std::ostream& os, const Trace& trace) {
  for (const auto& r : trace) {
    os << (r.write ? 'W' : 'R') << ' ' << r.offset << ' ' << r.size << '\n';
  }
}

Trace read_trace(std::istream& is) {
  Trace out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char op = 0;
    TraceRecord r;
    if (!(ss >> op >> r.offset >> r.size) || (op != 'R' && op != 'W') ||
        r.offset < 0 || r.size <= 0) {
      throw std::runtime_error("malformed trace line " +
                               std::to_string(lineno) + ": " + line);
    }
    r.write = op == 'W';
    out.push_back(r);
  }
  return out;
}

// ----------------------------------------------------------- classifier ----

AccessStats AccessClassifier::classify(const Trace& trace) const {
  AccessStats s;
  if (trace.empty()) return s;
  std::uint64_t unaligned = 0, random = 0;
  double size_sum = 0.0;
  for (const auto& r : trace) {
    if (is_unaligned(r)) ++unaligned;
    if (is_random(r)) ++random;
    size_sum += static_cast<double>(r.size);
  }
  const auto n = static_cast<double>(trace.size());
  s.requests = trace.size();
  s.unaligned_pct = 100.0 * static_cast<double>(unaligned) / n;
  s.random_pct = 100.0 * static_cast<double>(random) / n;
  s.total_pct = s.unaligned_pct + s.random_pct;
  s.avg_size = size_sum / n;
  return s;
}

// ---------------------------------------------------------- synthesizer ----

TraceProfile alegra_2744_profile() {
  return {"ALEGRA-2744", 0.352, 0.073, 96 * 1024, 4 * 1024, 0.7};
}
TraceProfile alegra_5832_profile() {
  return {"ALEGRA-5832", 0.357, 0.069, 96 * 1024, 4 * 1024, 0.7};
}
TraceProfile cth_profile() {
  return {"CTH", 0.243, 0.301, 112 * 1024, 6 * 1024, 0.7};
}
TraceProfile s3d_profile() {
  // S3D's average request size is markedly larger (its replayed service
  // time is about twice the others' in Table III).
  return {"S3D", 0.628, 0.058, 256 * 1024, 8 * 1024, 0.7};
}

Trace TraceSynthesizer::generate(std::size_t n, std::int64_t file_bytes,
                                 std::uint64_t seed) const {
  sim::Rng rng(seed);
  Trace out;
  out.reserve(n);
  // A sequential cursor models checkpoint-style forward progress; random
  // small requests and occasional jumps model header updates and restarts.
  std::int64_t cursor = 0;
  const double aligned_large_frac =
      std::max(0.0, 1.0 - profile_.unaligned_frac - profile_.random_frac);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.write = rng.chance(profile_.write_frac);
    const double u = rng.uniform01();
    if (u < profile_.random_frac) {
      // Regular random request: small, anywhere in the file.
      r.size = std::max<std::int64_t>(
          512, profile_.small_size / 2 +
                   rng.uniform(0, profile_.small_size));
      r.offset = rng.uniform(0, std::max<std::int64_t>(1, file_bytes - r.size));
    } else if (u < profile_.random_frac + aligned_large_frac) {
      // Aligned large request: unit-multiple size at a unit boundary.
      const std::int64_t units =
          std::max<std::int64_t>(1, profile_.large_size / unit_);
      r.size = units * unit_;
      cursor = (cursor / unit_) * unit_;
      if (cursor + r.size > file_bytes) cursor = 0;
      r.offset = cursor;
      cursor += r.size;
    } else {
      // Unaligned large request: bigger than a unit, odd size or offset.
      r.size = profile_.large_size +
               rng.uniform(1, std::max<std::int64_t>(2, unit_ / 2));
      if (cursor + r.size > file_bytes) cursor = 0;
      r.offset = cursor;
      cursor += r.size;
    }
    assert(r.offset + r.size <= file_bytes || r.offset == 0);
    out.push_back(r);
  }
  return out;
}

// -------------------------------------------------------------- replayer ----

namespace {

sim::Task<> replay_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                        const Trace* trace, std::int64_t file_bytes,
                        stats::Summary* request_ms, std::int64_t* bytes) {
  for (const auto& rec : *trace) {
    std::int64_t off = rec.offset;
    std::int64_t size = std::min<std::int64_t>(rec.size, file_bytes);
    if (off + size > file_bytes) off = file_bytes - size;
    sim::SimTime t;
    if (rec.write) {
      t = co_await file.write_at(ctx.rank(), off, size);
    } else {
      t = co_await file.read_at(ctx.rank(), off, size);
    }
    request_ms->add(t.to_millis());
    *bytes += size;
  }
}

}  // namespace

WorkloadResult replay_trace(cluster::Cluster& cluster, const Trace& trace,
                            const ReplayConfig& cfg) {
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, cfg.file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  stats::Summary request_ms;
  std::int64_t bytes = 0;
  mpiio::MpiEnvironment env(cluster.sim(), cluster.client(), 1);
  const sim::SimTime t0 = cluster.sim().now();
  env.launch([&](mpiio::MpiContext ctx) {
    return replay_body(ctx, file, &trace, cfg.file_bytes, &request_ms,
                       &bytes);
  });
  cluster.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime io_done = cluster.sim().now();
  const sim::SimTime flushed = cluster.drain();

  WorkloadResult r;
  r.io_elapsed = io_done - t0;
  r.elapsed = flushed - t0;
  r.bytes = bytes;
  r.requests = request_ms.count();
  r.avg_request_ms = request_ms.mean();
  return r;
}

}  // namespace ibridge::workloads
