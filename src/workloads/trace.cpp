#include "workloads/trace.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "mpiio/mpi.hpp"
#include "stats/histogram.hpp"

namespace ibridge::workloads {

// -------------------------------------------------------------- text IO ----

void write_trace(std::ostream& os, const Trace& trace) {
  for (const auto& r : trace) {
    os << (r.write ? 'W' : 'R') << ' ' << r.offset << ' ' << r.size << '\n';
  }
}

Trace read_trace(std::istream& is) {
  Trace out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char op = 0;
    TraceRecord r;
    if (!(ss >> op >> r.offset >> r.size) || (op != 'R' && op != 'W') ||
        r.offset < 0 || r.size <= 0) {
      throw std::runtime_error("malformed trace line " +
                               std::to_string(lineno) + ": " + line);
    }
    r.write = op == 'W';
    out.push_back(r);
  }
  return out;
}

// ----------------------------------------------------------- classifier ----

AccessStats AccessClassifier::finish(const Accumulator& acc) const {
  AccessStats s;
  if (acc.requests == 0) return s;
  const auto n = static_cast<double>(acc.requests);
  s.requests = acc.requests;
  s.unaligned_pct = 100.0 * static_cast<double>(acc.unaligned) / n;
  s.random_pct = 100.0 * static_cast<double>(acc.random) / n;
  s.total_pct = s.unaligned_pct + s.random_pct;
  s.avg_size = acc.size_sum / n;
  return s;
}

AccessStats AccessClassifier::classify(const Trace& trace) const {
  Accumulator acc;
  for (const auto& r : trace) add(acc, r);
  return finish(acc);
}

// ---------------------------------------------------------- synthesizer ----

TraceProfile alegra_2744_profile() {
  return {"ALEGRA-2744", 0.352, 0.073, 96 * 1024, 4 * 1024, 0.7};
}
TraceProfile alegra_5832_profile() {
  return {"ALEGRA-5832", 0.357, 0.069, 96 * 1024, 4 * 1024, 0.7};
}
TraceProfile cth_profile() {
  return {"CTH", 0.243, 0.301, 112 * 1024, 6 * 1024, 0.7};
}
TraceProfile s3d_profile() {
  // S3D's average request size is markedly larger (its replayed service
  // time is about twice the others' in Table III).
  return {"S3D", 0.628, 0.058, 256 * 1024, 8 * 1024, 0.7};
}

Trace TraceSynthesizer::generate(std::size_t n, std::int64_t file_bytes,
                                 std::uint64_t seed) const {
  // The generator proper lives in exp::WorkloadStream (a sequential cursor
  // models checkpoint-style forward progress; random small requests and
  // occasional jumps model header updates and restarts).  Materializing is
  // just draining the stream — the two paths are digest-equivalent.
  exp::WorkloadStream s = stream(file_bytes, seed);
  Trace out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const exp::StreamRecord r = s.next();
    assert(r.offset + r.size <= file_bytes || r.offset == 0);
    out.push_back({r.write, r.offset, r.size});
  }
  return out;
}

// -------------------------------------------------------------- replayer ----

namespace {

sim::Task<> replay_one(mpiio::MpiContext& ctx, mpiio::MpiFile& file,
                       TraceRecord rec, std::int64_t file_bytes,
                       stats::Summary* request_ms, std::int64_t* bytes) {
  std::int64_t off = rec.offset;
  std::int64_t size = std::min<std::int64_t>(rec.size, file_bytes);
  if (off + size > file_bytes) off = file_bytes - size;
  sim::SimTime t;
  if (rec.write) {
    t = co_await file.write_at(ctx.rank(), off, size);
  } else {
    t = co_await file.read_at(ctx.rank(), off, size);
  }
  request_ms->add(t.to_millis());
  *bytes += size;
}

sim::Task<> replay_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                        const Trace* trace, std::int64_t file_bytes,
                        stats::Summary* request_ms, std::int64_t* bytes) {
  for (const auto& rec : *trace) {
    co_await replay_one(ctx, file, rec, file_bytes, request_ms, bytes);
  }
}

sim::Task<> replay_stream_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                               exp::WorkloadStream* stream, std::size_t n,
                               std::int64_t file_bytes,
                               stats::Summary* request_ms,
                               std::int64_t* bytes) {
  for (std::size_t i = 0; i < n; ++i) {
    const exp::StreamRecord r = stream->next();
    co_await replay_one(ctx, file, TraceRecord{r.write, r.offset, r.size},
                        file_bytes, request_ms, bytes);
  }
}

/// Shared driver around the per-record loop: spawn the replaying rank, run
/// the cluster until it finishes, drain the write-back daemons.
template <typename LaunchBody>
WorkloadResult drive_replay(cluster::Cluster& cluster,
                            stats::Summary& request_ms, std::int64_t& bytes,
                            LaunchBody&& body) {
  mpiio::MpiEnvironment env(cluster.sim(), cluster.client(), 1);
  const sim::SimTime t0 = cluster.sim().now();
  env.launch(body);
  cluster.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime io_done = cluster.sim().now();
  const sim::SimTime flushed = cluster.drain();

  WorkloadResult r;
  r.io_elapsed = io_done - t0;
  r.elapsed = flushed - t0;
  r.bytes = bytes;
  r.requests = request_ms.count();
  r.avg_request_ms = request_ms.mean();
  return r;
}

}  // namespace

WorkloadResult replay_trace(cluster::Cluster& cluster, const Trace& trace,
                            const ReplayConfig& cfg) {
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, cfg.file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  stats::Summary request_ms;
  std::int64_t bytes = 0;
  return drive_replay(cluster, request_ms, bytes,
                      [&](mpiio::MpiContext ctx) {
                        return replay_body(ctx, file, &trace, cfg.file_bytes,
                                           &request_ms, &bytes);
                      });
}

WorkloadResult replay_stream(cluster::Cluster& cluster,
                             exp::WorkloadStream& stream, std::size_t n,
                             const ReplayConfig& cfg) {
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, cfg.file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  stats::Summary request_ms;
  std::int64_t bytes = 0;
  return drive_replay(cluster, request_ms, bytes,
                      [&](mpiio::MpiContext ctx) {
                        return replay_stream_body(ctx, file, &stream, n,
                                                  cfg.file_bytes, &request_ms,
                                                  &bytes);
                      });
}

}  // namespace ibridge::workloads
