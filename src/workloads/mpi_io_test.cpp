#include "workloads/mpi_io_test.hpp"

#include <algorithm>

#include "mpiio/mpi.hpp"
#include "stats/histogram.hpp"

namespace ibridge::workloads {

namespace {

struct Shared {
  stats::Summary request_ms;
  std::int64_t bytes = 0;
  std::uint64_t requests = 0;
};

sim::Task<> rank_body(mpiio::MpiContext ctx, mpiio::MpiFile file,
                      MpiIoTestConfig cfg, std::int64_t iterations,
                      Shared* shared) {
  const int n = ctx.size();
  const std::int64_t s = cfg.request_size;
  for (std::int64_t k = 0; k < iterations; ++k) {
    const std::int64_t offset =
        k * n * s + static_cast<std::int64_t>(ctx.rank()) * s +
        cfg.offset_shift;
    if (offset + s > file.size() && !cfg.write) break;
    sim::SimTime t;
    if (cfg.write) {
      t = co_await file.write_at(ctx.rank(), offset, s);
    } else {
      t = co_await file.read_at(ctx.rank(), offset, s);
    }
    shared->request_ms.add(t.to_millis());
    shared->bytes += s;
    ++shared->requests;
    if (cfg.barrier_each_iteration) co_await ctx.barrier();
  }
}

}  // namespace

WorkloadResult run_mpi_io_test(cluster::Cluster& cluster,
                               const MpiIoTestConfig& cfg) {
  cluster.restart_daemons();
  auto fh = cluster.create_file(cfg.file_name, cfg.file_bytes);
  mpiio::MpiFile file(cluster.client(), fh);

  const std::int64_t accessible =
      cfg.access_bytes > 0 ? std::min(cfg.access_bytes, cfg.file_bytes)
                           : cfg.file_bytes;
  const std::int64_t per_iter =
      static_cast<std::int64_t>(cfg.nprocs) * cfg.request_size;
  const std::int64_t iterations = std::max<std::int64_t>(
      1, (accessible - cfg.offset_shift) / per_iter);

  Shared shared;
  mpiio::MpiEnvironment env(cluster.sim(), cluster.client(), cfg.nprocs);
  const sim::SimTime t0 = cluster.sim().now();
  env.launch([&](mpiio::MpiContext ctx) {
    return rank_body(ctx, file, cfg, iterations, &shared);
  });
  cluster.sim().run_while_pending([&] { return env.finished(); });
  const sim::SimTime io_done = cluster.sim().now();
  const sim::SimTime flushed = cluster.drain();

  WorkloadResult r;
  r.io_elapsed = io_done - t0;
  r.elapsed = flushed - t0;
  r.bytes = shared.bytes;
  r.requests = shared.requests;
  r.avg_request_ms = shared.request_ms.mean();
  return r;
}

}  // namespace ibridge::workloads
