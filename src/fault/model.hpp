// Device-level fault models.
//
// SsdFaultModel implements storage::SsdFaultHook for one server's SSD: a
// churn-triggered garbage-collection pause model (every N bytes of write
// traffic stall the device for a fixed pause — the unsynchronized-GC
// straggler effect) layered with seeded per-read latency variability.  All
// state is derived from an explicit seed, and every injected delay is folded
// into a FaultDigest, so "same seed ⇒ identical pause trace" is a one-value
// comparison.
//
// DirtyBitmap tracks which positions of the SSD log held dirty data at a
// crash — the write-back journal's map of what degraded-mode draining still
// owes the disk.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/schedule.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "storage/block.hpp"
#include "storage/ssd.hpp"

namespace ibridge::fault {

class SsdFaultModel final : public storage::SsdFaultHook {
 public:
  /// Either spec may be null (that aspect disabled); the specs' `server`
  /// fields are ignored here — the engine resolves placement.
  SsdFaultModel(const GcSpec* gc, const ReadVarSpec* readvar,
                std::uint64_t seed);

  sim::SimTime dispatch_delay(storage::IoDirection dir, std::int64_t lbn,
                              std::int64_t sectors, sim::SimTime now,
                              sim::SimTime base_service) override;

  std::uint64_t gc_pauses() const { return gc_pauses_; }
  sim::SimTime gc_pause_time() const { return gc_pause_time_; }
  std::uint64_t slow_reads() const { return slow_reads_; }
  /// Digest over every (time, extra-delay) pair injected so far.
  std::uint64_t digest() const { return digest_.value(); }

 private:
  bool gc_enabled_ = false;
  GcSpec gc_;
  bool readvar_enabled_ = false;
  ReadVarSpec readvar_;
  sim::Rng rng_;
  std::int64_t churn_accum_ = 0;
  /// The device is stalled by GC until this instant (pauses queue up).
  sim::SimTime pause_until_;
  std::uint64_t gc_pauses_ = 0;
  sim::SimTime gc_pause_time_;
  std::uint64_t slow_reads_ = 0;
  FaultDigest digest_;
};

/// Fixed-granule bitmap over the SSD log's byte range.  Positions are
/// granule-sized tiles; a range marks/clears every tile it touches.
class DirtyBitmap {
 public:
  explicit DirtyBitmap(sim::Bytes capacity, sim::Bytes granule = sim::Bytes{4096});

  void mark(sim::Offset off, sim::Bytes len) { apply(off, len, true); }
  void clear(sim::Offset off, sim::Bytes len) { apply(off, len, false); }
  /// Drop every bit not also set in `other` (same capacity and granule).
  void intersect(const DirtyBitmap& other);

  bool any() const;
  std::int64_t set_count() const;
  bool test(std::int64_t tile) const;
  std::int64_t tile_count() const { return tiles_; }
  sim::Bytes granule() const { return granule_; }

 private:
  void apply(sim::Offset off, sim::Bytes len, bool value);

  sim::Bytes granule_;
  std::int64_t tiles_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ibridge::fault
