// FaultEngine — executes a FaultSchedule against a running cluster.
//
// On start() the engine installs the per-server SSD fault models (GC
// pauses, read variability) and spawns one crash actor per CrashSpec.  A
// crash actor takes its server off the network mid-write-back (cutting the
// flush batch at the scheduled phase via core::WritebackGate), waits for
// quiescence, snapshots the mapping table and a dirty-position bitmap,
// rides out the outage, replays the table through IBridgeCache::recover(),
// and then drains the recovered dirty data in degraded mode — a bounded
// trickle per interval — until every pre-crash dirty byte is home.
//
// Everything the engine injects is folded into digest(), so two runs with
// the same seed and schedule can be compared with one 64-bit value; crash
// and recovery show up as "fault.crash" spans when a TraceSession is
// attached.  The destructor uninstalls every hook it planted, so clusters
// shared across cases come back healthy.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/model.hpp"
#include "fault/schedule.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"

namespace ibridge::fault {

class FaultEngine {
 public:
  /// The engine references (never owns) the cluster; schedule times are
  /// relative to the start() call.
  FaultEngine(cluster::Cluster& cluster, FaultSchedule schedule);
  ~FaultEngine();
  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// Attach a TraceSession (nullptr to detach); call before start().
  void set_trace(obs::TraceSession* session);

  /// Install hooks and spawn the crash actors.  Idempotent.
  void start();

  /// True once start() was called and every crash actor has finished
  /// (crashed, recovered, and drained its degraded backlog).
  bool done() const { return started_ && actors_.all_finished(); }

  /// Digest over the schedule plus every injected event (crash instants,
  /// recovery instants, GC pauses, slowed reads) — byte-identical for
  /// same-seed same-schedule runs.
  std::uint64_t digest() const;

  /// Non-empty when a recovery replay failed ("; "-joined).  Driver phase
  /// only (joins the per-actor lanes into a cached string).
  const std::string& failure() const;

  struct Stats {
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t degraded_flushes = 0;
    std::uint64_t gc_pauses = 0;
    std::uint64_t slow_reads = 0;
  };
  Stats stats() const;

  const FaultSchedule& schedule() const { return schedule_; }

 private:
  class CrashGate;

  /// Where an actor folds its injected events.  On the classic core every
  /// actor shares one lane — the counters/digest interleave in event-time
  /// order, byte-identical to the engine's original single-digest history.
  /// On a sharded cluster actors run concurrently on their servers' shards,
  /// so each gets its own lane (deque: stable addresses), folded in spawn
  /// order by digest()/stats()/failure() — which makes the merged values a
  /// pure function of the schedule, invariant under the worker count.
  struct ActorLane {
    Stats stats;
    FaultDigest digest;
    std::string failure;
  };

  sim::Task<> crash_actor(CrashSpec spec, ActorLane* lane);

  cluster::Cluster& cluster_;
  FaultSchedule schedule_;
  /// One model per server index (null where no gc/readvar spec applies).
  std::vector<std::unique_ptr<SsdFaultModel>> models_;
  obs::TraceSession* trace_ = nullptr;
  obs::TrackId trace_track_ = obs::kNoTrack;
  bool started_ = false;
  ActorLane shared_;              ///< the classic core's single lane
  std::deque<ActorLane> lanes_;   ///< sharded: one per actor, spawn order
  mutable std::string failure_joined_;
  sim::TaskGroup actors_;
};

}  // namespace ibridge::fault
