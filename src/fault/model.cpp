#include "fault/model.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ibridge::fault {

SsdFaultModel::SsdFaultModel(const GcSpec* gc, const ReadVarSpec* readvar,
                             std::uint64_t seed)
    : rng_(seed) {
  if (gc != nullptr) {
    gc_enabled_ = true;
    gc_ = *gc;
    assert(gc_.churn_bytes > 0);
  }
  if (readvar != nullptr) {
    readvar_enabled_ = true;
    readvar_ = *readvar;
    assert(readvar_.min_extra <= readvar_.max_extra);
  }
}

sim::SimTime SsdFaultModel::dispatch_delay(storage::IoDirection dir,
                                           std::int64_t /*lbn*/,
                                           std::int64_t sectors,
                                           sim::SimTime now,
                                           sim::SimTime /*base_service*/) {
  sim::SimTime extra;
  if (gc_enabled_) {
    if (dir == storage::IoDirection::kWrite) {
      churn_accum_ += sectors * storage::kSectorBytes;
      while (churn_accum_ >= gc_.churn_bytes) {
        churn_accum_ -= gc_.churn_bytes;
        // Back-to-back GC cycles queue: a pause starts when the previous
        // one ends (or now, if the device was healthy).
        pause_until_ = std::max(pause_until_, now) + gc_.pause;
        ++gc_pauses_;
        gc_pause_time_ += gc_.pause;
      }
    }
    if (pause_until_ > now) extra += pause_until_ - now;
  }
  if (readvar_enabled_ && dir == storage::IoDirection::kRead &&
      rng_.chance(readvar_.probability)) {
    const std::int64_t span_ns =
        (readvar_.max_extra - readvar_.min_extra).ns();
    extra += readvar_.min_extra +
             sim::SimTime::nanos(static_cast<std::int64_t>(
                 rng_.below(static_cast<std::uint64_t>(span_ns) + 1)));
    ++slow_reads_;
  }
  if (extra > sim::SimTime::zero()) {
    digest_.update_i64(now.ns());
    digest_.update_i64(extra.ns());
  }
  return extra;
}

DirtyBitmap::DirtyBitmap(sim::Bytes capacity, sim::Bytes granule)
    : granule_(granule) {
  assert(granule > sim::Bytes::zero() && capacity > sim::Bytes::zero());
  tiles_ = (capacity.count() + granule.count() - 1) / granule.count();
  words_.resize(static_cast<std::size_t>((tiles_ + 63) / 64));
}

void DirtyBitmap::apply(sim::Offset off, sim::Bytes len, bool value) {
  assert(len > sim::Bytes::zero());
  const std::int64_t first = off / granule_;
  const std::int64_t last = (off + len - sim::Bytes{1}) / granule_;
  assert(first >= 0 && last < tiles_);
  for (std::int64_t t = first; t <= last; ++t) {
    const std::size_t w = static_cast<std::size_t>(t / 64);
    const std::uint64_t bit = 1ULL << (t % 64);
    if (value) {
      words_[w] |= bit;
    } else {
      words_[w] &= ~bit;
    }
  }
}

void DirtyBitmap::intersect(const DirtyBitmap& other) {
  assert(tiles_ == other.tiles_ && granule_ == other.granule_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool DirtyBitmap::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::int64_t DirtyBitmap::set_count() const {
  std::int64_t n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool DirtyBitmap::test(std::int64_t tile) const {
  assert(tile >= 0 && tile < tiles_);
  return (words_[static_cast<std::size_t>(tile / 64)] &
          (1ULL << (tile % 64))) != 0;
}

}  // namespace ibridge::fault
