#include "fault/schedule.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace ibridge::fault {

namespace {

constexpr const char* kMagic = "ibridge-fault-schedule-v1";

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool valid_phase(const std::string& phase) {
  const auto& ps = writeback_phases();
  return std::find(ps.begin(), ps.end(), phase) != ps.end();
}

}  // namespace

const std::vector<std::string>& writeback_phases() {
  static const std::vector<std::string> kPhases = {
      "batch.begin", "batch.staged", "batch.write", "batch.clean"};
  return kPhases;
}

void normalize(FaultSchedule& s) {
  std::stable_sort(s.crashes.begin(), s.crashes.end(),
                   [](const CrashSpec& a, const CrashSpec& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.server < b.server;
                   });
}

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kHealthy: return "healthy";
    case Scenario::kGcInterference: return "gc";
    case Scenario::kCrashRestart: return "crash";
    case Scenario::kMixed: return "mixed";
  }
  return "unknown";
}

FaultSchedule make_scenario(Scenario scenario, int servers,
                            std::uint64_t seed, sim::SimTime horizon) {
  FaultSchedule s;
  s.seed = seed;
  if (scenario == Scenario::kHealthy) return s;
  sim::Rng rng(seed);

  const bool want_gc = scenario == Scenario::kGcInterference ||
                       scenario == Scenario::kMixed;
  const bool want_crash = scenario == Scenario::kCrashRestart ||
                          scenario == Scenario::kMixed;
  if (want_gc) {
    GcSpec gc;
    gc.server = -1;
    gc.churn_bytes = static_cast<std::int64_t>(rng.uniform(64, 256)) << 10;
    gc.pause = sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform(200, 2000)));
    s.gc.push_back(gc);

    ReadVarSpec rv;
    rv.server = -1;
    rv.probability = 0.05 + 0.15 * rng.uniform01();
    rv.min_extra = sim::SimTime::micros(20);
    rv.max_extra = sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform(100, 500)));
    s.readvar.push_back(rv);
  }
  if (want_crash) {
    CrashSpec crash;
    crash.server = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(servers > 0 ? servers : 1)));
    crash.at =
        horizon / 4 +
        sim::SimTime::nanos(static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(horizon.ns() / 2 + 1))));
    crash.outage = sim::SimTime::millis(
        static_cast<std::int64_t>(rng.uniform(2, 15)));
    const auto& phases = writeback_phases();
    crash.phase = phases[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(phases.size())))];
    crash.drain_budget = 128 << 10;
    crash.drain_interval = sim::SimTime::millis(1);
    s.crashes.push_back(crash);
  }
  normalize(s);
  return s;
}

void write_schedule(std::ostream& os, const FaultSchedule& s) {
  os << kMagic << "\n";
  os << "seed " << s.seed << "\n";
  for (const GcSpec& g : s.gc) {
    os << "gc " << g.server << " " << g.churn_bytes << " " << g.pause.ns()
       << "\n";
  }
  for (const ReadVarSpec& r : s.readvar) {
    // %.17g round-trips every double exactly.
    char prob[64];
    std::snprintf(prob, sizeof(prob), "%.17g", r.probability);
    os << "readvar " << r.server << " " << prob << " " << r.min_extra.ns()
       << " " << r.max_extra.ns() << "\n";
  }
  for (const CrashSpec& c : s.crashes) {
    os << "crash " << c.server << " " << c.at.ns() << " " << c.outage.ns()
       << " " << c.phase << " " << c.drain_budget << " "
       << c.drain_interval.ns() << "\n";
  }
}

bool parse_schedule(std::istream& is, FaultSchedule& s, std::string* error) {
  FaultSchedule parsed;
  bool saw_magic = false;
  bool saw_seed = false;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (!saw_magic) {
      if (line.substr(first) != kMagic) {
        set_error(error, "line " + std::to_string(lineno) +
                             ": missing magic '" + kMagic + "'");
        return false;
      }
      saw_magic = true;
      continue;
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "seed") {
      if (!(ls >> parsed.seed)) {
        set_error(error,
                  "line " + std::to_string(lineno) + ": malformed seed");
        return false;
      }
      saw_seed = true;
    } else if (kind == "gc") {
      GcSpec g;
      std::int64_t pause_ns = 0;
      if (!(ls >> g.server >> g.churn_bytes >> pause_ns) ||
          g.churn_bytes <= 0 || pause_ns < 0) {
        set_error(error,
                  "line " + std::to_string(lineno) + ": malformed gc");
        return false;
      }
      g.pause = sim::SimTime::nanos(pause_ns);
      parsed.gc.push_back(g);
    } else if (kind == "readvar") {
      ReadVarSpec r;
      std::int64_t min_ns = 0, max_ns = 0;
      if (!(ls >> r.server >> r.probability >> min_ns >> max_ns) ||
          r.probability < 0.0 || r.probability > 1.0 || min_ns < 0 ||
          max_ns < min_ns) {
        set_error(error,
                  "line " + std::to_string(lineno) + ": malformed readvar");
        return false;
      }
      r.min_extra = sim::SimTime::nanos(min_ns);
      r.max_extra = sim::SimTime::nanos(max_ns);
      parsed.readvar.push_back(r);
    } else if (kind == "crash") {
      CrashSpec c;
      std::int64_t at_ns = 0, outage_ns = 0, interval_ns = 0;
      if (!(ls >> c.server >> at_ns >> outage_ns >> c.phase >>
            c.drain_budget >> interval_ns) ||
          c.server < 0 || at_ns < 0 || outage_ns < 0 || c.drain_budget <= 0 ||
          interval_ns <= 0 || !valid_phase(c.phase)) {
        set_error(error,
                  "line " + std::to_string(lineno) + ": malformed crash");
        return false;
      }
      c.at = sim::SimTime::nanos(at_ns);
      c.outage = sim::SimTime::nanos(outage_ns);
      c.drain_interval = sim::SimTime::nanos(interval_ns);
      parsed.crashes.push_back(c);
    } else {
      set_error(error, "line " + std::to_string(lineno) +
                           ": unknown record '" + kind + "'");
      return false;
    }
  }
  if (!saw_magic) {
    set_error(error, "empty input (missing magic)");
    return false;
  }
  if (!saw_seed) {
    set_error(error, "missing 'seed' record");
    return false;
  }
  normalize(parsed);
  s = std::move(parsed);
  return true;
}

std::uint64_t schedule_digest(const FaultSchedule& s) {
  FaultSchedule n = s;
  normalize(n);
  FaultDigest d;
  d.update_u64(n.seed);
  d.update_u64(n.gc.size());
  for (const GcSpec& g : n.gc) {
    d.update_i64(g.server);
    d.update_i64(g.churn_bytes);
    d.update_i64(g.pause.ns());
  }
  d.update_u64(n.readvar.size());
  for (const ReadVarSpec& r : n.readvar) {
    d.update_i64(r.server);
    d.update_u64(std::bit_cast<std::uint64_t>(r.probability));
    d.update_i64(r.min_extra.ns());
    d.update_i64(r.max_extra.ns());
  }
  d.update_u64(n.crashes.size());
  for (const CrashSpec& c : n.crashes) {
    d.update_i64(c.server);
    d.update_i64(c.at.ns());
    d.update_i64(c.outage.ns());
    d.update_bytes(c.phase.data(), c.phase.size());
    d.update_i64(c.drain_budget);
    d.update_i64(c.drain_interval.ns());
  }
  return d.value();
}

}  // namespace ibridge::fault
