// Declarative fault schedules for the scenario engine.
//
// A FaultSchedule is a seeded, declarative description of everything
// unhealthy that should happen to a cluster during a run: SSD garbage
// collection pauses (Zheng & Burns: unsynchronized GC turns individual
// devices in an array into stragglers), per-read latency variability
// (Borge et al.: SSD read latency varies heavily even without failures),
// and data-server crash/restart events that cut the write-back machinery
// mid-batch.  Schedules are plain data with a text round-trip, so the same
// schedule can drive a figure bench, a SimCheck fuzz run, and a repro from
// the command line — and same-seed same-schedule runs stay byte-identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ibridge::fault {

/// Garbage-collection pause model for one server's SSD (server -1: all).
/// Every `churn_bytes` of write traffic reaching the device triggers one
/// GC cycle that stalls the device for `pause`; pending dispatches wait the
/// pause out as extra service time (the straggler effect).
struct GcSpec {
  int server = -1;
  std::int64_t churn_bytes = 32 << 20;
  sim::SimTime pause = sim::SimTime::millis(3);
};

/// Per-read latency variability for one server's SSD (server -1: all).
/// Each read dispatch independently suffers an extra uniform
/// [min_extra, max_extra] delay with probability `probability`.
struct ReadVarSpec {
  int server = -1;
  double probability = 0.1;
  sim::SimTime min_extra = sim::SimTime::micros(50);
  sim::SimTime max_extra = sim::SimTime::millis(1);
};

/// One data-server crash/restart.  `at` is relative to engine start; the
/// write-back batch in flight (if any) is cut at phase `phase` (one of
/// writeback_phases()).  After `outage` the server restarts, replays its
/// mapping-table image, and drains the recovered dirty data in degraded
/// mode: `drain_budget` bytes per `drain_interval`, tracked by a
/// dirty-position bitmap until every pre-crash dirty byte is home.
struct CrashSpec {
  int server = 0;
  sim::SimTime at = sim::SimTime::millis(50);
  sim::SimTime outage = sim::SimTime::millis(20);
  std::string phase = "batch.write";
  std::int64_t drain_budget = 256 << 10;
  sim::SimTime drain_interval = sim::SimTime::millis(5);
};

struct FaultSchedule {
  std::uint64_t seed = 1;
  std::vector<GcSpec> gc;
  std::vector<ReadVarSpec> readvar;
  std::vector<CrashSpec> crashes;

  bool empty() const {
    return gc.empty() && readvar.empty() && crashes.empty();
  }
};

/// The write-back phase boundaries a crash can cut, in execution order
/// (see core::WritebackGate).
const std::vector<std::string>& writeback_phases();

/// Canonical order: crashes sorted by (at, server).  Parsing and the
/// engine both normalize, so schedule files are order-insensitive.
void normalize(FaultSchedule& s);

// ------------------------------------------------------- named scenarios ----

/// The bench/fuzz scenario columns ("healthy vs GC-interference vs crashy").
enum class Scenario {
  kHealthy,
  kGcInterference,
  kCrashRestart,
  kMixed,
};

const char* to_string(Scenario s);

/// Deterministically derive a schedule for `scenario` on a cluster of
/// `servers` data servers from `seed`.  `horizon` bounds crash times so the
/// crash lands inside the run.  kHealthy returns an empty schedule.
FaultSchedule make_scenario(Scenario scenario, int servers,
                            std::uint64_t seed, sim::SimTime horizon);

// ------------------------------------------------------ text round-trip ----

/// Line-based text format, magic "ibridge-fault-schedule-v1":
///
///   ibridge-fault-schedule-v1
///   seed <N>
///   gc <server> <churn_bytes> <pause_ns>
///   readvar <server> <probability> <min_ns> <max_ns>
///   crash <server> <at_ns> <outage_ns> <phase> <drain_budget> <interval_ns>
///
/// Blank lines and lines starting with '#' are ignored.
void write_schedule(std::ostream& os, const FaultSchedule& s);

/// Parse (and normalize) a schedule; false on malformed input, with a
/// one-line explanation in *error when provided.
bool parse_schedule(std::istream& is, FaultSchedule& s,
                    std::string* error = nullptr);

/// Order-insensitive digest of a (normalized copy of a) schedule.
std::uint64_t schedule_digest(const FaultSchedule& s);

// --------------------------------------------------------------- digests ----

/// FNV-1a with an avalanche finalizer — the same construction as
/// check::Digest, re-implemented here because src/check/ depends on
/// src/fault/, not the other way around.  Used for pause traces and
/// injected-event streams so determinism is provable by comparing one
/// 64-bit value.
class FaultDigest {
 public:
  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void update_i64(std::int64_t v) {
    update_u64(static_cast<std::uint64_t>(v));
  }
  void update_bytes(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const {
    std::uint64_t s = h_;
    return sim::splitmix64(s);
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace ibridge::fault
