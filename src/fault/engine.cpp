#include "fault/engine.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "core/cache.hpp"
#include "core/observer.hpp"
#include "pvfs/server.hpp"
#include "storage/ssd.hpp"

namespace ibridge::fault {

/// One-shot write-back cutter: fires on the first flush batch that reaches
/// the scheduled phase, then stands down (drain() retries until dirty data
/// is gone, so a persistent gate would spin forever).
class FaultEngine::CrashGate final : public core::WritebackGate {
 public:
  explicit CrashGate(std::string phase) : phase_(std::move(phase)) {}

  bool cut(const char* phase) override {
    if (fired_ || phase_ != phase) return false;
    fired_ = true;
    return true;
  }
  bool fired() const { return fired_; }

 private:
  std::string phase_;
  bool fired_ = false;
};

FaultEngine::FaultEngine(cluster::Cluster& cluster, FaultSchedule schedule)
    : cluster_(cluster),
      schedule_(std::move(schedule)),
      actors_(cluster.sim()) {
  normalize(schedule_);
  const int n = cluster_.server_count();
  models_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const GcSpec* gc = nullptr;
    for (const GcSpec& g : schedule_.gc) {
      if (g.server < 0 || g.server == i) {
        gc = &g;
        break;
      }
    }
    const ReadVarSpec* rv = nullptr;
    for (const ReadVarSpec& r : schedule_.readvar) {
      if (r.server < 0 || r.server == i) {
        rv = &r;
        break;
      }
    }
    if (gc == nullptr && rv == nullptr) continue;
    // Independent per-server stream derived from the schedule seed, so
    // adding a server does not shift any other server's draw sequence.
    std::uint64_t st = schedule_.seed ^
                       (0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(i + 1));
    models_[static_cast<std::size_t>(i)] =
        std::make_unique<SsdFaultModel>(gc, rv, sim::splitmix64(st));
  }
}

FaultEngine::~FaultEngine() {
  // Uninstall everything we planted: clusters are shared across cases, and
  // the next case expects healthy hardware.  (This runs before actors_ is
  // destroyed, so gates owned by still-suspended actor frames are detached
  // while they are alive.)
  for (int i = 0; i < cluster_.server_count(); ++i) {
    pvfs::DataServer& s = cluster_.server(i);
    if (storage::SsdModel* ssd = s.ssd_model()) ssd->set_fault_hook(nullptr);
    if (core::IBridgeCache* c = s.cache()) c->set_writeback_gate(nullptr);
    s.set_offline(false);
  }
}

void FaultEngine::set_trace(obs::TraceSession* session) {
  trace_ = session;
  trace_track_ =
      session != nullptr ? session->track("fault", "engine") : obs::kNoTrack;
}

void FaultEngine::start() {
  if (started_) return;
  started_ = true;
  // Sharded actors run on their servers' shards; the TraceSession has no
  // cross-shard story, so tracing an engine requires the classic core.
  assert(trace_ == nullptr || cluster_.shard_group() == nullptr);
  for (int i = 0; i < cluster_.server_count(); ++i) {
    SsdFaultModel* m = models_[static_cast<std::size_t>(i)].get();
    if (m == nullptr) continue;
    // Disk-only servers have no SSD to degrade; the spec is a no-op there.
    if (storage::SsdModel* ssd = cluster_.server(i).ssd_model()) {
      ssd->set_fault_hook(m);
    }
  }
  const bool sharded = cluster_.shard_group() != nullptr;
  for (const CrashSpec& c : schedule_.crashes) {
    if (c.server < 0 || c.server >= cluster_.server_count()) continue;
    ActorLane* lane = &shared_;
    if (sharded) {
      lanes_.emplace_back();
      lane = &lanes_.back();
    }
    actors_.spawn(crash_actor(c, lane));
  }
}

sim::Task<> FaultEngine::crash_actor(CrashSpec spec, ActorLane* lane) {
  pvfs::DataServer& server = cluster_.server(spec.server);
  core::IBridgeCache* cache = server.cache();
  sim::ShardGroup* group = cluster_.shard_group();
  // Arm the timer on shard 0 (where the actor is spawned), then move to the
  // crashed server's shard: everything below touches its cache/device state
  // and schedules on its queue.
  co_await sim::Delay{cluster_.sim(), spec.at};
  if (group != nullptr) co_await group->hop(cluster_.sim(), server.sim());
  sim::Simulator& sim = server.sim();

  const obs::SpanId span =
      trace_ != nullptr ? trace_->begin(trace_track_, "fault.crash", "fault")
                        : 0;
  if (span != 0) {
    trace_->arg(span, "server", static_cast<std::int64_t>(spec.server));
    trace_->arg(span, "phase", spec.phase);
  }

  // -- crash: cut write-back, take the server off the network ------------
  ++lane->stats.crashes;
  lane->digest.update_i64(sim.now().ns());
  CrashGate gate(spec.phase);
  if (cache != nullptr) {
    cache->set_writeback_gate(&gate);
    cache->stop();
  }
  server.set_offline(true);

  // Quiesce: requests already past the entry gate finish, background work
  // runs out (a flush batch in flight cuts at the gated phase boundary).
  while (server.inflight() > 0 ||
         (cache != nullptr && !cache->background_idle())) {
    co_await sim::Delay{sim, sim::SimTime::micros(50)};
  }

  // Snapshot the durable state at the crash instant: the mapping-table
  // image (the paper keeps it replayable — think NVRAM or a metadata
  // journal on the SSD) and the dirty-position bitmap that the degraded
  // drain will work off.
  std::string image;
  if (cache != nullptr) {
    std::ostringstream os;
    cache->table().save(os);
    image = os.str();
  }
  DirtyBitmap dirty(cache != nullptr ? cache->log().capacity()
                                     : sim::Bytes{4096});
  if (cache != nullptr) {
    for (core::EntryId id : cache->table().all_entries()) {
      const core::CacheEntry& e = cache->table().get(id);
      if (e.dirty) dirty.mark(e.log_off, e.length);
    }
  }
  lane->digest.update_i64(dirty.set_count());
  lane->digest.update_u64(image.size());

  // -- outage ------------------------------------------------------------
  co_await sim::Delay{sim, spec.outage};

  // -- restart: replay the table, rebuild the log, resume service --------
  if (cache != nullptr) {
    std::istringstream is(image);
    if (!cache->recover(is)) {
      if (!lane->failure.empty()) lane->failure += "; ";
      lane->failure += "srv" + std::to_string(spec.server) +
                       ": mapping-table replay failed";
    }
    cache->set_writeback_gate(nullptr);
    cache->start();
  }
  server.set_offline(false);
  ++lane->stats.recoveries;
  lane->digest.update_i64(sim.now().ns());

  // -- degraded mode: trickle the recovered dirty backlog home -----------
  while (cache != nullptr && dirty.any()) {
    co_await sim::Delay{sim, spec.drain_interval};
    co_await cache->flush_dirty(sim::Bytes{spec.drain_budget});
    ++lane->stats.degraded_flushes;
    // Positions still dirty now; intersecting clears every pre-crash
    // position whose entry has since been flushed, evicted, or trimmed.
    DirtyBitmap still(cache->log().capacity(), dirty.granule());
    for (core::EntryId id : cache->table().all_entries()) {
      const core::CacheEntry& e = cache->table().get(id);
      if (e.dirty) still.mark(e.log_off, e.length);
    }
    dirty.intersect(still);
  }
  lane->digest.update_i64(sim.now().ns());
  // Return to shard 0 so TaskGroup completion bookkeeping (all_finished)
  // is mutated only on the driver shard.
  if (group != nullptr) co_await group->hop(sim, cluster_.sim());
  if (span != 0) trace_->end(span);
}

std::uint64_t FaultEngine::digest() const {
  FaultDigest d;
  d.update_u64(schedule_digest(schedule_));
  d.update_u64(shared_.digest.value());
  // Spawn order, so the fold is a pure function of the schedule — invariant
  // under shard/worker counts.
  for (const ActorLane& lane : lanes_) d.update_u64(lane.digest.value());
  for (const auto& m : models_) {
    d.update_u64(m != nullptr ? m->digest() : 0);
  }
  return d.value();
}

const std::string& FaultEngine::failure() const {
  failure_joined_ = shared_.failure;
  for (const ActorLane& lane : lanes_) {
    if (lane.failure.empty()) continue;
    if (!failure_joined_.empty()) failure_joined_ += "; ";
    failure_joined_ += lane.failure;
  }
  return failure_joined_;
}

FaultEngine::Stats FaultEngine::stats() const {
  Stats s = shared_.stats;
  for (const ActorLane& lane : lanes_) {
    s.crashes += lane.stats.crashes;
    s.recoveries += lane.stats.recoveries;
    s.degraded_flushes += lane.stats.degraded_flushes;
  }
  for (const auto& m : models_) {
    if (m != nullptr) {
      s.gc_pauses += m->gc_pauses();
      s.slow_reads += m->slow_reads();
    }
  }
  return s;
}

}  // namespace ibridge::fault
