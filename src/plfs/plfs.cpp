#include "plfs/plfs.hpp"

#include <algorithm>
#include <cassert>

namespace ibridge::plfs {

PlfsFile::PlfsFile(cluster::Cluster& cluster, std::string name, int nranks,
                   PlfsConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  logs_.reserve(static_cast<std::size_t>(nranks));
  index_files_.reserve(static_cast<std::size_t>(nranks));
  log_tail_.assign(static_cast<std::size_t>(nranks), 0);
  index_tail_.assign(static_cast<std::size_t>(nranks), 0);
  index_pending_.assign(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r) {
    logs_.push_back(cluster.create_file(name + ".log." + std::to_string(r),
                                        cfg.log_bytes_per_rank));
    index_files_.push_back(
        cluster.create_file(name + ".idx." + std::to_string(r), 1 << 20));
  }
}

void PlfsFile::index_insert(std::int64_t offset, std::int64_t length,
                            int rank, std::int64_t log_off) {
  const std::int64_t end = offset + length;
  // Trim or split any existing extents that overlap the new range.
  auto it = index_.upper_bound(offset);
  if (it != index_.begin()) --it;
  while (it != index_.end() && it->first < end) {
    const std::int64_t e_start = it->first;
    const std::int64_t e_end = e_start + it->second.length;
    if (e_end <= offset) {
      ++it;
      continue;
    }
    const Extent old = it->second;
    it = index_.erase(it);
    if (e_start < offset) {  // left remainder
      index_.emplace(e_start, Extent{offset - e_start, old.map});
    }
    if (e_end > end) {  // right remainder
      Mapping m = old.map;
      m.log_off += (end - e_start);
      it = index_.emplace(end, Extent{e_end - end, m}).first;
      ++it;
    }
  }
  index_.emplace(offset, Extent{length, Mapping{rank, log_off, next_seq_++}});
  logical_size_ = std::max(logical_size_, end);
}

std::vector<PlfsFile::Piece> PlfsFile::resolve(std::int64_t offset,
                                               std::int64_t length) const {
  std::vector<Piece> out;
  const std::int64_t end = offset + length;
  std::int64_t pos = offset;
  auto it = index_.upper_bound(pos);
  if (it != index_.begin()) --it;
  while (pos < end) {
    // Skip extents entirely before pos.
    while (it != index_.end() && it->first + it->second.length <= pos) ++it;
    if (it == index_.end() || it->first >= end) {
      out.push_back({pos, end - pos, -1, 0});  // hole to the end
      break;
    }
    if (it->first > pos) {  // hole before the next extent
      out.push_back({pos, it->first - pos, -1, 0});
      pos = it->first;
    }
    const std::int64_t take =
        std::min(end, it->first + it->second.length) - pos;
    out.push_back({pos, take,
                   it->second.map.rank,
                   it->second.map.log_off + (pos - it->first)});
    pos += take;
    ++it;
  }
  return out;
}

std::size_t PlfsFile::scatter(std::int64_t offset, std::int64_t length) const {
  std::size_t n = 0;
  for (const auto& p : resolve(offset, length)) {
    if (p.rank >= 0) ++n;
  }
  return n;
}

sim::Task<sim::SimTime> PlfsFile::write_at(int rank, std::int64_t offset,
                                           std::int64_t length) {
  const auto r = static_cast<std::size_t>(rank);
  assert(r < logs_.size());
  const std::int64_t log_off = log_tail_[r];
  log_tail_[r] += length;
  const sim::SimTime t0 = cluster_.sim().now();

  // Data append to the rank's log.  Index records are buffered in memory
  // (as PLFS does) and flushed to the index file one page at a time —
  // appending each 48-byte record synchronously would pay a full
  // read-modify-write per checkpoint record.
  co_await cluster_.client().write_at(rank, logs_[r], log_off, length);
  index_pending_[r] += cfg_.index_record_bytes;
  if (index_pending_[r] >= kIndexFlushBytes) {
    const std::int64_t chunk = index_pending_[r];
    index_pending_[r] = 0;
    co_await cluster_.client().write_at(rank, index_files_[r],
                                        index_tail_[r], chunk);
    index_tail_[r] += chunk;
  }

  index_insert(offset, length, rank, log_off);
  co_return cluster_.sim().now() - t0;
}

sim::Task<sim::SimTime> PlfsFile::read_at(int rank, std::int64_t offset,
                                          std::int64_t length) {
  const sim::SimTime t0 = cluster_.sim().now();
  auto pieces = resolve(offset, length);
  sim::JoinSet join(cluster_.sim());
  for (const auto& p : pieces) {
    if (p.rank < 0) continue;  // hole: zeros, no I/O
    join.add([](cluster::Cluster& c, int reader, pvfs::FileHandle log,
                std::int64_t off, std::int64_t len) -> sim::Task<> {
      co_await c.client().read_at(reader, log, off, len);
    }(cluster_, rank, logs_[static_cast<std::size_t>(p.rank)], p.log_off,
      p.length));
  }
  co_await join.join();
  co_return cluster_.sim().now() - t0;
}

}  // namespace ibridge::plfs
