// PLFS-style log-structured checkpoint middleware (Bent et al., SC'09) —
// a related-work baseline the paper discusses.
//
// Instead of writing a shared file in place, every rank appends its writes
// to a private log file (striped over the same data servers) and records
// (logical offset, length, log position) in an index.  Writes therefore
// always reach the servers as large sequential appends — unaligned access
// "disappears" at write time.  The price is paid on reads: a logical range
// may be scattered over many ranks' logs in write order, so read locality
// is whatever the write pattern was.  The paper's critique — "spatial
// locality is largely lost in the log file system" — is exactly what
// bench_plfs measures.
//
// Index semantics: last write wins (records carry a global sequence
// number); lookups flatten the per-rank indices into the newest mapping for
// every byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpiio/mpi.hpp"

namespace ibridge::plfs {

struct PlfsConfig {
  /// Bytes charged per index record appended (PLFS writes index files
  /// alongside data logs).
  std::int64_t index_record_bytes = 48;
  /// Preallocated log capacity per rank.
  std::int64_t log_bytes_per_rank = 512LL << 20;
};

/// One logical shared file backed by per-rank logs + indices.
class PlfsFile {
 public:
  /// Creates `nranks` log files on the cluster ("<name>.log.<r>") plus an
  /// index file per rank ("<name>.idx.<r>").
  PlfsFile(cluster::Cluster& cluster, std::string name, int nranks,
           PlfsConfig cfg = {});

  /// Append-write: rank's payload goes to the tail of its own log; the
  /// mapping is recorded in the index.
  sim::Task<sim::SimTime> write_at(int rank, std::int64_t offset,
                                   std::int64_t length);

  /// Read: resolve [offset, offset+length) against the flattened index and
  /// fetch every piece from the owning logs.  Unmapped bytes read as holes
  /// (charged as a read of the backing region of log 0 would be — we simply
  /// skip them, like PLFS returning zeros).
  sim::Task<sim::SimTime> read_at(int rank, std::int64_t offset,
                                  std::int64_t length);

  /// Number of distinct log pieces a read of the range would touch — the
  /// scatter factor that kills read locality.
  std::size_t scatter(std::int64_t offset, std::int64_t length) const;

  std::size_t index_entries() const { return index_.size(); }
  std::int64_t logical_size() const { return logical_size_; }

 private:
  struct Mapping {
    int rank;
    std::int64_t log_off;
    std::uint64_t seq;
  };

  /// Record a new mapping, splitting/overwriting older overlaps
  /// (last-write-wins flattening).
  void index_insert(std::int64_t offset, std::int64_t length, int rank,
                    std::int64_t log_off);

  struct Piece {
    std::int64_t offset, length;  // logical
    int rank;                     // -1 = hole
    std::int64_t log_off;
  };
  std::vector<Piece> resolve(std::int64_t offset, std::int64_t length) const;

  cluster::Cluster& cluster_;
  PlfsConfig cfg_;
  std::vector<pvfs::FileHandle> logs_;
  std::vector<pvfs::FileHandle> index_files_;
  static constexpr std::int64_t kIndexFlushBytes = 4096;
  std::vector<std::int64_t> log_tail_;
  std::vector<std::int64_t> index_tail_;
  std::vector<std::int64_t> index_pending_;  // buffered index records
  // Flattened logical index: start offset -> (length via next key) mapping.
  // Key = logical start; value covers [key, key+length).
  struct Extent {
    std::int64_t length;
    Mapping map;
  };
  std::map<std::int64_t, Extent> index_;
  std::int64_t logical_size_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ibridge::plfs
