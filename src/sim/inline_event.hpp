// InlineEvent: the simulator's move-only, type-erased `void()` callable.
//
// std::function<void()> (libstdc++) keeps only 16 bytes of inline storage,
// so the 24-48 byte closures the coroutine layer schedules — `[this, h]`,
// `[this, slot, when]`, sampler lambdas — heap-allocate on every event.  At
// millions of events per run that allocation *is* the hot path (see
// bench/bench_simcore.cpp and docs/PERF.md).
//
// InlineEvent widens the small-buffer to 48 bytes: any callable with
//   sizeof(F)  <= 48
//   alignof(F) <= alignof(std::max_align_t)
//   nothrow-move-constructible
// is stored in place; anything larger transparently falls back to a single
// heap cell, so callers never need to care.  The trade against std::function
// is deliberate: events are move-only (no copy, so captures may hold leases
// and promises), invoked at most once per schedule, and never need target()
// introspection — dropping those features is what makes the fat buffer free.
//
// Dispatch is one indirect call through a per-type Ops table (invoke /
// relocate / destroy), the same shape std::function uses.  Trivially
// copyable closures (the overwhelmingly common case: captures of pointers,
// ints, SimTime) additionally get a null relocate/destroy in their table,
// which the move path turns into a fixed-size memcpy with no indirect call —
// heap sifts in the event queue move events at memcpy speed.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ibridge::sim {

class InlineEvent {
 public:
  /// Closure bytes stored without heap allocation.  48 covers every closure
  /// the sim/core/pvfs layers schedule today (the largest is the metrics
  /// sampler's 32-byte capture) with headroom for one more pointer.
  static constexpr std::size_t kInlineBytes = 48;

  /// True when a callable of type F is stored in the inline buffer rather
  /// than behind a heap cell.  Exposed so tests and bench_simcore can pin
  /// down which regime a given capture exercises.
  template <typename F>
  static constexpr bool stored_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  InlineEvent() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors
                         // std::function so call sites stay `schedule(..., [..]{})`.
    using Fn = std::decay_t<F>;
    if constexpr (stored_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &ops_inline<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &ops_heap<Fn>();
    }
  }

  // lint: no-alloc
  InlineEvent(InlineEvent&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  // lint: no-alloc
  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // lint: no-alloc
  void operator()() {
    assert(ops_ != nullptr && "invoking empty/moved-from InlineEvent");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst from src, then destroy src's residue.
    /// Always noexcept: inline storage requires nothrow-move, heap storage
    /// relocates only the pointer.  nullptr means "memcpy the whole buffer"
    /// — valid for trivially copyable inline closures and for the heap cell
    /// (its buffer holds only a pointer), and the move path exploits it to
    /// skip the indirect call.
    void (*relocate)(void* dst, void* src);
    /// nullptr means trivially destructible — reset() skips the call.
    void (*destroy)(void*);
  };

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static const Ops& ops_inline() {
    if constexpr (std::is_trivially_copyable_v<Fn>) {
      // Trivially copyable implies trivially destructible, so both the
      // relocate and destroy slots collapse to the memcpy/no-op fast path.
      static constexpr Ops kOps{
          [](void* p) { (*as<Fn>(p))(); },
          nullptr,
          nullptr,
      };
      return kOps;
    } else {
      static constexpr Ops kOps{
          [](void* p) { (*as<Fn>(p))(); },
          [](void* dst, void* src) {
            Fn* s = as<Fn>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
          },
          [](void* p) { as<Fn>(p)->~Fn(); },
      };
      return kOps;
    }
  }

  template <typename Fn>
  static const Ops& ops_heap() {
    static constexpr Ops kOps{
        [](void* p) { (**as<Fn*>(p))(); },
        nullptr,  // the buffer holds one pointer; memcpy relocates it
        [](void* p) { delete *as<Fn*>(p); },
    };
    return kOps;
  }

  /// Precondition: ops_ == other.ops_ != nullptr and buf_ holds no object.
  // lint: no-alloc
  void relocate_from(InlineEvent& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, other.buf_);
    } else {
      std::memcpy(buf_, other.buf_, kInlineBytes);
    }
  }

  // lint: no-alloc
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // Zero-initialized so the memcpy relocation fast path never reads
  // uninitialized tail bytes (closures smaller than the buffer leave a gap;
  // GCC's -Wuninitialized rightly complains otherwise).
  alignas(std::max_align_t) std::byte buf_[kInlineBytes] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace ibridge::sim
