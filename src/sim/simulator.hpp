// The discrete-event simulation core.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and a
// monotonically advancing clock.  Everything in the iBridge model — device
// service completions, network transfers, MPI ranks, server daemons — runs as
// events on one Simulator instance.  The simulation is single-threaded and
// fully deterministic: two events scheduled for the same tick fire in the
// order they were scheduled (FIFO by sequence number).
//
// Hot-path engineering (measured by bench/bench_simcore.cpp, design notes in
// docs/PERF.md):
//   - callbacks are sim::InlineEvent, not std::function — closures up to 48
//     bytes schedule without touching the allocator;
//   - the queue is a hand-rolled 4-ary min-heap on (when, seq).  A 4-ary
//     heap halves tree depth vs binary, so sift_down touches fewer cache
//     lines per pop while sibling scans stay within one or two lines;
//   - the heap stores 24-byte POD nodes {when, seq, slot}; the InlineEvent
//     payloads live in a slot arena (LIFO free list) that sifts never touch,
//     so every heap move is a trivial copy instead of a callable relocation;
//   - reserve() lets long-lived setups (pvfs::Client, cluster::Cluster)
//     pre-size the event vector and avoid regrowth mid-run.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {

/// Observer of individual simulator steps (the obs::SimProfiler hook).
/// Both callbacks run inside Simulator::step(), which is a static no-alloc
/// zone — implementations must not allocate (pre-size any state up front).
class StepHook {
 public:
  virtual ~StepHook() = default;
  /// After the clock advanced to the event's time, before its callback.
  virtual void on_event_begin(SimTime now) = 0;
  /// After the event's callback ran; `pending` is the queue depth left.
  virtual void on_event_end(SimTime now, std::size_t pending) = 0;
};

class Simulator {
 public:
  using Callback = InlineEvent;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Pre-size the event heap for at least `n` concurrently pending events.
  /// Never shrinks.  Cheap to call from component constructors.
  void reserve(std::size_t n) {
    if (n > heap_.capacity()) {
      heap_.reserve(n);
      slots_.reserve(n);
      free_.reserve(n);
    }
  }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  void schedule_at(SimTime when, Callback fn) {
    assert(when >= now_ && "cannot schedule into the past");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot] = std::move(fn);
    heap_.push_back(Node{make_key(when, next_seq_++), slot});
    sift_up(heap_.size() - 1);
  }

  /// Schedule `fn` to run at the current time, after all callbacks already
  /// queued for this tick.  Used to break call chains (e.g. resuming a
  /// coroutine from inside another coroutine's await_suspend).
  void defer(Callback fn) { schedule_at(now_, std::move(fn)); }

  /// Run a single event.  Returns false when the queue is empty.
  // lint: no-alloc
  bool step() {
    if (heap_.empty()) return false;
    const Node top = heap_[0];
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    assert(key_time(top.key) >= now_);
    now_ = key_time(top.key);
    if (hook_ != nullptr) hook_->on_event_begin(now_);
    // Move the callable out before invoking: the callback is free to
    // schedule new events, which may reuse this slot immediately.
    Callback fn = std::move(slots_[top.slot]);
    // lint: alloc-ok (LIFO free list is bounded by slots_.size(), whose capacity schedule_at/reserve() already paid for)
    free_.push_back(top.slot);
    fn();
    ++executed_;
    if (hook_ != nullptr) hook_->on_event_end(now_, heap_.size());
    return true;
  }

  /// Attach a per-step observer (null detaches).  The hook runs inside the
  /// no-alloc step() zone; see StepHook.
  void set_step_hook(StepHook* hook) { hook_ = hook; }
  StepHook* step_hook() const { return hook_; }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run until the event queue drains or the clock passes `deadline`.
  /// Events scheduled after the deadline remain queued.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && key_time(heap_[0].key) <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until `done` returns true (checked after each event) or the queue
  /// drains.  Returns true iff the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& done) {
    while (!done()) {
      if (!step()) return false;
    }
    return true;
  }

  std::uint64_t events_executed() const { return executed_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  /// (when, seq) packed into one unsigned 128-bit key: `when.ns() << 64 |
  /// seq`.  A single integer compare orders events by time with same-tick
  /// FIFO tie-break, and — unlike a two-field comparison — compiles to
  /// branchless cmp/cmov in the sift loops, whose child-scan branches are
  /// data-dependent and mispredict heavily on random keys.  Times are never
  /// negative here (the clock starts at zero and delays are non-negative,
  /// enforced by the schedule_at assert), so the int64->uint64 cast is
  /// order-preserving.
  using Key = unsigned __int128;

  static Key make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<Key>(static_cast<std::uint64_t>(when.ns())) << 64) |
           seq;
  }
  static SimTime key_time(Key k) {
    return SimTime::nanos(static_cast<std::int64_t>(k >> 64));
  }

  /// A heap entry: ordering key plus the index of its callable in slots_.
  /// Trivially copyable by design — sift moves are plain copies.
  struct Node {
    Key key;
    std::uint32_t slot;
  };

  // 4-ary heap layout: children of i are 4i+1 .. 4i+4, parent is (i-1)/4.
  // Both sifts hole-shift — copy the displaced node out once, shift
  // ancestors/descendants into the hole, and place it at the end — so each
  // level costs one node copy instead of a three-copy swap.

  void sift_up(std::size_t i) {
    const Node ev = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (ev.key >= heap_[parent].key) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = ev;
  }

  void sift_down(std::size_t i) {
    const Node ev = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        best = heap_[c].key < heap_[best].key ? c : best;  // cmov, no branch
      }
      if (heap_[best].key >= ev.key) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = ev;
  }

  std::vector<Node> heap_;
  std::vector<Callback> slots_;    ///< callables, addressed by Node::slot
  std::vector<std::uint32_t> free_;  ///< LIFO free list of slot indices
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  StepHook* hook_ = nullptr;
};

}  // namespace ibridge::sim
