// The discrete-event simulation core.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and a
// monotonically advancing clock.  Everything in the iBridge model — device
// service completions, network transfers, MPI ranks, server daemons — runs as
// events on one Simulator instance.  A standalone Simulator is
// single-threaded and fully deterministic: two events scheduled for the same
// tick fire in the order they were scheduled (FIFO by sequence number).
//
// Simulators can also be grouped into a sim::ShardGroup (sim/shard.hpp): each
// member owns one shard of a larger model (one data server's device/cache
// event stream) and drains its local queue on a worker thread inside
// deterministic time windows.  A grouped simulator's run()-family entry
// points transparently delegate to the group, so driver code written against
// `sim().run_while_pending(...)` works unchanged whether the cluster is
// sharded or not.
//
// Hot-path engineering (measured by bench/bench_simcore.cpp, design notes in
// docs/PERF.md):
//   - callbacks are sim::InlineEvent, not std::function — closures up to 48
//     bytes schedule without touching the allocator;
//   - the queue is a hand-rolled 4-ary min-heap on (when, seq).  A 4-ary
//     heap halves tree depth vs binary, so sift_down touches fewer cache
//     lines per pop while sibling scans stay within one or two lines;
//   - the heap is laid out SoA: a dense vector of 16-byte (when, seq) keys
//     that the sifts move, and a parallel vector of 4-byte slot indices.
//     The InlineEvent payloads live in a slot arena (LIFO free list) that
//     sifts never touch, so every heap move stays within two tightly packed
//     arrays instead of shuffling 32-byte padded AoS nodes;
//   - step_tick() dispatches every event of the current tick as one batch
//     (the sharded window loop's inner step): the ready slots are pulled
//     from the heap once, so same-tick bursts — deferred coroutine resumes,
//     barrier releases — skip interleaved sift_down/push churn;
//   - reserve() lets long-lived setups (pvfs::Client, cluster::Cluster)
//     pre-size the event vector and avoid regrowth mid-run.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {

class ShardGroup;

/// Observer of individual simulator steps (the obs::SimProfiler hook).
/// Both callbacks run inside Simulator::step(), which is a static no-alloc
/// zone — implementations must not allocate (pre-size any state up front).
class StepHook {
 public:
  virtual ~StepHook() = default;
  /// After the clock advanced to the event's time, before its callback.
  virtual void on_event_begin(SimTime now) = 0;
  /// After the event's callback ran; `pending` is the queue depth left.
  virtual void on_event_end(SimTime now, std::size_t pending) = 0;
};

class Simulator {
 public:
  using Callback = InlineEvent;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Shard index within the owning ShardGroup (0 for standalone sims).
  int shard_id() const { return static_cast<int>(shard_id_); }
  /// The owning ShardGroup, or nullptr for a standalone simulator.
  ShardGroup* group() const { return group_; }

  /// Pre-size the event heap for at least `n` concurrently pending events.
  /// Never shrinks.  Cheap to call from component constructors.
  void reserve(std::size_t n) {
    if (n > keys_.capacity()) {
      keys_.reserve(n);
      heap_slots_.reserve(n);
      slots_.reserve(n);
      free_.reserve(n);
      ready_.reserve(n);
    }
  }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  void schedule_at(SimTime when, Callback fn) {
    assert(when >= now_ && "cannot schedule into the past");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot] = std::move(fn);
    keys_.push_back(make_key(when, next_seq_++));
    heap_slots_.push_back(slot);
    sift_up(keys_.size() - 1);
  }

  /// Schedule `fn` to run at the current time, after all callbacks already
  /// queued for this tick.  Used to break call chains (e.g. resuming a
  /// coroutine from inside another coroutine's await_suspend).
  void defer(Callback fn) { schedule_at(now_, std::move(fn)); }

  /// Run a single event.  Returns false when the queue is empty.
  // lint: no-alloc
  bool step() {
    if (keys_.empty()) return false;
    now_ = key_time(keys_[0]);
    const std::uint32_t slot = pop_top();
    if (hook_ != nullptr) hook_->on_event_begin(now_);
    // Move the callable out before invoking: the callback is free to
    // schedule new events, which may reuse this slot immediately.
    Callback fn = std::move(slots_[slot]);
    // lint: alloc-ok (LIFO free list is bounded by slots_.size(), whose capacity schedule_at/reserve() already paid for)
    free_.push_back(slot);
    fn();
    ++executed_;
    if (hook_ != nullptr) hook_->on_event_end(now_, keys_.size());
    return true;
  }

  /// Run every event of the next pending tick as one batch, in (when, seq)
  /// order.  Events a callback schedules for the same tick land *after* the
  /// batch (their sequence numbers are higher), so the execution order is
  /// byte-identical to repeated step() calls — the batch only skips the
  /// per-event sift_down/push interleaving.  Returns false when empty.
  // lint: no-alloc
  bool step_tick() {
    if (keys_.empty()) return false;
    const SimTime t = key_time(keys_[0]);
    now_ = t;
    ready_.clear();
    do {
      // lint: alloc-ok (ready_ is bounded by the pending-event count, whose capacity reserve() already paid for)
      ready_.push_back(pop_top());
    } while (!keys_.empty() && key_time(keys_[0]) == t);
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const std::uint32_t slot = ready_[i];
      if (hook_ != nullptr) hook_->on_event_begin(now_);
      Callback fn = std::move(slots_[slot]);
      // lint: alloc-ok (LIFO free list is bounded by slots_.size(), whose capacity schedule_at/reserve() already paid for)
      free_.push_back(slot);
      fn();
      ++executed_;
      if (hook_ != nullptr) {
        hook_->on_event_end(now_, keys_.size() + (ready_.size() - i - 1));
      }
    }
    return true;
  }

  /// Attach a per-step observer (null detaches).  The hook runs inside the
  /// no-alloc step() zone; see StepHook.
  void set_step_hook(StepHook* hook) { hook_ = hook; }
  StepHook* step_hook() const { return hook_; }

  /// Run until the event queue drains.  Grouped simulators delegate to the
  /// ShardGroup, which drains every shard under windowed barriers.
  void run() {
    if (group_ != nullptr) {
      group_run();
      return;
    }
    while (step()) {
    }
  }

  /// Run until the event queue drains or the clock passes `deadline`.
  /// Events scheduled after the deadline remain queued.
  void run_until(SimTime deadline) {
    if (group_ != nullptr) {
      group_run_until(deadline);
      return;
    }
    while (!keys_.empty() && key_time(keys_[0]) <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until `done` returns true or the queue drains.  Returns true iff
  /// the predicate was satisfied.  Standalone simulators check after every
  /// event; grouped simulators check at window barriers (the predicate must
  /// only read state written by event callbacks, which is exactly what the
  /// barrier synchronizes).
  bool run_while_pending(const std::function<bool()>& done) {
    if (group_ != nullptr) return group_run_while_pending(done);
    while (!done()) {
      if (!step()) return false;
    }
    return true;
  }

  /// Events executed.  For grouped simulators this is the group-wide total
  /// (the per-shard split is scheduling detail; the sum is shard-invariant).
  std::uint64_t events_executed() const {
    if (group_ != nullptr) return group_events_executed();
    return executed_;
  }
  bool empty() const {
    if (group_ != nullptr) return group_empty();
    return keys_.empty();
  }
  std::size_t pending() const {
    if (group_ != nullptr) return group_pending();
    return keys_.size();
  }

 private:
  friend class ShardGroup;

  /// (when, seq) packed into one unsigned 128-bit key: `when.ns() << 64 |
  /// seq`.  A single integer compare orders events by time with same-tick
  /// FIFO tie-break, and — unlike a two-field comparison — compiles to
  /// branchless cmp/cmov in the sift loops, whose child-scan branches are
  /// data-dependent and mispredict heavily on random keys.  Times are never
  /// negative here (the clock starts at zero and delays are non-negative,
  /// enforced by the schedule_at assert), so the int64->uint64 cast is
  /// order-preserving.
  using Key = unsigned __int128;

  static Key make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<Key>(static_cast<std::uint64_t>(when.ns())) << 64) |
           seq;
  }
  static SimTime key_time(Key k) {
    return SimTime::nanos(static_cast<std::int64_t>(k >> 64));
  }

  /// Pop the minimum heap entry, returning its arena slot.  Precondition:
  /// the heap is non-empty.
  // lint: no-alloc
  std::uint32_t pop_top() {
    const std::uint32_t slot = heap_slots_[0];
    if (keys_.size() > 1) {
      keys_[0] = keys_.back();
      heap_slots_[0] = heap_slots_.back();
      keys_.pop_back();
      heap_slots_.pop_back();
      sift_down(0);
    } else {
      keys_.pop_back();
      heap_slots_.pop_back();
    }
    return slot;
  }

  // 4-ary heap layout: children of i are 4i+1 .. 4i+4, parent is (i-1)/4.
  // Both sifts hole-shift — copy the displaced key/slot pair out once, shift
  // ancestors/descendants into the hole, and place it at the end — so each
  // level costs one pair copy instead of a three-copy swap.  The SoA split
  // keeps the sift loops inside the dense 16-byte key array; the 4-byte slot
  // array tags along with one extra store per level.

  void sift_up(std::size_t i) {
    const Key k = keys_[i];
    const std::uint32_t s = heap_slots_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (k >= keys_[parent]) break;
      keys_[i] = keys_[parent];
      heap_slots_[i] = heap_slots_[parent];
      i = parent;
    }
    keys_[i] = k;
    heap_slots_[i] = s;
  }

  void sift_down(std::size_t i) {
    const Key k = keys_[i];
    const std::uint32_t s = heap_slots_[i];
    const std::size_t n = keys_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        best = keys_[c] < keys_[best] ? c : best;  // cmov, no branch
      }
      if (keys_[best] >= k) break;
      keys_[i] = keys_[best];
      heap_slots_[i] = heap_slots_[best];
      i = best;
    }
    keys_[i] = k;
    heap_slots_[i] = s;
  }

  /// Next pending event time (SimTime::max() when empty) — the ShardGroup's
  /// window-placement probe.
  SimTime next_event_time() const {
    return keys_.empty() ? SimTime::max() : key_time(keys_[0]);
  }

  /// Drain every event strictly before `end` (batched per tick).  An event
  /// exactly at `end` belongs to the *next* window — the strict bound is
  /// what makes cross-shard arrivals (always >= the window end, by the
  /// lookahead argument in sim/shard.hpp) safe to deliver at the barrier.
  void drain_window(SimTime end) {
    while (!keys_.empty() && key_time(keys_[0]) < end) step_tick();
  }

  /// Advance the clock without running anything (window/deadline catch-up).
  void advance_to(SimTime t) {
    assert(keys_.empty() || key_time(keys_[0]) >= t);
    if (now_ < t) now_ = t;
  }

  // Group delegation bodies live in shard.cpp (ShardGroup is incomplete
  // here); they forward to the group's run_all family.
  void group_run();
  void group_run_until(SimTime deadline);
  bool group_run_while_pending(const std::function<bool()>& done);
  std::uint64_t group_events_executed() const;
  bool group_empty() const;
  std::size_t group_pending() const;

  std::vector<Key> keys_;                 ///< heap keys, SoA with heap_slots_
  std::vector<std::uint32_t> heap_slots_; ///< arena slot per heap entry
  std::vector<Callback> slots_;      ///< callables, addressed by heap_slots_
  std::vector<std::uint32_t> free_;  ///< LIFO free list of slot indices
  std::vector<std::uint32_t> ready_; ///< step_tick()'s same-tick batch
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  StepHook* hook_ = nullptr;
  ShardGroup* group_ = nullptr;  ///< set by ShardGroup on its members
  std::uint32_t shard_id_ = 0;
};

}  // namespace ibridge::sim
