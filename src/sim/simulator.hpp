// The discrete-event simulation core.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and a
// monotonically advancing clock.  Everything in the iBridge model — device
// service completions, network transfers, MPI ranks, server daemons — runs as
// events on one Simulator instance.  The simulation is single-threaded and
// fully deterministic: two events scheduled for the same tick fire in the
// order they were scheduled (FIFO by sequence number).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace ibridge::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  void schedule_at(SimTime when, Callback fn) {
    assert(when >= now_ && "cannot schedule into the past");
    heap_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  /// Schedule `fn` to run at the current time, after all callbacks already
  /// queued for this tick.  Used to break call chains (e.g. resuming a
  /// coroutine from inside another coroutine's await_suspend).
  void defer(Callback fn) { schedule_at(now_, std::move(fn)); }

  /// Run a single event.  Returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // pop_heap moves the minimum element to the back, where it can be moved
    // out without touching heap-ordered elements (no const_cast needed, as
    // std::priority_queue::top() would have required).
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    assert(ev.when >= now_);
    now_ = ev.when;
    ev.fn();
    ++executed_;
    return true;
  }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run until the event queue drains or the clock passes `deadline`.
  /// Events scheduled after the deadline remain queued.
  void run_until(SimTime deadline) {
    while (!heap_.empty() && heap_.front().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until `done` returns true (checked after each event) or the queue
  /// drains.  Returns true iff the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& done) {
    while (!done()) {
      if (!step()) return false;
    }
    return true;
  }

  std::uint64_t events_executed() const { return executed_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };

  /// Heap comparator: "a fires after b" — std::push_heap/pop_heap build a
  /// max-heap w.r.t. the comparator, so this yields a min-heap on
  /// (when, seq) and heap_.front() is always the next event.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ibridge::sim
