// The discrete-event simulation core.
//
// A Simulator owns a priority queue of (time, sequence, callback) events and a
// monotonically advancing clock.  Everything in the iBridge model — device
// service completions, network transfers, MPI ranks, server daemons — runs as
// events on one Simulator instance.  The simulation is single-threaded and
// fully deterministic: two events scheduled for the same tick fire in the
// order they were scheduled (FIFO by sequence number).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ibridge::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  void schedule_at(SimTime when, Callback fn) {
    assert(when >= now_ && "cannot schedule into the past");
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` to run at the current time, after all callbacks already
  /// queued for this tick.  Used to break call chains (e.g. resuming a
  /// coroutine from inside another coroutine's await_suspend).
  void defer(Callback fn) { schedule_at(now_, std::move(fn)); }

  /// Run a single event.  Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // Moving out of a priority_queue top requires const_cast; the element is
    // popped immediately afterwards so the broken ordering is never observed.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    assert(ev.when >= now_);
    now_ = ev.when;
    ev.fn();
    ++executed_;
    return true;
  }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run until the event queue drains or the clock passes `deadline`.
  /// Events scheduled after the deadline remain queued.
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until `done` returns true (checked after each event) or the queue
  /// drains.  Returns true iff the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& done) {
    while (!done()) {
      if (!step()) return false;
    }
    return true;
  }

  std::uint64_t events_executed() const { return executed_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ibridge::sim
