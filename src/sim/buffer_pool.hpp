// Pooled, reusable std::vector backing stores for per-request scratch data.
//
// Timing-mode runs allocate short-lived vectors on every request — payload
// staging buffers in core::IBridgeCache (verify mode), completion-future and
// mapped-range vectors in fsim::LocalFileSystem (every read/write) — and the
// allocator round-trip shows up right next to the event loop on the profile
// (docs/PERF.md).  VectorPool recycles those vectors: a Lease hands out a
// cleared vector whose *capacity* survives from earlier requests, and
// returns it to a bounded free list when the lease dies.  Steady state does
// zero heap allocation.
//
// Not thread-safe — one pool per Simulator-owning component, which matches
// the exp::Runner model of one fully-independent simulation per job.
// A Lease must not outlive its pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ibridge::sim {

template <typename T>
class VectorPool {
 public:
  VectorPool() = default;
  VectorPool(const VectorPool&) = delete;
  VectorPool& operator=(const VectorPool&) = delete;

  /// RAII handle on a pooled vector.  Move-only; dereference to use the
  /// vector.  Destruction (or move-assignment over) returns the buffer to
  /// the pool with its capacity intact.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          buf_(std::move(other.buf_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        buf_ = std::move(other.buf_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    std::vector<T>& operator*() noexcept { return buf_; }
    const std::vector<T>& operator*() const noexcept { return buf_; }
    std::vector<T>* operator->() noexcept { return &buf_; }
    const std::vector<T>* operator->() const noexcept { return &buf_; }

   private:
    friend class VectorPool;
    Lease(VectorPool* pool, std::vector<T> buf)
        : pool_(pool), buf_(std::move(buf)) {}

    void release() noexcept {
      if (pool_ != nullptr) {
        pool_->give_back(std::move(buf_));
        pool_ = nullptr;
      }
    }

    VectorPool* pool_ = nullptr;
    std::vector<T> buf_;
  };

  /// An empty vector, reusing a previously returned backing store when one
  /// is idle.
  Lease acquire() {
    if (free_.empty()) {
      ++fresh_;
      return Lease(this, std::vector<T>{});
    }
    ++reused_;
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    return Lease(this, std::move(buf));
  }

  /// A vector of exactly `n` value-initialized elements.
  Lease acquire(std::size_t n) {
    Lease lease = acquire();
    lease->assign(n, T{});
    return lease;
  }

  /// Buffers currently idle in the free list.
  std::size_t idle() const { return free_.size(); }
  /// Leases served with a brand-new (empty-capacity) vector.
  std::uint64_t fresh_acquires() const { return fresh_; }
  /// Leases served from the free list.
  std::uint64_t reused_acquires() const { return reused_; }

 private:
  void give_back(std::vector<T> buf) {
    if (free_.size() < kMaxIdle && buf.capacity() > 0) {
      buf.clear();
      free_.push_back(std::move(buf));
    }
  }

  /// Cap on idle buffers so a burst (e.g. a 512-proc sweep cell) cannot pin
  /// its high-water memory for the rest of the process.
  static constexpr std::size_t kMaxIdle = 64;

  std::vector<std::vector<T>> free_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

/// The common case: pooled payload byte buffers.
using BufferPool = VectorPool<std::byte>;

}  // namespace ibridge::sim
