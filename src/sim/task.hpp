// Coroutine task type for simulation processes.
//
// Simulation actors (MPI ranks, pvfs2-server daemons, the iBridge write-back
// thread) are written as C++20 coroutines returning Task<T>.  A Task is lazy:
// it runs only when awaited by another coroutine or spawned onto a TaskGroup.
// Completion hands control back to the awaiter via symmetric transfer, so
// arbitrarily deep co_await chains use O(1) stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/mem_pool.hpp"

namespace ibridge::sim {

template <typename T = void>
class Task;

struct DetachedTask;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final suspend
  bool finished = false;

  // Coroutine frames for every Task on the serve path (client -> server ->
  // cache -> fsim) come from the thread-local frame pool instead of the
  // global allocator; steady state recycles the same few chunks.  The
  // compiler prefers the sized delete, which lets the pool bucket the chunk
  // without a size header.
  static void* operator new(std::size_t n) { return frame_pool().allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    frame_pool().deallocate(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& p = h.promise();
      p.finished = true;
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace detail

/// A fire-and-forget coroutine: starts eagerly when called and frees its own
/// frame the moment it completes (final_suspend never suspends), so nothing
/// needs to own or store it.  Frames come from the same thread-local pool as
/// Task frames.  Used for completion-counting wrappers (sim::JoinSet) where
/// keeping a container of finished wrappers alive would cost a heap
/// allocation per fork/join.  The coroutine must not outlive state it
/// references — completion ordering is the caller's contract.
struct DetachedTask {
  struct promise_type : detail::PromiseBase {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
  };
};

/// A lazily-started coroutine yielding a value of type T on completion.
/// The Task object owns the coroutine frame.
template <typename T>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool finished() const { return handle_ && handle_.promise().finished; }

  /// Start the task without awaiting it (used by TaskGroup).
  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  // Awaitable protocol: `co_await task` starts it and suspends the caller
  // until it completes; the result is returned by await_resume.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;  // symmetric transfer into the child
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

  std::coroutine_handle<promise_type> raw_handle() const { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool finished() const { return handle_ && handle_.promise().finished; }

  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {}

  std::coroutine_handle<promise_type> raw_handle() const { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ibridge::sim
