// Sharded parallel simulation: conservative time-windowed barriers.
//
// A ShardGroup binds N sim::Simulator instances ("shards") into one logical
// simulation that can drain its event streams on multiple worker threads
// while staying *byte-identical* at every worker count.  The intended carve
// in this codebase (wired by cluster::Cluster): shard 0 owns the client/MPI
// ranks, the metadata server, and all client-side NICs; shard 1+i owns data
// server i's HDD/SSD/scheduler/cache event stream.  The network layer is the
// only cross-shard boundary, which is what makes conservative lookahead
// available: no message crosses shards faster than the minimum wire latency.
//
// Execution model (classic conservative windowing, specialized for a
// fixed-topology star):
//
//   W      = lookahead = minimum cross-shard delivery latency (> 0)
//   loop:
//     M    = min over shards of next pending event time
//     end  = M + W
//     each shard drains its local events with time < `end`, independently,
//       on its assigned worker thread (no cross-shard reads or writes);
//     barrier: buffered cross-shard posts are merged and scheduled.
//
// Why this is safe: a cross-shard post made at local time t arrives at
// t + W.  During the window, t >= M, so every arrival lands at
// t + W >= M + W = end — never inside the window being drained.  Posts are
// buffered in per-source-shard FIFO outboxes and merged at the barrier in
// (arrival time, source shard, send order) order — realized as a stable
// sort by arrival time over the outboxes concatenated in shard order — then
// scheduled on the target shard, which assigns fresh local sequence numbers
// in exactly that order.  The merge is single-threaded and the drain order
// inside each shard is its own (when, seq) heap order, so the entire
// schedule is a pure function of the initial events: changing the worker
// count changes *which thread* drains a shard, never *what* it executes.
// `ibridge-simcheck --shards 1/2/4` digests prove this end to end.
//
// The window boundary is half-open: an event exactly at `end` belongs to
// the next window (Simulator::drain_window uses a strict bound).  A
// lookahead of zero would admit same-instant cross-shard cycles, so the
// constructor rejects it.
//
// Adaptive lookahead (set_adaptive_window) widens windows past the minimum
// `M + W` when other shards are idle or far in the future.  Window ends are
// *static per-shard bounds* computed single-threaded at each barrier:
//
//   E_d = clamp( min over s != d of (T_s + W),  M + W,  M + A_max )
//
// where T_s is shard s's next pending event time and A_max is the adaptive
// cap.  Safety: cross-shard posts are delivered only at barriers, so during
// a window shard s's emissions are triggered solely by its own local events,
// all at t >= T_s; every post from s therefore arrives at >= T_s + W >= E_d
// for every d != s.  If every other shard is empty it cannot post at all, so
// E_d may stretch to M + A_max.  The bounds are a pure function of the
// worker-invariant T_s values, so the schedule stays byte-identical at any
// worker count.  Wider windows do change how many posts meet at one barrier
// merge, so an adaptive run's same-tick tie-breaks (and digests) may differ
// from a non-adaptive run of the same model — identity is per configuration,
// across worker counts, exactly as for the base scheme.
//
// Shard *groups* (cluster::Cluster maps many data servers onto one shard)
// need no support here beyond what post()/Hop already provide: shards are
// anonymous event streams, and grouping only changes how many of them exist.
//
// Driver-phase use (setup/teardown code between run_all calls) runs on the
// caller's thread with no window active; post() then delivers directly onto
// the target shard's queue, still deterministically.
#pragma once

#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibridge::sim {

class ShardGroup {
 public:
  /// `shards` logical shards (>= 1), drained by `workers` threads
  /// (clamped to [1, shards]; the calling thread is worker 0, so
  /// `workers - 1` pool threads are spawned).  `lookahead` must be
  /// positive — throws std::invalid_argument otherwise.  The worker count
  /// affects wall-clock speed only, never the schedule.
  ShardGroup(int shards, SimTime lookahead, int workers);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const { return static_cast<int>(sims_.size()); }
  int workers() const { return workers_; }
  SimTime lookahead() const { return lookahead_; }

  /// Enable adaptive lookahead with windows capped at `max_window` past the
  /// global minimum (see the header comment for the per-shard bound and its
  /// safety argument).  Zero disables (the default); otherwise `max_window`
  /// must be >= lookahead() — throws std::invalid_argument if not.  Driver
  /// phase only.
  void set_adaptive_window(SimTime max_window);
  SimTime adaptive_window() const { return adaptive_; }

  /// Install a hook invoked single-threaded at every barrier, passing the
  /// horizon time T: every event strictly before T has executed on every
  /// shard and no worker is running, so the hook may read cross-shard state
  /// coherently.  T is worker-count invariant, which keeps anything derived
  /// from it (e.g. the cluster metrics sampler) deterministic.  Pass nullptr
  /// to uninstall.  Driver phase only.
  void set_barrier_hook(std::function<void(SimTime)> hook);

  Simulator& shard(int i) { return sims_[static_cast<std::size_t>(i)]; }
  const Simulator& shard(int i) const {
    return sims_[static_cast<std::size_t>(i)];
  }

  /// Cross-shard send: run `fn` on `to`'s shard at absolute time `when`.
  /// `from` must be the shard the caller is currently executing on.  Inside
  /// a window the post is buffered in `from`'s outbox and merged at the
  /// barrier (`when` must respect the lookahead: when >= from.now() +
  /// lookahead).  Outside a window it is scheduled directly (clamped to
  /// `to`'s clock, which driver-phase code may not have advanced).
  void post(Simulator& from, Simulator& to, SimTime when, InlineEvent fn);

  /// Awaitable that moves the running coroutine from `from`'s shard to
  /// `to`'s shard, arriving `lookahead` later (a no-op when already there).
  /// This is how driver coroutines spawned on shard 0 reach a data server's
  /// shard before touching its state or scheduling on its queue.
  struct Hop {
    ShardGroup* group;
    Simulator* from;
    Simulator* to;
    bool await_ready() const noexcept { return from == to; }
    void await_suspend(std::coroutine_handle<> h) {
      group->post(*from, *to, from->now() + group->lookahead_,
                  InlineEvent([h] { h.resume(); }));
    }
    void await_resume() const noexcept {}
  };
  Hop hop(Simulator& from, Simulator& to) { return Hop{this, &from, &to}; }

  /// Run windows until every shard's queue drains, then advance all shard
  /// clocks to the global maximum (so driver-phase code sees one time).
  void run_all();

  /// Run windows until no pending event is <= `deadline`, then advance all
  /// shard clocks to `deadline`.  Mirrors Simulator::run_until.
  void run_all_until(SimTime deadline);

  /// Run windows until `done()` returns true (checked at each barrier — the
  /// only points where cross-shard state is coherent) or the group drains.
  /// Returns true iff the predicate was satisfied.  The predicate runs on
  /// the calling thread; state it reads must be written on shard 0, which
  /// the calling thread itself drains.
  bool run_all_while_pending(const std::function<bool()>& done);

  /// Group-wide totals; all are invariant under the worker count.
  std::uint64_t events_executed() const;
  bool all_empty() const;
  std::size_t total_pending() const;

  /// Barrier statistics (also worker-count invariant).
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t posts_delivered() const { return posts_; }

 private:
  struct PostRec {
    SimTime when;
    std::uint32_t dst;
    InlineEvent fn;
  };

  /// Earliest pending event across shards (SimTime::max() when drained).
  SimTime next_time() const;
  /// Compute per-shard window ends into `ends_` for a window starting at
  /// global minimum `m`, each clamped to `cap`.  Single-threaded.
  void place_windows(SimTime m, SimTime cap);
  /// Drain every shard's events strictly before its `ends_` bound, in
  /// parallel.
  void run_window();
  /// Barrier merge: move buffered posts onto their target shards in
  /// (when, src shard, send order) order.  Single-threaded.
  void deliver();
  /// Advance every shard clock that is behind `t` (queues must have no
  /// event before `t`).
  void sync_clocks(SimTime t);
  void worker_loop(int w);

  std::deque<Simulator> sims_;  // deque: stable addresses, non-movable elems
  SimTime lookahead_;
  SimTime adaptive_ = SimTime::zero();  ///< max window width; zero = off
  int workers_;
  std::vector<SimTime> ends_;  ///< per-shard window ends for this window
  std::function<void(SimTime)> barrier_hook_;

  // Outboxes are written lock-free during a window: outbox_[s] is touched
  // only by the worker draining shard s.  The barrier (and the pool's mutex
  // handshake) orders those writes before the merge reads them.
  std::vector<std::vector<PostRec>> outbox_;  ///< per-source-shard FIFOs
  std::vector<PostRec> scratch_;              ///< barrier merge buffer

  bool running_ = false;  ///< a window is being drained (set under mu_)
  std::uint64_t windows_ = 0;
  std::uint64_t posts_ = 0;

  // Worker pool (exp::Runner-style mutex + condvar handshake).  Worker w
  // drains shards {s : s % workers_ == w}; worker 0 is the calling thread,
  // so shard 0 — and any predicate/driver state living there — is always
  // drained by the caller itself.  Workers read the per-shard bounds from
  // `ends_`, which the caller fills before bumping the epoch under mu_.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ibridge::sim
