// Unit-safe vocabulary types: Bytes, Offset, ServerId.
//
// Extends the SimTime strong-type discipline (sim/time.hpp) to the other
// quantities the simulator mixes freely in arithmetic: byte counts, byte
// positions, and data-server identities.  Each wrapper is a thin strongly-
// typed integer, so offset/length/id confusion — the second bug class PR 1's
// fuzzer hunted dynamically — becomes a compile error instead.
//
// Dimensional rules (everything else does not compile):
//   Bytes  ± Bytes  -> Bytes      Offset ± Bytes  -> Offset
//   Offset - Offset -> Bytes      Offset % Bytes  -> Bytes   (alignment)
//   Bytes  * int    -> Bytes      Offset / Bytes  -> int64   (unit index)
//   Bytes  / int    -> Bytes      Bytes  / Bytes  -> int64   (ratio)
//
// Raw values enter via the explicit constructors and leave via
// Bytes::count() / Offset::value() / ServerId::index() — grep for those
// names to audit every typed/untyped boundary (the fsim and storage block
// layers below core speak raw sectors and bytes).
#pragma once

#include <compare>
#include <cstdint>

namespace ibridge::sim {

/// A byte count (a length, a capacity, a distance between two offsets).
/// May be transiently negative in budget arithmetic.
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(std::int64_t n) : n_(n) {}

  static constexpr Bytes zero() { return Bytes(0); }

  constexpr std::int64_t count() const { return n_; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes o) {
    n_ += o.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    n_ -= o.n_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.n_ + b.n_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.n_ - b.n_);
  }
  friend constexpr Bytes operator-(Bytes a) { return Bytes(-a.n_); }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) {
    return Bytes(a.n_ * k);
  }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) {
    return Bytes(a.n_ * k);
  }
  friend constexpr Bytes operator/(Bytes a, std::int64_t k) {
    return Bytes(a.n_ / k);
  }
  /// How many times `b` fits into `a` (e.g. bytes per stripe unit).
  friend constexpr std::int64_t operator/(Bytes a, Bytes b) {
    return a.n_ / b.n_;
  }
  friend constexpr Bytes operator%(Bytes a, Bytes b) {
    return Bytes(a.n_ % b.n_);
  }

 private:
  std::int64_t n_ = 0;
};

/// A byte position within a file, a device, or the SSD log.
class Offset {
 public:
  constexpr Offset() = default;
  explicit constexpr Offset(std::int64_t v) : v_(v) {}

  static constexpr Offset zero() { return Offset(0); }

  constexpr std::int64_t value() const { return v_; }

  constexpr auto operator<=>(const Offset&) const = default;

  constexpr Offset& operator+=(Bytes o) {
    v_ += o.count();
    return *this;
  }
  constexpr Offset& operator-=(Bytes o) {
    v_ -= o.count();
    return *this;
  }
  friend constexpr Offset operator+(Offset p, Bytes n) {
    return Offset(p.v_ + n.count());
  }
  friend constexpr Offset operator+(Bytes n, Offset p) {
    return Offset(p.v_ + n.count());
  }
  friend constexpr Offset operator-(Offset p, Bytes n) {
    return Offset(p.v_ - n.count());
  }
  /// The distance between two positions is a length.
  friend constexpr Bytes operator-(Offset a, Offset b) {
    return Bytes(a.v_ - b.v_);
  }
  /// Misalignment of a position within `unit`-sized tiles.
  friend constexpr Bytes operator%(Offset p, Bytes unit) {
    return Bytes(p.v_ % unit.count());
  }
  /// Index of the `unit`-sized tile containing the position.
  friend constexpr std::int64_t operator/(Offset p, Bytes unit) {
    return p.v_ / unit.count();
  }

 private:
  std::int64_t v_ = 0;
};

/// Identity of a data server (an index into server arrays and the T board).
class ServerId {
 public:
  constexpr ServerId() = default;
  explicit constexpr ServerId(int i) : i_(i) {}

  constexpr int index() const { return i_; }

  constexpr auto operator<=>(const ServerId&) const = default;

 private:
  int i_ = 0;
};

}  // namespace ibridge::sim
