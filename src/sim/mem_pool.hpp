// Size-bucketed chunk recycling for the allocation-free data plane.
//
// Two users, one mechanism:
//
//   * sim::PoolAllocator<T> — a std-allocator adapter over a ChunkPool, for
//     node-based containers on hot paths (core::MappingTable's range
//     indexes, core::SsdLog's live-bytes victim index).  Nodes freed by an
//     erase are recycled by the next insert, so steady-state churn never
//     touches the global allocator.
//   * frame_pool() — a thread-local ChunkPool behind sim::Task's promise
//     operator new/delete, so the coroutine chain client -> server -> cache
//     -> fsim reuses its frames instead of paying one heap round-trip per
//     hop per request.
//
// A ChunkPool keeps per-size-class free lists of chunks obtained from the
// global allocator.  allocate() pops the matching free list (or falls back
// to ::operator new on a miss); deallocate() pushes the chunk back, up to a
// per-bucket idle cap that bounds the high-water memory a burst can pin.
// Requests larger than kMaxChunk bypass the pool entirely.  Not thread-safe:
// one pool per owning component (the exp::Runner model of one fully
// independent simulation per job), or thread-local for the frame pool.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

namespace ibridge::sim {

class ChunkPool {
 public:
  /// Size-class granularity and the largest pooled request.  Coroutine
  /// frames in this codebase run 80-600 bytes; map/set nodes 48-80.
  static constexpr std::size_t kStep = 64;
  static constexpr std::size_t kMaxChunk = 4096;
  /// Idle BYTES kept per bucket; beyond that, frees go to the allocator.  A
  /// byte cap (rather than a chunk count) keeps the absorbable burst roughly
  /// constant across size classes: a scale-campaign window oscillates
  /// thousands of small coroutine frames between ticks, and a flat 256-chunk
  /// cap made every oscillation beyond it churn the global allocator.
  static constexpr std::size_t kMaxIdleBytesPerBucket = 1u << 20;

  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;
  ~ChunkPool() {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      FreeNode* n = free_[b];
      while (n != nullptr) {
        FreeNode* next = n->next;
        ::operator delete(n);
        n = next;
      }
    }
  }

  void* allocate(std::size_t n) {
    const std::size_t b = bucket_of(n);
    if (b >= kBuckets) return ::operator new(n);
    if (free_[b] != nullptr) {
      FreeNode* node = free_[b];
      free_[b] = node->next;
      --idle_[b];
      ++reused_;
      return node;
    }
    ++fresh_;
    return ::operator new((b + 1) * kStep);
  }

  /// `n` must be the size passed to the matching allocate().
  void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket_of(n);
    if (b >= kBuckets ||
        idle_[b] >= kMaxIdleBytesPerBucket / ((b + 1) * kStep)) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_[b];
    free_[b] = node;
    ++idle_[b];
  }

  /// Pre-fill the free list serving `n`-byte requests with up to `count`
  /// chunks (clipped to the idle-byte cap).  Lets a component that knows its
  /// steady-state node size warm the pool at construction, so a high-water
  /// mark first reached mid-run never takes a fresh-chunk miss — the same
  /// pre-sizing contract as MappingTable::reserve.  No-op for unpooled sizes.
  void prime(std::size_t n, std::size_t count) {
    const std::size_t b = bucket_of(n);
    if (b >= kBuckets) return;
    const std::uint32_t cap = static_cast<std::uint32_t>(
        kMaxIdleBytesPerBucket / ((b + 1) * kStep));
    for (std::size_t i = 0; i < count && idle_[b] < cap; ++i) {
      FreeNode* node =
          static_cast<FreeNode*>(::operator new((b + 1) * kStep));
      node->next = free_[b];
      free_[b] = node;
      ++idle_[b];
    }
  }

  /// Chunks served by ::operator new (pool misses).
  std::uint64_t fresh_allocs() const { return fresh_; }
  /// Chunks served from a free list.
  std::uint64_t reused_allocs() const { return reused_; }
  std::size_t idle_chunks() const {
    std::size_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) total += idle_[b];
    return total;
  }

 private:
  static constexpr std::size_t kBuckets = kMaxChunk / kStep;

  struct FreeNode {
    FreeNode* next;
  };
  static_assert(kStep >= sizeof(FreeNode));

  /// Bucket index for a request, kBuckets when unpooled (0 or > kMaxChunk).
  static std::size_t bucket_of(std::size_t n) {
    if (n == 0 || n > kMaxChunk) return kBuckets;
    return (n - 1) / kStep;
  }

  std::array<FreeNode*, kBuckets> free_ = {};
  std::array<std::uint32_t, kBuckets> idle_ = {};
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

/// std-allocator adapter over a ChunkPool.  The pool must outlive every
/// container using it (declare the pool before the container member).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(ChunkPool& pool) : pool_(&pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_->deallocate(p, n * sizeof(T));
  }

  ChunkPool* pool() const { return pool_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }

 private:
  ChunkPool* pool_;
};

/// The coroutine-frame pool of the current thread (sim::Task's promises
/// allocate and free through it).  Thread-local because exp::Runner workers
/// each run whole simulations: a frame is always freed on the thread that
/// allocated it, and must be freed before that thread exits — which the
/// structured Task/TaskGroup/JoinSet ownership discipline guarantees.
inline ChunkPool& frame_pool() {
  // lint: shared-ok (one pool per exp::Runner worker thread by design; a frame is always freed on its allocating thread)
  thread_local ChunkPool pool;
  return pool;
}

}  // namespace ibridge::sim
