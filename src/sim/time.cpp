#include "sim/time.hpp"

#include <cstdio>

namespace ibridge::sim {

std::string SimTime::to_string() const {
  char buf[64];
  if (ns_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (ns_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  } else if (ns_ >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_micros());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace ibridge::sim
