// Awaitable synchronization primitives for simulation coroutines.
//
// Everything here resumes waiters *through the event queue* (Simulator::defer)
// rather than inline.  That keeps resumption order deterministic (FIFO at the
// current tick) and bounds native stack depth regardless of how many waiters
// a broadcast wakes.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/mem_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibridge::sim {

/// `co_await Delay{sim, t}` — suspend for t of simulated time.
struct Delay {
  Simulator& sim;
  SimTime amount;

  bool await_ready() const noexcept { return amount == SimTime::zero(); }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.schedule(amount, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

namespace detail {

/// Vector-backed FIFO ring of coroutine handles.  std::deque allocates and
/// frees 512-byte nodes as elements cross chunk boundaries, so a FIFO that
/// churns under steady load keeps hitting the allocator; the ring doubles a
/// flat buffer instead and reaches a steady state with zero allocations.
class HandleRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  // lint: no-alloc
  void push(std::coroutine_handle<> h) {
    if (count_ == buf_.size()) grow();
    std::size_t j = head_ + count_;
    if (j >= buf_.size()) j -= buf_.size();
    buf_[j] = h;
    ++count_;
  }

  std::coroutine_handle<> pop() {
    assert(count_ > 0);
    const std::coroutine_handle<> h = buf_[head_];
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    --count_;
    return h;
  }

  /// Ensure capacity for at least `n` queued handles, so a waiter high-water
  /// mark first reached mid-run never reallocates the ring.
  void reserve(std::size_t n) {
    if (buf_.size() >= n) return;
    std::size_t cap = buf_.empty() ? 16 : buf_.size();
    while (cap < n) cap *= 2;
    std::vector<std::coroutine_handle<>> nb(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t j = head_ + i;
      if (j >= buf_.size()) j -= buf_.size();
      nb[i] = buf_[j];
    }
    buf_ = std::move(nb);
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t old = buf_.size();
    std::vector<std::coroutine_handle<>> nb(old == 0 ? 16 : old * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      std::size_t j = head_ + i;
      if (j >= old) j -= old;
      nb[i] = buf_[j];
    }
    buf_ = std::move(nb);
    head_ = 0;
  }

  std::vector<std::coroutine_handle<>> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Shared one-shot state for SimFuture/SimPromise.
template <typename T>
struct FutureState {
  Simulator* sim = nullptr;
  std::optional<T> value;
  std::coroutine_handle<> waiter;

  void fulfill(T v) {
    assert(!value.has_value() && "SimPromise fulfilled twice");
    value = std::move(v);
    if (waiter) {
      auto h = std::exchange(waiter, nullptr);
      sim->defer([h] { h.resume(); });
    }
  }
};

}  // namespace detail

template <typename T>
class SimPromise;

/// One-shot future.  `co_await future` suspends until the matching
/// SimPromise::set_value runs, then yields the value.  Copyable handle.
template <typename T>
class SimFuture {
 public:
  SimFuture() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  bool await_ready() const noexcept { return ready(); }
  void await_suspend(std::coroutine_handle<> h) {
    assert(state_ && !state_->waiter && "only one waiter per SimFuture");
    state_->waiter = h;
  }
  T await_resume() {
    assert(state_->value.has_value());
    return std::move(*state_->value);
  }

  /// Non-coroutine access once ready (used from driver code after run()).
  const T& get() const {
    assert(ready());
    return *state_->value;
  }

 private:
  friend class SimPromise<T>;
  explicit SimFuture(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Producer side of SimFuture.
template <typename T>
class SimPromise {
 public:
  // The one-shot shared state rides the thread's coroutine-frame pool: a
  // promise/future pair lives exactly as long as one request, so the node
  // freed at completion is recycled by the next submit and steady-state
  // request churn never touches the global allocator.  Thread-locality holds
  // for the same reason it does for Task frames: shards are statically
  // pinned to workers, so a state is freed on the thread that allocated it.
  explicit SimPromise(Simulator& sim)
      : state_(std::allocate_shared<detail::FutureState<T>>(
            PoolAllocator<detail::FutureState<T>>(frame_pool()))) {
    state_->sim = &sim;
  }

  SimFuture<T> get_future() const { return SimFuture<T>(state_); }
  void set_value(T v) const { state_->fulfill(std::move(v)); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Counting event: waiters block until `count` arrivals have happened.
/// Reusable (auto-resets), like an MPI barrier across `parties` coroutines.
class SyncBarrier {
 public:
  SyncBarrier(Simulator& sim, int parties) : sim_(sim), parties_(parties) {
    assert(parties > 0);
  }

  struct Awaiter {
    SyncBarrier& b;
    bool await_ready() const noexcept {
      // The last arriver does not suspend at all.
      return b.arrived_ + 1 == b.parties_ && (b.release(), true);
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++b.arrived_;
      b.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// `co_await barrier.arrive()` — block until all parties arrive.
  Awaiter arrive() { return Awaiter{*this}; }

  int arrived() const { return arrived_; }

 private:
  friend struct Awaiter;
  void release() {
    arrived_ = 0;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto h : batch) sim_.defer([h] { h.resume(); });
  }

  Simulator& sim_;
  int parties_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int initial) : sim_(sim), count_(initial) {}

  struct Awaiter {
    Semaphore& s;
    bool await_ready() const noexcept {
      if (s.count_ > 0) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push(h); }
    void await_resume() const noexcept {}
  };

  Awaiter acquire() { return Awaiter{*this}; }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.pop();
      sim_.defer([h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  int available() const { return count_; }

  /// Pre-size the waiter ring for `n` concurrent blocked acquirers (see
  /// HandleRing::reserve).
  void reserve(std::size_t n) { waiters_.reserve(n); }

 private:
  friend struct Awaiter;
  Simulator& sim_;
  int count_;
  detail::HandleRing waiters_;  ///< FIFO; ring, so contention never allocates
};

/// Unbounded SPSC/MPSC channel: producers push, one consumer awaits pop.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}

  void push(T v) {
    items_.push_back(std::move(v));
    if (waiter_) {
      auto h = std::exchange(waiter_, nullptr);
      sim_.defer([h] { h.resume(); });
    }
  }

  struct PopAwaiter {
    Channel& c;
    bool await_ready() const noexcept { return !c.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!c.waiter_ && "Channel supports a single concurrent consumer");
      c.waiter_ = h;
    }
    T await_resume() {
      assert(!c.items_.empty());
      T v = std::move(c.items_.front());
      c.items_.pop_front();
      return v;
    }
  };

  /// `co_await ch.pop()` — wait for and take the next item.
  PopAwaiter pop() { return PopAwaiter{*this}; }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  Simulator& sim_;
  std::deque<T> items_;
  std::coroutine_handle<> waiter_ = nullptr;
};

/// Owns a set of top-level coroutines and tracks their completion.
/// Top-level simulation actors are spawned here; the group keeps their frames
/// alive until they finish (finished frames at the front are reaped on the
/// next spawn, so long-running groups stay bounded).
class TaskGroup {
 public:
  explicit TaskGroup(Simulator& sim) : sim_(sim) {}

  /// Schedule `t` to start at the current simulation time.
  void spawn(Task<> t) {
    while (!tasks_.empty() && tasks_.front().finished()) tasks_.pop_front();
    tasks_.push_back(std::move(t));
    Task<>* slot = &tasks_.back();
    sim_.defer([slot] { slot->start(); });
  }

  bool all_finished() const {
    for (const auto& t : tasks_) {
      if (!t.finished()) return false;
    }
    return true;
  }

  std::size_t size() const { return tasks_.size(); }

 private:
  Simulator& sim_;
  std::deque<Task<>> tasks_;  // deque: stable addresses for the start lambda
};

/// Fork/join for a bounded set of child coroutines.
///
///   JoinSet js(sim);
///   for (...) js.add(subrequest(...));
///   co_await js.join();            // resumes when every child finished
///
/// The JoinSet must outlive its children (keep it on the awaiting coroutine's
/// frame and always co_await join() before returning).  Each child rides a
/// DetachedTask wrapper whose pooled frame owns the child and frees itself on
/// completion, so a fork/join costs no container allocation — the property
/// the allocation-free client request path depends on.
class JoinSet {
 public:
  explicit JoinSet(Simulator& sim) : sim_(sim) {}
  JoinSet(const JoinSet&) = delete;
  JoinSet& operator=(const JoinSet&) = delete;

  /// Add and immediately start a child task.
  // lint: no-alloc
  void add(Task<> t) {
    ++total_;
    // lint: alloc-ok (pooled wrapper frame; completion defer queue is reserved)
    wrap(std::move(t));  // eager: runs until the child's first suspension
  }

  struct Awaiter {
    JoinSet& js;
    bool await_ready() const noexcept { return js.done_ == js.total_; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!js.waiter_ && "JoinSet supports a single joiner");
      js.waiter_ = h;
    }
    void await_resume() const noexcept {}
  };

  /// Suspend until all added children have completed.
  Awaiter join() { return Awaiter{*this}; }

  std::size_t pending() const { return total_ - done_; }

 private:
  DetachedTask wrap(Task<> t) {
    co_await t;
    ++done_;
    if (waiter_ && done_ == total_) {
      auto h = std::exchange(waiter_, nullptr);
      sim_.defer([h] { h.resume(); });
    }
  }

  Simulator& sim_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace ibridge::sim
