// Simulation time: a strongly-typed nanosecond tick count.
//
// All model timing in the iBridge simulator is expressed in SimTime.  The
// type is a thin wrapper over int64_t so that raw integers (byte counts,
// LBNs, loop indices) cannot be accidentally mixed with times.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ibridge::sim {

/// A point in (or duration of) simulated time, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors.  Use these rather than raw integers.
  static constexpr SimTime nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t u) { return SimTime(u * 1000); }
  static constexpr SimTime millis(std::int64_t m) {
    return SimTime(m * 1'000'000);
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime(s * 1'000'000'000);
  }
  /// Fractional seconds (used when converting model arithmetic done in
  /// double seconds back to ticks).
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ / k);
  }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace ibridge::sim
