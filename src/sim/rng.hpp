// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** seeded via SplitMix64.  Every model component that
// needs randomness takes an explicit Rng (or a seed) so that simulations are
// reproducible bit-for-bit from their configuration.
#pragma once

#include <cassert>
#include <cstdint>

namespace ibridge::sim {

/// SplitMix64 — used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1b71d6e0defa17ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  Uses Lemire's multiply-shift reduction;
  /// bias is negligible for the ranges used in the simulator.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (e.g. per-rank streams).
  Rng fork() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace ibridge::sim
