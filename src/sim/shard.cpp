#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ibridge::sim {

ShardGroup::ShardGroup(int shards, SimTime lookahead, int workers)
    : lookahead_(lookahead) {
  if (shards < 1) {
    throw std::invalid_argument("ShardGroup: shards must be >= 1");
  }
  if (lookahead <= SimTime::zero()) {
    // A zero-latency cross-shard edge would let a message land inside the
    // window that sent it; the conservative argument needs W > 0.
    throw std::invalid_argument("ShardGroup: lookahead must be positive");
  }
  workers_ = workers < 1 ? 1 : (workers > shards ? shards : workers);
  outbox_.resize(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    Simulator& s = sims_.emplace_back();
    s.group_ = this;
    s.shard_id_ = static_cast<std::uint32_t>(i);
  }
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardGroup::~ShardGroup() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardGroup::post(Simulator& from, Simulator& to, SimTime when,
                      InlineEvent fn) {
  assert(from.group_ == this && to.group_ == this);
  if (running_) {
    assert(when >= from.now() + lookahead_ &&
           "cross-shard post inside the lookahead horizon");
    outbox_[from.shard_id_].push_back(
        PostRec{when, to.shard_id_, std::move(fn)});
    return;
  }
  // Driver phase: single-threaded, deliver directly.  Shard clocks are
  // synchronized after run_all/run_all_until, but clamp defensively.
  to.schedule_at(when < to.now() ? to.now() : when, std::move(fn));
}

SimTime ShardGroup::next_time() const {
  SimTime m = SimTime::max();
  for (const Simulator& s : sims_) {
    const SimTime t = s.next_event_time();
    if (t < m) m = t;
  }
  return m;
}

void ShardGroup::run_window(SimTime end) {
  const int n = shards();
  if (workers_ == 1) {
    // Same code path semantically as the threaded branch: running_ must be
    // true so posts buffer into outboxes and merge at the barrier — that is
    // what keeps one worker byte-identical to many.
    running_ = true;
    for (int s = 0; s < n; ++s) {
      sims_[static_cast<std::size_t>(s)].drain_window(end);
    }
    running_ = false;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
    window_end_ = end;
    active_ = workers_ - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  for (int s = 0; s < n; s += workers_) {
    sims_[static_cast<std::size_t>(s)].drain_window(end);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    running_ = false;
  }
}

void ShardGroup::worker_loop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime end = SimTime::zero();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      end = window_end_;
    }
    const int n = shards();
    for (int s = w; s < n; s += workers_) {
      sims_[static_cast<std::size_t>(s)].drain_window(end);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_one();
  }
}

void ShardGroup::deliver() {
  scratch_.clear();
  for (std::vector<PostRec>& box : outbox_) {
    for (PostRec& r : box) scratch_.push_back(std::move(r));
    box.clear();
  }
  if (scratch_.empty()) return;
  // Stable sort by arrival time over the source-shard-ordered concatenation
  // realizes the (when, src shard, send order) merge; the target shard then
  // assigns fresh (monotone) sequence numbers in exactly this order, fixing
  // the same-tick cross-shard tie-break independent of worker count.
  std::stable_sort(
      scratch_.begin(), scratch_.end(),
      [](const PostRec& a, const PostRec& b) { return a.when < b.when; });
  for (PostRec& r : scratch_) {
    Simulator& dst = sims_[r.dst];
    assert(r.when >= dst.now() && "post arrived inside a drained window");
    dst.schedule_at(r.when, std::move(r.fn));
    ++posts_;
  }
  scratch_.clear();
}

void ShardGroup::sync_clocks(SimTime t) {
  for (Simulator& s : sims_) s.advance_to(t);
}

void ShardGroup::run_all() {
  for (;;) {
    const SimTime m = next_time();
    if (m == SimTime::max()) break;
    run_window(m + lookahead_);
    deliver();
    ++windows_;
  }
  SimTime latest = SimTime::zero();
  for (const Simulator& s : sims_) {
    if (s.now() > latest) latest = s.now();
  }
  sync_clocks(latest);
}

void ShardGroup::run_all_until(SimTime deadline) {
  // Inclusive bound: Simulator::run_until executes events at exactly
  // `deadline`, so the strict window bound must sit one tick past it.
  const SimTime stop = deadline == SimTime::max()
                           ? deadline
                           : deadline + SimTime::nanos(1);
  for (;;) {
    const SimTime m = next_time();
    if (m > deadline) break;
    const SimTime end = m + lookahead_;
    run_window(end < stop ? end : stop);
    deliver();
    ++windows_;
  }
  sync_clocks(deadline);
}

bool ShardGroup::run_all_while_pending(const std::function<bool()>& done) {
  if (done()) return true;
  for (;;) {
    const SimTime m = next_time();
    if (m == SimTime::max()) {
      SimTime latest = SimTime::zero();
      for (const Simulator& s : sims_) {
        if (s.now() > latest) latest = s.now();
      }
      sync_clocks(latest);
      return done();
    }
    run_window(m + lookahead_);
    deliver();
    ++windows_;
    if (done()) return true;
  }
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t total = 0;
  for (const Simulator& s : sims_) total += s.executed_;
  return total;
}

bool ShardGroup::all_empty() const {
  for (const Simulator& s : sims_) {
    if (!s.keys_.empty()) return false;
  }
  return true;
}

std::size_t ShardGroup::total_pending() const {
  std::size_t total = 0;
  for (const Simulator& s : sims_) total += s.keys_.size();
  return total;
}

// ---- Simulator group-delegation bodies (ShardGroup is incomplete in
// simulator.hpp, so these live here) ----

void Simulator::group_run() { group_->run_all(); }
void Simulator::group_run_until(SimTime deadline) {
  group_->run_all_until(deadline);
}
bool Simulator::group_run_while_pending(const std::function<bool()>& done) {
  return group_->run_all_while_pending(done);
}
std::uint64_t Simulator::group_events_executed() const {
  return group_->events_executed();
}
bool Simulator::group_empty() const { return group_->all_empty(); }
std::size_t Simulator::group_pending() const {
  return group_->total_pending();
}

}  // namespace ibridge::sim
