#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ibridge::sim {

ShardGroup::ShardGroup(int shards, SimTime lookahead, int workers)
    : lookahead_(lookahead) {
  if (shards < 1) {
    throw std::invalid_argument("ShardGroup: shards must be >= 1");
  }
  if (lookahead <= SimTime::zero()) {
    // A zero-latency cross-shard edge would let a message land inside the
    // window that sent it; the conservative argument needs W > 0.
    throw std::invalid_argument("ShardGroup: lookahead must be positive");
  }
  workers_ = workers < 1 ? 1 : (workers > shards ? shards : workers);
  outbox_.resize(static_cast<std::size_t>(shards));
  ends_.resize(static_cast<std::size_t>(shards), SimTime::zero());
  for (int i = 0; i < shards; ++i) {
    Simulator& s = sims_.emplace_back();
    s.group_ = this;
    s.shard_id_ = static_cast<std::uint32_t>(i);
  }
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardGroup::~ShardGroup() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardGroup::post(Simulator& from, Simulator& to, SimTime when,
                      InlineEvent fn) {
  assert(from.group_ == this && to.group_ == this);
  if (running_) {
    assert(when >= from.now() + lookahead_ &&
           "cross-shard post inside the lookahead horizon");
    outbox_[from.shard_id_].push_back(
        PostRec{when, to.shard_id_, std::move(fn)});
    return;
  }
  // Driver phase: single-threaded, deliver directly.  Shard clocks are
  // synchronized after run_all/run_all_until, but clamp defensively.
  to.schedule_at(when < to.now() ? to.now() : when, std::move(fn));
}

SimTime ShardGroup::next_time() const {
  SimTime m = SimTime::max();
  for (const Simulator& s : sims_) {
    const SimTime t = s.next_event_time();
    if (t < m) m = t;
  }
  return m;
}

void ShardGroup::set_adaptive_window(SimTime max_window) {
  assert(!running_ && "set_adaptive_window is driver-phase only");
  if (max_window == SimTime::zero()) {
    adaptive_ = SimTime::zero();
    return;
  }
  if (max_window < lookahead_) {
    throw std::invalid_argument(
        "ShardGroup: adaptive window must be >= lookahead");
  }
  adaptive_ = max_window;
}

void ShardGroup::set_barrier_hook(std::function<void(SimTime)> hook) {
  assert(!running_ && "set_barrier_hook is driver-phase only");
  barrier_hook_ = std::move(hook);
}

void ShardGroup::place_windows(SimTime m, SimTime cap) {
  const std::size_t n = sims_.size();
  const SimTime base = m + lookahead_;
  if (adaptive_ == SimTime::zero()) {
    const SimTime e = base < cap ? base : cap;
    for (std::size_t s = 0; s < n; ++s) ends_[s] = e;
    return;
  }
  // Two smallest next-event times over all shards: shard s's bound depends
  // on the minimum over the *other* shards, which is min2 when s itself is
  // the argmin and min1 otherwise.  O(shards), single-threaded, and a pure
  // function of worker-invariant state.
  SimTime t1 = SimTime::max();
  SimTime t2 = SimTime::max();
  std::size_t arg1 = n;
  for (std::size_t s = 0; s < n; ++s) {
    const SimTime t = sims_[s].next_event_time();
    if (t < t1) {
      t2 = t1;
      t1 = t;
      arg1 = s;
    } else if (t < t2) {
      t2 = t;
    }
  }
  const SimTime wide = m + adaptive_;
  for (std::size_t s = 0; s < n; ++s) {
    const SimTime other = s == arg1 ? t2 : t1;
    SimTime e = wide;
    if (other != SimTime::max() && other + lookahead_ < e) {
      e = other + lookahead_;
    }
    if (e < base) e = base;  // never narrower than the classic window
    ends_[s] = e < cap ? e : cap;
  }
}

void ShardGroup::run_window() {
  const int n = shards();
  if (workers_ == 1) {
    // Same code path semantically as the threaded branch: running_ must be
    // true so posts buffer into outboxes and merge at the barrier — that is
    // what keeps one worker byte-identical to many.
    running_ = true;
    for (int s = 0; s < n; ++s) {
      const std::size_t i = static_cast<std::size_t>(s);
      sims_[i].drain_window(ends_[i]);
    }
    running_ = false;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
    active_ = workers_ - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  for (int s = 0; s < n; s += workers_) {
    const std::size_t i = static_cast<std::size_t>(s);
    sims_[i].drain_window(ends_[i]);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    running_ = false;
  }
}

void ShardGroup::worker_loop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    const int n = shards();
    for (int s = w; s < n; s += workers_) {
      const std::size_t i = static_cast<std::size_t>(s);
      sims_[i].drain_window(ends_[i]);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_one();
  }
}

void ShardGroup::deliver() {
  scratch_.clear();
  for (std::vector<PostRec>& box : outbox_) {
    for (PostRec& r : box) scratch_.push_back(std::move(r));
    box.clear();
  }
  if (scratch_.empty()) return;
  // Stable sort by arrival time over the source-shard-ordered concatenation
  // realizes the (when, src shard, send order) merge; the target shard then
  // assigns fresh (monotone) sequence numbers in exactly this order, fixing
  // the same-tick cross-shard tie-break independent of worker count.
  std::stable_sort(
      scratch_.begin(), scratch_.end(),
      [](const PostRec& a, const PostRec& b) { return a.when < b.when; });
  for (PostRec& r : scratch_) {
    Simulator& dst = sims_[r.dst];
    assert(r.when >= dst.now() && "post arrived inside a drained window");
    dst.schedule_at(r.when, std::move(r.fn));
    ++posts_;
  }
  scratch_.clear();
}

void ShardGroup::sync_clocks(SimTime t) {
  for (Simulator& s : sims_) s.advance_to(t);
}

void ShardGroup::run_all() {
  for (;;) {
    const SimTime m = next_time();
    if (m == SimTime::max()) break;
    // At this point every event strictly before `m` has executed on every
    // shard and no worker is running: the coherent horizon for the hook.
    if (barrier_hook_) barrier_hook_(m);
    place_windows(m, SimTime::max());
    run_window();
    deliver();
    ++windows_;
  }
  SimTime latest = SimTime::zero();
  for (const Simulator& s : sims_) {
    if (s.now() > latest) latest = s.now();
  }
  sync_clocks(latest);
}

void ShardGroup::run_all_until(SimTime deadline) {
  // Inclusive bound: Simulator::run_until executes events at exactly
  // `deadline`, so the strict window bound must sit one tick past it.
  const SimTime stop = deadline == SimTime::max()
                           ? deadline
                           : deadline + SimTime::nanos(1);
  for (;;) {
    const SimTime m = next_time();
    if (m > deadline) break;
    if (barrier_hook_) barrier_hook_(m);
    place_windows(m, stop);
    run_window();
    deliver();
    ++windows_;
  }
  sync_clocks(deadline);
}

bool ShardGroup::run_all_while_pending(const std::function<bool()>& done) {
  if (done()) return true;
  for (;;) {
    const SimTime m = next_time();
    if (m == SimTime::max()) {
      SimTime latest = SimTime::zero();
      for (const Simulator& s : sims_) {
        if (s.now() > latest) latest = s.now();
      }
      sync_clocks(latest);
      return done();
    }
    if (barrier_hook_) barrier_hook_(m);
    place_windows(m, SimTime::max());
    run_window();
    deliver();
    ++windows_;
    if (done()) return true;
  }
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t total = 0;
  for (const Simulator& s : sims_) total += s.executed_;
  return total;
}

bool ShardGroup::all_empty() const {
  for (const Simulator& s : sims_) {
    if (!s.keys_.empty()) return false;
  }
  return true;
}

std::size_t ShardGroup::total_pending() const {
  std::size_t total = 0;
  for (const Simulator& s : sims_) total += s.keys_.size();
  return total;
}

// ---- Simulator group-delegation bodies (ShardGroup is incomplete in
// simulator.hpp, so these live here) ----

void Simulator::group_run() { group_->run_all(); }
void Simulator::group_run_until(SimTime deadline) {
  group_->run_all_until(deadline);
}
bool Simulator::group_run_while_pending(const std::function<bool()>& done) {
  return group_->run_all_while_pending(done);
}
std::uint64_t Simulator::group_events_executed() const {
  return group_->events_executed();
}
bool Simulator::group_empty() const { return group_->all_empty(); }
std::size_t Simulator::group_pending() const {
  return group_->total_pending();
}

}  // namespace ibridge::sim
