// Cluster interconnect model.
//
// The paper's testbed used dual-rail 4X QDR InfiniBand, which was never the
// bottleneck; the model keeps it that way while still charging per-message
// latency and per-NIC serialization so very large transfers are not free.
// Each endpoint (client node, data server, metadata server) owns a Nic with
// a given bandwidth; a transfer occupies both the source and destination NIC
// for size/bandwidth and completes after an additional propagation latency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace ibridge::net {

struct NetworkParams {
  double nic_bandwidth = 3.2e9;  ///< bytes/s (4X QDR IB ~= 3.2 GB/s usable)
  double latency_us = 2.0;       ///< one-way propagation + stack latency
  double per_message_us = 1.0;   ///< send/receive CPU overhead
};

/// A serialization point: transfers through a Nic queue behind each other.
class Nic {
 public:
  Nic(sim::Simulator& sim, std::string name, double bandwidth)
      : sim_(sim), name_(std::move(name)), bandwidth_(bandwidth) {}

  /// Reserve the NIC for `bytes` of transfer; returns the time at which the
  /// NIC is done serializing them (back-to-back transfers queue).
  sim::SimTime reserve(std::int64_t bytes) {
    const sim::SimTime start =
        std::max(sim_.now(), free_at_);
    const sim::SimTime dur = sim::SimTime::from_seconds(
        static_cast<double>(bytes) / bandwidth_);
    free_at_ = start + dur;
    bytes_ += bytes;
    return free_at_;
  }

  const std::string& name() const { return name_; }
  std::int64_t bytes_transferred() const { return bytes_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  double bandwidth_;
  sim::SimTime free_at_ = sim::SimTime::zero();
  std::int64_t bytes_ = 0;
};

/// The fabric: creates NICs and times point-to-point transfers.
class NetworkModel {
 public:
  NetworkModel(sim::Simulator& sim, NetworkParams params = {})
      : sim_(sim), params_(params) {}

  Nic& add_endpoint(std::string name) {
    nics_.push_back(
        std::make_unique<Nic>(sim_, std::move(name), params_.nic_bandwidth));
    return *nics_.back();
  }

  /// Coroutine: move `bytes` from `src` to `dst`; completes when the last
  /// byte lands.
  sim::Task<> transfer(Nic& src, Nic& dst, std::int64_t bytes) {
    const sim::SimTime src_done = src.reserve(bytes);
    const sim::SimTime dst_done = dst.reserve(bytes);
    const sim::SimTime done =
        std::max(src_done, dst_done) +
        sim::SimTime::from_seconds(
            (params_.latency_us + params_.per_message_us) / 1e6);
    co_await sim::Delay{sim_, done - sim_.now()};
  }

  /// Latency-only control message (request headers, acks).
  sim::Task<> message(Nic& src, Nic& dst) { return transfer(src, dst, 256); }

  const NetworkParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  NetworkParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace ibridge::net
