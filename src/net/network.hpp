// Cluster interconnect model.
//
// The paper's testbed used dual-rail 4X QDR InfiniBand, which was never the
// bottleneck; the model keeps it that way while still charging per-message
// latency and per-NIC serialization so very large transfers are not free.
// Each endpoint (client node, data server, metadata server) owns a Nic with
// a given bandwidth; a transfer occupies both the source and destination NIC
// for size/bandwidth and completes after an additional propagation latency.
//
// Sharded clusters (sim::ShardGroup) make the network the *only* cross-shard
// edge: client/MDS NICs live on shard 0 and each data server's NIC lives on
// that server's shard.  A cross-shard transfer then times its two
// serialization points where they live — the source NIC on the sending
// shard, the destination NIC on the receiving shard — with the wire latency
// spent crossing shards through the group's lookahead-buffered post path.
// The awaiting coroutine itself rides the transfer: it resumes on the
// destination shard, which is how client sub-requests reach a server's shard
// and how completions return to shard 0 (pvfs::Client is shard-oblivious).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace ibridge::net {

struct NetworkParams {
  double nic_bandwidth = 3.2e9;  ///< bytes/s (4X QDR IB ~= 3.2 GB/s usable)
  double latency_us = 2.0;       ///< one-way propagation + stack latency
  double per_message_us = 1.0;   ///< send/receive CPU overhead

  /// One-way wire cost: the minimum time any transfer spends between its
  /// source and destination NIC reservations.  This is the conservative
  /// lookahead a sharded cluster derives its barrier window from.
  sim::SimTime wire_latency() const {
    return sim::SimTime::from_seconds((latency_us + per_message_us) / 1e6);
  }
};

/// A serialization point: transfers through a Nic queue behind each other.
class Nic {
 public:
  Nic(sim::Simulator& sim, std::string name, double bandwidth)
      : sim_(sim), name_(std::move(name)), bandwidth_(bandwidth) {}

  /// Reserve the NIC for `bytes` of transfer; returns the time at which the
  /// NIC is done serializing them (back-to-back transfers queue).
  sim::SimTime reserve(std::int64_t bytes) {
    const sim::SimTime start =
        std::max(sim_.now(), free_at_);
    const sim::SimTime dur = sim::SimTime::from_seconds(
        static_cast<double>(bytes) / bandwidth_);
    free_at_ = start + dur;
    bytes_ += bytes;
    return free_at_;
  }

  /// The simulator (= shard) this NIC's state lives on.  Reservations must
  /// only happen from code executing there.
  sim::Simulator& sim() const { return sim_; }

  const std::string& name() const { return name_; }
  std::int64_t bytes_transferred() const { return bytes_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  double bandwidth_;
  sim::SimTime free_at_ = sim::SimTime::zero();
  std::int64_t bytes_ = 0;
};

/// The fabric: creates NICs and times point-to-point transfers.
class NetworkModel {
 public:
  NetworkModel(sim::Simulator& sim, NetworkParams params = {})
      : sim_(sim), params_(params) {}

  Nic& add_endpoint(std::string name) {
    return add_endpoint(std::move(name), sim_);
  }

  /// Place an endpoint's NIC on a specific shard's simulator (sharded
  /// clusters put each data server's NIC on that server's shard).
  Nic& add_endpoint(std::string name, sim::Simulator& sim) {
    nics_.push_back(
        std::make_unique<Nic>(sim, std::move(name), params_.nic_bandwidth));
    return *nics_.back();
  }

  /// Enable the cross-shard transfer path.  The group's lookahead must not
  /// exceed the wire latency — otherwise a transfer would arrive inside the
  /// window that sent it.
  void set_shard_group(sim::ShardGroup* group) {
    assert(group == nullptr || group->lookahead() <= params_.wire_latency());
    group_ = group;
  }

  /// Coroutine: move `bytes` from `src` to `dst`; completes when the last
  /// byte lands.  When `src` and `dst` live on different shards the
  /// coroutine finishes on `dst`'s shard (see CrossShardArrival).
  sim::Task<> transfer(Nic& src, Nic& dst, std::int64_t bytes) {
    if (group_ != nullptr && &src.sim() != &dst.sim()) {
      // Two-phase store-and-forward across the shard boundary.  Phase 1 on
      // the sending shard: occupy the source NIC.  The wire latency is then
      // spent crossing shards (>= the group lookahead, so the arrival lands
      // beyond the current window).  Phase 2 on the receiving shard: occupy
      // the destination NIC, which may still be busy with earlier arrivals.
      const sim::SimTime src_done = src.reserve(bytes);
      co_await CrossShardArrival{group_, &src.sim(), &dst.sim(),
                                 src_done + params_.wire_latency()};
      const sim::SimTime dst_done = dst.reserve(bytes);
      co_await sim::Delay{dst.sim(), dst_done - dst.sim().now()};
      co_return;
    }
    // Same-shard (or unsharded): both NICs' timelines are visible at once,
    // so charge max(src, dst) serialization plus the wire latency.
    sim::Simulator& sim = src.sim();
    const sim::SimTime src_done = src.reserve(bytes);
    const sim::SimTime dst_done = dst.reserve(bytes);
    const sim::SimTime done =
        std::max(src_done, dst_done) + params_.wire_latency();
    co_await sim::Delay{sim, done - sim.now()};
  }

  /// Latency-only control message (request headers, acks).
  sim::Task<> message(Nic& src, Nic& dst) { return transfer(src, dst, 256); }

  const NetworkParams& params() const { return params_; }

 private:
  /// Awaitable that parks the coroutine until `when` and resumes it on
  /// `to`'s shard, via the group's barrier-merged post path.
  struct CrossShardArrival {
    sim::ShardGroup* group;
    sim::Simulator* from;
    sim::Simulator* to;
    sim::SimTime when;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      group->post(*from, *to, when, sim::InlineEvent([h] { h.resume(); }));
    }
    void await_resume() const noexcept {}
  };

  sim::Simulator& sim_;
  NetworkParams params_;
  sim::ShardGroup* group_ = nullptr;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace ibridge::net
