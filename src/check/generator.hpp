// SimCheck pillar 1: the property-based workload fuzzer.
//
// generate_case() derives a randomized cluster configuration and an
// interleaved read/write trace from a single 64-bit seed (via sim::Rng, so a
// case is a pure function of its seed).  Traces deliberately stress the
// paper's pain points: unaligned offsets, fragment-sized sub-requests,
// extents overlapping earlier writes, and multi-stripe spans.
//
// make_config() projects one case onto the three storage policies the
// differential checker compares; the iBridge knobs (thresholds, admission
// policy, partitioning, log geometry) are part of the case so every policy
// sees the same cluster otherwise.
//
// shrink() minimizes a failing trace with bounded delta debugging: chunk
// removal at halving granularity, then per-record simplification (smaller
// sizes, page-aligned then zero offsets).  The result still fails the given
// predicate and serializes via workloads::write_trace for ibridge_replay.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "cluster/cluster.hpp"
#include "fault/schedule.hpp"
#include "workloads/trace.hpp"

namespace ibridge::check {

/// The three storage policies under differential test.
enum class Policy { kDiskOnly, kIBridge, kSsdOnly };

inline const char* to_string(Policy p) {
  switch (p) {
    case Policy::kDiskOnly: return "disk-only";
    case Policy::kIBridge: return "ibridge";
    case Policy::kSsdOnly: return "ssd-only";
  }
  return "?";
}

/// Bounds for generate_case().  Defaults keep a case cheap enough for a few
/// hundred tier-1 iterations while still exercising eviction and cleaning
/// (cache capacities are drawn well below the total bytes written).
struct GenLimits {
  int min_ops = 12;
  int max_ops = 48;
  std::int64_t min_file_bytes = 256 << 10;
  std::int64_t max_file_bytes = 4 << 20;
  int max_servers = 3;
};

/// One generated workload: a full cluster configuration (iBridge flavour —
/// make_config() derives the other policies) plus the access trace.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::int64_t file_bytes = 1 << 20;
  cluster::ClusterConfig base;
  workloads::Trace trace;
  /// Faults to inject while the trace runs (empty == healthy; see
  /// fault::make_scenario for the canonical derived schedules).  Applied to
  /// every policy run identically, so payload equivalence must survive GC
  /// interference and crash/restart too.
  fault::FaultSchedule faults;
};

/// Deterministically generate a case from a seed.
FuzzCase generate_case(std::uint64_t seed, const GenLimits& limits = {});

/// Project a case onto one storage policy.  All policy-independent knobs
/// (servers, striping, client, data mode, randomized iBridge parameters)
/// are preserved so runs differ only in the storage stack.
cluster::ClusterConfig make_config(const FuzzCase& c, Policy p);

/// Seed for record `index`'s payload within case `case_seed` — every policy
/// run regenerates identical bytes without storing them in the trace.
std::uint64_t record_seed(std::uint64_t case_seed, std::size_t index);

/// Fill `out` with the deterministic payload stream for `seed`.
void fill_payload(std::span<std::byte> out, std::uint64_t seed);

/// Predicate handed to shrink(): true when the candidate trace still fails.
using TracePredicate = std::function<bool(const workloads::Trace&)>;

struct ShrinkResult {
  workloads::Trace trace;        ///< minimized trace (still failing)
  std::size_t evaluations = 0;   ///< predicate calls spent
};

/// Minimize a failing trace.  `still_fails` must return true for the input;
/// the result is the smallest failing trace found within `max_evals`
/// predicate evaluations.
ShrinkResult shrink(const workloads::Trace& failing,
                    const TracePredicate& still_fails,
                    std::size_t max_evals = 512);

}  // namespace ibridge::check
