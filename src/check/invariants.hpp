// SimCheck pillar 2: the invariant oracle.
//
// Pure audit functions over the iBridge data structures, plus an observer
// (InvariantOracle) that hooks into IBridgeCache via core::CacheObserver and
// re-audits after every state-changing step.  Checked invariants:
//
//   table:  per-class LRU lists partition the entries; byte / dirty-byte /
//           return-sum accounting matches a full recompute; per-file ranges
//           never overlap; log ranges never overlap; coverage() round-trips
//           every entry.
//   cache:  table bytes <= log live bytes (equal at quiescence — in-flight
//           admissions hold log space before their table insert); per-log-
//           segment live bytes match the entries mapped into the segment;
//           entries never straddle a segment boundary; log occupancy fits
//           the configured capacity; partition quotas tile the capacity.
//   time:   simulator time is monotone across observer callbacks.
//
// All audits report violations as strings instead of aborting, so the fuzz
// shrinker can use "oracle failed" as a reproducible predicate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/mapping_table.hpp"
#include "sim/units.hpp"
#include "core/observer.hpp"

namespace ibridge::check {

/// Audit a mapping table's internal consistency.  Returns one message per
/// violation (empty == healthy).
std::vector<std::string> verify_table(const core::MappingTable& t);

/// Audit a live cache: the table audit plus table/log/partition agreement.
/// With `quiescent`, additionally require exact table/log byte equality
/// (only valid when no admission or staging is in flight).
std::vector<std::string> verify_cache(const core::IBridgeCache& c,
                                      bool quiescent = false);

/// Mapping/log agreement for a table reloaded from persistent storage:
/// entries must fit the log geometry (within capacity, not straddling a
/// segment boundary) on top of the plain table audit.
std::vector<std::string> verify_recovered_table(const core::MappingTable& t,
                                                sim::Bytes log_capacity,
                                                sim::Bytes segment_bytes);

/// Digest of a table's full logical content: entries in file order, LRU
/// order per class, and the accounting totals.  Two tables with equal
/// digests are logically identical — the recovery-equivalence check.
std::uint64_t table_digest(const core::MappingTable& t);

/// CacheObserver that audits the cache after every step and records
/// violations (capped; the first failure is what matters for shrinking).
///
/// One oracle is installed on every server's cache, so on a sharded
/// cluster on_check runs concurrently from worker threads: a mutex
/// serializes the bookkeeping, and the monotone-time audit is keyed per
/// simulator (shard clocks advance independently inside a window, so a
/// global ordering across shards would be a false positive).  On the
/// classic core every cache shares one simulator — a single key — which
/// is exactly the old global check.
class InvariantOracle : public core::CacheObserver {
 public:
  void on_check(const core::IBridgeCache& cache, const char* where) override;

  bool ok() const { return failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }
  std::uint64_t checks_run() const { return checks_; }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    failures_.clear();
    checks_ = 0;
    last_now_ns_.clear();
  }

 private:
  static constexpr std::size_t kMaxFailures = 16;

  mutable std::mutex mu_;
  std::vector<std::string> failures_;
  std::uint64_t checks_ = 0;
  /// Last observed time per simulator (clock domain).  Lookup-only — the
  /// map is never iterated, so address ordering cannot leak into results.
  // lint: pointer-key-ok (keyed for point lookups only; never iterated)
  std::map<const void*, std::int64_t> last_now_ns_;
};

}  // namespace ibridge::check
