#include "check/generator.hpp"

#include <algorithm>
#include <utility>

#include "fsim/filesystem.hpp"
#include "sim/rng.hpp"

namespace ibridge::check {

namespace {

std::int64_t pick(sim::Rng& rng, std::initializer_list<std::int64_t> choices) {
  const auto* first = choices.begin();
  return first[rng.below(choices.size())];
}

std::int64_t clamp_off(std::int64_t off, std::int64_t size,
                       std::int64_t file_bytes) {
  return std::clamp<std::int64_t>(off, 0, file_bytes - size);
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, const GenLimits& lim) {
  sim::Rng rng(seed);
  FuzzCase c;
  c.seed = seed;

  // ---- cluster geometry ----
  cluster::ClusterConfig& cfg = c.base;
  cfg.data_servers = static_cast<int>(rng.uniform(1, lim.max_servers));
  cfg.stripe_unit = pick(rng, {4 << 10, 8 << 10, 16 << 10, 64 << 10});
  cfg.client_nodes = static_cast<int>(rng.uniform(1, 2));
  cfg.procs_per_node = 4;
  cfg.client.seed = seed ^ 0x9e3779b97f4a7c15ULL;

  // Payload comparison across policies needs byte-accurate backing stores.
  cfg.server.data_mode = fsim::DataMode::kVerify;
  cfg.server.rmw_page_bytes = sim::Bytes{rng.chance(0.25) ? 0 : 4096};

  // ---- iBridge knobs (small capacities force eviction and cleaning) ----
  core::IBridgeConfig& ib = cfg.server.ibridge;
  ib.enabled = true;
  ib.log_segment_bytes = pick(rng, {32 << 10, 64 << 10});
  ib.ssd_cache_bytes =
      ib.log_segment_bytes * rng.uniform(4, 16);  // 128 KB .. 1 MB
  ib.fragment_threshold = rng.uniform(8, 40) << 10;
  ib.random_threshold = rng.uniform(8, 40) << 10;
  switch (rng.below(3)) {
    case 0: ib.admission = core::AdmissionPolicy::kReturnBased; break;
    case 1: ib.admission = core::AdmissionPolicy::kAlwaysSmall; break;
    default: ib.admission = core::AdmissionPolicy::kHotBlock; break;
  }
  if (rng.chance(0.5)) {
    ib.partition_mode = core::PartitionMode::kStatic;
    ib.static_fragment_share = 0.25 + 0.25 * static_cast<double>(rng.below(3));
  } else {
    ib.partition_mode = core::PartitionMode::kDynamic;
  }
  // Frequent write-back wake-ups interleave the daemon with the foreground
  // stream (more oracle-visible states per case).
  ib.writeback_interval = sim::SimTime::millis(rng.uniform(5, 50));

  cfg.client.tag_fragments = true;
  cfg.client.fragment_threshold = ib.fragment_threshold;

  // ---- file and trace ----
  c.file_bytes =
      (rng.uniform(lim.min_file_bytes, lim.max_file_bytes) / 4096) * 4096;
  const std::int64_t unit = cfg.stripe_unit;
  const std::int64_t frag = ib.fragment_threshold;

  const int ops = static_cast<int>(rng.uniform(lim.min_ops, lim.max_ops));
  c.trace.reserve(static_cast<std::size_t>(ops));
  std::vector<std::pair<std::int64_t, std::int64_t>> written;
  for (int i = 0; i < ops; ++i) {
    workloads::TraceRecord r;
    r.write = rng.chance(0.55);

    const double u = rng.uniform01();
    if (u < 0.40) {
      // Fragment-sized: below the (randomized) threshold.
      r.size = rng.uniform(512, std::max<std::int64_t>(1024, frag - 1));
    } else if (u < 0.75) {
      // Medium: around one or two stripe units, mostly unaligned.  The
      // threshold can exceed a small unit, so anchor the low end at
      // whichever is smaller to keep the range well-formed.
      r.size = rng.uniform(std::min(frag, unit), 2 * unit + unit / 2);
    } else {
      // Large multi-server span.
      r.size = rng.uniform(2 * unit, 6 * unit);
    }
    r.size = std::clamp<std::int64_t>(r.size, 1, c.file_bytes);

    if (!written.empty() && rng.chance(0.35)) {
      // Overlap (partially or fully) an earlier write — exercises trim,
      // read-your-writes through the cache, and coverage stitching.
      const auto& [eo, es] = written[rng.below(written.size())];
      r.offset = clamp_off(eo + rng.uniform(-es, es), r.size, c.file_bytes);
    } else if (rng.chance(0.30)) {
      // Stripe-aligned.
      const std::int64_t units = (c.file_bytes - r.size) / unit;
      r.offset = units > 0 ? rng.uniform(0, units) * unit : 0;
    } else {
      // Arbitrary unaligned offset.
      r.offset = rng.uniform(0, c.file_bytes - r.size);
    }

    c.trace.push_back(r);
    if (r.write) written.emplace_back(r.offset, r.size);
  }
  return c;
}

cluster::ClusterConfig make_config(const FuzzCase& c, Policy p) {
  cluster::ClusterConfig cfg = c.base;
  switch (p) {
    case Policy::kIBridge:
      break;  // the case's native flavour
    case Policy::kDiskOnly:
      cfg.server.ibridge = core::IBridgeConfig::stock();
      cfg.server.storage_mode = pvfs::StorageMode::kDisk;
      cfg.client.tag_fragments = false;
      break;
    case Policy::kSsdOnly:
      cfg.server.ibridge = core::IBridgeConfig::stock();
      cfg.server.storage_mode = pvfs::StorageMode::kSsdOnly;
      cfg.client.tag_fragments = false;
      break;
  }
  return cfg;
}

std::uint64_t record_seed(std::uint64_t case_seed, std::size_t index) {
  std::uint64_t s = case_seed ^ (0xd1b54a32d192ed03ULL * (index + 1));
  return sim::splitmix64(s);
}

void fill_payload(std::span<std::byte> out, std::uint64_t seed) {
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = sim::splitmix64(state);
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::byte>(word & 0xff);
      word >>= 8;
    }
  }
}

ShrinkResult shrink(const workloads::Trace& failing,
                    const TracePredicate& still_fails,
                    std::size_t max_evals) {
  ShrinkResult res{failing, 0};
  auto fails = [&](const workloads::Trace& t) {
    if (res.evaluations >= max_evals || t.empty()) return false;
    ++res.evaluations;
    return still_fails(t);
  };

  // Phase 1: delta-debugging chunk removal at halving granularity.
  for (std::size_t chunk = std::max<std::size_t>(1, res.trace.size() / 2);;
       chunk /= 2) {
    std::size_t start = 0;
    while (start < res.trace.size() && res.trace.size() > 1) {
      workloads::Trace t;
      t.reserve(res.trace.size());
      const std::size_t end = std::min(start + chunk, res.trace.size());
      t.insert(t.end(), res.trace.begin(),
               res.trace.begin() + static_cast<std::ptrdiff_t>(start));
      t.insert(t.end(), res.trace.begin() + static_cast<std::ptrdiff_t>(end),
               res.trace.end());
      if (fails(t)) {
        res.trace = std::move(t);  // removed — retry same position
      } else {
        start = end;
      }
    }
    if (chunk <= 1) break;
  }

  // Phase 2: per-record simplification — halve the size, then page-align,
  // then zero the offset.  Each accepted step keeps the trace failing.
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    while (res.trace[i].size > 512) {
      workloads::Trace t = res.trace;
      t[i].size = std::max<std::int64_t>(512, t[i].size / 2);
      if (!fails(t)) break;
      res.trace = std::move(t);
    }
    if (res.trace[i].offset % 4096 != 0) {
      workloads::Trace t = res.trace;
      t[i].offset -= t[i].offset % 4096;
      if (fails(t)) res.trace = std::move(t);
    }
    if (res.trace[i].offset != 0) {
      workloads::Trace t = res.trace;
      t[i].offset = 0;
      if (fails(t)) res.trace = std::move(t);
    }
  }
  return res;
}

}  // namespace ibridge::check
