#include "check/differential.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "check/digest.hpp"
#include "fault/engine.hpp"
#include "sim/task.hpp"

namespace ibridge::check {

namespace {

struct DriveState {
  const FuzzCase* c = nullptr;
  pvfs::Client* client = nullptr;
  pvfs::FileHandle fh = pvfs::kInvalidHandle;
  std::vector<std::byte> image;  ///< reference: what the file must contain
  // 1 == byte written during THIS run.  On a long-lived cluster the file
  // keeps its bytes between cases, so only bytes this run wrote have a
  // reference value; unwritten bytes are still cross-checked across policies
  // through the image digest.
  std::vector<std::uint8_t> written;
  Digest payload;
  std::uint64_t requests = 0;
  bool ryw_ok = true;
  std::string failure;
  bool done = false;
};

sim::Task<> drive(DriveState& st) {
  std::vector<std::byte> buf;
  for (std::size_t i = 0; i < st.c->trace.size(); ++i) {
    const auto& rec = st.c->trace[i];
    const std::int64_t size = std::min(rec.size, st.c->file_bytes);
    const std::int64_t off =
        std::clamp<std::int64_t>(rec.offset, 0, st.c->file_bytes - size);
    buf.assign(static_cast<std::size_t>(size), std::byte{0});
    if (rec.write) {
      fill_payload(buf, record_seed(st.c->seed, i));
      co_await st.client->write_at(0, st.fh, off, size, buf);
      std::copy(buf.begin(), buf.end(),
                st.image.begin() + static_cast<std::ptrdiff_t>(off));
      std::fill(st.written.begin() + static_cast<std::ptrdiff_t>(off),
                st.written.begin() + static_cast<std::ptrdiff_t>(off + size),
                std::uint8_t{1});
    } else {
      co_await st.client->read_at(0, st.fh, off, size, buf);
      st.payload.update(buf);
      bool match = true;
      for (std::int64_t k = 0; k < size && match; ++k) {
        const auto idx = static_cast<std::size_t>(off + k);
        match = !st.written[idx] ||
                buf[static_cast<std::size_t>(k)] == st.image[idx];
      }
      if (st.ryw_ok && !match) {
        st.ryw_ok = false;
        st.failure = "read-your-writes violated by record " +
                     std::to_string(i) + " (offset " + std::to_string(off) +
                     ", size " + std::to_string(size) + ")";
      }
    }
    ++st.requests;
  }
  st.done = true;
}

struct ReadbackState {
  pvfs::Client* client = nullptr;
  pvfs::FileHandle fh = pvfs::kInvalidHandle;
  std::int64_t bytes = 0;
  std::vector<std::byte> data;
  bool done = false;
};

sim::Task<> read_back(ReadbackState& st) {
  st.data.assign(static_cast<std::size_t>(st.bytes), std::byte{0});
  // Stripe-friendly chunks; a single giant request would be decomposed
  // anyway, but bounded chunks keep per-request buffers small.
  constexpr std::int64_t kChunk = 1 << 20;
  for (std::int64_t off = 0; off < st.bytes; off += kChunk) {
    const std::int64_t len = std::min(kChunk, st.bytes - off);
    co_await st.client->read_at(
        0, st.fh, off, len,
        std::span<std::byte>(st.data).subspan(static_cast<std::size_t>(off),
                                              static_cast<std::size_t>(len)));
  }
  st.done = true;
}

std::uint64_t stats_digest_of(cluster::Cluster& cl, const RunReport& r) {
  Digest d;
  d.update_u64(static_cast<std::uint64_t>(r.policy))
      .update_u64(r.requests)
      .update_u64(r.events)
      .update_i64(r.io_elapsed.ns())
      .update_i64(r.total_elapsed.ns())
      .update_u64(r.payload_digest)
      .update_u64(r.image_digest);
  for (int i = 0; i < cl.server_count(); ++i) {
    auto& s = cl.server(i);
    d.update_i64(s.bytes_served().count());
    if (auto* cache = s.cache()) {
      const core::CacheStats& cs = cache->stats();
      d.update_i64(cs.ssd_bytes_served.count())
          .update_i64(cs.disk_bytes_served.count())
          .update_u64(cs.read_hits)
          .update_u64(cs.read_misses)
          .update_u64(cs.write_admits)
          .update_u64(cs.write_disk)
          .update_u64(cs.stages)
          .update_u64(cs.evictions)
          .update_u64(cs.writebacks)
          .update_u64(cs.boosts)
          .update_u64(cs.cleanings);
      for (auto n : cs.admit_by_class) d.update_u64(n);
      d.update_i64(cache->cached_bytes().count());
      d.update_u64(table_digest(cache->table()));
    }
  }
  // Healthy runs fold nothing extra, so their digests are unchanged by the
  // existence of fault injection.
  if (r.faulted) d.update_u64(r.fault_digest);
  return d.value();
}

void append_failure(std::string& dst, const std::string& msg) {
  if (msg.empty()) return;
  if (!dst.empty()) dst += "; ";
  dst += msg;
}

}  // namespace

RunReport run_case(cluster::Cluster& cluster, const FuzzCase& c, Policy p,
                   core::CacheObserver* obs, const std::string& file_name) {
  RunReport r;
  r.policy = p;

  const std::string name =
      file_name.empty() ? "simcheck-" + std::to_string(c.seed) + ".dat"
                        : file_name;

  if (obs) cluster.install_observer(obs);
  cluster.restart_daemons();

  const sim::SimTime t0 = cluster.sim().now();
  const std::uint64_t e0 = cluster.sim().events_executed();

  DriveState st;
  st.c = &c;
  st.client = &cluster.client();
  st.fh = cluster.create_file(name, c.file_bytes);
  st.image.assign(static_cast<std::size_t>(c.file_bytes), std::byte{0});
  st.written.assign(static_cast<std::size_t>(c.file_bytes), 0);

  // Inject the case's fault schedule (if any) while the trace runs; every
  // policy run gets the identical schedule.
  std::unique_ptr<fault::FaultEngine> engine;
  if (!c.faults.empty()) {
    engine = std::make_unique<fault::FaultEngine>(cluster, c.faults);
    engine->start();
  }

  auto io = drive(st);
  io.start();
  cluster.sim().run_while_pending([&] { return st.done; });
  const sim::SimTime io_done = cluster.sim().now();

  // Let every crash actor run to completion (restart, recovery replay,
  // degraded drain) before the final drain, so drain() sees healthy
  // servers and the fault digest is complete.
  if (engine != nullptr) {
    cluster.sim().run_while_pending([&] { return engine->done(); });
    r.fault_digest = engine->digest();
    r.faulted = true;
  }

  const sim::SimTime flushed = cluster.drain();

  // Read the final file image back through the full stack and hold it
  // against the reference (daemons stay stopped; the queue drains).
  ReadbackState rb;
  rb.client = &cluster.client();
  rb.fh = st.fh;
  rb.bytes = c.file_bytes;
  auto rb_task = read_back(rb);
  rb_task.start();
  cluster.sim().run_while_pending([&] { return rb.done; });
  cluster.sim().run();  // settle background stage copies from the read-back

  r.requests = st.requests;
  r.read_your_writes_ok = st.ryw_ok;
  r.failure = st.failure;
  if (engine != nullptr) append_failure(r.failure, engine->failure());
  r.payload_digest = st.payload.value();
  r.image_digest = Digest().update(std::span<const std::byte>(rb.data)).value();
  bool image_ok = rb.data.size() == st.image.size();
  for (std::size_t k = 0; image_ok && k < rb.data.size(); ++k) {
    image_ok = !st.written[k] || rb.data[k] == st.image[k];
  }
  if (!image_ok) {
    append_failure(r.failure, "final image diverged from the reference");
  }
  r.io_elapsed = io_done - t0;
  r.total_elapsed = flushed - t0;
  r.events = cluster.sim().events_executed() - e0;

  // With everything settled the caches must be exactly consistent.
  for (int i = 0; i < cluster.server_count(); ++i) {
    if (auto* cache = cluster.server(i).cache()) {
      for (const auto& v : verify_cache(*cache, /*quiescent=*/true)) {
        append_failure(r.failure, "server " + std::to_string(i) + ": " + v);
      }
    }
  }

  r.stats_digest = stats_digest_of(cluster, r);
  if (obs) cluster.install_observer(nullptr);
  return r;
}

DiffReport run_differential(cluster::Cluster& disk, cluster::Cluster& ib,
                            cluster::Cluster& ssd, const FuzzCase& c,
                            const std::string& file_name) {
  DiffReport d;
  d.disk = run_case(disk, c, Policy::kDiskOnly, nullptr, file_name);
  InvariantOracle oracle;
  d.ibridge = run_case(ib, c, Policy::kIBridge, &oracle, file_name);
  d.ssd = run_case(ssd, c, Policy::kSsdOnly, nullptr, file_name);

  append_failure(d.failure, d.disk.failure.empty()
                                ? ""
                                : "disk-only: " + d.disk.failure);
  append_failure(d.failure,
                 d.ibridge.failure.empty() ? "" : "ibridge: " + d.ibridge.failure);
  append_failure(d.failure,
                 d.ssd.failure.empty() ? "" : "ssd-only: " + d.ssd.failure);
  if (!oracle.ok()) {
    append_failure(d.failure, "oracle: " + oracle.failures().front());
  }

  d.payload_equal = d.disk.payload_digest == d.ibridge.payload_digest &&
                    d.disk.payload_digest == d.ssd.payload_digest &&
                    d.disk.image_digest == d.ibridge.image_digest &&
                    d.disk.image_digest == d.ssd.image_digest;
  if (!d.payload_equal) {
    append_failure(d.failure, "payload diverged across policies");
  }

  const double times[] = {d.disk.total_elapsed.to_seconds(),
                          d.ibridge.total_elapsed.to_seconds(),
                          d.ssd.total_elapsed.to_seconds()};
  for (double a : times) {
    for (double b : times) {
      if (a > 0 && b > 0) {
        d.max_rel_time_gap =
            std::max(d.max_rel_time_gap, std::abs(a - b) / std::min(a, b));
      }
    }
  }
  return d;
}

DiffReport run_differential(const FuzzCase& c) {
  cluster::Cluster disk(make_config(c, Policy::kDiskOnly));
  cluster::Cluster ib(make_config(c, Policy::kIBridge));
  cluster::Cluster ssd(make_config(c, Policy::kSsdOnly));
  return run_differential(disk, ib, ssd, c);
}

DeterminismReport check_determinism(const FuzzCase& c, Policy p) {
  DeterminismReport r;
  {
    cluster::Cluster a(make_config(c, p));
    r.first = run_case(a, c, p);
  }
  {
    cluster::Cluster b(make_config(c, p));
    r.second = run_case(b, c, p);
  }
  r.identical = r.first.events == r.second.events &&
                r.first.requests == r.second.requests &&
                r.first.payload_digest == r.second.payload_digest &&
                r.first.image_digest == r.second.image_digest &&
                r.first.stats_digest == r.second.stats_digest &&
                r.first.fault_digest == r.second.fault_digest &&
                r.first.io_elapsed.ns() == r.second.io_elapsed.ns() &&
                r.first.total_elapsed.ns() == r.second.total_elapsed.ns();
  append_failure(r.failure, r.first.failure);
  append_failure(r.failure, r.second.failure);
  if (!r.identical) {
    append_failure(r.failure, "same seed produced diverging runs");
  }
  return r;
}

}  // namespace ibridge::check
